//! Mapping an application onto the 4×4 VCGRA grid (the paper's Fig. 1/2
//! usage): synthesis to a PE netlist, placement, virtual routing, settings
//! generation, functional verification and the Table II accounting.
//!
//! ```text
//! cargo run --release --example grid_mapping
//! ```

use softfloat::{FpFormat, FpValue};
use vcgra::app::AppGraph;
use vcgra::flow::map_app;
use vcgra::{render, VcgraArch};

fn main() {
    let fmt = FpFormat::PAPER;
    // A 5-tap smoothing kernel as a dataflow of MUL and ADD PEs.
    let coeffs = [0.0625, 0.25, 0.375, 0.25, 0.0625];
    let app = AppGraph::dot_product(fmt, &coeffs);
    println!(
        "application: {} PE operations, dataflow depth {}",
        app.pe_demand(),
        app.depth()
    );

    let arch = VcgraArch::paper_4x4();
    let mapping = map_app(&app, arch, 42).expect("fits the 4x4 grid");
    println!(
        "mapped in {:?}: virtual wirelength {} channel segments",
        mapping.compile_time, mapping.virtual_wirelength
    );
    println!("{}", render::grid_ascii(&mapping));

    // Settings registers (Table II: 25 words for the 4x4 grid).
    let words = mapping.settings_words();
    println!(
        "settings registers: {} x 32-bit ({} PE + {} VSB)",
        words.len(),
        arch.pe_count(),
        arch.vsb_count()
    );

    // Execute the mapped application and check it against direct dataflow
    // evaluation and against plain f64 arithmetic.
    let samples = [0.5f64, 1.0, 2.0, 1.0, 0.5];
    let inputs: Vec<FpValue> = samples
        .iter()
        .map(|&x| FpValue::from_f64(x, fmt))
        .collect();
    let direct = vcgra::sim::run_dataflow(&app, &inputs);
    let mapped = vcgra::sim::run_mapped(&mapping, &app, &inputs);
    assert_eq!(direct[0].bits, mapped[0].bits, "mapped == direct");
    let expect: f64 = coeffs.iter().zip(&samples).map(|(c, x)| c * x).sum();
    println!(
        "filter({samples:?}) = {} (f64 reference {expect}, mapped result bit-exact \
         with the dataflow model)",
        mapped[0].to_f64()
    );

    // Table II, in place.
    let conv = arch.resources(false);
    let par = arch.resources(true);
    println!(
        "\nTable II: inter-network components {} -> {}, settings registers {} -> {}",
        conv.inter_network_components_on_luts,
        par.inter_network_components_on_luts,
        conv.settings_registers_on_ffs,
        par.settings_registers_on_ffs
    );
}
