//! The sharded serving tier in ~60 lines: route structurally related
//! tenants to their cache-affine shard, absorb backpressure, stream
//! through them concurrently, and close with a verified drain.
//!
//! ```text
//! cargo run --release --example sharded_serving
//! ```
//!
//! For the full bench (throughput scaling, latency quantiles, the
//! bit-exactness cross-check against a single-runtime run), use
//! `cargo run -p xbench --release --bin serve -- --shards 8`.

use shard::{synthesize, LoadSpec, RouteKey, ShardConfig, ShardServer};
use softfloat::FpFormat;

fn main() {
    let format = FpFormat::PAPER;

    // Where does each library kernel live on a 4-shard tier? The routing
    // key hashes the graph *structure* (never coefficient values), so a
    // kernel and all its retunings share one home shard — and one warm
    // configuration cache.
    let shards = 4;
    println!("routing keys over {shards} shards:");
    for w in runtime::kernels::library(format) {
        let key = RouteKey::of(&w.graph);
        println!("  {:<22} -> shard {}", w.name, key.shard(shards));
    }

    // Serve a small seeded plan: one priming wave (cold compiles), two
    // timed waves of warm traffic, each tenant's lifecycle fully
    // pipelined (admit -> stream -> swap -> stream -> release).
    let spec = LoadSpec { waves: 2, tenants_per_wave: 8, items_per_tenant: 16, ..LoadSpec::default() };
    let plan = synthesize(format, &spec);
    let mut tier = ShardServer::start(ShardConfig::new(shards));
    let report = shard::loadgen::run(&mut tier, &plan).expect("every wave drains verified");

    println!(
        "\nserved {} tenants: {} timed items at {:.0} items/s, \
         warm-hit rate {:.0}%, {} spills, fingerprint {:016x}",
        plan.tenants(),
        report.total_items,
        report.throughput,
        report.warm_hit_rate * 100.0,
        report.spills,
        report.fingerprint,
    );
    for s in &report.shard_stats {
        println!(
            "  shard {}: {} requests, {} admissions ({} warm hits)",
            s.shard,
            s.processed,
            s.admission_order.len(),
            s.cache.hits,
        );
    }

    // Shutdown joins every worker and re-proves each runtime's scheduler
    // invariants one last time.
    for fin in tier.shutdown() {
        assert!(fin.verify.ok(), "shard {} invariants", fin.shard);
    }
    println!("\nall shards drained and verified.");
}
