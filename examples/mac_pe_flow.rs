//! The Table I experiment at example scale: the virtual PE through both
//! tool flows, with mapping statistics and a (fast) PaR run on a reduced
//! floating-point format.
//!
//! ```text
//! cargo run --release --example mac_pe_flow
//! ```
//!
//! For the full-size (6,26) PE with minimum-channel-width search, run
//! `cargo run -p xbench --release --bin table1` instead (it takes minutes).

use logic::opt::sweep;
use mapping::{map_conventional, map_parameterized, MapOptions};
use softfloat::FpFormat;
use vcgra::{VirtualPe, VirtualPeConfig};

fn main() {
    // Reduced format so the example finishes in seconds.
    let cfg = VirtualPeConfig { format: FpFormat::new(5, 10), hops: 2 };
    println!("building virtual PE (FloPoCo we=5, wf=10, 2-hop intra-connect) ...");
    let conv_pe = VirtualPe::build(cfg, false);
    let par_pe = VirtualPe::build(cfg, true);
    let conv_aig = sweep(&conv_pe.aig);
    let par_aig = sweep(&par_pe.aig);
    println!(
        "netlist: {} AND gates; {} settings bits",
        par_aig.live_ands(),
        par_pe.settings_bits()
    );

    let conv = map_conventional(&conv_aig, MapOptions::default());
    let par = map_parameterized(&par_aig, MapOptions::default());
    let (sc, sp) = (conv.stats(), par.stats());
    println!("conventional:  {sc:?}");
    println!("parameterized: {sp:?}");
    println!(
        "LUT reduction {:.1}%, depth {} -> {}",
        100.0 * (1.0 - sp.luts as f64 / sc.luts as f64),
        sc.depth,
        sp.depth
    );

    // Place & route both (small enough to be quick).
    for (label, design) in [("conventional", &conv), ("parameterized", &par)] {
        let nl = par::extract(design);
        let t = std::time::Instant::now();
        let rep = par::full_par(&nl, &par::cw::ParOptions::default()).expect("routable");
        println!(
            "{label}: WL {} @ CW {} on a {}x{} fabric ({} TCON switch configs) in {:?}",
            rep.result.wirelength,
            rep.min_channel_width,
            rep.arch.size,
            rep.arch.size,
            rep.result.tcon_switches,
            t.elapsed()
        );
    }

    // Verify the parameterized mapping against the netlist for a few
    // random settings.
    verify::equiv::assert_equivalent(&par_aig, &par, 3, 99);
    println!("equivalence verified for random settings values");
}
