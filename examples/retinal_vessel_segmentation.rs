//! The paper's HPC application (Fig. 5): retinal vessel segmentation with
//! the filter stages executed as VCGRA hardware modules.
//!
//! ```text
//! cargo run --release --example retinal_vessel_segmentation [out_dir]
//! ```
//!
//! Generates a synthetic fundus image (clinical data is not
//! redistributable — see README.md), runs preprocessing in software and
//! the denoise / matched-filter / texture stages through the bit-exact
//! FloPoCo MAC model, writes every stage as a PGM image and reports
//! segmentation quality plus the reconfiguration economics of Section V.

use retina::pipeline::{run_pipeline, Engine, Metrics, PipelineConfig};
use retina::synth::{synth_fundus, SynthConfig};

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| "out".to_string());
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    let (img, truth) = synth_fundus(&SynthConfig { size: 128, ..Default::default() }, 7);
    let cfg = PipelineConfig { engine: Engine::Vcgra, ..Default::default() };
    let t0 = std::time::Instant::now();
    let res = run_pipeline(&img, &cfg);
    let elapsed = t0.elapsed();

    let m = Metrics::evaluate(&res.segmented, &truth);
    println!("pipeline (VCGRA engine, FloPoCo 6/26) in {elapsed:?}");
    println!(
        "  stages: denoise {:?}, matched filters {:?}, texture {:?}",
        res.stage_times[0], res.stage_times[1], res.stage_times[2]
    );
    println!(
        "  segmentation: precision {:.3}, recall {:.3}, F1 {:.3}, accuracy {:.3}",
        m.precision(),
        m.recall(),
        m.f1(),
        m.accuracy()
    );

    // Reconfiguration economics: each kernel's coefficients are parameters;
    // loading a new kernel onto a PE costs one micro-reconfiguration.
    let per_pe = std::time::Duration::from_millis(251); // the paper's figure
    let batch = 1000usize;
    println!(
        "  kernels loaded: {} ({} coefficients) — at 251 ms/PE per change and \
         {batch} images per batch: {:.3} ms amortized per image",
        res.kernels_loaded,
        res.coefficients_programmed,
        res.kernels_loaded as f64 * per_pe.as_secs_f64() * 1e3 / batch as f64
    );

    for (name, image) in [
        ("stage0_green.pgm", &img.g),
        ("stage1_preprocessed.pgm", &res.preprocessed),
        ("stage2_denoised.pgm", &res.denoised),
        ("stage3_response.pgm", &res.response),
        ("stage4_textured.pgm", &res.textured),
        ("stage5_segmented.pgm", &res.segmented),
        ("ground_truth.pgm", &truth),
    ] {
        let path = format!("{out_dir}/{name}");
        std::fs::write(&path, image.to_pgm()).expect("write PGM");
        println!("  wrote {path}");
    }
}
