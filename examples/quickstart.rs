//! Quickstart: the parameterized configuration flow end to end on a tiny
//! design.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small parameterized circuit (a coefficient-selectable filter
//! tap), runs the TCONMAP-style mapper, extracts the Template and Partial
//! Parameterized Configurations, specializes for two coefficient values
//! through the SCG, and shows that the specialized circuits behave exactly
//! like the original with the parameters frozen.

use logic::aig::{Aig, InputKind};
use mapping::{map_conventional, map_parameterized, MapOptions};

fn main() {
    // A 4-bit × 4-bit multiplier whose second operand is a parameter: the
    // core pattern of the paper's MAC PE (coefficient = infrequent input).
    let mut aig = Aig::new();
    let x = aig.input_vec("x", 4, InputKind::Regular);
    let c = aig.input_vec("c", 4, InputKind::Param);
    let prod = softfloat::gates::mul_carry_save(&mut aig, &x, &c);
    aig.add_output_vec("p", &prod);
    println!(
        "netlist: {} AND gates, {} regular + {} parameter inputs",
        aig.live_ands(),
        aig.num_inputs_of(InputKind::Regular),
        aig.num_inputs_of(InputKind::Param)
    );

    // Map it twice: the conventional way and the parameterized way.
    let conv = map_conventional(&aig, MapOptions::default());
    let par = map_parameterized(&aig, MapOptions::default());
    println!("conventional: {:?}", conv.stats());
    println!("parameterized: {:?}", par.stats());

    // Generic stage: TC + PPC.
    let cfg = dcs::ParamConfig::extract(&par);
    println!(
        "template: {} static bits; PPC: {} tunable bits ({} BDD nodes)",
        cfg.template_bits(),
        cfg.ppc_bits(),
        cfg.ppc_memory_nodes(&par)
    );

    // Specialization stage: two coefficient values.
    let scg = dcs::Scg::new(&par, &cfg);
    for coeff in [5u64, 11u64] {
        let params = par.params_from_bits(coeff);
        let spec = par.specialize(&params);
        let bits = scg.specialize(&params);
        let report = dcs::timing::specialization_report(
            &scg,
            &par.params_from_bits(0),
            &params,
            dcs::ReconfigInterface::Hwicap,
        );
        // Check the specialized circuit against plain integer math.
        let mut ok = true;
        for xv in 0..16u64 {
            let words: Vec<u64> = (0..4).map(|i| ((xv >> i) & 1) * u64::MAX).collect();
            let out = spec.simulate(&words);
            let got = out
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &w)| acc | ((w & 1) << i));
            ok &= got == xv * coeff;
        }
        println!(
            "coeff={coeff}: specialized to {} LUTs, {} PPC bits evaluated, \
             {} frames to rewrite ({:?} on HWICAP) -> multiplier {}",
            spec.lut_count(),
            bits.values.len(),
            report.frames,
            report.port_time,
            if ok { "exact for all inputs" } else { "WRONG" }
        );
        assert!(ok);
    }

    // And the mapped designs are equivalent to the source netlist.
    verify::equiv::assert_equivalent(&aig, &par, 8, 42);
    verify::equiv::assert_equivalent(&aig, &conv, 2, 43);
    println!("equivalence checks passed — see README.md for the full flow");
}
