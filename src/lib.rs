//! Umbrella crate for the VCGRA reproduction workspace.
//!
//! This crate re-exports the public API of every member crate so that the
//! examples and integration tests can address the whole system through one
//! dependency. See the repository `README.md` for the architecture
//! overview, the crate map, and the per-experiment index (the `xbench`
//! binaries reproduce the paper's Tables I/II and figures).

#![forbid(unsafe_code)]

pub use dcs;
pub use fabric;
pub use logic;
pub use mapping;
pub use par;
pub use retina;
pub use runtime;
pub use shard;
pub use softfloat;
pub use trace;
pub use vcgra;
pub use verify;
