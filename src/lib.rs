//! Umbrella crate for the VCGRA reproduction workspace.
//!
//! This crate re-exports the public API of every member crate so that the
//! examples and integration tests can address the whole system through one
//! dependency. See `README.md` for the architecture overview and
//! `DESIGN.md` for the per-experiment index.

pub use dcs;
pub use fabric;
pub use logic;
pub use mapping;
pub use par;
pub use retina;
pub use softfloat;
pub use vcgra;
