//! Architecture parameters of the island-style fabric.

/// Parameters of the FPGA architecture (VPR-style, K = 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricArch {
    /// Logic-block array is `size × size` (I/O ring not included).
    pub size: usize,
    /// LUT inputs per logic block (the paper's architecture: 4).
    pub k: usize,
    /// Input connection-block flexibility: fraction of the channel's tracks
    /// an input pin can connect to.
    pub fc_in: f64,
    /// Output connection-block flexibility.
    pub fc_out: f64,
    /// I/O pads per perimeter position.
    pub io_capacity: usize,
}

impl FabricArch {
    /// The paper's architecture: single 4-LUT logic blocks, Fc_in = 0.5,
    /// Fc_out = 0.25, two pads per I/O position.
    pub fn paper_4lut(size: usize) -> Self {
        assert!(size >= 2);
        Self { size, k: 4, fc_in: 0.5, fc_out: 0.25, io_capacity: 2 }
    }

    /// Smallest array that fits `blocks` logic blocks and `ios` pads.
    pub fn sized_for(blocks: usize, ios: usize) -> Self {
        let mut size = (blocks as f64).sqrt().ceil() as usize + 1;
        loop {
            let io_slots = 4 * size * 2; // io_capacity = 2
            if size * size >= blocks && io_slots >= ios {
                return Self::paper_4lut(size);
            }
            size += 1;
        }
    }

    /// Number of logic-block sites.
    pub fn logic_sites(&self) -> usize {
        self.size * self.size
    }

    /// Number of I/O pad sites (perimeter positions × capacity).
    pub fn io_sites(&self) -> usize {
        4 * self.size * self.io_capacity
    }

    /// Tracks an input pin touches for channel width `w`.
    pub fn fc_in_tracks(&self, w: usize) -> usize {
        ((self.fc_in * w as f64).round() as usize).clamp(1, w)
    }

    /// Tracks an output pin touches for channel width `w`.
    pub fn fc_out_tracks(&self, w: usize) -> usize {
        ((self.fc_out * w as f64).round() as usize).clamp(1, w)
    }
}

/// A placement site: either a logic block at array coordinates or an I/O
/// pad at a perimeter position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// Logic block at `(x, y)`, `0 <= x, y < size`.
    Logic {
        /// Column.
        x: usize,
        /// Row.
        y: usize,
    },
    /// I/O pad: perimeter side (0 = south, 1 = east, 2 = north, 3 = west),
    /// position along the side, and sub-slot within the position.
    Io {
        /// Perimeter side.
        side: u8,
        /// Position along the side (`< size`).
        pos: usize,
        /// Slot within the position (`< io_capacity`).
        slot: usize,
    },
}

impl Site {
    /// Approximate physical location of the site in tile units, used by the
    /// placer's wirelength estimate. Logic tiles occupy `(1..=size)` in
    /// both axes; pads sit on the surrounding ring.
    pub fn location(&self, size: usize) -> (f64, f64) {
        match *self {
            Site::Logic { x, y } => (x as f64 + 1.0, y as f64 + 1.0),
            Site::Io { side, pos, .. } => match side {
                0 => (pos as f64 + 1.0, 0.0),
                1 => (size as f64 + 1.0, pos as f64 + 1.0),
                2 => (pos as f64 + 1.0, size as f64 + 1.0),
                _ => (0.0, pos as f64 + 1.0),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sized_for_fits() {
        let a = FabricArch::sized_for(2894, 180);
        assert!(a.logic_sites() >= 2894);
        assert!(a.io_sites() >= 180);
    }

    #[test]
    fn fc_tracks_clamped() {
        let a = FabricArch::paper_4lut(8);
        assert_eq!(a.fc_in_tracks(10), 5);
        assert_eq!(a.fc_out_tracks(10), 3);
        assert_eq!(a.fc_in_tracks(1), 1);
    }

    #[test]
    fn site_locations_are_distinct_sides() {
        let s = 8;
        let south = Site::Io { side: 0, pos: 3, slot: 0 }.location(s);
        let north = Site::Io { side: 2, pos: 3, slot: 0 }.location(s);
        assert_eq!(south.0, north.0);
        assert!(south.1 < north.1);
        let logic = Site::Logic { x: 0, y: 0 }.location(s);
        assert_eq!(logic, (1.0, 1.0));
    }
}
