//! Island-style FPGA fabric model — the physical substrate of the paper's
//! experiments (the "4LUT sanitized architecture from VPR").
//!
//! The fabric is a square array of single-BLE logic blocks (one 4-input
//! LUT + flip-flop each) surrounded by an I/O ring, with unit-length
//! routing wires in horizontal/vertical channels, Wilton switch blocks
//! (Fs = 3) and connection blocks with configurable input/output
//! flexibility (Fc).
//!
//! * [`arch`] — architecture parameters and geometry;
//! * [`rrg`] — the routing-resource graph the TROUTE router works on;
//! * [`frames`] — configuration-frame addressing used by the DCS crate to
//!   model micro-reconfiguration (read-modify-write of frames).

#![forbid(unsafe_code)]
#![deny(clippy::dbg_macro, clippy::todo)]

pub mod arch;
pub mod frames;
pub mod rrg;

pub use arch::{FabricArch, Site};
pub use rrg::{CutPressure, NodeKind, NodeState, RouteGraph};
