//! Routing-resource graph (RRG) of the island-style fabric.
//!
//! Nodes are output pins, input pins and unit-length channel wires; edges
//! are the programmable switches: output connection blocks (OPIN → wire),
//! Wilton switch blocks (wire → wire, Fs = 3) and input connection blocks
//! (wire → IPIN). The TROUTE router negotiates congestion on this graph;
//! every configured edge corresponds to configuration bits that the DCS
//! crate maps into frames.

use crate::arch::{FabricArch, Site};

/// Kind and coordinates of an RRG node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeKind {
    /// Output pin of a site.
    Opin(Site),
    /// Input pin `pin` of a site.
    Ipin(Site, u8),
    /// Horizontal wire in channel `y` (0..=size), tile `x` (0..size),
    /// track `t`.
    ChanX {
        /// Tile column.
        x: usize,
        /// Channel row.
        y: usize,
        /// Track index.
        t: usize,
    },
    /// Vertical wire in channel `x` (0..=size), tile `y` (0..size),
    /// track `t`.
    ChanY {
        /// Channel column.
        x: usize,
        /// Tile row.
        y: usize,
        /// Track index.
        t: usize,
    },
}

impl NodeKind {
    /// True for channel wires (the nodes counted as wirelength).
    pub fn is_wire(&self) -> bool {
        matches!(self, NodeKind::ChanX { .. } | NodeKind::ChanY { .. })
    }

    /// True for pins (never subject to occupancy accounting — a block's
    /// nets legitimately share them).
    pub fn is_pin(&self) -> bool {
        !self.is_wire()
    }

    /// The wire's track index; `None` for pins. Static checkers use this
    /// to prove channel-width conformance of translated trees.
    pub fn track(&self) -> Option<usize> {
        match *self {
            NodeKind::ChanX { t, .. } | NodeKind::ChanY { t, .. } => Some(t),
            _ => None,
        }
    }

    /// Short stable class name (for violation messages and records).
    pub fn class(&self) -> &'static str {
        match self {
            NodeKind::Opin(_) => "opin",
            NodeKind::Ipin(..) => "ipin",
            NodeKind::ChanX { .. } => "chanx",
            NodeKind::ChanY { .. } => "chany",
        }
    }
}

/// The routing-resource graph (CSR adjacency).
pub struct RouteGraph {
    /// Architecture this graph was built for.
    pub arch: FabricArch,
    /// Channel width the graph was built with.
    pub width: usize,
    kinds: Vec<NodeKind>,
    offsets: Vec<u32>,
    targets: Vec<u32>,
    locs: Vec<(f32, f32)>,
    // id range bases
    io_opin_base: usize,
    logic_ipin_base: usize,
    io_ipin_base: usize,
    chanx_base: usize,
    chany_base: usize,
}

impl RouteGraph {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// Node kind.
    pub fn kind(&self, id: u32) -> NodeKind {
        self.kinds[id as usize]
    }

    /// Outgoing edges of a node.
    pub fn edges(&self, id: u32) -> &[u32] {
        let a = self.offsets[id as usize] as usize;
        let b = self.offsets[id as usize + 1] as usize;
        &self.targets[a..b]
    }

    /// Output-pin node of a site.
    pub fn opin(&self, site: Site) -> u32 {
        match site {
            Site::Logic { x, y } => (y * self.arch.size + x) as u32,
            Site::Io { side, pos, slot } => {
                (self.io_opin_base
                    + ((side as usize * self.arch.size + pos) * self.arch.io_capacity + slot))
                    as u32
            }
        }
    }

    /// Input-pin node of a site.
    pub fn ipin(&self, site: Site, pin: usize) -> u32 {
        match site {
            Site::Logic { x, y } => {
                (self.logic_ipin_base + (y * self.arch.size + x) * self.arch.k + pin) as u32
            }
            Site::Io { side, pos, slot } => {
                assert_eq!(pin, 0, "I/O pads have one input pin");
                (self.io_ipin_base
                    + ((side as usize * self.arch.size + pos) * self.arch.io_capacity + slot))
                    as u32
            }
        }
    }

    /// Approximate location of a node (for the A* heuristic). Precomputed
    /// at build time — the router calls this on every edge expansion.
    #[inline]
    pub fn location(&self, id: u32) -> (f64, f64) {
        let (x, y) = self.locs[id as usize];
        (x as f64, y as f64)
    }

    /// Single-precision location, for hot-loop heuristics and bounding-box
    /// tests.
    #[inline]
    pub fn location_f32(&self, id: u32) -> (f32, f32) {
        self.locs[id as usize]
    }

    /// Translates a node id from `other` (same architecture, possibly
    /// different channel width) into this graph. Channel wires on tracks
    /// that do not exist at this width translate to `None`. Edges are NOT
    /// guaranteed to survive translation (connection-block and switch-box
    /// patterns are width-dependent), so callers re-validate connectivity.
    pub fn translate_from(&self, other: &RouteGraph, id: u32) -> Option<u32> {
        debug_assert_eq!(self.arch, other.arch);
        let s = self.arch.size;
        match other.kind(id) {
            NodeKind::Opin(site) => Some(self.opin(site)),
            NodeKind::Ipin(site, p) => Some(self.ipin(site, p as usize)),
            NodeKind::ChanX { x, y, t } => (t < self.width)
                .then(|| (self.chanx_base + (y * s + x) * self.width + t) as u32),
            NodeKind::ChanY { x, y, t } => (t < self.width)
                .then(|| (self.chany_base + (x * s + y) * self.width + t) as u32),
        }
    }

    /// Inclusive x-extent of every node location — the coordinate span a
    /// spatial partitioner must tile.
    pub fn x_span(&self) -> (f32, f32) {
        let s = self.arch.size as f32;
        // Locations are structural: pads sit at 0 and s+1, channel wires
        // inside [0.5, s+0.5], logic tiles at 1..=s.
        (0.0, s + 1.0)
    }

    /// Tiles the x-span into `k` equal-width column regions, returned as
    /// half-open `[lo, hi)` intervals (the last interval is padded past
    /// the span so a containment test covers the rightmost nodes).
    /// Deterministic in `(arch, k)` alone.
    pub fn column_regions(&self, k: usize) -> Vec<(f32, f32)> {
        let k = k.max(1);
        let (x0, x1) = self.x_span();
        let step = (x1 - x0) / k as f32;
        (0..k)
            .map(|i| {
                let lo = if i == 0 { x0 - 1.0 } else { x0 + step * i as f32 };
                let hi = if i + 1 == k { x1 + 1.0 } else { x0 + step * (i + 1) as f32 };
                (lo, hi)
            })
            .collect()
    }

    /// Wires of one column/row cut's vertex separator **per track**: any
    /// path crossing the cut between adjacent tile columns must touch the
    /// crossing channel column (`s` wires per track) or one of the
    /// horizontal wires entering the cut's switch-block column (`s + 1`
    /// per track) — `2s + 1` total, matching the sound width lower bound.
    pub fn separator_per_track(&self) -> usize {
        2 * self.arch.size + 1
    }

    /// Per-cut routing pressure of a state: for every vertical and
    /// horizontal cut, tallies the separator's used wires and its residual
    /// overuse, returning the worst cut of each. The width search turns
    /// these into overuse-sharpened `lo` advances.
    pub fn cut_pressure(&self, state: &NodeState) -> CutPressure {
        let s = self.arch.size;
        if s < 2 {
            return CutPressure { max_used: 0, max_overuse: 0 };
        }
        // used/overuse per vertical cut k (x = k + 1.5) and horizontal cut
        // k (y = k + 1.5), k in 0..s-1.
        let mut used = vec![0usize; 2 * (s - 1)];
        let mut over = vec![0usize; 2 * (s - 1)];
        let mut add = |cut: usize, occ: u16| {
            if occ > 0 {
                used[cut] += 1;
                over[cut] += (occ - 1) as usize;
            }
        };
        for id in self.chanx_base as u32..self.node_count() as u32 {
            let occ = state.occ(id);
            if occ == 0 {
                continue;
            }
            match self.kinds[id as usize] {
                NodeKind::ChanX { x, y, .. } => {
                    // Horizontal wire at tile column x crosses vertical cut
                    // x-1; it lies on horizontal cut y-1's separator row.
                    if x >= 1 {
                        add(x - 1, occ);
                    }
                    if (1..s).contains(&y) {
                        add(s - 1 + (y - 1), occ);
                    }
                }
                NodeKind::ChanY { x, y, .. } => {
                    if (1..s).contains(&x) {
                        add(x - 1, occ);
                    }
                    if y >= 1 {
                        add(s - 1 + (y - 1), occ);
                    }
                }
                _ => {}
            }
        }
        CutPressure {
            max_used: used.iter().copied().max().unwrap_or(0),
            max_overuse: over.iter().copied().max().unwrap_or(0),
        }
    }

    /// Builds the RRG for a channel width.
    pub fn build(arch: FabricArch, width: usize) -> RouteGraph {
        assert!(width >= 2);
        let s = arch.size;
        let cap = arch.io_capacity;
        let num_logic = s * s;
        let num_io = 4 * s * cap;

        let io_opin_base = num_logic;
        let logic_ipin_base = io_opin_base + num_io;
        let io_ipin_base = logic_ipin_base + num_logic * arch.k;
        let chanx_base = io_ipin_base + num_io;
        let num_chanx = s * (s + 1) * width;
        let chany_base = chanx_base + num_chanx;
        let num_chany = (s + 1) * s * width;
        let total = chany_base + num_chany;

        // Kinds.
        let mut kinds = Vec::with_capacity(total);
        for y in 0..s {
            for x in 0..s {
                kinds.push(NodeKind::Opin(Site::Logic { x, y }));
            }
        }
        for side in 0..4u8 {
            for pos in 0..s {
                for slot in 0..cap {
                    kinds.push(NodeKind::Opin(Site::Io { side, pos, slot }));
                }
            }
        }
        for y in 0..s {
            for x in 0..s {
                for p in 0..arch.k {
                    kinds.push(NodeKind::Ipin(Site::Logic { x, y }, p as u8));
                }
            }
        }
        for side in 0..4u8 {
            for pos in 0..s {
                for slot in 0..cap {
                    kinds.push(NodeKind::Ipin(Site::Io { side, pos, slot }, 0));
                }
            }
        }
        for y in 0..=s {
            for x in 0..s {
                for t in 0..width {
                    kinds.push(NodeKind::ChanX { x, y, t });
                }
            }
        }
        for x in 0..=s {
            for y in 0..s {
                for t in 0..width {
                    kinds.push(NodeKind::ChanY { x, y, t });
                }
            }
        }
        // Build-time structural invariant: runs once per graph, so it is
        // checked in release builds too.
        assert_eq!(kinds.len(), total, "RRG node enumeration out of sync with id bases");

        let chanx = |x: usize, y: usize, t: usize| -> u32 {
            (chanx_base + (y * s + x) * width + t) as u32
        };
        let chany = |x: usize, y: usize, t: usize| -> u32 {
            (chany_base + (x * s + y) * width + t) as u32
        };

        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); total];
        let mut connect = |a: u32, b: u32| adj[a as usize].push(b);

        // --- output connection blocks ---
        let fco = arch.fc_out_tracks(width);
        for y in 0..s {
            for x in 0..s {
                let o = (y * s + x) as u32;
                for i in 0..fco {
                    let t = (i * width / fco + x + y) % width;
                    connect(o, chanx(x, y, t));
                    connect(o, chanx(x, y + 1, t));
                    connect(o, chany(x, y, t));
                    connect(o, chany(x + 1, y, t));
                }
            }
        }
        // I/O pad outputs reach their adjacent perimeter channel.
        let fci = arch.fc_in_tracks(width);
        for side in 0..4u8 {
            for pos in 0..s {
                for slot in 0..cap {
                    let site = Site::Io { side, pos, slot };
                    let o = (io_opin_base
                        + ((side as usize * s + pos) * cap + slot))
                        as u32;
                    for i in 0..fco.max(2) {
                        let t = (i * width / fco.max(2) + pos + slot) % width;
                        let wire = match side {
                            0 => chanx(pos, 0, t),
                            1 => chany(s, pos, t),
                            2 => chanx(pos, s, t),
                            _ => chany(0, pos, t),
                        };
                        connect(o, wire);
                    }
                    let _ = site;
                }
            }
        }

        // --- input connection blocks ---
        for y in 0..s {
            for x in 0..s {
                for p in 0..arch.k {
                    let ipin =
                        (logic_ipin_base + (y * s + x) * arch.k + p) as u32;
                    for i in 0..fci {
                        let t = (i * width / fci + x + y + p) % width;
                        connect(chanx(x, y, t), ipin);
                        connect(chanx(x, y + 1, t), ipin);
                        connect(chany(x, y, t), ipin);
                        connect(chany(x + 1, y, t), ipin);
                    }
                }
            }
        }
        for side in 0..4u8 {
            for pos in 0..s {
                for slot in 0..cap {
                    let ipin = (io_ipin_base
                        + ((side as usize * s + pos) * cap + slot))
                        as u32;
                    for i in 0..fci {
                        let t = (i * width / fci + pos + slot) % width;
                        let wire = match side {
                            0 => chanx(pos, 0, t),
                            1 => chany(s, pos, t),
                            2 => chanx(pos, s, t),
                            _ => chany(0, pos, t),
                        };
                        connect(wire, ipin);
                    }
                }
            }
        }

        // --- switch blocks (Wilton-style, Fs = 3) ---
        // Junction (jx, jy) joins: west chanx(jx-1, jy), east chanx(jx, jy),
        // south chany(jx, jy-1), north chany(jx, jy).
        for jy in 0..=s {
            for jx in 0..=s {
                let west = (jx > 0).then(|| jx - 1);
                let east = (jx < s).then_some(jx);
                let south = (jy > 0).then(|| jy - 1);
                let north = (jy < s).then_some(jy);
                for t in 0..width {
                    let flip = (t + 1) % width;
                    // straight X
                    if let (Some(w), Some(e)) = (west, east) {
                        connect(chanx(w, jy, t), chanx(e, jy, t));
                        connect(chanx(e, jy, t), chanx(w, jy, t));
                    }
                    // straight Y
                    if let (Some(so), Some(no)) = (south, north) {
                        connect(chany(jx, so, t), chany(jx, no, t));
                        connect(chany(jx, no, t), chany(jx, so, t));
                    }
                    // Turns: two parity-keeping and two parity-flipping
                    // pairs per junction, so no track-parity class can trap
                    // a route (a known pitfall of naive ±1 turn patterns).
                    if let (Some(w), Some(no)) = (west, north) {
                        connect(chanx(w, jy, t), chany(jx, no, t));
                        connect(chany(jx, no, t), chanx(w, jy, t));
                    }
                    if let (Some(w), Some(so)) = (west, south) {
                        connect(chanx(w, jy, t), chany(jx, so, flip));
                        connect(chany(jx, so, flip), chanx(w, jy, t));
                    }
                    if let (Some(e), Some(no)) = (east, north) {
                        connect(chanx(e, jy, t), chany(jx, no, flip));
                        connect(chany(jx, no, flip), chanx(e, jy, t));
                    }
                    if let (Some(e), Some(so)) = (east, south) {
                        connect(chanx(e, jy, t), chany(jx, so, t));
                        connect(chany(jx, so, t), chanx(e, jy, t));
                    }
                }
            }
        }

        // CSR.
        let mut offsets = Vec::with_capacity(total + 1);
        offsets.push(0u32);
        let mut targets = Vec::new();
        for a in &adj {
            targets.extend_from_slice(a);
            offsets.push(targets.len() as u32);
        }

        let locs: Vec<(f32, f32)> = kinds
            .iter()
            .map(|k| match *k {
                NodeKind::Opin(site) | NodeKind::Ipin(site, _) => {
                    let (x, y) = site.location(s);
                    (x as f32, y as f32)
                }
                NodeKind::ChanX { x, y, .. } => (x as f32 + 1.0, y as f32 + 0.5),
                NodeKind::ChanY { x, y, .. } => (x as f32 + 0.5, y as f32 + 1.0),
            })
            .collect();

        RouteGraph {
            arch,
            width,
            kinds,
            offsets,
            targets,
            locs,
            io_opin_base,
            logic_ipin_base,
            io_ipin_base,
            chanx_base,
            chany_base,
        }
    }
}

/// Worst-cut routing pressure over all vertical and horizontal cuts of a
/// fabric, as reported by [`RouteGraph::cut_pressure`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CutPressure {
    /// Most separator wires in use across any single cut.
    pub max_used: usize,
    /// Largest summed overuse (occupancy beyond capacity) across any cut.
    pub max_overuse: usize,
}

/// Mutable routing state over a [`RouteGraph`]: per-node occupancy and
/// PathFinder history, updated **in place** by the incremental router
/// instead of being rebuilt per iteration. Pins are capacity-unlimited;
/// only channel wires count toward occupancy and wirelength.
#[derive(Clone)]
pub struct NodeState {
    occ: Vec<u16>,
    hist: Vec<f32>,
    wire: Vec<bool>,
}

impl NodeState {
    /// Fresh state (all free, no history) for a graph.
    pub fn new(graph: &RouteGraph) -> Self {
        let n = graph.node_count();
        Self {
            occ: vec![0; n],
            hist: vec![0.0; n],
            wire: (0..n as u32).map(|i| graph.kind(i).is_wire()).collect(),
        }
    }

    /// True when the node is a channel wire.
    #[inline]
    pub fn is_wire(&self, id: u32) -> bool {
        self.wire[id as usize]
    }

    /// Current occupancy of a node (0 for pins).
    #[inline]
    pub fn occ(&self, id: u32) -> u16 {
        self.occ[id as usize]
    }

    /// Accumulated history cost of a node.
    #[inline]
    pub fn hist(&self, id: u32) -> f32 {
        self.hist[id as usize]
    }

    /// True when more than one net uses the wire.
    #[inline]
    pub fn overused(&self, id: u32) -> bool {
        self.occ[id as usize] > 1
    }

    /// Marks a wire as used by one more net (no-op on pins).
    #[inline]
    pub fn occupy(&mut self, id: u32) {
        if self.wire[id as usize] {
            self.occ[id as usize] += 1;
        }
    }

    /// Releases one net's use of a wire (no-op on pins).
    #[inline]
    pub fn release(&mut self, id: u32) {
        if self.wire[id as usize] {
            self.occ[id as usize] -= 1;
        }
    }

    /// PathFinder congestion cost of stepping onto `id` under the present
    /// congestion factor `pres_fac` (pins cost a small constant).
    #[inline]
    pub fn step_cost(&self, id: u32, pres_fac: f64) -> f32 {
        let i = id as usize;
        if self.wire[i] {
            (1.0 + pres_fac * self.occ[i] as f64 + self.hist[i] as f64) as f32
        } else {
            0.4
        }
    }

    /// End-of-iteration sweep: accrues history on overused wires and
    /// returns how many wires are overused.
    pub fn accrue_history(&mut self, acc_fac: f64) -> usize {
        let mut overused = 0;
        for i in 0..self.occ.len() {
            if self.occ[i] > 1 {
                overused += 1;
                self.hist[i] += (acc_fac * (self.occ[i] - 1) as f64) as f32;
            }
        }
        overused
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RouteGraph {
        RouteGraph::build(FabricArch::paper_4lut(4), 6)
    }

    #[test]
    fn node_counts_add_up() {
        let g = small();
        let s = 4;
        let expect = s * s // logic opins
            + 4 * s * 2 // io opins
            + s * s * 4 // logic ipins
            + 4 * s * 2 // io ipins
            + s * (s + 1) * 6 // chanx
            + (s + 1) * s * 6; // chany
        assert_eq!(g.node_count(), expect);
    }

    #[test]
    fn pin_lookups_match_kinds() {
        let g = small();
        let site = Site::Logic { x: 2, y: 1 };
        let o = g.opin(site);
        assert_eq!(g.kind(o), NodeKind::Opin(site));
        let i = g.ipin(site, 3);
        assert_eq!(g.kind(i), NodeKind::Ipin(site, 3));
        let pad = Site::Io { side: 2, pos: 0, slot: 1 };
        assert_eq!(g.kind(g.opin(pad)), NodeKind::Opin(pad));
        assert_eq!(g.kind(g.ipin(pad, 0)), NodeKind::Ipin(pad, 0));
    }

    #[test]
    fn opins_reach_wires_and_wires_reach_ipins() {
        let g = small();
        let o = g.opin(Site::Logic { x: 1, y: 1 });
        assert!(!g.edges(o).is_empty());
        for &w in g.edges(o) {
            assert!(g.kind(w).is_wire(), "OPIN must drive wires");
        }
        let i = g.ipin(Site::Logic { x: 1, y: 1 }, 0);
        assert!(g.edges(i).is_empty(), "IPINs are sinks");
    }

    #[test]
    fn wires_have_switch_fanout() {
        let g = small();
        // Every wire should reach at least one other wire or pin.
        let mut wires = 0;
        for id in 0..g.node_count() as u32 {
            if g.kind(id).is_wire() {
                wires += 1;
                assert!(!g.edges(id).is_empty(), "dead-end wire {id}");
            }
        }
        assert_eq!(wires, 4 * 5 * 6 * 2);
    }

    #[test]
    fn full_connectivity_opin_to_any_ipin() {
        // BFS from one OPIN must reach every logic IPIN (fabric is fully
        // connected at this width).
        let g = small();
        let src = g.opin(Site::Logic { x: 0, y: 0 });
        let mut seen = vec![false; g.node_count()];
        let mut queue = std::collections::VecDeque::from([src]);
        seen[src as usize] = true;
        while let Some(n) = queue.pop_front() {
            for &e in g.edges(n) {
                if !seen[e as usize] {
                    seen[e as usize] = true;
                    queue.push_back(e);
                }
            }
        }
        for y in 0..4 {
            for x in 0..4 {
                for p in 0..4 {
                    let i = g.ipin(Site::Logic { x, y }, p);
                    assert!(seen[i as usize], "IPIN ({x},{y},{p}) unreachable");
                }
            }
        }
        let pad = g.ipin(Site::Io { side: 1, pos: 3, slot: 0 }, 0);
        assert!(seen[pad as usize], "pad unreachable");
    }
}
