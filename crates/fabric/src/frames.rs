//! Configuration-frame addressing.
//!
//! FPGAs are configured in *frames* — the smallest unit the configuration
//! port can read or write. Micro-reconfiguration (the paper's Section II-C)
//! is a read-modify-write of every frame that holds at least one changed
//! bit, so the DCS cost model needs to know which frame each configurable
//! element lives in. We use a column-major model in the spirit of Xilinx
//! devices: each logic column contributes a fixed number of frames for LUT
//! truth tables and a fixed number for routing switches, and each frame
//! covers a vertical stripe of tiles.

use crate::arch::{FabricArch, Site};

/// Frame geometry of a fabric.
#[derive(Debug, Clone, Copy)]
pub struct FrameModel {
    /// Array size this model addresses.
    pub size: usize,
    /// Tiles covered by one frame vertically.
    pub tiles_per_frame: usize,
    /// 32-bit words per frame (Virtex-style frames are 41 words; we keep
    /// the constant configurable for the timing model).
    pub words_per_frame: usize,
}

impl FrameModel {
    /// Default model: one frame spans 4 tiles vertically, 41 words/frame.
    pub fn for_arch(arch: &FabricArch) -> Self {
        Self { size: arch.size, tiles_per_frame: 4, words_per_frame: 41 }
    }

    /// Frame model for the settings plane of a `rows × cols` overlay grid:
    /// the square fabric region hosting it. Each grid cell's settings
    /// register lives in the frame returned by [`Self::lut_frame`] for
    /// `Site::Logic { x: col, y: row }` — cells in the same column stripe
    /// share a frame, so a parameter change touching several vertically
    /// adjacent PEs is one frame read-modify-write, not many.
    pub fn for_grid(rows: usize, cols: usize) -> Self {
        Self { size: rows.max(cols).max(2), tiles_per_frame: 4, words_per_frame: 41 }
    }

    fn stripes(&self) -> usize {
        self.size.div_ceil(self.tiles_per_frame)
    }

    /// Frame holding the LUT truth-table bits of a logic site.
    pub fn lut_frame(&self, site: Site) -> u32 {
        match site {
            Site::Logic { x, y } => (x * self.stripes() + y / self.tiles_per_frame) as u32,
            Site::Io { .. } => self.io_frame_base(),
        }
    }

    /// Frame holding the routing-switch bits near tile `(x, y)`.
    /// Routing frames live in a separate address range after LUT frames.
    pub fn routing_frame(&self, x: usize, y: usize) -> u32 {
        let base = (self.size * self.stripes()) as u32;
        base + (x.min(self.size - 1) * self.stripes()
            + (y.min(self.size - 1)) / self.tiles_per_frame) as u32
    }

    fn io_frame_base(&self) -> u32 {
        2 * (self.size * self.stripes()) as u32
    }

    /// Total addressable frames.
    pub fn frame_count(&self) -> u32 {
        self.io_frame_base() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_column_major_stripes() {
        let m = FrameModel { size: 8, tiles_per_frame: 4, words_per_frame: 41 };
        let f00 = m.lut_frame(Site::Logic { x: 0, y: 0 });
        let f03 = m.lut_frame(Site::Logic { x: 0, y: 3 });
        let f04 = m.lut_frame(Site::Logic { x: 0, y: 4 });
        let f10 = m.lut_frame(Site::Logic { x: 1, y: 0 });
        assert_eq!(f00, f03, "same stripe, same frame");
        assert_ne!(f00, f04, "next stripe, next frame");
        assert_ne!(f00, f10, "other column, other frame");
    }

    #[test]
    fn grid_settings_frames_stripe_by_column() {
        let m = FrameModel::for_grid(4, 4);
        let f = |r: usize, c: usize| m.lut_frame(Site::Logic { x: c, y: r });
        assert_eq!(f(0, 0), f(3, 0), "a 4-row column stripe is one frame");
        assert_ne!(f(0, 0), f(0, 1), "columns get distinct frames");
        // Degenerate grids still address ≥ 1 stripe.
        assert!(FrameModel::for_grid(2, 2).frame_count() > 0);
    }

    #[test]
    fn routing_frames_do_not_collide_with_lut_frames() {
        let m = FrameModel { size: 8, tiles_per_frame: 4, words_per_frame: 41 };
        let lut_max = m.lut_frame(Site::Logic { x: 7, y: 7 });
        let route_min = m.routing_frame(0, 0);
        assert!(route_min > lut_max);
        assert!(m.frame_count() > m.routing_frame(7, 7));
    }
}
