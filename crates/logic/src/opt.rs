//! Logic optimization passes (the "ABC step" of the paper's flow).
//!
//! Construction of an [`Aig`] already performs constant folding and
//! structural hashing; the passes here finish the job:
//!
//! * [`sweep`] rebuilds the graph keeping only logic reachable from the
//!   outputs (dangling-node removal),
//! * [`balance`] re-associates AND trees to reduce depth,
//! * [`optimize`] chains the passes until a fixed point.

use crate::aig::{Aig, Lit, Node};

/// Removes dangling nodes by rebuilding the graph from its outputs.
///
/// The rebuilt graph has the same inputs (in the same order, so simulation
/// vectors remain aligned) and the same named outputs.
pub fn sweep(aig: &Aig) -> Aig {
    let mut out = Aig::new();
    let live = aig.live_nodes();
    let mut map: Vec<Lit> = vec![Lit::FALSE; aig.num_nodes()];
    for (id, node) in aig.iter_nodes() {
        match node {
            Node::Const => map[id as usize] = Lit::FALSE,
            // Inputs are always re-created to keep indexing stable.
            Node::Input(idx) => {
                let info = &aig.inputs()[idx as usize];
                map[id as usize] = out.input(info.name.clone(), info.kind);
            }
            Node::And(a, b) => {
                if live[id as usize] {
                    let na = map[a.node() as usize] ^ a.is_neg();
                    let nb = map[b.node() as usize] ^ b.is_neg();
                    map[id as usize] = out.and(na, nb);
                }
            }
        }
    }
    for (name, l) in aig.outputs() {
        out.add_output(name.clone(), map[l.node() as usize] ^ l.is_neg());
    }
    out
}

/// Re-associates AND trees to minimize depth (classic `balance`).
///
/// Single-fanout chains of uncomplemented ANDs are collected into one
/// n-ary AND and rebuilt as a balanced tree ordered by operand depth.
pub fn balance(aig: &Aig) -> Aig {
    let mut out = Aig::new();
    let fan = aig.fanouts();
    let mut map: Vec<Lit> = vec![Lit::FALSE; aig.num_nodes()];

    // Collect the leaves of the maximal single-output AND tree rooted at `id`.
    fn collect(
        aig: &Aig,
        fan: &[u32],
        lit: Lit,
        root: bool,
        leaves: &mut Vec<Lit>,
    ) {
        let id = lit.node();
        if !root {
            // A complemented edge, a multi-fanout node, or a non-AND node is
            // a leaf of the tree.
            let expandable = !lit.is_neg()
                && fan[id as usize] == 1
                && matches!(aig.node(id), Node::And(..));
            if !expandable {
                leaves.push(lit);
                return;
            }
        }
        match aig.node(id) {
            Node::And(a, b) => {
                collect(aig, fan, a, false, leaves);
                collect(aig, fan, b, false, leaves);
            }
            _ => leaves.push(lit),
        }
    }

    // Incrementally tracked depth of every node in `out` (indexed by node id).
    let mut depth: Vec<u32> = vec![0];
    let and_tracked = |out: &mut Aig, depth: &mut Vec<u32>, a: Lit, b: Lit| -> Lit {
        let l = out.and(a, b);
        let id = l.node() as usize;
        if id >= depth.len() {
            depth.resize(id + 1, 0);
            let da = depth[a.node() as usize];
            let db = depth[b.node() as usize];
            depth[id] = 1 + da.max(db);
        }
        l
    };

    let live = aig.live_nodes();
    for (id, node) in aig.iter_nodes() {
        match node {
            Node::Const => map[id as usize] = Lit::FALSE,
            Node::Input(idx) => {
                let info = &aig.inputs()[idx as usize];
                let l = out.input(info.name.clone(), info.kind);
                if l.node() as usize >= depth.len() {
                    depth.resize(l.node() as usize + 1, 0);
                }
                map[id as usize] = l;
            }
            Node::And(..) => {
                if !live[id as usize] {
                    continue;
                }
                let mut leaves = Vec::new();
                collect(aig, &fan, Lit::new(id, false), true, &mut leaves);
                // Translate leaves into the new graph and sort by depth so
                // the balanced reduction pairs shallow operands first.
                let mut xs: Vec<(u32, Lit)> = leaves
                    .iter()
                    .map(|l| {
                        let nl = map[l.node() as usize] ^ l.is_neg();
                        (depth[nl.node() as usize], nl)
                    })
                    .collect();
                xs.sort_by_key(|&(d, l)| (d, l.raw()));
                // Huffman-style pairing: always AND the two shallowest.
                while xs.len() > 1 {
                    let (d0, a) = xs.remove(0);
                    let (d1, b) = xs.remove(0);
                    let l = and_tracked(&mut out, &mut depth, a, b);
                    let d = d0.max(d1) + 1;
                    let pos = xs.partition_point(|&(dd, _)| dd <= d);
                    xs.insert(pos, (d, l));
                }
                map[id as usize] = xs.pop().map(|(_, l)| l).unwrap_or(Lit::TRUE);
            }
        }
    }
    for (name, l) in aig.outputs() {
        out.add_output(name.clone(), map[l.node() as usize] ^ l.is_neg());
    }
    out
}

/// Runs sweep and balance until the (gate count, depth) pair stops improving.
pub fn optimize(aig: &Aig) -> Aig {
    let mut cur = sweep(aig);
    let mut best = (cur.num_ands(), cur.depth());
    for _ in 0..4 {
        let b = sweep(&balance(&cur));
        let score = (b.num_ands(), b.depth());
        if (score.0 <= best.0 && score.1 <= best.1 && score != best) || score.1 < best.1 {
            best = score;
            cur = b;
        } else {
            break;
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::InputKind;
    use crate::fxhash::FxHashMap;
    use crate::sim::{exhaustive_equiv, random_equiv};

    #[test]
    fn sweep_removes_dead_logic() {
        let mut g = Aig::new();
        let a = g.input("a", InputKind::Regular);
        let b = g.input("b", InputKind::Regular);
        let _dead = g.and(a, b);
        let live = g.or(a, b);
        g.add_output("o", live);
        let s = sweep(&g);
        assert_eq!(s.num_ands(), 1);
        assert!(exhaustive_equiv(&g, &s, &FxHashMap::default()).is_equivalent());
    }

    #[test]
    fn balance_reduces_chain_depth() {
        let mut g = Aig::new();
        let xs: Vec<_> = (0..16)
            .map(|i| g.input(format!("x{i}"), InputKind::Regular))
            .collect();
        // Deliberately build a linear chain: depth 15.
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = g.and(acc, x);
        }
        g.add_output("o", acc);
        assert_eq!(g.depth(), 15);
        let b = balance(&g);
        assert_eq!(b.depth(), 4, "16-way AND balances to log2(16)");
        assert!(random_equiv(&g, &b, &FxHashMap::default(), 4, 5).is_equivalent());
    }

    #[test]
    fn optimize_is_sound() {
        let mut g = Aig::new();
        let a = g.input("a", InputKind::Regular);
        let b = g.input("b", InputKind::Regular);
        let c = g.input("c", InputKind::Regular);
        let d = g.input("d", InputKind::Regular);
        let t1 = g.and(a, b);
        let t2 = g.and(t1, c);
        let t3 = g.and(t2, d);
        let u = g.xor(t3, a);
        g.add_output("o", u);
        let o = optimize(&g);
        assert!(exhaustive_equiv(&g, &o, &FxHashMap::default()).is_equivalent());
        assert!(o.depth() <= g.depth());
        assert!(o.num_ands() <= g.num_ands());
    }

    #[test]
    fn optimize_keeps_outputs_named() {
        let mut g = Aig::new();
        let a = g.input("a", InputKind::Regular);
        g.add_output("keep_me", a);
        let o = optimize(&g);
        assert_eq!(o.outputs()[0].0, "keep_me");
    }
}
