//! Structurally hashed And-Inverter Graphs with parameter-annotated inputs.
//!
//! An application is *parameterized* when some of its inputs change
//! infrequently compared to the rest (Section II-B of the paper). In the
//! paper's VHDL flow those inputs are annotated `--PARAM`; here the
//! annotation is [`InputKind::Param`] on the primary input.
//!
//! The AIG is the exchange format between synthesis ([`softfloat`]'s
//! operator generators), logic optimization ([`crate::opt`]) and technology
//! mapping (the `mapping` crate). Construction is hash-consed: trivial
//! identities are rewritten away and structurally identical AND nodes are
//! shared, which stands in for the ABC optimization step of the paper's
//! flow.

use crate::fxhash::FxHashMap;

/// Index of a node inside an [`Aig`].
pub type NodeId = u32;

/// Classification of a primary input (Fig. 3: regular vs. `--PARAM`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputKind {
    /// Changes every cycle (image samples, accumulator values, ...).
    Regular,
    /// Changes infrequently (filter coefficients, mode selects, ...); the
    /// parameterized flow folds these into the configuration.
    Param,
}

/// A literal: a node with an optional complement.
///
/// Encoding: `node_id << 1 | complemented`. The constant node is id 0, so
/// `Lit::FALSE == Lit(0)` and `Lit::TRUE == Lit(1)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl std::fmt::Debug for Lit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == Lit::FALSE {
            write!(f, "0")
        } else if *self == Lit::TRUE {
            write!(f, "1")
        } else if self.is_neg() {
            write!(f, "!n{}", self.node())
        } else {
            write!(f, "n{}", self.node())
        }
    }
}

impl Lit {
    /// Constant false.
    pub const FALSE: Lit = Lit(0);
    /// Constant true.
    pub const TRUE: Lit = Lit(1);

    /// Builds a literal from a node id and a complement flag.
    #[inline]
    pub fn new(node: NodeId, neg: bool) -> Self {
        Lit(node << 1 | neg as u32)
    }

    /// The underlying node.
    #[inline]
    pub fn node(self) -> NodeId {
        self.0 >> 1
    }

    /// Whether the literal is complemented.
    #[inline]
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// Raw encoding (node << 1 | neg); stable map key.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuild from the raw encoding.
    #[inline]
    pub fn from_raw(raw: u32) -> Self {
        Lit(raw)
    }

    /// True if this is one of the two constants.
    #[inline]
    pub fn is_const(self) -> bool {
        self.node() == 0
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

/// Payload of an AIG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Node {
    /// The constant-false node (always id 0).
    Const,
    /// Primary input; the payload is the index into [`Aig::inputs`].
    Input(u32),
    /// Two-input AND of two literals.
    And(Lit, Lit),
}

/// Metadata of one primary input.
#[derive(Debug, Clone)]
pub struct InputInfo {
    /// Human-readable name, e.g. `coeff[3]`.
    pub name: String,
    /// Regular or parameter.
    pub kind: InputKind,
    /// The node realizing this input.
    pub node: NodeId,
}

/// A combinational And-Inverter Graph.
///
/// Nodes are created in topological order; `And` operands always reference
/// earlier nodes, so a plain forward scan is a valid evaluation order.
#[derive(Clone)]
pub struct Aig {
    nodes: Vec<Node>,
    inputs: Vec<InputInfo>,
    outputs: Vec<(String, Lit)>,
    strash: FxHashMap<(u32, u32), NodeId>,
}

impl Default for Aig {
    fn default() -> Self {
        Self::new()
    }
}

impl Aig {
    /// Creates an empty graph (just the constant node).
    pub fn new() -> Self {
        Self {
            nodes: vec![Node::Const],
            inputs: Vec::new(),
            outputs: Vec::new(),
            strash: FxHashMap::default(),
        }
    }

    /// Adds a primary input and returns its (positive) literal.
    pub fn input(&mut self, name: impl Into<String>, kind: InputKind) -> Lit {
        let node = self.nodes.len() as NodeId;
        self.nodes.push(Node::Input(self.inputs.len() as u32));
        self.inputs.push(InputInfo { name: name.into(), kind, node });
        Lit::new(node, false)
    }

    /// Adds a vector of inputs named `name[0]`, `name[1]`, ... (LSB first).
    pub fn input_vec(&mut self, name: &str, width: usize, kind: InputKind) -> Vec<Lit> {
        (0..width).map(|i| self.input(format!("{name}[{i}]"), kind)).collect()
    }

    /// Registers `lit` as a named primary output.
    pub fn add_output(&mut self, name: impl Into<String>, lit: Lit) {
        self.outputs.push((name.into(), lit));
    }

    /// Registers a vector of outputs named `name[0]`, ... (LSB first).
    pub fn add_output_vec(&mut self, name: &str, lits: &[Lit]) {
        for (i, &l) in lits.iter().enumerate() {
            self.add_output(format!("{name}[{i}]"), l);
        }
    }

    /// Hash-consed AND with constant folding and trivial simplification.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // Order operands for commutativity.
        let (a, b) = if a.raw() <= b.raw() { (a, b) } else { (b, a) };
        if a == Lit::FALSE || a == !b {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if a == b {
            return a;
        }
        let key = (a.raw(), b.raw());
        if let Some(&n) = self.strash.get(&key) {
            return Lit::new(n, false);
        }
        let node = self.nodes.len() as NodeId;
        self.nodes.push(Node::And(a, b));
        self.strash.insert(key, node);
        Lit::new(node, false)
    }

    /// OR via De Morgan.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// XOR as two ANDs (`(a & !b) | (!a & b)`).
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let x = self.and(a, !b);
        let y = self.and(!a, b);
        self.or(x, y)
    }

    /// XNOR.
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor(a, b)
    }

    /// Multiplexer `sel ? t : e`.
    pub fn mux(&mut self, sel: Lit, t: Lit, e: Lit) -> Lit {
        if t == e {
            return t;
        }
        let a = self.and(sel, t);
        let b = self.and(!sel, e);
        self.or(a, b)
    }

    /// Balanced AND-reduction of a slice (keeps depth logarithmic).
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce(lits, Lit::TRUE, Self::and)
    }

    /// Balanced OR-reduction.
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce(lits, Lit::FALSE, Self::or)
    }

    /// Balanced XOR-reduction.
    pub fn xor_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce(lits, Lit::FALSE, Self::xor)
    }

    fn reduce(&mut self, lits: &[Lit], empty: Lit, f: fn(&mut Self, Lit, Lit) -> Lit) -> Lit {
        match lits.len() {
            0 => empty,
            1 => lits[0],
            n => {
                let (lo, hi) = lits.split_at(n / 2);
                let l = self.reduce(lo, empty, f);
                let r = self.reduce(hi, empty, f);
                f(self, l, r)
            }
        }
    }

    /// Number of nodes (constant + inputs + ANDs).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of AND gates.
    pub fn num_ands(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::And(..)))
            .count()
    }

    /// Number of primary inputs (all kinds).
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of inputs of one kind.
    pub fn num_inputs_of(&self, kind: InputKind) -> usize {
        self.inputs.iter().filter(|i| i.kind == kind).count()
    }

    /// Access to input metadata.
    pub fn inputs(&self) -> &[InputInfo] {
        &self.inputs
    }

    /// Access to the named outputs.
    pub fn outputs(&self) -> &[(String, Lit)] {
        &self.outputs
    }

    /// Node payload.
    #[inline]
    pub fn node(&self, id: NodeId) -> Node {
        self.nodes[id as usize]
    }

    /// Iterates over `(id, node)` in topological order.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (NodeId, Node)> + '_ {
        self.nodes.iter().enumerate().map(|(i, &n)| (i as NodeId, n))
    }

    /// Input index of a node if it is a primary input.
    pub fn input_index(&self, id: NodeId) -> Option<u32> {
        match self.nodes[id as usize] {
            Node::Input(i) => Some(i),
            _ => None,
        }
    }

    /// True if the node is a parameter input.
    pub fn is_param_node(&self, id: NodeId) -> bool {
        self.input_index(id)
            .is_some_and(|i| self.inputs[i as usize].kind == InputKind::Param)
    }

    /// AND-gate depth of every node (inputs and constants at level 0).
    pub fn levels(&self) -> Vec<u32> {
        let mut lv = vec![0u32; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            if let Node::And(a, b) = n {
                lv[i] = 1 + lv[a.node() as usize].max(lv[b.node() as usize]);
            }
        }
        lv
    }

    /// Maximum AND-depth over the outputs.
    pub fn depth(&self) -> u32 {
        let lv = self.levels();
        self.outputs
            .iter()
            .map(|(_, l)| lv[l.node() as usize])
            .max()
            .unwrap_or(0)
    }

    /// Fanout count per node, counting output references.
    pub fn fanouts(&self) -> Vec<u32> {
        let mut fo = vec![0u32; self.nodes.len()];
        for n in &self.nodes {
            if let Node::And(a, b) = n {
                fo[a.node() as usize] += 1;
                fo[b.node() as usize] += 1;
            }
        }
        for (_, l) in &self.outputs {
            fo[l.node() as usize] += 1;
        }
        fo
    }

    /// Specializes the graph for a parameter assignment: every `Param` input
    /// with an entry in `values` (keyed by *input index*) becomes a constant
    /// and the cone is re-folded. Regular inputs are preserved (same order,
    /// same names) so simulation vectors stay aligned.
    pub fn specialize(&self, values: &FxHashMap<u32, bool>) -> Aig {
        let mut out = Aig::new();
        // old node id -> literal in the new graph
        let mut map: Vec<Lit> = Vec::with_capacity(self.nodes.len());
        for (_id, node) in self.iter_nodes() {
            let lit = match node {
                Node::Const => Lit::FALSE,
                Node::Input(idx) => {
                    let info = &self.inputs[idx as usize];
                    match (info.kind, values.get(&idx)) {
                        (InputKind::Param, Some(&v)) => {
                            if v {
                                Lit::TRUE
                            } else {
                                Lit::FALSE
                            }
                        }
                        _ => out.input(info.name.clone(), info.kind),
                    }
                }
                Node::And(a, b) => {
                    let na = map[a.node() as usize] ^ a.is_neg();
                    let nb = map[b.node() as usize] ^ b.is_neg();
                    out.and(na, nb)
                }
            };
            map.push(lit);
        }
        for (name, l) in &self.outputs {
            let nl = map[l.node() as usize] ^ l.is_neg();
            out.add_output(name.clone(), nl);
        }
        out
    }

    /// Returns the ids of nodes in the transitive fanin of the outputs
    /// (i.e. the live logic), including inputs and the constant if used.
    pub fn live_nodes(&self) -> Vec<bool> {
        let mut live = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = self.outputs.iter().map(|(_, l)| l.node()).collect();
        while let Some(id) = stack.pop() {
            if live[id as usize] {
                continue;
            }
            live[id as usize] = true;
            if let Node::And(a, b) = self.nodes[id as usize] {
                stack.push(a.node());
                stack.push(b.node());
            }
        }
        live
    }

    /// Number of live AND gates (after an implicit sweep).
    pub fn live_ands(&self) -> usize {
        let live = self.live_nodes();
        self.iter_nodes()
            .filter(|(id, n)| live[*id as usize] && matches!(n, Node::And(..)))
            .count()
    }
}

/// XOR of a literal and a bool: flips the literal when `b` is true.
impl std::ops::BitXor<bool> for Lit {
    type Output = Lit;
    #[inline]
    fn bitxor(self, b: bool) -> Lit {
        Lit(self.0 ^ b as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        let mut g = Aig::new();
        let a = g.input("a", InputKind::Regular);
        assert_eq!(g.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(g.and(a, Lit::TRUE), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, !a), Lit::FALSE);
        assert_eq!(g.or(a, !a), Lit::TRUE);
        assert_eq!(g.num_ands(), 0, "no gate should have been created");
    }

    #[test]
    fn structural_hashing_shares_nodes() {
        let mut g = Aig::new();
        let a = g.input("a", InputKind::Regular);
        let b = g.input("b", InputKind::Regular);
        let x = g.and(a, b);
        let y = g.and(b, a);
        assert_eq!(x, y);
        assert_eq!(g.num_ands(), 1);
    }

    #[test]
    fn xor_semantics() {
        let mut g = Aig::new();
        let a = g.input("a", InputKind::Regular);
        let b = g.input("b", InputKind::Regular);
        let x = g.xor(a, b);
        g.add_output("x", x);
        let vals = crate::sim::simulate_u64(&g, &[0b0011, 0b0101]);
        assert_eq!(vals[0] & 0xF, 0b0110);
    }

    #[test]
    fn mux_truthtable() {
        let mut g = Aig::new();
        let s = g.input("s", InputKind::Regular);
        let t = g.input("t", InputKind::Regular);
        let e = g.input("e", InputKind::Regular);
        let m = g.mux(s, t, e);
        g.add_output("m", m);
        for pat in 0..8u64 {
            let s_v = pat & 1 != 0;
            let t_v = pat & 2 != 0;
            let e_v = pat & 4 != 0;
            let vals = crate::sim::simulate_u64(
                &g,
                &[s_v as u64, t_v as u64, e_v as u64],
            );
            let expect = if s_v { t_v } else { e_v };
            assert_eq!(vals[0] & 1 == 1, expect, "pat={pat}");
        }
    }

    #[test]
    fn specialize_folds_params() {
        let mut g = Aig::new();
        let x = g.input("x", InputKind::Regular);
        let p = g.input("p", InputKind::Param);
        let f = g.mux(p, x, !x); // p ? x : !x
        g.add_output("f", f);

        let mut asg = FxHashMap::default();
        asg.insert(1u32, true); // p = 1 -> f = x
        let s = g.specialize(&asg);
        assert_eq!(s.num_inputs(), 1, "param input must be gone");
        assert_eq!(s.num_ands(), 0, "f collapses to a wire");
        assert_eq!(s.outputs()[0].1, Lit::new(1, false));

        asg.insert(1u32, false); // p = 0 -> f = !x
        let s0 = g.specialize(&asg);
        assert_eq!(s0.outputs()[0].1, !Lit::new(1, false));
    }

    #[test]
    fn levels_and_depth() {
        let mut g = Aig::new();
        let a = g.input("a", InputKind::Regular);
        let b = g.input("b", InputKind::Regular);
        let c = g.input("c", InputKind::Regular);
        let ab = g.and(a, b);
        let abc = g.and(ab, c);
        g.add_output("o", abc);
        assert_eq!(g.depth(), 2);
    }

    #[test]
    fn balanced_reduction_is_logarithmic() {
        let mut g = Aig::new();
        let xs: Vec<Lit> = (0..64)
            .map(|i| g.input(format!("x{i}"), InputKind::Regular))
            .collect();
        let all = g.and_many(&xs);
        g.add_output("o", all);
        assert_eq!(g.depth(), 6, "64-way AND should be depth log2(64)");
    }

    #[test]
    fn live_nodes_ignores_dangling() {
        let mut g = Aig::new();
        let a = g.input("a", InputKind::Regular);
        let b = g.input("b", InputKind::Regular);
        let _dead = g.and(a, b);
        let keep = g.or(a, b);
        g.add_output("keep", keep);
        // `or` creates one AND; `_dead` creates another.
        assert_eq!(g.num_ands(), 2);
        assert_eq!(g.live_ands(), 1);
    }
}
