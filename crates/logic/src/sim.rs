//! 64-way bit-parallel simulation of AIGs.
//!
//! Each primary input is assigned a 64-bit word; bit `k` of every word forms
//! the `k`-th simulation pattern, so one sweep over the graph evaluates 64
//! input vectors at once. This is the workhorse behind all the
//! equivalence checks in the workspace (original vs. mapped vs. specialized
//! netlists).

use crate::aig::{Aig, InputKind, Node};
use crate::fxhash::FxHashMap;
use crate::rng::SplitMix64;

/// Simulates the graph on one 64-pattern batch.
///
/// `input_words[i]` is the pattern word of input `i` (in [`Aig::inputs`]
/// order). Returns one word per primary output, in output order.
pub fn simulate_u64(aig: &Aig, input_words: &[u64]) -> Vec<u64> {
    assert_eq!(
        input_words.len(),
        aig.num_inputs(),
        "one simulation word per primary input"
    );
    let mut val = vec![0u64; aig.num_nodes()];
    for (id, node) in aig.iter_nodes() {
        val[id as usize] = match node {
            Node::Const => 0,
            Node::Input(idx) => input_words[idx as usize],
            Node::And(a, b) => {
                let va = val[a.node() as usize] ^ if a.is_neg() { u64::MAX } else { 0 };
                let vb = val[b.node() as usize] ^ if b.is_neg() { u64::MAX } else { 0 };
                va & vb
            }
        };
    }
    aig.outputs()
        .iter()
        .map(|(_, l)| val[l.node() as usize] ^ if l.is_neg() { u64::MAX } else { 0 })
        .collect()
}

/// Evaluates the graph on a single input vector (`input_bits[i]` = value of
/// input `i`). Returns one bool per output.
pub fn evaluate(aig: &Aig, input_bits: &[bool]) -> Vec<bool> {
    let words: Vec<u64> = input_bits.iter().map(|&b| if b { 1 } else { 0 }).collect();
    simulate_u64(aig, &words)
        .into_iter()
        .map(|w| w & 1 == 1)
        .collect()
}

/// Outcome of a randomized equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivResult {
    /// No differing pattern found.
    Equivalent,
    /// Outputs differ; carries (output index, pattern number) of the first
    /// mismatch found.
    Mismatch { output: usize, pattern: usize },
}

impl EquivResult {
    /// True when no mismatch was found.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, EquivResult::Equivalent)
    }
}

/// Randomized equivalence check between two AIGs over their **regular**
/// inputs, with parameters driven by `param_bits` (keyed by input *name* so
/// the two graphs may order inputs differently).
///
/// Both graphs must expose the same set of regular input names and the same
/// output names. `rounds` batches of 64 random patterns are compared.
pub fn random_equiv(
    a: &Aig,
    b: &Aig,
    param_bits: &FxHashMap<String, bool>,
    rounds: usize,
    seed: u64,
) -> EquivResult {
    let mut rng = SplitMix64::new(seed);

    // name -> pattern word, shared across both graphs per round.
    let reg_names: Vec<&str> = a
        .inputs()
        .iter()
        .filter(|i| i.kind == InputKind::Regular)
        .map(|i| i.name.as_str())
        .collect();

    let out_index_b: FxHashMap<&str, usize> = b
        .outputs()
        .iter()
        .enumerate()
        .map(|(i, (n, _))| (n.as_str(), i))
        .collect();

    for round in 0..rounds {
        let mut words: FxHashMap<&str, u64> = FxHashMap::default();
        for &n in &reg_names {
            words.insert(n, rng.next_u64());
        }
        let feed = |g: &Aig| -> Vec<u64> {
            g.inputs()
                .iter()
                .map(|i| match i.kind {
                    InputKind::Regular => *words.get(i.name.as_str()).unwrap_or(&0),
                    InputKind::Param => {
                        let v = *param_bits.get(&i.name).unwrap_or(&false);
                        if v {
                            u64::MAX
                        } else {
                            0
                        }
                    }
                })
                .collect()
        };
        let oa = simulate_u64(a, &feed(a));
        let ob = simulate_u64(b, &feed(b));
        for (i, (name, _)) in a.outputs().iter().enumerate() {
            let j = *out_index_b
                .get(name.as_str())
                .unwrap_or_else(|| panic!("output {name} missing in second graph"));
            if oa[i] != ob[j] {
                let diff = oa[i] ^ ob[j];
                let bit = diff.trailing_zeros() as usize;
                return EquivResult::Mismatch { output: i, pattern: round * 64 + bit };
            }
        }
    }
    EquivResult::Equivalent
}

/// Exhaustive equivalence over all assignments of the regular inputs
/// (feasible for up to ~20 regular inputs). Parameters are driven from
/// `param_bits` like in [`random_equiv`].
pub fn exhaustive_equiv(a: &Aig, b: &Aig, param_bits: &FxHashMap<String, bool>) -> EquivResult {
    let reg_names: Vec<String> = a
        .inputs()
        .iter()
        .filter(|i| i.kind == InputKind::Regular)
        .map(|i| i.name.clone())
        .collect();
    let n = reg_names.len();
    assert!(n <= 20, "exhaustive check limited to 20 regular inputs");
    let total = 1usize << n;

    let out_index_b: FxHashMap<&str, usize> = b
        .outputs()
        .iter()
        .enumerate()
        .map(|(i, (nm, _))| (nm.as_str(), i))
        .collect();

    // Pack 64 consecutive assignments per batch: regular input i of
    // assignment (base + k) has value bit i of (base + k).
    let mut base = 0usize;
    while base < total {
        let mut words: FxHashMap<&str, u64> = FxHashMap::default();
        for (i, nm) in reg_names.iter().enumerate() {
            let mut w = 0u64;
            for k in 0..64usize.min(total - base) {
                if ((base + k) >> i) & 1 == 1 {
                    w |= 1 << k;
                }
            }
            words.insert(nm.as_str(), w);
        }
        let feed = |g: &Aig| -> Vec<u64> {
            g.inputs()
                .iter()
                .map(|i| match i.kind {
                    InputKind::Regular => *words.get(i.name.as_str()).unwrap_or(&0),
                    InputKind::Param => {
                        if *param_bits.get(&i.name).unwrap_or(&false) {
                            u64::MAX
                        } else {
                            0
                        }
                    }
                })
                .collect()
        };
        let oa = simulate_u64(a, &feed(a));
        let ob = simulate_u64(b, &feed(b));
        let valid_mask = if total - base >= 64 {
            u64::MAX
        } else {
            (1u64 << (total - base)) - 1
        };
        for (i, (name, _)) in a.outputs().iter().enumerate() {
            let j = out_index_b[name.as_str()];
            let diff = (oa[i] ^ ob[j]) & valid_mask;
            if diff != 0 {
                return EquivResult::Mismatch {
                    output: i,
                    pattern: base + diff.trailing_zeros() as usize,
                };
            }
        }
        base += 64;
    }
    EquivResult::Equivalent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::{InputKind, Lit};

    fn adder_graph(xor_style: bool) -> Aig {
        // 1-bit full adder, two structurally different implementations.
        let mut g = Aig::new();
        let a = g.input("a", InputKind::Regular);
        let b = g.input("b", InputKind::Regular);
        let c = g.input("c", InputKind::Regular);
        let (s, co) = if xor_style {
            let ab = g.xor(a, b);
            let s = g.xor(ab, c);
            let t1 = g.and(a, b);
            let t2 = g.and(ab, c);
            (s, g.or(t1, t2))
        } else {
            // majority + parity via mux decomposition
            let nab = g.xnor(a, b);
            let s = g.mux(nab, c, !c);
            let co_t = g.mux(nab, a, c);
            (s, co_t)
        };
        g.add_output("sum", s);
        g.add_output("cout", co);
        g
    }

    #[test]
    fn adders_equivalent_random() {
        let a = adder_graph(true);
        let b = adder_graph(false);
        let res = random_equiv(&a, &b, &FxHashMap::default(), 8, 99);
        assert!(res.is_equivalent(), "{res:?}");
    }

    #[test]
    fn adders_equivalent_exhaustive() {
        let a = adder_graph(true);
        let b = adder_graph(false);
        assert!(exhaustive_equiv(&a, &b, &FxHashMap::default()).is_equivalent());
    }

    #[test]
    fn mismatch_detected() {
        let mut a = Aig::new();
        let x = a.input("x", InputKind::Regular);
        let y = a.input("y", InputKind::Regular);
        let o = a.and(x, y);
        a.add_output("o", o);

        let mut b = Aig::new();
        let x2 = b.input("x", InputKind::Regular);
        let y2 = b.input("y", InputKind::Regular);
        let o2 = b.or(x2, y2);
        b.add_output("o", o2);

        assert!(!exhaustive_equiv(&a, &b, &FxHashMap::default()).is_equivalent());
        assert!(!random_equiv(&a, &b, &FxHashMap::default(), 4, 1).is_equivalent());
    }

    #[test]
    fn evaluate_single_vector() {
        let mut g = Aig::new();
        let a = g.input("a", InputKind::Regular);
        let b = g.input("b", InputKind::Regular);
        let o = g.and(a, !b);
        g.add_output("o", o);
        assert_eq!(evaluate(&g, &[true, false]), vec![true]);
        assert_eq!(evaluate(&g, &[true, true]), vec![false]);
    }

    #[test]
    fn constant_output() {
        let mut g = Aig::new();
        let _ = g.input("a", InputKind::Regular);
        g.add_output("t", Lit::TRUE);
        g.add_output("f", Lit::FALSE);
        let o = simulate_u64(&g, &[0xDEAD]);
        assert_eq!(o, vec![u64::MAX, 0]);
    }

    #[test]
    fn params_drive_equivalence() {
        // f = p ? x : y. With p=1 it must equal the wire x.
        let mut a = Aig::new();
        let x = a.input("x", InputKind::Regular);
        let y = a.input("y", InputKind::Regular);
        let p = a.input("p", InputKind::Param);
        let f = a.mux(p, x, y);
        a.add_output("f", f);

        let mut b = Aig::new();
        let xb = b.input("x", InputKind::Regular);
        let _yb = b.input("y", InputKind::Regular);
        b.add_output("f", xb);

        let mut pm = FxHashMap::default();
        pm.insert("p".to_string(), true);
        assert!(random_equiv(&a, &b, &pm, 4, 7).is_equivalent());
        pm.insert("p".to_string(), false);
        assert!(!random_equiv(&a, &b, &pm, 4, 7).is_equivalent());
    }
}
