//! Boolean foundations for the VCGRA reproduction.
//!
//! This crate provides the substrate every CAD stage builds on:
//!
//! * [`aig`] — a structurally hashed And-Inverter Graph with *two classes of
//!   primary inputs*: **regular** inputs (data that changes every cycle) and
//!   **parameter** inputs (values that change infrequently, e.g. filter
//!   coefficients). The distinction is the heart of the parameterized
//!   configuration tool flow (Fig. 3 of the paper).
//! * [`tt`] — small truth tables (up to 6 variables) used for LUT contents.
//! * [`bdd`] — a reduced ordered BDD manager used to represent Boolean
//!   functions *of the parameters* (the entries of parameterized truth
//!   tables, TCON activation conditions, and the PPC bit functions).
//! * [`sim`] — 64-way bit-parallel simulation for randomized equivalence
//!   checking between flows.
//! * [`opt`] — ABC-style cleanup passes (constant folding is built into
//!   construction; sweeping and balancing live here).
//! * [`rng`] — a deterministic SplitMix64 PRNG so that every tool in the
//!   workspace is reproducible bit-for-bit without the `rand` crate.
//! * [`fxhash`] — a fast FxHash-style hasher for the CAD-heavy hash maps
//!   (see the Rust Performance Book's hashing chapter).

#![forbid(unsafe_code)]
#![deny(clippy::dbg_macro, clippy::todo)]

pub mod aig;
pub mod bdd;
pub mod fxhash;
pub mod opt;
pub mod rng;
pub mod sim;
pub mod tt;

pub use aig::{Aig, InputKind, Lit, NodeId};
pub use bdd::{Bdd, BddManager};
pub use rng::SplitMix64;
pub use tt::TruthTable;
