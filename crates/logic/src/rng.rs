//! Deterministic pseudo-random number generation.
//!
//! Every stochastic tool in the workspace (simulated annealing, randomized
//! equivalence checking, synthetic workload generation) takes an explicit
//! seed and derives all randomness from this SplitMix64 generator, so runs
//! are reproducible across machines and thread counts.

/// SplitMix64: tiny, fast, passes BigCrush when used as a stream generator.
///
/// Reference: Sebastiano Vigna, <http://prng.di.unimi.it/splitmix64.c>.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Two generators with the same seed
    /// produce identical streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` index in `[0, bound)`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + self.below(span) as i64
    }

    /// Uniform boolean.
    #[inline]
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Approximately normal deviate (mean 0, sd 1) via the sum of twelve
    /// uniforms — ample for workload synthesis, cheap and branch-free.
    pub fn gauss(&mut self) -> f64 {
        let mut acc = 0.0;
        for _ in 0..12 {
            acc += self.unit_f64();
        }
        acc - 6.0
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Forks a statistically independent child generator (for per-thread
    /// streams in parallel sections).
    pub fn fork(&mut self) -> Self {
        Self::new(self.next_u64() ^ 0xA5A5_5A5A_DEAD_BEEF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_is_in_range() {
        let mut r = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..50 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn range_inclusive() {
        let mut r = SplitMix64::new(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
            seen_lo |= v == -3;
            seen_hi |= v == 3;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gauss_has_sane_moments() {
        let mut r = SplitMix64::new(1234);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let g = r.gauss();
            sum += g;
            sq += g * g;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
