//! A fast, non-cryptographic hasher for CAD-scale hash maps.
//!
//! The structural-hashing table of the AIG and the BDD unique/apply tables
//! are the hottest maps in the workspace; SipHash (std's default) is
//! needlessly strong for them. This is the classic Fx multiply-rotate mix
//! used by rustc, reimplemented here so we stay within the approved
//! dependency set.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher (the rustc "Fx" algorithm).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }
    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i.wrapping_mul(7)), i);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, i.wrapping_mul(7))), Some(&i));
        }
    }

    #[test]
    fn distinct_keys_distinct_hashes_mostly() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let bh = BuildHasherDefault::<FxHasher>::default();
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(bh.hash_one(i));
        }
        // A few collisions are tolerable; catastrophic clustering is not.
        assert!(seen.len() > 9_990);
    }
}
