//! Small truth tables (up to 6 variables) backed by a single `u64`.
//!
//! Truth tables are the configuration payload of LUTs: a K-input LUT stores
//! `2^K` bits and the bit at position `m` is the function value on the input
//! minterm `m` (input `i` contributes bit `i` of `m`). The paper's
//! architecture uses K = 4, so 16 bits per LUT, but everything here is
//! generic up to 6.

/// Maximum number of variables representable (64 = 2^6 bits in a `u64`).
pub const MAX_VARS: usize = 6;

/// Projection masks: `PROJ[i]` is the truth table of variable `i` on 6 vars.
const PROJ: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// A truth table over `nvars` variables (`nvars <= 6`).
///
/// Only the low `2^nvars` bits of `bits` are significant; the rest are kept
/// zero as a canonical form so `==` works structurally.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct TruthTable {
    bits: u64,
    nvars: u8,
}

impl std::fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TT{}({:#x})", self.nvars, self.bits)
    }
}

impl TruthTable {
    /// Mask of the significant bits for `nvars` variables.
    #[inline]
    pub fn mask(nvars: usize) -> u64 {
        if nvars >= 6 {
            u64::MAX
        } else {
            (1u64 << (1usize << nvars)) - 1
        }
    }

    /// Builds a table from raw bits (the high, insignificant bits are cleared).
    pub fn from_bits(bits: u64, nvars: usize) -> Self {
        assert!(nvars <= MAX_VARS, "at most {MAX_VARS} variables");
        Self {
            bits: bits & Self::mask(nvars),
            nvars: nvars as u8,
        }
    }

    /// The constant-zero function.
    pub fn zero(nvars: usize) -> Self {
        Self::from_bits(0, nvars)
    }

    /// The constant-one function.
    pub fn one(nvars: usize) -> Self {
        Self::from_bits(u64::MAX, nvars)
    }

    /// The projection (identity) function of variable `var`.
    pub fn var(var: usize, nvars: usize) -> Self {
        assert!(var < nvars);
        Self::from_bits(PROJ[var], nvars)
    }

    /// Number of variables.
    #[inline]
    pub fn nvars(&self) -> usize {
        self.nvars as usize
    }

    /// Raw bit payload (low `2^nvars` bits significant).
    #[inline]
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Number of minterms (`2^nvars`).
    #[inline]
    pub fn len(&self) -> usize {
        1usize << self.nvars
    }

    /// Always false (tables have at least one minterm); provided for clippy.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Function value on minterm `m`.
    #[inline]
    pub fn get(&self, m: usize) -> bool {
        debug_assert!(m < self.len());
        (self.bits >> m) & 1 == 1
    }

    /// Sets the function value on minterm `m`.
    #[inline]
    pub fn set(&mut self, m: usize, v: bool) {
        debug_assert!(m < self.len());
        if v {
            self.bits |= 1u64 << m;
        } else {
            self.bits &= !(1u64 << m);
        }
    }

    /// Builds a table by evaluating `f` on every minterm.
    pub fn build(nvars: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut t = Self::zero(nvars);
        for m in 0..t.len() {
            if f(m) {
                t.bits |= 1u64 << m;
            }
        }
        t
    }

    /// Logical complement.
    #[must_use]
    pub fn not(&self) -> Self {
        Self::from_bits(!self.bits, self.nvars())
    }

    /// Pointwise AND (tables must have the same arity).
    #[must_use]
    pub fn and(&self, other: &Self) -> Self {
        assert_eq!(self.nvars, other.nvars);
        Self::from_bits(self.bits & other.bits, self.nvars())
    }

    /// Pointwise OR.
    #[must_use]
    pub fn or(&self, other: &Self) -> Self {
        assert_eq!(self.nvars, other.nvars);
        Self::from_bits(self.bits | other.bits, self.nvars())
    }

    /// Pointwise XOR.
    #[must_use]
    pub fn xor(&self, other: &Self) -> Self {
        assert_eq!(self.nvars, other.nvars);
        Self::from_bits(self.bits ^ other.bits, self.nvars())
    }

    /// True if the function is constant zero.
    pub fn is_zero(&self) -> bool {
        self.bits == 0
    }

    /// True if the function is constant one.
    pub fn is_one(&self) -> bool {
        self.bits == Self::mask(self.nvars())
    }

    /// Positive cofactor with respect to `var` (result keeps the arity).
    #[must_use]
    pub fn cofactor1(&self, var: usize) -> Self {
        assert!(var < self.nvars());
        let hi = self.bits & PROJ[var];
        let shift = 1usize << var;
        Self::from_bits(hi | (hi >> shift), self.nvars())
    }

    /// Negative cofactor with respect to `var`.
    #[must_use]
    pub fn cofactor0(&self, var: usize) -> Self {
        assert!(var < self.nvars());
        let lo = self.bits & !PROJ[var];
        let shift = 1usize << var;
        Self::from_bits(lo | (lo << shift), self.nvars())
    }

    /// True if the function actually depends on `var`.
    pub fn depends_on(&self, var: usize) -> bool {
        self.cofactor0(var) != self.cofactor1(var)
    }

    /// The set of variables the function depends on, as a bitmask.
    pub fn support_mask(&self) -> u32 {
        let mut m = 0;
        for v in 0..self.nvars() {
            if self.depends_on(v) {
                m |= 1 << v;
            }
        }
        m
    }

    /// Evaluates the function on a full input assignment given as a bitmask
    /// (bit `i` of `assignment` is the value of variable `i`).
    #[inline]
    pub fn eval(&self, assignment: usize) -> bool {
        self.get(assignment & (self.len() - 1))
    }

    /// Re-expresses the function over a larger variable set: variable `i`
    /// of `self` becomes variable `map[i]` of the result (`new_nvars` vars).
    #[must_use]
    pub fn expand(&self, map: &[usize], new_nvars: usize) -> Self {
        assert_eq!(map.len(), self.nvars());
        assert!(new_nvars <= MAX_VARS);
        Self::build(new_nvars, |m| {
            let mut old_m = 0usize;
            for (i, &tgt) in map.iter().enumerate() {
                if (m >> tgt) & 1 == 1 {
                    old_m |= 1 << i;
                }
            }
            self.get(old_m)
        })
    }

    /// Number of satisfying minterms.
    pub fn popcount(&self) -> u32 {
        self.bits.count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projections_are_correct() {
        for nv in 1..=6usize {
            for v in 0..nv {
                let t = TruthTable::var(v, nv);
                for m in 0..t.len() {
                    assert_eq!(t.get(m), (m >> v) & 1 == 1);
                }
            }
        }
    }

    #[test]
    fn demorgan() {
        let a = TruthTable::var(0, 3);
        let b = TruthTable::var(2, 3);
        assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
    }

    #[test]
    fn xor_via_and_or() {
        let a = TruthTable::var(1, 4);
        let b = TruthTable::var(3, 4);
        let viaxor = a.xor(&b);
        let manual = a.and(&b.not()).or(&a.not().and(&b));
        assert_eq!(viaxor, manual);
    }

    #[test]
    fn cofactors_reconstruct_shannon() {
        // f = x0 & x1 | x2 on 3 vars; f = x * f1 + !x * f0 for each var.
        let f = TruthTable::var(0, 3)
            .and(&TruthTable::var(1, 3))
            .or(&TruthTable::var(2, 3));
        for v in 0..3 {
            let x = TruthTable::var(v, 3);
            let rebuilt = x.and(&f.cofactor1(v)).or(&x.not().and(&f.cofactor0(v)));
            assert_eq!(rebuilt, f);
        }
    }

    #[test]
    fn support_detection() {
        // f = x1 (doesn't depend on x0, x2)
        let f = TruthTable::var(1, 3);
        assert_eq!(f.support_mask(), 0b010);
        let g = TruthTable::var(0, 3).xor(&TruthTable::var(2, 3));
        assert_eq!(g.support_mask(), 0b101);
    }

    #[test]
    fn expand_preserves_semantics() {
        // f(a, b) = a & !b, expand into 4-var space with a->2, b->0.
        let f = TruthTable::var(0, 2).and(&TruthTable::var(1, 2).not());
        let g = f.expand(&[2, 0], 4);
        for m in 0..16 {
            let a = (m >> 2) & 1 == 1;
            let b = m & 1 == 1;
            assert_eq!(g.get(m), a && !b, "m={m}");
        }
    }

    #[test]
    fn eval_matches_get() {
        let f = TruthTable::from_bits(0b1001_0110, 3);
        for m in 0..8 {
            assert_eq!(f.eval(m), f.get(m));
        }
    }

    #[test]
    fn constants() {
        assert!(TruthTable::zero(4).is_zero());
        assert!(TruthTable::one(4).is_one());
        assert_eq!(TruthTable::one(4).popcount(), 16);
    }
}
