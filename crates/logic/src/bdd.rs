//! A reduced ordered binary decision diagram (ROBDD) manager.
//!
//! In the parameterized configuration tool flow, every configuration bit of
//! the Partial Parameterized Configuration (PPC) is a Boolean function *of
//! the parameter inputs only* (Fig. 3 of the paper). We represent those
//! functions as ROBDDs: canonical (so function equality is pointer
//! equality), cheap to evaluate inside the Specialized Configuration
//! Generator, and compact for the parameter structures that arise from
//! constant-coefficient arithmetic.
//!
//! The manager uses a fixed variable order (variable index = order), a
//! unique table for canonicity and memoization caches for `AND`/`XOR`/`NOT`.

use crate::fxhash::FxHashMap;

/// Handle to a BDD node inside a [`BddManager`].
///
/// Handles are only meaningful together with the manager that created them.
/// Because the manager is canonicalizing, two handles are equal **iff** the
/// functions are equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(u32);

impl std::fmt::Debug for Bdd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0 {
            0 => write!(f, "Bdd(F)"),
            1 => write!(f, "Bdd(T)"),
            n => write!(f, "Bdd(#{n})"),
        }
    }
}

impl Bdd {
    /// The constant-false function.
    pub const FALSE: Bdd = Bdd(0);
    /// The constant-true function.
    pub const TRUE: Bdd = Bdd(1);

    /// Raw index (stable within one manager; useful as a map key).
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }

    /// True if this is one of the two constant functions.
    #[inline]
    pub fn is_const(self) -> bool {
        self.0 < 2
    }

    /// True if this is the constant-true function.
    #[inline]
    pub fn is_true(self) -> bool {
        self.0 == 1
    }

    /// True if this is the constant-false function.
    #[inline]
    pub fn is_false(self) -> bool {
        self.0 == 0
    }
}

#[derive(Clone, Copy)]
struct Node {
    var: u32,
    lo: Bdd,
    hi: Bdd,
}

const TERMINAL_VAR: u32 = u32::MAX;

/// The BDD manager: owns all nodes and the operation caches.
pub struct BddManager {
    nodes: Vec<Node>,
    unique: FxHashMap<(u32, u32, u32), Bdd>,
    and_cache: FxHashMap<(u32, u32), Bdd>,
    xor_cache: FxHashMap<(u32, u32), Bdd>,
    not_cache: FxHashMap<u32, Bdd>,
}

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BddManager {
    /// Creates an empty manager (just the two terminals).
    pub fn new() -> Self {
        let nodes = vec![
            Node { var: TERMINAL_VAR, lo: Bdd::FALSE, hi: Bdd::FALSE },
            Node { var: TERMINAL_VAR, lo: Bdd::TRUE, hi: Bdd::TRUE },
        ];
        Self {
            nodes,
            unique: FxHashMap::default(),
            and_cache: FxHashMap::default(),
            xor_cache: FxHashMap::default(),
            not_cache: FxHashMap::default(),
        }
    }

    /// Total number of nodes ever created (including terminals); a proxy for
    /// PPC memory footprint.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Constant function from a boolean.
    #[inline]
    pub fn constant(&self, v: bool) -> Bdd {
        if v {
            Bdd::TRUE
        } else {
            Bdd::FALSE
        }
    }

    fn mk(&mut self, var: u32, lo: Bdd, hi: Bdd) -> Bdd {
        if lo == hi {
            return lo;
        }
        debug_assert!(var < self.var_of(lo).min(self.var_of(hi)));
        *self.unique.entry((var, lo.0, hi.0)).or_insert_with(|| {
            let id = self.nodes.len() as u32;
            self.nodes.push(Node { var, lo, hi });
            Bdd(id)
        })
    }

    #[inline]
    fn var_of(&self, f: Bdd) -> u32 {
        self.nodes[f.0 as usize].var
    }

    /// The projection function of variable `v` (value of parameter bit `v`).
    pub fn var(&mut self, v: u32) -> Bdd {
        self.mk(v, Bdd::FALSE, Bdd::TRUE)
    }

    /// The negated projection of variable `v`.
    pub fn nvar(&mut self, v: u32) -> Bdd {
        self.mk(v, Bdd::TRUE, Bdd::FALSE)
    }

    /// Logical negation.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        match f {
            Bdd::FALSE => Bdd::TRUE,
            Bdd::TRUE => Bdd::FALSE,
            _ => {
                if let Some(&r) = self.not_cache.get(&f.0) {
                    return r;
                }
                let n = self.nodes[f.0 as usize];
                let lo = self.not(n.lo);
                let hi = self.not(n.hi);
                let r = self.mk(n.var, lo, hi);
                self.not_cache.insert(f.0, r);
                r
            }
        }
    }

    /// Logical conjunction.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        // Terminal and trivial cases.
        if f == g {
            return f;
        }
        match (f, g) {
            (Bdd::FALSE, _) | (_, Bdd::FALSE) => return Bdd::FALSE,
            (Bdd::TRUE, x) | (x, Bdd::TRUE) => return x,
            _ => {}
        }
        let key = if f.0 <= g.0 { (f.0, g.0) } else { (g.0, f.0) };
        if let Some(&r) = self.and_cache.get(&key) {
            return r;
        }
        let nf = self.nodes[f.0 as usize];
        let ng = self.nodes[g.0 as usize];
        let var = nf.var.min(ng.var);
        let (f0, f1) = if nf.var == var { (nf.lo, nf.hi) } else { (f, f) };
        let (g0, g1) = if ng.var == var { (ng.lo, ng.hi) } else { (g, g) };
        let lo = self.and(f0, g0);
        let hi = self.and(f1, g1);
        let r = self.mk(var, lo, hi);
        self.and_cache.insert(key, r);
        r
    }

    /// Logical disjunction (via De Morgan).
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let nf = self.not(f);
        let ng = self.not(g);
        let a = self.and(nf, ng);
        self.not(a)
    }

    /// Logical exclusive-or.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        if f == g {
            return Bdd::FALSE;
        }
        match (f, g) {
            (Bdd::FALSE, x) | (x, Bdd::FALSE) => return x,
            (Bdd::TRUE, x) | (x, Bdd::TRUE) => return self.not(x),
            _ => {}
        }
        let key = if f.0 <= g.0 { (f.0, g.0) } else { (g.0, f.0) };
        if let Some(&r) = self.xor_cache.get(&key) {
            return r;
        }
        let nf = self.nodes[f.0 as usize];
        let ng = self.nodes[g.0 as usize];
        let var = nf.var.min(ng.var);
        let (f0, f1) = if nf.var == var { (nf.lo, nf.hi) } else { (f, f) };
        let (g0, g1) = if ng.var == var { (ng.lo, ng.hi) } else { (g, g) };
        let lo = self.xor(f0, g0);
        let hi = self.xor(f1, g1);
        let r = self.mk(var, lo, hi);
        self.xor_cache.insert(key, r);
        r
    }

    /// Logical equivalence (XNOR).
    pub fn xnor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let x = self.xor(f, g);
        self.not(x)
    }

    /// If-then-else `c ? t : e`.
    pub fn ite(&mut self, c: Bdd, t: Bdd, e: Bdd) -> Bdd {
        let ct = self.and(c, t);
        let nc = self.not(c);
        let ce = self.and(nc, e);
        self.or(ct, ce)
    }

    /// Evaluates `f` under a parameter assignment; `assignment[v]` is the
    /// value of variable `v`. Variables beyond the slice default to `false`.
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        let mut cur = f;
        while !cur.is_const() {
            let n = self.nodes[cur.0 as usize];
            let v = assignment.get(n.var as usize).copied().unwrap_or(false);
            cur = if v { n.hi } else { n.lo };
        }
        cur.is_true()
    }

    /// Evaluates `f` with variable `v`'s value given by bit `v` of `bits`
    /// (for up to 64 parameter bits — enough for one PE coefficient).
    pub fn eval_bits(&self, f: Bdd, bits: u64) -> bool {
        let mut cur = f;
        while !cur.is_const() {
            let n = self.nodes[cur.0 as usize];
            let v = n.var < 64 && (bits >> n.var) & 1 == 1;
            cur = if v { n.hi } else { n.lo };
        }
        cur.is_true()
    }

    /// Collects the support (set of variables `f` depends on) into a sorted list.
    pub fn support(&self, f: Bdd) -> Vec<u32> {
        let mut seen = crate::fxhash::FxHashSet::default();
        let mut vars = crate::fxhash::FxHashSet::default();
        let mut stack = vec![f];
        while let Some(x) = stack.pop() {
            if x.is_const() || !seen.insert(x.0) {
                continue;
            }
            let n = self.nodes[x.0 as usize];
            vars.insert(n.var);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        let mut v: Vec<u32> = vars.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Number of distinct internal nodes reachable from `f` (size of the
    /// function's representation; terminals excluded).
    pub fn size(&self, f: Bdd) -> usize {
        let mut seen = crate::fxhash::FxHashSet::default();
        let mut stack = vec![f];
        let mut count = 0;
        while let Some(x) = stack.pop() {
            if x.is_const() || !seen.insert(x.0) {
                continue;
            }
            count += 1;
            let n = self.nodes[x.0 as usize];
            stack.push(n.lo);
            stack.push(n.hi);
        }
        count
    }

    /// Combined node count of many functions with sharing (PPC memory model).
    pub fn shared_size(&self, fs: impl IntoIterator<Item = Bdd>) -> usize {
        let mut seen = crate::fxhash::FxHashSet::default();
        let mut stack: Vec<Bdd> = fs.into_iter().collect();
        let mut count = 0;
        while let Some(x) = stack.pop() {
            if x.is_const() || !seen.insert(x.0) {
                continue;
            }
            count += 1;
            let n = self.nodes[x.0 as usize];
            stack.push(n.lo);
            stack.push(n.hi);
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assignments(nvars: u32) -> impl Iterator<Item = Vec<bool>> {
        (0..(1u32 << nvars)).map(move |m| (0..nvars).map(|v| (m >> v) & 1 == 1).collect())
    }

    #[test]
    fn canonical_equality() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        let ba = m.and(b, a);
        assert_eq!(ab, ba);
        let not_ab = m.not(ab);
        let na = m.not(a);
        let nb = m.not(b);
        let dm = m.or(na, nb);
        assert_eq!(not_ab, dm, "De Morgan must canonicalize identically");
    }

    #[test]
    fn eval_matches_semantics() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let bc = m.and(b, c);
        let f = m.xor(a, bc); // a ^ (b & c)
        for asg in assignments(3) {
            let expect = asg[0] ^ (asg[1] && asg[2]);
            assert_eq!(m.eval(f, &asg), expect, "{asg:?}");
            let bits = asg
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &v)| acc | ((v as u64) << i));
            assert_eq!(m.eval_bits(f, bits), expect);
        }
    }

    #[test]
    fn ite_is_mux() {
        let mut m = BddManager::new();
        let c = m.var(0);
        let t = m.var(1);
        let e = m.var(2);
        let f = m.ite(c, t, e);
        for asg in assignments(3) {
            let expect = if asg[0] { asg[1] } else { asg[2] };
            assert_eq!(m.eval(f, &asg), expect);
        }
    }

    #[test]
    fn tautology_and_contradiction() {
        let mut m = BddManager::new();
        let a = m.var(3);
        let na = m.not(a);
        assert_eq!(m.or(a, na), Bdd::TRUE);
        assert_eq!(m.and(a, na), Bdd::FALSE);
    }

    #[test]
    fn support_and_size() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let c = m.var(5);
        let f = m.xor(a, c);
        assert_eq!(m.support(f), vec![0, 5]);
        assert!(m.size(f) >= 2);
        assert_eq!(m.support(Bdd::TRUE), Vec::<u32>::new());
        assert_eq!(m.size(Bdd::FALSE), 0);
    }

    #[test]
    fn xnor_of_equal_is_true() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        let g = m.and(b, a);
        assert_eq!(m.xnor(f, g), Bdd::TRUE);
    }

    #[test]
    fn shared_size_counts_once() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        let g = m.or(f, a); // shares structure with f
        let total = m.shared_size([f, g]);
        assert!(total <= m.size(f) + m.size(g));
        assert!(total >= m.size(g).max(m.size(f)));
    }

    #[test]
    fn deep_chain_is_linear() {
        // AND of 40 variables must produce exactly 40 internal nodes.
        let mut m = BddManager::new();
        let mut f = Bdd::TRUE;
        for v in 0..40 {
            let x = m.var(v);
            f = m.and(f, x);
        }
        assert_eq!(m.size(f), 40);
        let all = (0..40).map(|_| true).collect::<Vec<_>>();
        assert!(m.eval(f, &all));
        let mut one_off = all.clone();
        one_off[17] = false;
        assert!(!m.eval(f, &one_off));
    }
}
