//! Offline stand-in for the crates.io `criterion` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace ships this minimal drop-in that covers exactly the API
//! surface the `xbench` benches use: [`Criterion`], [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Measurements are honest wall-clock medians over repeated
//! batches — adequate for relative comparisons between the workspace's
//! own flows, not a statistical replacement for real criterion.
//!
//! Swapping back to the real crate is a one-line change in
//! `Cargo.toml` (`[workspace.dependencies] criterion = "0.5"`); no
//! bench source needs to change.

#![forbid(unsafe_code)]
#![deny(clippy::dbg_macro, clippy::todo)]

use std::hint;
use std::time::{Duration, Instant};

/// Re-export so benches written against real criterion's `black_box`
/// keep compiling (ours delegates to `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Target measurement time per benchmark. Kept short: these benches run
/// in CI and inside `cargo test`-adjacent loops.
const MEASURE_TARGET: Duration = Duration::from_millis(500);
const WARMUP_TARGET: Duration = Duration::from_millis(100);

/// Per-iteration timer handle passed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by `iter`.
    median_ns: f64,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: discover a batch size that takes ~1ms, executing the
        // closure enough times to stabilize caches and branch predictors.
        let mut batch: u64 = 1;
        let warm_start = Instant::now();
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                hint::black_box(f());
            }
            let dt = t.elapsed();
            if dt >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch = batch.saturating_mul(2);
            if warm_start.elapsed() >= WARMUP_TARGET {
                break;
            }
        }

        // Measurement: timed batches until the target budget is spent.
        let mut samples: Vec<f64> = Vec::new();
        let mut total_iters: u64 = 0;
        let start = Instant::now();
        while start.elapsed() < MEASURE_TARGET || samples.len() < 5 {
            let t = Instant::now();
            for _ in 0..batch {
                hint::black_box(f());
            }
            let dt = t.elapsed();
            samples.push(dt.as_nanos() as f64 / batch as f64);
            total_iters += batch;
            if samples.len() >= 200 {
                break;
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.median_ns = samples[samples.len() / 2];
        self.iters = total_iters;
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut b = Bencher { median_ns: 0.0, iters: 0 };
    f(&mut b);
    println!(
        "{:<40} time: [{}]   ({} iterations)",
        id,
        fmt_ns(b.median_ns),
        b.iters
    );
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(id, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.to_string() }
    }
}

/// Grouped benchmarks, mirroring `criterion::BenchmarkGroup`. The
/// `sample_size` knob is accepted for source compatibility; the stub's
/// fixed time budget already bounds runtime.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), f);
        self
    }

    pub fn finish(self) {}
}

/// Mirrors `criterion::criterion_group!`: defines a function that runs
/// each target against a fresh default `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: a `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
