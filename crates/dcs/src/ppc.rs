//! Template Configuration and Partial Parameterized Configuration.
//!
//! Every configurable bit of a mapped design gets an address in frame
//! space. Bits whose value is independent of the parameters go to the
//! template (TC); bits that are Boolean functions of the parameters go to
//! the PPC. The split is exactly Fig. 3's generic-stage output.

use logic::bdd::Bdd;
use logic::fxhash::FxHashMap;
use mapping::{MappedDesign, MappedNode};

/// What kind of configurable element a bit belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConfigKind {
    /// A LUT truth-table bit.
    LutBit,
    /// A routing-switch selection bit (TCON).
    RoutingBit,
    /// A settings bit held directly in configuration memory (tunable
    /// constant — e.g. the VCGRA settings registers).
    SettingsBit,
}

/// Address of one configuration bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitAddr {
    /// Configuration frame.
    pub frame: u32,
    /// Bit offset within the frame.
    pub offset: u32,
}

/// The generic-stage output: TC + PPC over one design.
pub struct ParamConfig {
    /// Static bits (template configuration).
    pub template: Vec<(BitAddr, bool, ConfigKind)>,
    /// Tunable bits: parameter functions (the PPC).
    pub ppc: Vec<(BitAddr, Bdd, ConfigKind)>,
    /// Parameter names, aligned with the design's BDD variables.
    pub param_names: Vec<String>,
    /// Bits per frame used when assigning addresses.
    pub frame_bits: u32,
}

impl ParamConfig {
    /// Extracts TC and PPC from a mapped design.
    ///
    /// Frame addresses use an abstract column model: LUT bits pack
    /// `frame_bits` to a frame in node order; routing/settings bits live in
    /// a separate frame range. (The `fabric::frames` model refines this
    /// with placement information; the split and the counts are identical.)
    pub fn extract(design: &MappedDesign) -> ParamConfig {
        let frame_bits = 64u32;
        let mut template = Vec::new();
        let mut ppc = Vec::new();
        let mut lut_cursor: u32 = 0;
        let mut route_cursor: u32 = 0;
        const ROUTE_FRAME_BASE: u32 = 1 << 20;

        for node in &design.nodes {
            match node {
                MappedNode::Lut(l) => {
                    for &bit in &l.ptt {
                        let addr = BitAddr {
                            frame: lut_cursor / frame_bits,
                            offset: lut_cursor % frame_bits,
                        };
                        lut_cursor += 1;
                        if bit.is_const() {
                            template.push((addr, bit.is_true(), ConfigKind::LutBit));
                        } else {
                            ppc.push((addr, bit, ConfigKind::LutBit));
                        }
                    }
                }
                MappedNode::Tcon(t) => {
                    let kind = if t.choices.is_empty() {
                        ConfigKind::SettingsBit
                    } else {
                        ConfigKind::RoutingBit
                    };
                    // One selection bit per choice plus the two constant
                    // drivers (pull-0 / pull-1 switches).
                    let mut push_bit = |b: Bdd,
                                        template: &mut Vec<(BitAddr, bool, ConfigKind)>,
                                        ppc: &mut Vec<(BitAddr, Bdd, ConfigKind)>| {
                        let addr = BitAddr {
                            frame: ROUTE_FRAME_BASE + route_cursor / frame_bits,
                            offset: route_cursor % frame_bits,
                        };
                        route_cursor += 1;
                        if b.is_const() {
                            template.push((addr, b.is_true(), kind));
                        } else {
                            ppc.push((addr, b, kind));
                        }
                    };
                    for (_, cond) in &t.choices {
                        push_bit(*cond, &mut template, &mut ppc);
                    }
                    push_bit(t.const0, &mut template, &mut ppc);
                    push_bit(t.const1, &mut template, &mut ppc);
                }
            }
        }
        ParamConfig {
            template,
            ppc,
            param_names: design.param_names.clone(),
            frame_bits,
        }
    }

    /// Number of tunable bits.
    pub fn ppc_bits(&self) -> usize {
        self.ppc.len()
    }

    /// Number of static bits.
    pub fn template_bits(&self) -> usize {
        self.template.len()
    }

    /// Distinct frames containing at least one tunable bit — the frame
    /// working set of a worst-case micro-reconfiguration.
    pub fn tunable_frames(&self) -> usize {
        let mut frames: Vec<u32> = self.ppc.iter().map(|(a, _, _)| a.frame).collect();
        frames.sort_unstable();
        frames.dedup();
        frames.len()
    }

    /// PPC memory footprint: shared BDD nodes across all bit functions
    /// (each node stores a variable id and two links).
    pub fn ppc_memory_nodes(&self, design: &MappedDesign) -> usize {
        design.bdd.shared_size(self.ppc.iter().map(|(_, b, _)| *b))
    }

    /// Counts tunable bits per element kind.
    pub fn ppc_bits_by_kind(&self) -> FxHashMap<ConfigKind, usize> {
        let mut m = FxHashMap::default();
        for (_, _, k) in &self.ppc {
            *m.entry(*k).or_insert(0) += 1;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::aig::{Aig, InputKind};
    use mapping::{map_conventional, map_parameterized, MapOptions};

    fn demo_design() -> MappedDesign {
        let mut g = Aig::new();
        let a = g.input("a", InputKind::Regular);
        let b = g.input("b", InputKind::Regular);
        let p = g.input("p", InputKind::Param);
        let q = g.input("q", InputKind::Param);
        let f = g.mux(p, a, b);
        g.add_output("f", f);
        let h = g.xor(a, q);
        g.add_output("h", h);
        map_parameterized(&g, MapOptions::default())
    }

    #[test]
    fn tc_and_ppc_split() {
        let d = demo_design();
        let cfg = ParamConfig::extract(&d);
        assert!(cfg.ppc_bits() > 0, "tunable design must have PPC bits");
        let kinds = cfg.ppc_bits_by_kind();
        assert!(
            kinds.get(&ConfigKind::RoutingBit).copied().unwrap_or(0) > 0,
            "TCON selections are routing bits: {kinds:?}"
        );
        assert!(
            kinds.get(&ConfigKind::LutBit).copied().unwrap_or(0) > 0,
            "TLUT truth-table bits: {kinds:?}"
        );
    }

    #[test]
    fn conventional_design_has_empty_ppc() {
        let mut g = Aig::new();
        let a = g.input("a", InputKind::Regular);
        let b = g.input("b", InputKind::Regular);
        let f = g.and(a, b);
        g.add_output("f", f);
        let d = map_conventional(&g, MapOptions::default());
        let cfg = ParamConfig::extract(&d);
        assert_eq!(cfg.ppc_bits(), 0);
        assert!(cfg.template_bits() > 0);
    }

    #[test]
    fn addresses_are_unique() {
        let d = demo_design();
        let cfg = ParamConfig::extract(&d);
        let mut seen = std::collections::HashSet::new();
        for (a, _, _) in &cfg.template {
            assert!(seen.insert(*a), "duplicate template address {a:?}");
        }
        for (a, _, _) in &cfg.ppc {
            assert!(seen.insert(*a), "duplicate PPC address {a:?}");
        }
    }

    #[test]
    fn ppc_memory_is_positive_and_shared() {
        let d = demo_design();
        let cfg = ParamConfig::extract(&d);
        let mem = cfg.ppc_memory_nodes(&d);
        assert!(mem >= 1);
        // Sharing: total shared size can't exceed the sum of individual sizes.
        let sum: usize = cfg.ppc.iter().map(|(_, b, _)| d.bdd.size(*b)).sum();
        assert!(mem <= sum);
    }
}
