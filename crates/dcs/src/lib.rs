//! Dynamic Circuit Specialization (DCS) — the paper's Fig. 3 tool flow.
//!
//! The generic stage turns a parameterized mapped design into two
//! artifacts:
//!
//! * the **Template Configuration (TC)**: the static `0`/`1` configuration
//!   bits (non-reconfigurable part of the problem), and
//! * the **Partial Parameterized Configuration (PPC)**: one *Boolean
//!   function of the parameters* per tunable configuration bit (TLUT
//!   truth-table bits, TCON switch selections, settings bits).
//!
//! The specialization stage is the **Specialized Configuration Generator
//! (SCG)**: on every parameter-value change it evaluates the PPC functions
//! and rewrites exactly the configuration frames that contain changed bits
//! (micro-reconfiguration: read-modify-write through HWICAP or MiCAP).
//! [`timing`] prices that operation and reproduces the paper's ~251 ms
//! per-PE estimate.

#![forbid(unsafe_code)]
#![deny(clippy::dbg_macro, clippy::todo)]

pub mod ppc;
pub mod scg;
pub mod timing;

pub use ppc::{BitAddr, ConfigKind, ParamConfig};
pub use scg::{Scg, SpecializedBits};
pub use timing::{
    paper_pe_reconfig, paper_pe_stats, pe_reconfig_estimate, ReconfigInterface, ReconfigReport,
};
