//! The Specialized Configuration Generator.
//!
//! The SCG runs on an embedded processor (PowerPC, ARM or MicroBlaze in
//! the paper); here it is a host-side evaluator with the same data flow:
//! take a parameter assignment, evaluate every PPC Boolean function,
//! produce specialized bits, diff against the currently loaded bits and
//! emit the set of frames that must be read-modified-written.

use crate::ppc::{BitAddr, ConfigKind, ParamConfig};
use logic::fxhash::{FxHashMap, FxHashSet};
use mapping::MappedDesign;

/// The result of one specialization run.
#[derive(Debug, Clone)]
pub struct SpecializedBits {
    /// Bit values in PPC order.
    pub values: Vec<bool>,
}

/// The SCG: owns the evaluation order over one design's PPC.
pub struct Scg<'a> {
    design: &'a MappedDesign,
    config: &'a ParamConfig,
}

impl<'a> Scg<'a> {
    /// Binds an SCG to a design and its extracted configuration.
    pub fn new(design: &'a MappedDesign, config: &'a ParamConfig) -> Self {
        assert_eq!(design.param_names.len(), config.param_names.len());
        Scg { design, config }
    }

    /// Evaluates every PPC function for a parameter assignment
    /// (`params[v]` drives BDD variable `v`).
    pub fn specialize(&self, params: &[bool]) -> SpecializedBits {
        let values = self
            .config
            .ppc
            .iter()
            .map(|(_, f, _)| self.design.bdd.eval(*f, params))
            .collect();
        SpecializedBits { values }
    }

    /// Frames whose content differs between two specializations — the
    /// micro-reconfiguration working set for this parameter change.
    pub fn dirty_frames(&self, old: &SpecializedBits, new: &SpecializedBits) -> FxHashSet<u32> {
        assert_eq!(old.values.len(), new.values.len());
        let mut frames = FxHashSet::default();
        for (i, (a, _, _)) in self.config.ppc.iter().enumerate() {
            if old.values[i] != new.values[i] {
                frames.insert(a.frame);
            }
        }
        frames
    }

    /// All frames containing tunable bits (worst-case working set; used
    /// for the first configuration after the template is loaded).
    pub fn all_tunable_frames(&self) -> FxHashSet<u32> {
        self.config.ppc.iter().map(|(a, _, _)| a.frame).collect()
    }

    /// Full bit image (template + specialized PPC) keyed by address;
    /// useful for bitstream-level assertions.
    pub fn full_image(&self, spec: &SpecializedBits) -> FxHashMap<BitAddr, bool> {
        let mut img = FxHashMap::default();
        for (a, v, _) in &self.config.template {
            img.insert(*a, *v);
        }
        for (i, (a, _, _)) in self.config.ppc.iter().enumerate() {
            img.insert(*a, spec.values[i]);
        }
        img
    }

    /// Count of changed bits between two specializations, per element kind.
    pub fn changed_bits_by_kind(
        &self,
        old: &SpecializedBits,
        new: &SpecializedBits,
    ) -> FxHashMap<ConfigKind, usize> {
        let mut m = FxHashMap::default();
        for (i, (_, _, k)) in self.config.ppc.iter().enumerate() {
            if old.values[i] != new.values[i] {
                *m.entry(*k).or_insert(0) += 1;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::aig::{Aig, InputKind};
    use mapping::{map_parameterized, MapOptions, MappedNode};

    fn demo() -> MappedDesign {
        let mut g = Aig::new();
        let a = g.input("a", InputKind::Regular);
        let b = g.input("b", InputKind::Regular);
        let p = g.input_vec("p", 3, InputKind::Param);
        let f = g.mux(p[0], a, b);
        let h = g.xor(a, p[1]);
        let k = g.and(p[1], p[2]);
        g.add_output("f", f);
        g.add_output("h", h);
        g.add_output("k", k);
        map_parameterized(&g, MapOptions::default())
    }

    #[test]
    fn scg_matches_design_specialization() {
        // The SCG's specialized LUT bits must agree with
        // MappedDesign::specialize for every parameter assignment.
        let d = demo();
        let cfg = ParamConfig::extract(&d);
        let scg = Scg::new(&d, &cfg);
        for bits in 0..8u64 {
            let params = d.params_from_bits(bits);
            let spec_bits = scg.specialize(&params);
            let spec_design = d.specialize(&params);
            // Walk LUT nodes in order; their PPC entries appear in the same
            // order within the LutBit addresses.
            let mut it = cfg
                .ppc
                .iter()
                .enumerate()
                .filter(|(_, (_, _, k))| *k == ConfigKind::LutBit);
            for (n, node) in d.nodes.iter().enumerate() {
                if let MappedNode::Lut(l) = node {
                    for (m, bit) in l.ptt.iter().enumerate() {
                        if bit.is_const() {
                            continue;
                        }
                        let (i, _) = it.next().expect("ppc bit for tunable entry");
                        let got = spec_bits.values[i];
                        let want = match &spec_design.nodes[n] {
                            mapping::design::SpecNode::Lut(sl) => sl.tt.get(m),
                            _ => unreachable!("LUT stays LUT"),
                        };
                        assert_eq!(got, want, "params {bits:#b}, node {n}, minterm {m}");
                    }
                }
            }
        }
    }

    #[test]
    fn dirty_frames_empty_for_same_params() {
        let d = demo();
        let cfg = ParamConfig::extract(&d);
        let scg = Scg::new(&d, &cfg);
        let s1 = scg.specialize(&[true, false, true]);
        let s2 = scg.specialize(&[true, false, true]);
        assert!(scg.dirty_frames(&s1, &s2).is_empty());
    }

    #[test]
    fn dirty_frames_nonempty_for_different_params() {
        let d = demo();
        let cfg = ParamConfig::extract(&d);
        let scg = Scg::new(&d, &cfg);
        let s1 = scg.specialize(&[false, false, false]);
        let s2 = scg.specialize(&[true, true, true]);
        assert!(!scg.dirty_frames(&s1, &s2).is_empty());
        let by_kind = scg.changed_bits_by_kind(&s1, &s2);
        assert!(!by_kind.is_empty());
    }

    #[test]
    fn full_image_covers_all_addresses() {
        let d = demo();
        let cfg = ParamConfig::extract(&d);
        let scg = Scg::new(&d, &cfg);
        let img = scg.full_image(&scg.specialize(&[true, false, false]));
        assert_eq!(img.len(), cfg.template_bits() + cfg.ppc_bits());
    }
}
