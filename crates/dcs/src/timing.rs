//! Micro-reconfiguration timing models.
//!
//! Micro-reconfiguration rewrites one configuration frame at a time:
//! read the frame through the configuration port, modify the bits the SCG
//! produced, write it back. The per-frame cost is dominated by the
//! configuration interface:
//!
//! * **HWICAP** (Xilinx AXI HWICAP, as measured in the paper's refs [5]
//!   [7]): ≈ 230 µs per frame read-modify-write. With the paper's PE
//!   population of 526 TLUTs + 568 TCONs — one frame RMW per tunable
//!   element — this reproduces the **251 ms** per-PE estimate of Section V.
//! * **MiCAP** [6]: the custom reconfiguration controller, ≈ 2.3× faster.
//! * **ICAP-DMA** (the "improving reconfiguration speed" techniques of
//!   [16]): DMA-driven ICAP at tens of µs per frame.

use std::time::Duration;

/// Configuration interface used for micro-reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigInterface {
    /// AXI HWICAP: the paper's baseline (≈ 229.4 µs per frame RMW).
    Hwicap,
    /// MiCAP custom controller [6] (≈ 2.3× faster than HWICAP).
    Micap,
    /// DMA-driven ICAP with placement constraints [16].
    IcapDma,
}

impl ReconfigInterface {
    /// Time for one frame read-modify-write.
    pub fn frame_rmw(self) -> Duration {
        match self {
            // 251 ms / (526 TLUTs + 568 TCONs) = 229.4 µs per element.
            ReconfigInterface::Hwicap => Duration::from_nanos(229_430),
            ReconfigInterface::Micap => Duration::from_nanos(99_750),
            ReconfigInterface::IcapDma => Duration::from_nanos(9_200),
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ReconfigInterface::Hwicap => "HWICAP",
            ReconfigInterface::Micap => "MiCAP",
            ReconfigInterface::IcapDma => "ICAP-DMA",
        }
    }
}

/// Cost of rewriting `frames` configuration frames.
pub fn reconfig_cost(frames: usize, iface: ReconfigInterface) -> Duration {
    iface.frame_rmw() * frames as u32
}

/// The paper's per-PE estimate: one frame RMW per tunable element
/// (TLUTs + TCONs + settings bits held in configuration memory).
pub fn pe_reconfig_estimate(stats: &mapping::MapStats, iface: ReconfigInterface) -> Duration {
    let elements = stats.tluts + stats.tcons + stats.tunable_constants;
    reconfig_cost(elements, iface)
}

/// The paper's published PE population (Section V): 526 TLUTs + 568 TCONs
/// out of 1802 LUTs. Priced through [`pe_reconfig_estimate`] on HWICAP this
/// reproduces the 251 ms per-PE figure; the `xbench` reconfig driver and
/// the runtime's ledger both anchor on it.
pub fn paper_pe_stats() -> mapping::MapStats {
    mapping::MapStats {
        luts: 1802,
        tluts: 526,
        tcons: 568,
        tunable_constants: 0,
        depth: 33,
        lut_pins: 0,
    }
}

/// The paper's 251 ms estimate itself: full micro-reconfiguration of one
/// PE's tunable elements over the given interface.
pub fn paper_pe_reconfig(iface: ReconfigInterface) -> Duration {
    pe_reconfig_estimate(&paper_pe_stats(), iface)
}

/// Full report of one specialization event.
#[derive(Debug, Clone)]
pub struct ReconfigReport {
    /// Frames rewritten.
    pub frames: usize,
    /// Configuration-port time (model).
    pub port_time: Duration,
    /// Host time spent evaluating the PPC Boolean functions (measured).
    pub eval_time: Duration,
    /// Number of configuration bits whose value changed.
    pub bits_changed: usize,
}

impl ReconfigReport {
    /// Total latency of the parameter change.
    pub fn total(&self) -> Duration {
        self.port_time + self.eval_time
    }

    /// Amortized cost per work item (e.g. per image for a 1000-image batch
    /// between coefficient changes — the paper's Section V argument).
    pub fn amortized_per_item(&self, items: usize) -> Duration {
        assert!(items > 0);
        Duration::from_nanos((self.total().as_nanos() / items as u128) as u64)
    }
}

/// Prices one parameter change: evaluates the SCG twice (old and new
/// values), measures the Boolean-function evaluation time, diffs and
/// prices the dirty frames.
pub fn specialization_report(
    scg: &crate::scg::Scg<'_>,
    old_params: &[bool],
    new_params: &[bool],
    iface: ReconfigInterface,
) -> ReconfigReport {
    let old = scg.specialize(old_params);
    let t0 = std::time::Instant::now();
    let new = scg.specialize(new_params);
    let eval_time = t0.elapsed();
    let dirty = scg.dirty_frames(&old, &new);
    let bits_changed = old
        .values
        .iter()
        .zip(&new.values)
        .filter(|(a, b)| a != b)
        .count();
    ReconfigReport {
        frames: dirty.len(),
        port_time: reconfig_cost(dirty.len(), iface),
        eval_time,
        bits_changed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_251ms_estimate_reproduces() {
        // The paper's PE population: 526 TLUTs + 568 TCONs.
        let t = paper_pe_reconfig(ReconfigInterface::Hwicap);
        let ms = t.as_secs_f64() * 1e3;
        assert!(
            (ms - 251.0).abs() < 1.0,
            "paper estimates 251 ms, model gives {ms:.1} ms"
        );
    }

    #[test]
    fn faster_interfaces_are_faster() {
        let h = ReconfigInterface::Hwicap.frame_rmw();
        let m = ReconfigInterface::Micap.frame_rmw();
        let d = ReconfigInterface::IcapDma.frame_rmw();
        assert!(h > m && m > d);
    }

    #[test]
    fn amortization_divides() {
        let r = ReconfigReport {
            frames: 1000,
            port_time: Duration::from_millis(251),
            eval_time: Duration::from_millis(0),
            bits_changed: 1,
        };
        let per_image = r.amortized_per_item(1000);
        assert_eq!(per_image.as_micros(), 251);
    }

    #[test]
    fn specialization_report_end_to_end() {
        use logic::aig::{Aig, InputKind};
        use mapping::{map_parameterized, MapOptions};
        let mut g = Aig::new();
        let a = g.input("a", InputKind::Regular);
        let p = g.input_vec("p", 4, InputKind::Param);
        let mut f = a;
        for &pi in &p {
            f = g.mux(pi, f, !f);
        }
        g.add_output("f", f);
        let d = map_parameterized(&g, MapOptions::default());
        let cfg = crate::ppc::ParamConfig::extract(&d);
        let scg = crate::scg::Scg::new(&d, &cfg);
        // Odd number of parameter flips: the mux chain computes a parity,
        // so an even flip count would leave the function unchanged.
        let rep = specialization_report(
            &scg,
            &[false, false, false, false],
            &[true, false, false, false],
            ReconfigInterface::Hwicap,
        );
        assert!(rep.bits_changed > 0);
        assert!(rep.frames > 0);
        assert!(rep.port_time > Duration::ZERO);
        // Same params -> nothing to do.
        let rep0 = specialization_report(
            &scg,
            &[true, false, true, false],
            &[true, false, true, false],
            ReconfigInterface::Micap,
        );
        assert_eq!(rep0.frames, 0);
        assert_eq!(rep0.bits_changed, 0);
    }
}
