//! The full vessel-segmentation pipeline (Fig. 5) plus quality metrics
//! and reconfiguration accounting.
//!
//! Software tasks: green-channel extraction, histogram equalization,
//! optic-disc removal, outer-region removal. Hardware modules: Gaussian
//! denoise, seven-orientation matched filtering, texture filtering — run
//! either on the `f32` reference engine or through the VCGRA MAC model
//! (bit-exact FloPoCo arithmetic). Every distinct kernel loaded onto the
//! PEs costs one parameterized reconfiguration; the report prices that
//! with the `dcs` timing model, reproducing the paper's argument that
//! 251 ms per PE amortizes to nothing over a 1000-image batch.

use crate::filters::{
    convolve_f32, convolve_vcgra, gaussian, matched_bank, max_response, texture_filter, Kernel,
};
use crate::image::{Image, RgbImage};
use crate::synth::fov_mask;
use softfloat::FpFormat;

/// Which engine executes the hardware modules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// `f32` software reference.
    SoftwareF32,
    /// VCGRA-simulated MAC PEs in the FloPoCo format.
    Vcgra,
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Denoise kernel size: 5 or 9 (the paper applies both variants).
    pub denoise_size: usize,
    /// Matched filter kernel size (paper: 16).
    pub matched_size: usize,
    /// Matched filter orientations (paper: 7).
    pub orientations: usize,
    /// Vessel profile sigma for the matched filters.
    pub sigma: f32,
    /// Along-vessel kernel length.
    pub length: f32,
    /// Segmentation threshold, as a percentile of the combined response
    /// inside the field of view (0.88 = top 12 % of pixels become vessel).
    pub threshold: f32,
    /// Execution engine for the filters.
    pub engine: Engine,
    /// FloPoCo format for the VCGRA engine.
    pub format: FpFormat,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            denoise_size: 5,
            matched_size: 16,
            orientations: 7,
            sigma: 1.6,
            length: 9.0,
            threshold: 0.88,
            engine: Engine::SoftwareF32,
            format: FpFormat::PAPER,
        }
    }
}

/// Segmentation quality versus ground truth.
#[derive(Debug, Clone, Copy)]
pub struct Metrics {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
    /// True negatives.
    pub tn: usize,
}

impl Metrics {
    /// Compares a binary segmentation against the ground truth.
    pub fn evaluate(segmented: &Image, truth: &Image) -> Metrics {
        assert_eq!(segmented.data.len(), truth.data.len());
        let mut m = Metrics { tp: 0, fp: 0, fn_: 0, tn: 0 };
        for (s, t) in segmented.data.iter().zip(&truth.data) {
            match (*s > 0.5, *t > 0.5) {
                (true, true) => m.tp += 1,
                (true, false) => m.fp += 1,
                (false, true) => m.fn_ += 1,
                (false, false) => m.tn += 1,
            }
        }
        m
    }

    /// Sensitivity (recall).
    pub fn recall(&self) -> f64 {
        self.tp as f64 / (self.tp + self.fn_).max(1) as f64
    }

    /// Precision.
    pub fn precision(&self) -> f64 {
        self.tp as f64 / (self.tp + self.fp).max(1) as f64
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accuracy.
    pub fn accuracy(&self) -> f64 {
        (self.tp + self.tn) as f64 / (self.tp + self.tn + self.fp + self.fn_).max(1) as f64
    }
}

/// Output of a pipeline run.
pub struct PipelineResult {
    /// Preprocessed green channel.
    pub preprocessed: Image,
    /// After Gaussian denoising.
    pub denoised: Image,
    /// Maximum matched-filter response (normalized).
    pub response: Image,
    /// After texture filtering (normalized).
    pub textured: Image,
    /// Final binary segmentation.
    pub segmented: Image,
    /// Distinct filter kernels loaded — each is one PE reconfiguration
    /// batch in the parameterized overlay.
    pub kernels_loaded: usize,
    /// Total MAC coefficients programmed across those kernels.
    pub coefficients_programmed: usize,
    /// Wall-clock time per stage, in order: denoise, matched, texture.
    pub stage_times: [std::time::Duration; 3],
}

/// Runs the whole pipeline on an RGB fundus image.
pub fn run_pipeline(img: &RgbImage, cfg: &PipelineConfig) -> PipelineResult {
    // --- software preprocessing ---
    let green = img.green();
    let eq = green.equalized();
    // Optic disc removal: clamp the brightest tail (the disc) down.
    let disc_cut = percentile(&eq, 0.98);
    let mut pre = Image {
        w: eq.w,
        h: eq.h,
        data: eq.data.iter().map(|&v| v.min(disc_cut)).collect(),
    };
    // Outer region removal.
    let fov = fov_mask(pre.w);
    for (p, f) in pre.data.iter_mut().zip(&fov.data) {
        *p *= f;
    }

    let conv = |image: &Image, k: &Kernel| -> Image {
        match cfg.engine {
            Engine::SoftwareF32 => convolve_f32(image, k),
            Engine::Vcgra => convolve_vcgra(image, k, cfg.format),
        }
    };

    // --- hardware modules ---
    let mut kernels_loaded = 0usize;
    let mut coefficients = 0usize;

    let t0 = std::time::Instant::now();
    let dk = gaussian(cfg.denoise_size, cfg.denoise_size as f32 / 4.0);
    kernels_loaded += 1;
    coefficients += dk.taps.len();
    let denoised = conv(&pre, &dk);
    let t_denoise = t0.elapsed();

    let t1 = std::time::Instant::now();
    // The matched filters have a negative Gaussian valley: on dark vessels
    // over a bright background the response is positive at vessel centers
    // and ~zero on flat background (the kernels are zero-mean).
    let bank = matched_bank(cfg.matched_size, cfg.sigma, cfg.length, cfg.orientations);
    let responses: Vec<Image> = bank
        .iter()
        .map(|k| {
            kernels_loaded += 1;
            coefficients += k.taps.len();
            conv(&denoised, k)
        })
        .collect();
    let mut response = max_response(&responses).normalized();
    for (p, f) in response.data.iter_mut().zip(&fov.data) {
        *p *= f;
    }
    let t_matched = t1.elapsed();

    let t2 = std::time::Instant::now();
    let tk = texture_filter(cfg.matched_size, cfg.sigma);
    kernels_loaded += 1;
    coefficients += tk.taps.len();
    let mut textured = conv(&response, &tk).normalized();
    for (p, f) in textured.data.iter_mut().zip(&fov.data) {
        *p *= f;
    }
    let t_texture = t2.elapsed();

    // --- threshold: combine the raw response with the texture evidence.
    // The cut is adaptive: a percentile of the response *inside the field
    // of view*, so the same configuration works across image sizes and
    // vessel densities.
    let combined = Image {
        w: textured.w,
        h: textured.h,
        data: response
            .data
            .iter()
            .zip(&textured.data)
            .map(|(&r, &t)| 0.6 * r + 0.4 * t)
            .collect(),
    };
    let mut in_fov: Vec<f32> = combined
        .data
        .iter()
        .zip(&fov.data)
        .filter(|(_, &f)| f > 0.5)
        .map(|(&v, _)| v)
        .collect();
    in_fov.sort_by(|a, b| a.total_cmp(b));
    let cut = in_fov[(((in_fov.len() - 1) as f32) * cfg.threshold.clamp(0.0, 1.0)) as usize];
    let segmented = combined.threshold(cut.max(1e-6));

    PipelineResult {
        preprocessed: pre,
        denoised,
        response,
        textured,
        segmented,
        kernels_loaded,
        coefficients_programmed: coefficients,
        stage_times: [t_denoise, t_matched, t_texture],
    }
}

fn percentile(img: &Image, p: f32) -> f32 {
    let mut v: Vec<f32> = img.data.clone();
    v.sort_by(|a, b| a.total_cmp(b));
    v[((v.len() - 1) as f32 * p) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synth_fundus, SynthConfig};

    fn small_cfg() -> PipelineConfig {
        PipelineConfig {
            matched_size: 12,
            ..Default::default()
        }
    }

    #[test]
    fn pipeline_beats_chance_on_synthetic_images() {
        let (img, truth) = synth_fundus(&SynthConfig { size: 96, ..Default::default() }, 11);
        let res = run_pipeline(&img, &small_cfg());
        let m = Metrics::evaluate(&res.segmented, &truth);
        // Must be far better than random guessing at the same coverage.
        assert!(m.f1() > 0.35, "F1 {:.3} too low (p {:.2} r {:.2})", m.f1(), m.precision(), m.recall());
        assert!(m.accuracy() > 0.8, "accuracy {:.3}", m.accuracy());
    }

    #[test]
    fn kernel_accounting_matches_config() {
        let (img, _) = synth_fundus(&SynthConfig { size: 64, ..Default::default() }, 5);
        let res = run_pipeline(&img, &small_cfg());
        // 1 denoise + 7 matched + 1 texture.
        assert_eq!(res.kernels_loaded, 9);
        assert_eq!(
            res.coefficients_programmed,
            5 * 5 + 7 * 12 * 12 + 12 * 12
        );
    }

    #[test]
    fn metrics_arithmetic() {
        let mut seg = Image::new(2, 2, 0.0);
        seg.set(0, 0, 1.0);
        seg.set(1, 0, 1.0);
        let mut truth = Image::new(2, 2, 0.0);
        truth.set(0, 0, 1.0);
        truth.set(0, 1, 1.0);
        let m = Metrics::evaluate(&seg, &truth);
        assert_eq!((m.tp, m.fp, m.fn_, m.tn), (1, 1, 1, 1));
        assert_eq!(m.precision(), 0.5);
        assert_eq!(m.recall(), 0.5);
        assert_eq!(m.f1(), 0.5);
    }

    #[test]
    fn vcgra_engine_agrees_with_f32_engine() {
        let (img, _) = synth_fundus(&SynthConfig { size: 48, ..Default::default() }, 9);
        let sw = run_pipeline(&img, &PipelineConfig { matched_size: 8, ..Default::default() });
        let hw = run_pipeline(
            &img,
            &PipelineConfig {
                matched_size: 8,
                engine: Engine::Vcgra,
                ..Default::default()
            },
        );
        // The engines agree up to FloPoCo rounding; the segmentations must
        // overlap almost everywhere.
        let disagree = sw
            .segmented
            .data
            .iter()
            .zip(&hw.segmented.data)
            .filter(|(a, b)| a != b)
            .count();
        let frac = disagree as f64 / sw.segmented.data.len() as f64;
        assert!(frac < 0.02, "segmentations disagree on {frac:.3} of pixels");
    }
}
