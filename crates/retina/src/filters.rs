//! Filter kernels and convolution engines.
//!
//! Kernels follow the paper: Gaussian denoise (5×5 and 9×9), the
//! Chaudhuri-style matched filter bank (Gaussian-profile line detectors at
//! seven orientations, 16×16) and a thickness-selective texture filter.
//!
//! Two convolution engines are provided and cross-checked:
//! * [`convolve_f32`] — the `f32` software reference, and
//! * [`convolve_vcgra`] — the *hardware module*: every output pixel is a
//!   time-multiplexed MAC on one PE in the bit-exact FloPoCo format, the
//!   execution model the paper describes (settings-register counter =
//!   number of kernel taps, coefficient reconfigured per tap sweep).

use crate::image::Image;
use softfloat::{FpFormat, FpValue};

/// A dense convolution kernel.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Side length (kernels are square, odd or even).
    pub size: usize,
    /// Row-major taps.
    pub taps: Vec<f32>,
    /// Human-readable name (shows up in reports).
    pub name: String,
}

impl Kernel {
    /// Sum of taps (used to normalize smoothing kernels).
    pub fn sum(&self) -> f32 {
        self.taps.iter().sum()
    }
}

/// Isotropic Gaussian smoothing kernel, normalized to unit gain.
pub fn gaussian(size: usize, sigma: f32) -> Kernel {
    let c = (size as f32 - 1.0) / 2.0;
    let mut taps = Vec::with_capacity(size * size);
    for y in 0..size {
        for x in 0..size {
            let dx = x as f32 - c;
            let dy = y as f32 - c;
            taps.push((-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp());
        }
    }
    let s: f32 = taps.iter().sum();
    for t in &mut taps {
        *t /= s;
    }
    Kernel { size, taps, name: format!("gauss{size}x{size}") }
}

/// One matched filter: a Gaussian valley profile perpendicular to the
/// vessel direction, zero-mean (Chaudhuri et al. [12]), rotated by
/// `theta` radians. `size` is 16 in the paper; `sigma` controls the vessel
/// width the filter responds to and `length` the along-vessel extent.
pub fn matched_filter(size: usize, sigma: f32, length: f32, theta: f32) -> Kernel {
    let c = (size as f32 - 1.0) / 2.0;
    let (sin, cos) = theta.sin_cos();
    let mut taps = Vec::with_capacity(size * size);
    let mut live = Vec::with_capacity(size * size);
    for y in 0..size {
        for x in 0..size {
            let dx = x as f32 - c;
            let dy = y as f32 - c;
            // Rotate into the filter frame: `theta` is the vessel direction
            // from the x-axis; u runs across the vessel, v along it.
            let u = -dx * sin + dy * cos;
            let v = dx * cos + dy * sin;
            if u.abs() <= 3.0 * sigma && v.abs() <= length / 2.0 {
                taps.push(-(-u * u / (2.0 * sigma * sigma)).exp());
                live.push(true);
            } else {
                taps.push(0.0);
                live.push(false);
            }
        }
    }
    // Zero-mean over the live support so flat background gives 0 response.
    let n_live = live.iter().filter(|&&l| l).count().max(1);
    let mean: f32 = taps.iter().sum::<f32>() / n_live as f32;
    for (t, l) in taps.iter_mut().zip(&live) {
        if *l {
            *t -= mean;
        }
    }
    Kernel {
        size,
        taps,
        name: format!("matched{size}@{:.0}deg", theta.to_degrees()),
    }
}

/// The paper's seven-orientation matched filter bank (16×16 kernels).
pub fn matched_bank(size: usize, sigma: f32, length: f32, orientations: usize) -> Vec<Kernel> {
    (0..orientations)
        .map(|i| {
            let theta = std::f32::consts::PI * i as f32 / orientations as f32;
            matched_filter(size, sigma, length, theta)
        })
        .collect()
}

/// Texture/thickness filter: difference of Gaussians tuned so that only
/// line-like structures of at least the target thickness survive.
pub fn texture_filter(size: usize, thickness: f32) -> Kernel {
    let narrow = gaussian(size, thickness * 0.6);
    let wide = gaussian(size, thickness * 1.8);
    let taps = narrow
        .taps
        .iter()
        .zip(&wide.taps)
        .map(|(a, b)| a - b)
        .collect();
    Kernel { size, taps, name: format!("texture{size}") }
}

/// Software reference convolution (replication padding).
pub fn convolve_f32(img: &Image, k: &Kernel) -> Image {
    let mut out = Image::new(img.w, img.h, 0.0);
    let half = k.size as i64 / 2;
    for y in 0..img.h {
        for x in 0..img.w {
            let mut acc = 0.0f32;
            for ky in 0..k.size {
                for kx in 0..k.size {
                    let sx = x as i64 + kx as i64 - half;
                    let sy = y as i64 + ky as i64 - half;
                    acc += k.taps[ky * k.size + kx] * img.get_clamped(sx, sy);
                }
            }
            out.set(x, y, acc);
        }
    }
    out
}

/// Hardware-module convolution: every output pixel is computed by a
/// time-multiplexed MAC PE in the FloPoCo format (`fmt`). Rows are
/// processed in parallel across threads — each row is an independent PE
/// stream, mirroring a row-parallel VCGRA deployment.
pub fn convolve_vcgra(img: &Image, k: &Kernel, fmt: FpFormat) -> Image {
    let coeffs: Vec<FpValue> = k
        .taps
        .iter()
        .map(|&t| FpValue::from_f64(t as f64, fmt))
        .collect();
    let half = k.size as i64 / 2;
    let mut out = Image::new(img.w, img.h, 0.0);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .min(img.h.max(1));
    let rows_out: Vec<(usize, Vec<f32>)> = std::thread::scope(|scope| {
        let chunk = img.h.div_ceil(threads);
        let mut handles = Vec::new();
        for t in 0..threads {
            let y0 = t * chunk;
            let y1 = ((t + 1) * chunk).min(img.h);
            let coeffs = &coeffs;
            let img = &img;
            let k = &k;
            handles.push(scope.spawn(move || {
                let mut rows = Vec::new();
                for y in y0..y1 {
                    let mut row = Vec::with_capacity(img.w);
                    for x in 0..img.w {
                        // One MAC PE, `size²` iterations (the settings
                        // register counter), accumulating in FloPoCo.
                        let mut acc = FpValue::zero(fmt);
                        for ky in 0..k.size {
                            for kx in 0..k.size {
                                let sx = x as i64 + kx as i64 - half;
                                let sy = y as i64 + ky as i64 - half;
                                let sample = FpValue::from_f64(
                                    img.get_clamped(sx, sy) as f64,
                                    fmt,
                                );
                                acc = sample.mac(coeffs[ky * k.size + kx], acc);
                            }
                        }
                        row.push(acc.to_f64() as f32);
                    }
                    rows.push((y, row));
                }
                rows
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("convolution worker"))
            .collect()
    });
    for (y, row) in rows_out {
        for (x, v) in row.into_iter().enumerate() {
            out.set(x, y, v);
        }
    }
    out
}

/// Pixel-wise maximum across a stack of images (matched filter responses).
pub fn max_response(stack: &[Image]) -> Image {
    assert!(!stack.is_empty());
    let mut out = stack[0].clone();
    for img in &stack[1..] {
        assert_eq!(img.data.len(), out.data.len());
        for (o, &v) in out.data.iter_mut().zip(&img.data) {
            *o = o.max(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_is_normalized_and_peaked() {
        let g = gaussian(5, 1.0);
        assert!((g.sum() - 1.0).abs() < 1e-5);
        let center = g.taps[2 * 5 + 2];
        assert!(g.taps.iter().all(|&t| t <= center));
    }

    #[test]
    fn matched_filter_is_zero_mean() {
        for i in 0..7 {
            let theta = std::f32::consts::PI * i as f32 / 7.0;
            let m = matched_filter(16, 2.0, 9.0, theta);
            assert!(m.sum().abs() < 1e-3, "orientation {i}: sum {}", m.sum());
        }
    }

    #[test]
    fn matched_filter_responds_to_aligned_line() {
        // Horizontal dark line responds strongest to theta=0 filter.
        let mut img = Image::new(32, 32, 1.0);
        for x in 0..32 {
            img.set(x, 16, 0.0);
            img.set(x, 15, 0.3);
            img.set(x, 17, 0.3);
        }
        let aligned = convolve_f32(&img, &matched_filter(16, 1.5, 9.0, 0.0));
        let crossed = convolve_f32(
            &img,
            &matched_filter(16, 1.5, 9.0, std::f32::consts::FRAC_PI_2),
        );
        assert!(
            aligned.get(16, 16) > crossed.get(16, 16) + 0.1,
            "aligned {} vs crossed {}",
            aligned.get(16, 16),
            crossed.get(16, 16)
        );
    }

    #[test]
    fn convolution_identity_kernel() {
        let mut img = Image::new(8, 8, 0.25);
        img.set(4, 4, 0.75);
        let mut taps = vec![0.0; 9];
        taps[4] = 1.0;
        let k = Kernel { size: 3, taps, name: "id".into() };
        let out = convolve_f32(&img, &k);
        assert_eq!(out.get(4, 4), 0.75);
        assert_eq!(out.get(0, 0), 0.25);
    }

    #[test]
    fn vcgra_convolution_close_to_f32() {
        let mut img = Image::new(16, 16, 0.5);
        img.set(8, 8, 0.9);
        img.set(3, 12, 0.1);
        let k = gaussian(5, 1.2);
        let sw = convolve_f32(&img, &k);
        let hw = convolve_vcgra(&img, &k, FpFormat::PAPER);
        for i in 0..sw.data.len() {
            let d = (sw.data[i] - hw.data[i]).abs();
            assert!(d < 2e-3, "pixel {i}: sw {} hw {}", sw.data[i], hw.data[i]);
        }
    }

    #[test]
    fn max_response_takes_maximum() {
        let a = Image::new(2, 2, 0.3);
        let mut b = Image::new(2, 2, 0.1);
        b.set(1, 1, 0.9);
        let m = max_response(&[a, b]);
        assert_eq!(m.get(0, 0), 0.3);
        assert_eq!(m.get(1, 1), 0.9);
    }

    #[test]
    fn bank_has_requested_orientations() {
        let bank = matched_bank(16, 2.0, 9.0, 7);
        assert_eq!(bank.len(), 7);
        // All orientations distinct.
        for i in 0..7 {
            for j in i + 1..7 {
                assert_ne!(bank[i].taps, bank[j].taps, "{i} vs {j}");
            }
        }
    }
}
