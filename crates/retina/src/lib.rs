//! Retinal vessel segmentation (the paper's Fig. 5 HPC application).
//!
//! The pipeline follows the paper exactly: from an RGB fundus image the
//! green channel is retained; preprocessing (histogram equalization, optic
//! disc removal, outer region removal) runs in software; the filtering
//! stages — Gaussian denoise (5×5 / 9×9), a bank of steerable matched
//! filters (seven orientations, 16×16, after Chaudhuri et al. [12]) and a
//! texture/thickness filter — are the *hardware modules*, executed here
//! through the VCGRA's bit-exact FloPoCo MAC model.
//!
//! Clinical fundus datasets are not redistributable, so [`synth`]
//! generates synthetic fundus images (field-of-view disc, optic disc blob,
//! branching vessel trees) with exact ground truth, which lets the
//! pipeline be scored quantitatively.

#![forbid(unsafe_code)]
#![deny(clippy::dbg_macro, clippy::todo)]

pub mod filters;
pub mod image;
pub mod pipeline;
pub mod synth;

pub use image::Image;
pub use pipeline::{run_pipeline, Metrics, PipelineConfig, PipelineResult};
pub use synth::{synth_fundus, SynthConfig};
