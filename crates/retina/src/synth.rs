//! Synthetic fundus image generator.
//!
//! Substitutes the clinical retinal images the paper processes (see
//! README.md): a circular field of view over a dark border, a slowly
//! varying background, a bright optic-disc blob, and a branching vessel
//! tree grown by biased random walks with tapering width. Vessels darken
//! the green channel — the property the matched filters detect — and the
//! generator returns the exact ground-truth vessel mask, so segmentation
//! quality is measurable.

use crate::image::{Image, RgbImage};
use logic::SplitMix64;

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Image side length (square images).
    pub size: usize,
    /// Number of primary vessels leaving the optic disc.
    pub primary_vessels: usize,
    /// Probability per step that a vessel spawns a branch.
    pub branch_prob: f64,
    /// Vessel-to-background contrast in the green channel (0..1).
    pub contrast: f32,
    /// Background noise amplitude.
    pub noise: f32,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            size: 128,
            primary_vessels: 5,
            branch_prob: 0.02,
            contrast: 0.35,
            noise: 0.03,
        }
    }
}

/// Generates a fundus image and its ground-truth vessel mask.
pub fn synth_fundus(cfg: &SynthConfig, seed: u64) -> (RgbImage, Image) {
    let s = cfg.size;
    let mut rng = SplitMix64::new(seed);
    let center = (s as f32 / 2.0, s as f32 / 2.0);
    let fov_r = s as f32 * 0.47;

    // Background: radial falloff + smoothed noise.
    let mut green = Image::new(s, s, 0.0);
    let mut noise = Image::new(s, s, 0.0);
    for v in noise.data.iter_mut() {
        *v = rng.unit_f64() as f32;
    }
    let noise = box_blur(&noise, 4);
    for y in 0..s {
        for x in 0..s {
            let dx = x as f32 - center.0;
            let dy = y as f32 - center.1;
            let r = (dx * dx + dy * dy).sqrt();
            let base = 0.55 - 0.25 * (r / fov_r).powi(2);
            green.set(x, y, base + cfg.noise * (noise.get(x, y) - 0.5));
        }
    }

    // Optic disc: bright blob offset from center.
    let disc_angle = rng.unit_f64() as f32 * std::f32::consts::TAU;
    let disc = (
        center.0 + 0.55 * fov_r * disc_angle.cos(),
        center.1 + 0.55 * fov_r * disc_angle.sin(),
    );
    let disc_r = s as f32 * 0.07;
    for y in 0..s {
        for x in 0..s {
            let dx = x as f32 - disc.0;
            let dy = y as f32 - disc.1;
            let d2 = dx * dx + dy * dy;
            let boost = 0.35 * (-d2 / (disc_r * disc_r)).exp();
            let v = green.get(x, y) + boost;
            green.set(x, y, v);
        }
    }

    // Vessel tree: biased random walks from the disc.
    let mut truth = Image::new(s, s, 0.0);
    struct Walker {
        x: f32,
        y: f32,
        dir: f32,
        width: f32,
    }
    let mut stack: Vec<Walker> = (0..cfg.primary_vessels)
        .map(|i| {
            let a = disc_angle + std::f32::consts::PI
                + (i as f32 / cfg.primary_vessels as f32 - 0.5) * 2.2
                + rng.gauss() as f32 * 0.1;
            Walker { x: disc.0, y: disc.1, dir: a, width: 2.6 }
        })
        .collect();
    while let Some(mut w) = stack.pop() {
        loop {
            // Stamp a disc of the current width (vessel darkens green).
            let rad = w.width.max(0.6);
            let (xi, yi) = (w.x as i64, w.y as i64);
            let rr = rad.ceil() as i64;
            for oy in -rr..=rr {
                for ox in -rr..=rr {
                    let (px, py) = (xi + ox, yi + oy);
                    if px < 0 || py < 0 || px >= s as i64 || py >= s as i64 {
                        continue;
                    }
                    let d = ((ox * ox + oy * oy) as f32).sqrt();
                    if d <= rad {
                        let (ux, uy) = (px as usize, py as usize);
                        let fall = (1.0 - d / (rad + 0.5)).clamp(0.0, 1.0);
                        let dark = cfg.contrast * (0.55 + 0.45 * fall);
                        let cur = green.get(ux, uy);
                        green.set(ux, uy, cur - dark * fall.max(0.35));
                        truth.set(ux, uy, 1.0);
                    }
                }
            }
            // Advance.
            w.dir += rng.gauss() as f32 * 0.14;
            w.x += w.dir.cos();
            w.y += w.dir.sin();
            w.width *= 0.9985;
            // Maybe branch.
            if w.width > 1.0 && rng.unit_f64() < cfg.branch_prob {
                let split = rng.gauss() as f32 * 0.3 + 0.7;
                stack.push(Walker {
                    x: w.x,
                    y: w.y,
                    dir: w.dir + split,
                    width: w.width * 0.75,
                });
                w.dir -= 0.25;
                w.width *= 0.85;
            }
            // Stop at FOV edge or when too thin.
            let dx = w.x - center.0;
            let dy = w.y - center.1;
            if dx * dx + dy * dy > fov_r * fov_r * 0.92 || w.width < 0.55 {
                break;
            }
        }
    }

    // Outside the field of view everything is dark; truth is clipped too.
    for y in 0..s {
        for x in 0..s {
            let dx = x as f32 - center.0;
            let dy = y as f32 - center.1;
            if dx * dx + dy * dy > fov_r * fov_r {
                green.set(x, y, 0.02);
                truth.set(x, y, 0.0);
            }
        }
    }

    let g = green.normalized();
    // Red/blue carry little structure in fundus photography.
    let r = Image {
        w: s,
        h: s,
        data: g.data.iter().map(|&v| (v * 0.6 + 0.3).min(1.0)).collect(),
    };
    let b = Image {
        w: s,
        h: s,
        data: g.data.iter().map(|&v| v * 0.25).collect(),
    };
    (RgbImage { r, g, b }, truth)
}

/// Simple box blur used to produce smooth background noise.
fn box_blur(img: &Image, radius: i64) -> Image {
    let mut out = Image::new(img.w, img.h, 0.0);
    let norm = ((2 * radius + 1) * (2 * radius + 1)) as f32;
    for y in 0..img.h {
        for x in 0..img.w {
            let mut acc = 0.0;
            for oy in -radius..=radius {
                for ox in -radius..=radius {
                    acc += img.get_clamped(x as i64 + ox, y as i64 + oy);
                }
            }
            out.set(x, y, acc / norm);
        }
    }
    out
}

/// Mask of the circular field of view (1.0 inside).
pub fn fov_mask(size: usize) -> Image {
    let mut m = Image::new(size, size, 0.0);
    let c = size as f32 / 2.0;
    let r = size as f32 * 0.47;
    for y in 0..size {
        for x in 0..size {
            let dx = x as f32 - c;
            let dy = y as f32 - c;
            if dx * dx + dy * dy <= r * r {
                m.set(x, y, 1.0);
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let cfg = SynthConfig { size: 64, ..Default::default() };
        let (a, ta) = synth_fundus(&cfg, 42);
        let (b, tb) = synth_fundus(&cfg, 42);
        assert_eq!(a.g, b.g);
        assert_eq!(ta, tb);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = SynthConfig { size: 64, ..Default::default() };
        let (a, _) = synth_fundus(&cfg, 1);
        let (b, _) = synth_fundus(&cfg, 2);
        assert_ne!(a.g, b.g);
    }

    #[test]
    fn vessels_exist_and_are_dark() {
        let cfg = SynthConfig { size: 96, ..Default::default() };
        let (img, truth) = synth_fundus(&cfg, 7);
        let cov = truth.coverage();
        assert!(cov > 0.01 && cov < 0.35, "vessel coverage {cov}");
        // Vessel pixels must be darker on average than non-vessel pixels
        // inside the FOV.
        let fov = fov_mask(96);
        let mut vessel_sum = 0.0;
        let mut vessel_n = 0.0;
        let mut bg_sum = 0.0;
        let mut bg_n = 0.0;
        for i in 0..img.g.data.len() {
            if fov.data[i] < 0.5 {
                continue;
            }
            if truth.data[i] > 0.5 {
                vessel_sum += img.g.data[i] as f64;
                vessel_n += 1.0;
            } else {
                bg_sum += img.g.data[i] as f64;
                bg_n += 1.0;
            }
        }
        assert!(vessel_sum / vessel_n < bg_sum / bg_n - 0.05);
    }

    #[test]
    fn truth_restricted_to_fov() {
        let cfg = SynthConfig { size: 64, ..Default::default() };
        let (_, truth) = synth_fundus(&cfg, 3);
        let fov = fov_mask(64);
        for i in 0..truth.data.len() {
            if truth.data[i] > 0.5 {
                assert!(fov.data[i] > 0.5, "vessel outside FOV at {i}");
            }
        }
    }
}
