//! Minimal grayscale/RGB image types used by the pipeline.

/// A row-major grayscale image with `f32` samples (0.0 = black).
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    /// Width in pixels.
    pub w: usize,
    /// Height in pixels.
    pub h: usize,
    /// Samples, row-major (`data[y * w + x]`).
    pub data: Vec<f32>,
}

impl Image {
    /// A constant-valued image.
    pub fn new(w: usize, h: usize, fill: f32) -> Self {
        Self { w, h, data: vec![fill; w * h] }
    }

    /// Sample accessor (no bounds clamping).
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        self.data[y * self.w + x]
    }

    /// Clamped accessor: coordinates outside the image read the nearest
    /// edge pixel (replication padding for the convolutions).
    #[inline]
    pub fn get_clamped(&self, x: i64, y: i64) -> f32 {
        let xc = x.clamp(0, self.w as i64 - 1) as usize;
        let yc = y.clamp(0, self.h as i64 - 1) as usize;
        self.get(xc, yc)
    }

    /// Mutable sample accessor.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        self.data[y * self.w + x] = v;
    }

    /// Minimum and maximum sample.
    pub fn min_max(&self) -> (f32, f32) {
        let mut mn = f32::INFINITY;
        let mut mx = f32::NEG_INFINITY;
        for &v in &self.data {
            mn = mn.min(v);
            mx = mx.max(v);
        }
        (mn, mx)
    }

    /// Linearly rescales samples into `[0, 1]` (no-op for flat images).
    pub fn normalized(&self) -> Image {
        let (mn, mx) = self.min_max();
        let span = (mx - mn).max(1e-12);
        Image {
            w: self.w,
            h: self.h,
            data: self.data.iter().map(|&v| (v - mn) / span).collect(),
        }
    }

    /// Binary threshold: samples strictly above `t` become 1.0.
    pub fn threshold(&self, t: f32) -> Image {
        Image {
            w: self.w,
            h: self.h,
            data: self
                .data
                .iter()
                .map(|&v| if v > t { 1.0 } else { 0.0 })
                .collect(),
        }
    }

    /// Global histogram equalization over 256 bins (a preprocessing step
    /// of the pipeline).
    pub fn equalized(&self) -> Image {
        let n = self.data.len().max(1);
        let norm = self.normalized();
        let mut hist = [0u32; 256];
        for &v in &norm.data {
            hist[((v * 255.0) as usize).min(255)] += 1;
        }
        let mut cdf = [0f32; 256];
        let mut acc = 0u32;
        for (i, &h) in hist.iter().enumerate() {
            acc += h;
            cdf[i] = acc as f32 / n as f32;
        }
        Image {
            w: self.w,
            h: self.h,
            data: norm
                .data
                .iter()
                .map(|&v| cdf[((v * 255.0) as usize).min(255)])
                .collect(),
        }
    }

    /// Serializes to a binary PGM (P5) byte vector for visual inspection.
    pub fn to_pgm(&self) -> Vec<u8> {
        let norm = self.normalized();
        let mut out = format!("P5\n{} {}\n255\n", self.w, self.h).into_bytes();
        out.extend(norm.data.iter().map(|&v| (v * 255.0) as u8));
        out
    }

    /// Fraction of pixels above 0.5 (useful for sanity checks on masks).
    pub fn coverage(&self) -> f64 {
        let on = self.data.iter().filter(|&&v| v > 0.5).count();
        on as f64 / self.data.len().max(1) as f64
    }
}

/// An RGB image as three planes.
#[derive(Debug, Clone)]
pub struct RgbImage {
    /// Red plane.
    pub r: Image,
    /// Green plane (the informative one for fundus images).
    pub g: Image,
    /// Blue plane.
    pub b: Image,
}

impl RgbImage {
    /// The pipeline's first step: keep the green channel.
    pub fn green(&self) -> Image {
        self.g.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_and_minmax() {
        let mut img = Image::new(4, 4, 0.5);
        img.set(0, 0, -1.0);
        img.set(3, 3, 3.0);
        let n = img.normalized();
        let (mn, mx) = n.min_max();
        assert_eq!(mn, 0.0);
        assert_eq!(mx, 1.0);
    }

    #[test]
    fn clamped_reads_replicate_edges() {
        let mut img = Image::new(2, 2, 0.0);
        img.set(0, 0, 7.0);
        assert_eq!(img.get_clamped(-5, -5), 7.0);
        assert_eq!(img.get_clamped(0, 0), 7.0);
    }

    #[test]
    fn threshold_binarizes() {
        let mut img = Image::new(2, 1, 0.0);
        img.set(1, 0, 0.9);
        let t = img.threshold(0.5);
        assert_eq!(t.get(0, 0), 0.0);
        assert_eq!(t.get(1, 0), 1.0);
        assert!((t.coverage() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn equalization_spreads_histogram() {
        // Two-level image: equalization maps levels to distinct CDF values.
        let mut img = Image::new(4, 1, 0.2);
        img.set(2, 0, 0.8);
        img.set(3, 0, 0.8);
        let e = img.equalized();
        assert!(e.get(0, 0) < e.get(2, 0));
    }

    #[test]
    fn pgm_roundtrip_header() {
        let img = Image::new(3, 2, 0.5);
        let pgm = img.to_pgm();
        assert!(pgm.starts_with(b"P5\n3 2\n255\n"));
        assert_eq!(pgm.len(), b"P5\n3 2\n255\n".len() + 6);
    }
}
