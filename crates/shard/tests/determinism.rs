//! The determinism contract: one seed, one schedule. Two runs of the
//! same synthesized plan produce identical per-shard admission orders
//! and a bit-identical output fingerprint — routing reads only the
//! caller's own submit/collect order, never worker timing.

use shard::{synthesize, LoadPlan, LoadReport, LoadSpec, ShardConfig, ShardServer};
use softfloat::FpFormat;

const F: FpFormat = FpFormat::PAPER;

fn spec(seed: u64) -> LoadSpec {
    LoadSpec { seed, waves: 2, tenants_per_wave: 6, items_per_tenant: 4, ..LoadSpec::default() }
}

fn drive(plan: &LoadPlan, shards: usize) -> LoadReport {
    let mut server = ShardServer::start(ShardConfig::new(shards));
    let report = shard::loadgen::run(&mut server, plan).expect("load run");
    for fin in server.shutdown() {
        assert!(fin.verify.ok(), "shard {} failed its closing verification", fin.shard);
    }
    report
}

#[test]
fn same_seed_same_admission_orders_and_fingerprint() {
    let plan = synthesize(F, &spec(0xD00D));
    let a = drive(&plan, 3);
    let b = drive(&plan, 3);
    assert_eq!(a.fingerprint, b.fingerprint, "output fingerprints must match bit-for-bit");
    assert_eq!(a.spills, b.spills, "spill decisions are part of the deterministic schedule");
    assert_eq!(
        a.admission_orders(),
        b.admission_orders(),
        "every shard must admit the same applications in the same order"
    );
    // The orders are a real partition of the plan, not vacuously empty.
    let total: usize = a.admission_orders().iter().map(|o| o.len()).sum();
    assert_eq!(total, plan.tenants());
}

#[test]
fn synthesis_is_a_pure_function_of_the_seed() {
    let one = synthesize(F, &spec(0xABCD));
    let two = synthesize(F, &spec(0xABCD));
    // Same plan → same schedule end to end (cheap proxy for structural
    // equality: drive both and compare the full deterministic surface).
    let a = drive(&one, 2);
    let b = drive(&two, 2);
    assert_eq!(a.fingerprint, b.fingerprint);
    assert_eq!(a.admission_orders(), b.admission_orders());

    // And a different seed actually changes the workload.
    let other = synthesize(F, &spec(0xEF01));
    let c = drive(&other, 2);
    assert_ne!(a.fingerprint, c.fingerprint, "distinct seeds must synthesize distinct traffic");
}
