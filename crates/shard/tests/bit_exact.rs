//! Sharding must not change a single output bit: the same plan produces
//! identical per-tenant results on one shard and on three, and both
//! agree with the reference dataflow interpreter.

use shard::{synthesize, LoadSpec, ShardConfig, ShardServer};
use softfloat::FpFormat;
use vcgra::sim::run_dataflow;

const F: FpFormat = FpFormat::PAPER;

#[test]
fn outputs_are_bit_exact_across_shard_counts_and_against_the_reference() {
    let plan = synthesize(
        F,
        &LoadSpec {
            waves: 2,
            tenants_per_wave: 5,
            items_per_tenant: 4,
            keep_outputs: true,
            ..LoadSpec::default()
        },
    );

    let mut single = ShardServer::start(ShardConfig::new(1));
    let baseline = shard::loadgen::run(&mut single, &plan).expect("single-shard run");
    single.shutdown();
    let mut tier = ShardServer::start(ShardConfig::new(3));
    let report = shard::loadgen::run(&mut tier, &plan).expect("3-shard run");
    tier.shutdown();

    assert_eq!(
        baseline.fingerprint, report.fingerprint,
        "shard count must be invisible in the output bits"
    );
    let base_outputs = baseline.outputs.expect("keep_outputs");
    let tier_outputs = report.outputs.expect("keep_outputs");
    assert_eq!(base_outputs.len(), plan.tenants());
    assert_eq!(base_outputs.keys().collect::<Vec<_>>(), tier_outputs.keys().collect::<Vec<_>>());

    for (wave, jobs) in plan.waves.iter().enumerate() {
        for job in jobs {
            let base = &base_outputs[&job.name];
            let tier = &tier_outputs[&job.name];
            // Phase by phase, vector by vector, bit by bit — and each
            // phase against run_dataflow on the phase's graph.
            let phase_graphs =
                [job.graph.clone(), job.graph.with_coeffs(&job.swap_coeffs)];
            for (phase, graph) in phase_graphs.iter().enumerate() {
                assert_eq!(base[phase].len(), job.inputs.len());
                for (input, (b, t)) in
                    job.inputs.iter().zip(base[phase].iter().zip(&tier[phase]))
                {
                    let bits = |vs: &[softfloat::FpValue]| {
                        vs.iter().map(|v| v.bits).collect::<Vec<_>>()
                    };
                    assert_eq!(
                        bits(b),
                        bits(t),
                        "wave {wave} job {} phase {phase}: 1-shard vs 3-shard outputs differ",
                        job.name
                    );
                    let want = run_dataflow(graph, input);
                    assert_eq!(
                        bits(b),
                        bits(&want),
                        "wave {wave} job {} phase {phase}: deviates from run_dataflow",
                        job.name
                    );
                }
            }
        }
    }
}
