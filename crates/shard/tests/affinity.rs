//! Cache-affinity routing: structurally identical submissions always
//! land on the same shard, and sharding does not cost warm hits — the
//! aggregate warm-hit rate at N shards is no worse than the
//! single-runtime soak's.

use runtime::kernels;
use shard::{synthesize, LoadSpec, RouteKey, RoutePick, ShardConfig, ShardServer};
use softfloat::{FpFormat, FpValue};

const F: FpFormat = FpFormat::PAPER;

fn small_spec() -> LoadSpec {
    LoadSpec { waves: 2, tenants_per_wave: 6, items_per_tenant: 4, ..LoadSpec::default() }
}

#[test]
fn same_structure_always_routes_to_the_same_shard() {
    for shards in [2usize, 3, 8] {
        for w in kernels::library(F) {
            let key = RouteKey::of(&w.graph);
            let home = key.shard(shards);
            // Any coefficient variant of the structure keys identically.
            let coeffs = w.graph.coeff_nodes().len();
            let variant = w
                .graph
                .with_coeffs(&vec![FpValue::from_f64(0.123, F); coeffs]);
            assert_eq!(RouteKey::of(&variant).shard(shards), home, "{} at {shards} shards", w.name);
        }
    }
}

#[test]
fn server_sticks_structures_to_their_affine_shard() {
    // Spilling disabled: routing is pure affinity.
    let mut server = ShardServer::start(ShardConfig { spill_margin: u64::MAX, ..ShardConfig::new(3) });
    let fir = kernels::fir_seeded(F, 5, 7);
    let (at_cold, pick, ticket) = server.submit("fir-cold", fir.graph.clone()).expect("dispatch");
    assert_eq!(pick, RoutePick::Affinity);
    let cold = ticket.wait().expect("admit").expect_admitted("empty tier");
    assert!(!cold.cache_hit, "first admission of the structure compiles cold");

    // A coefficient variant must land on the same shard — and hit its cache.
    let coeffs = fir.graph.coeff_nodes().len();
    let warm_graph = fir.graph.with_coeffs(&vec![FpValue::from_f64(-0.5, F); coeffs]);
    let (at_warm, _, ticket) = server.submit("fir-warm", warm_graph).expect("dispatch");
    assert_eq!(at_warm.shard, at_cold.shard, "affinity key ignores coefficient values");
    let warm = ticket.wait().expect("admit").expect_admitted("room on shard");
    assert!(warm.cache_hit, "affine routing must convert the second admission to a warm hit");
    server.drain(true).expect("drain");
    for fin in server.shutdown() {
        assert!(fin.verify.ok(), "shard {} invariants", fin.shard);
    }
}

#[test]
fn sharding_does_not_cost_warm_hits() {
    let plan = synthesize(F, &small_spec());
    let mut single = ShardServer::start(ShardConfig::new(1));
    let baseline = shard::loadgen::run(&mut single, &plan).expect("single-shard run");
    single.shutdown();

    let mut tier = ShardServer::start(ShardConfig::new(3));
    let report = shard::loadgen::run(&mut tier, &plan).expect("3-shard run");
    tier.shutdown();

    assert!(
        baseline.warm_hit_rate >= 1.0 / 3.0,
        "single-runtime soak warm rate {:.2} below the 33% floor",
        baseline.warm_hit_rate
    );
    assert!(
        report.warm_hit_rate + 1e-9 >= baseline.warm_hit_rate,
        "sharded warm rate {:.2} fell below the single-runtime rate {:.2}",
        report.warm_hit_rate,
        baseline.warm_hit_rate
    );
}
