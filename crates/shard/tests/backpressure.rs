//! Backpressure semantics: a full bounded queue rejects loudly
//! (`Reject::QueueFull` to the caller, `shard.reject` counted) and
//! everything the tier *did* accept is served — never silently dropped.

use runtime::kernels;
use runtime::StreamRequest;
use shard::{Reject, ShardConfig, ShardServer};
use softfloat::{FpFormat, FpValue};

const F: FpFormat = FpFormat::PAPER;

#[test]
fn full_queue_rejects_and_accepted_work_still_completes() {
    let mut server = ShardServer::start(ShardConfig {
        queue_depth: 2,
        ..ShardConfig::new(1)
    });
    let fir = kernels::fir_seeded(F, 5, 11);
    let coeffs = fir.graph.coeff_nodes().len();
    let (at, _, ticket) = server.submit("tenant", fir.graph.clone()).expect("dispatch");
    let admitted = ticket.wait().expect("admit").expect_admitted("empty tier");
    assert_eq!(admitted.tenant, at.tenant, "server predicts the tenant id at dispatch");

    // Occupy the worker with a long streaming run (hundreds of
    // gate-level evaluations — orders of magnitude longer than the
    // microseconds the dispatch loop below needs), then flood the
    // depth-2 queue with swaps until it pushes back.
    let inputs: Vec<Vec<FpValue>> =
        (0..400).map(|i| vec![FpValue::from_f64((i % 7) as f64 * 0.25 - 0.75, F); fir.graph.num_inputs]).collect();
    let run_ticket = server
        .run(at.shard, vec![StreamRequest { tenant: at.tenant, inputs }])
        .expect("dispatch run");

    let new_coeffs = vec![FpValue::from_f64(0.5, F); coeffs];
    let mut accepted = Vec::new();
    let mut rejection = None;
    for _ in 0..8 {
        match server.swap_params(at, new_coeffs.clone()) {
            Ok(t) => accepted.push(t),
            Err(r) => {
                rejection = Some(r);
                break;
            }
        }
    }
    let rejection = rejection.expect("a depth-2 queue must reject within 8 back-to-back dispatches");
    assert_eq!(rejection, Reject::QueueFull { shard: 0, capacity: 2 });
    assert!(
        server.metrics().counter_value("shard.reject") >= 1,
        "rejections must be counted, not just returned"
    );

    // Nothing accepted was dropped: the run and every accepted swap reply.
    let runs = run_ticket.wait().expect("run");
    assert_eq!(runs[0].items, 400);
    for t in accepted {
        t.wait().expect("accepted swap must be served");
    }

    // After the pressure clears, the same dispatch succeeds.
    server.drain(true).expect("drain");
    server.swap_params(at, new_coeffs).expect("queue has space again").wait().expect("swap");
    for fin in server.shutdown() {
        assert!(fin.verify.ok());
    }
}
