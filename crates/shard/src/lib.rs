//! `vcgra-shard` — a sharded, cache-affine serving tier over
//! [`runtime`](../runtime/index.html).
//!
//! PR 5 measured warm admission ~270× cheaper than a cold compile: the
//! paper's economics (configuration is expensive to produce, cheap to
//! replay) only pay off at scale if many tenants are served
//! *concurrently*. `runtime::Runtime` is a single-threaded library driven
//! by one synchronous `submit` loop; this crate is the front-end that
//! turns it into a service:
//!
//! * [`server::ShardServer`] owns **N independent `Runtime` pools on
//!   worker threads** (one shard = one grid pool + one configuration
//!   cache + one FIFO request queue). Shards share nothing, so shard
//!   throughput scales with worker threads and every per-shard invariant
//!   the `verify` crate proves keeps holding verbatim.
//! * [`route::Router`] is the **admission router**: requests are routed
//!   by *cache affinity* — [`route::RouteKey`] hashes the graph's
//!   *structure* (the same coefficients-excluded identity the runtime's
//!   `ConfigKey` caches under), so structurally identical tenants land on
//!   the shard whose cache already holds their compile. When the affine
//!   shard's load runs ahead of the least-loaded shard by more than a
//!   configured margin, the request **spills** to the least-loaded shard
//!   (rebalancing costs at most one extra cold compile; stickiness keeps
//!   the warm-hit rate high). The load signal is the caller's own
//!   outstanding-ticket count, so routing is a pure function of the
//!   caller's submit/collect order — deterministic, never a wall clock.
//! * Per-shard queues are **bounded**: when a shard's queue is full,
//!   dispatch returns [`server::Reject::QueueFull`] to the caller —
//!   explicit backpressure, never a silent drop. Accepted work is never
//!   discarded; [`server::ShardServer::drain`] waits for every queue to
//!   empty (optionally re-proving each shard's scheduler invariants) and
//!   [`server::ShardServer::shutdown`] joins the workers and returns
//!   their final state.
//! * [`loadgen`] is a **seeded, deterministic load generator**: the whole
//!   workload (structures, coefficients, input streams, operation order)
//!   is synthesized up front from a `SplitMix64` seed with no wall-clock
//!   input, so two runs at one seed produce identical per-shard admission
//!   orders and a bit-identical output fingerprint — across shard counts,
//!   worker counts, and machines. `xbench serve --shards N` drives it and
//!   records throughput and latency quantiles into
//!   `BENCH_serve_shard.json`.
//!
//! Observability: the server's shared [`trace::Registry`] carries
//! `shard.route`/`shard.spill`/`shard.reject` counters, per-shard
//! `shard.<i>.queue_depth` gauges, and `shard.queue_wait_ns` /
//! `shard.admit_ns` / `shard.execute_ns` latency histograms (aggregate
//! and per shard); the span recorder sees a `shard.route` span per
//! routing decision and a `shard.serve` span per request on the worker.
//!
//! Serving model in one table:
//!
//! | concern        | mechanism                                          |
//! |----------------|----------------------------------------------------|
//! | routing key    | structure hash (coefficients excluded), mod shards |
//! | load balancing | spill to least-loaded when imbalance ≥ margin      |
//! | backpressure   | bounded queue, `Reject::QueueFull` to the caller   |
//! | ordering       | FIFO per shard (admission order = dispatch order)  |
//! | drain          | barrier on empty queues + per-shard sched verify   |

#![forbid(unsafe_code)]
#![deny(clippy::dbg_macro, clippy::todo)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod loadgen;
pub mod route;
pub mod server;

pub use loadgen::{synthesize, LoadJob, LoadPlan, LoadReport, LoadSpec, WaveReport};
pub use route::{RouteKey, RoutePick, Router};
pub use server::{
    DrainError, Reject, ShardConfig, ShardFinal, ShardServer, ShardStats, ShardTenant, Ticket,
};
