//! Seeded, deterministic load generation for the serving tier.
//!
//! The generator splits planning from driving. [`synthesize`] expands a
//! [`LoadSpec`] into a complete [`LoadPlan`] — every graph, coefficient
//! vector, and input stream — using only a `SplitMix64` stream, with no
//! wall-clock input anywhere; [`run`] then drives the plan through a
//! [`ShardServer`]. Because routing depends only on the caller's own
//! submit/collect order (see [`crate::route`]) and each shard serves its
//! queue FIFO, two runs of one plan produce **identical per-shard
//! admission orders** and a **bit-identical output fingerprint** — the
//! fingerprint is also invariant across shard counts and worker counts,
//! since the engine's mapped execution is bit-exact with the reference
//! dataflow interpreter regardless of where a tenant lands.
//!
//! Wave structure: wave 0 is an untimed **priming wave** (one tenant per
//! library structure, paying the cold compiles); waves 1.. are the timed
//! warm traffic the throughput figures come from. Each tenant's
//! lifecycle is admit → stream → parameter swap → stream → release — the
//! paper's "reconfigure cheaply, replay often" loop. Backpressure
//! ([`Reject::QueueFull`]) is handled by retrying the same dispatch
//! after a short sleep; retries are counted and reported but never
//! change the dispatch order, so they are invisible to the fingerprint.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use logic::SplitMix64;
use runtime::kernels::{fir_seeded, library};
use runtime::StreamRequest;
use softfloat::{FpFormat, FpValue};
use vcgra::app::AppGraph;

use crate::route::Fnv;
use crate::server::{DrainError, Reject, ShardServer, ShardStats, ShardTenant, Ticket};

/// What workload to synthesize.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// RNG seed; everything in the plan derives from it.
    pub seed: u64,
    /// Timed waves after the priming wave.
    pub waves: usize,
    /// Tenants admitted per timed wave.
    pub tenants_per_wave: usize,
    /// Input vectors streamed per tenant *per phase* (each tenant streams
    /// twice: before and after its parameter swap).
    pub items_per_tenant: usize,
    /// Run the scheduler-state checker on every shard at the end of each
    /// wave (and the final drain), failing on the first violation.
    pub verify_each_wave: bool,
    /// Retain every tenant's outputs in the report (for bit-exactness
    /// cross-checks between shard counts); off for throughput runs.
    pub keep_outputs: bool,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            seed: 0x5eed_cafe,
            waves: 3,
            tenants_per_wave: 8,
            items_per_tenant: 32,
            verify_each_wave: true,
            keep_outputs: false,
        }
    }
}

/// One tenant's full scripted lifecycle.
#[derive(Debug, Clone)]
pub struct LoadJob {
    /// Unique name (also the admission-log entry): `w<wave>.t<idx>.<kernel>`.
    pub name: String,
    /// The application graph (structure + initial coefficients).
    pub graph: AppGraph,
    /// Coefficients for the mid-life parameter swap (one per
    /// coefficient-bearing node; empty if the kernel has none).
    pub swap_coeffs: Vec<FpValue>,
    /// Input vectors streamed in each phase.
    pub inputs: Vec<Vec<FpValue>>,
}

/// A fully synthesized workload: `waves[0]` is the untimed priming wave.
#[derive(Debug, Clone)]
pub struct LoadPlan {
    /// The seed the plan was synthesized from.
    pub seed: u64,
    /// Floating-point format of every graph and stream.
    pub format: FpFormat,
    /// Jobs per wave, in dispatch order.
    pub waves: Vec<Vec<LoadJob>>,
    /// Verify every shard at each wave boundary.
    pub verify_each_wave: bool,
    /// Retain outputs in the report.
    pub keep_outputs: bool,
}

impl LoadPlan {
    /// Total tenants across all waves (priming included).
    pub fn tenants(&self) -> usize {
        self.waves.iter().map(Vec::len).sum()
    }
}

/// Per-wave accounting.
#[derive(Debug, Clone)]
pub struct WaveReport {
    /// Wave index (0 = priming).
    pub wave: usize,
    /// Tenants driven through their full lifecycle.
    pub jobs: usize,
    /// Input vectors executed (both phases).
    pub items: u64,
    /// Wall time of the wave (dispatch through last release).
    pub seconds: f64,
    /// False only for the priming wave (excluded from throughput).
    pub timed: bool,
    /// Admissions diverted off their affine shard this wave
    /// (deterministic: spilling reads only the caller's own
    /// outstanding-ticket counts).
    pub spills: u64,
    /// `QueueFull` rejections absorbed by retry this wave (depends on
    /// worker timing — reported, never fingerprinted).
    pub retries: u64,
}

/// One tenant's retained outputs: phase-1 and phase-2 output vectors,
/// one per input vector.
pub type JobOutputs = [Vec<Vec<FpValue>>; 2];

/// What a plan's run produced.
#[derive(Debug)]
pub struct LoadReport {
    /// Shards the plan ran over.
    pub shards: usize,
    /// The plan's seed.
    pub seed: u64,
    /// Per-wave accounting, priming first.
    pub waves: Vec<WaveReport>,
    /// Items executed in *timed* waves.
    pub total_items: u64,
    /// Wall time of the timed waves.
    pub timed_seconds: f64,
    /// Items per second over the timed waves (the headline figure).
    pub throughput: f64,
    /// FNV-1a over every output bit in plan order — equal across runs,
    /// shard counts, worker counts, and machines for one (seed, format).
    pub fingerprint: u64,
    /// Aggregate configuration-cache hits across shards.
    pub warm_hits: u64,
    /// Aggregate cache misses (cold compiles) across shards.
    pub cold_misses: u64,
    /// hits / (hits + misses) over all shards.
    pub warm_hit_rate: f64,
    /// Total spilled admissions.
    pub spills: u64,
    /// Total backpressure retries (timing-dependent).
    pub retries: u64,
    /// Final per-shard stats from the closing drain (includes each
    /// shard's admission log).
    pub shard_stats: Vec<ShardStats>,
    /// Retained outputs by job name (when `keep_outputs`).
    pub outputs: Option<BTreeMap<String, JobOutputs>>,
}

impl LoadReport {
    /// Admission logs per shard (names in the order each worker admitted
    /// them) — the determinism witness.
    pub fn admission_orders(&self) -> Vec<&[String]> {
        self.shard_stats.iter().map(|s| s.admission_order.as_slice()).collect()
    }
}

fn fp_stream(rng: &mut SplitMix64, n: usize, format: FpFormat) -> Vec<FpValue> {
    (0..n).map(|_| FpValue::from_f64(rng.unit_f64() * 4.0 - 2.0, format)).collect()
}

/// Expands a spec into a complete plan. Pure function of (format, spec):
/// no wall clock, no host state.
pub fn synthesize(format: FpFormat, spec: &LoadSpec) -> LoadPlan {
    let mut rng = SplitMix64::new(spec.seed);
    let lib = library(format);
    let mut waves = Vec::with_capacity(spec.waves + 1);
    // Priming wave: one tenant per library structure, so the timed waves
    // run against warm caches on every affine shard.
    let priming = lib
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let coeffs = w.graph.coeff_nodes().len();
            LoadJob {
                name: format!("w0.t{i}.{}", w.name),
                graph: w.graph.clone(),
                swap_coeffs: fp_stream(&mut rng, coeffs, format),
                inputs: (0..spec.items_per_tenant)
                    .map(|_| fp_stream(&mut rng, w.graph.num_inputs, format))
                    .collect(),
            }
        })
        .collect();
    waves.push(priming);
    for w in 1..=spec.waves {
        let mut jobs = Vec::with_capacity(spec.tenants_per_wave);
        for t in 0..spec.tenants_per_wave {
            // Mostly warm traffic (library structures under fresh
            // coefficients), salted with ~1-in-8 novel FIR structures so
            // the cold path stays exercised mid-run.
            let (kernel_name, graph) = if rng.below(8) == 0 {
                let taps = 3 + rng.index(4);
                let w = fir_seeded(format, taps, rng.next_u64());
                (w.name, w.graph)
            } else {
                let w = &lib[rng.index(lib.len())];
                let coeffs = w.graph.coeff_nodes().len();
                let fresh = fp_stream(&mut rng, coeffs, format);
                (w.name.clone(), w.graph.with_coeffs(&fresh))
            };
            let coeffs = graph.coeff_nodes().len();
            jobs.push(LoadJob {
                name: format!("w{w}.t{t}.{kernel_name}"),
                swap_coeffs: fp_stream(&mut rng, coeffs, format),
                inputs: (0..spec.items_per_tenant)
                    .map(|_| fp_stream(&mut rng, graph.num_inputs, format))
                    .collect(),
                graph,
            });
        }
        waves.push(jobs);
    }
    LoadPlan {
        seed: spec.seed,
        format,
        waves,
        verify_each_wave: spec.verify_each_wave,
        keep_outputs: spec.keep_outputs,
    }
}

/// Retries a dispatch until the shard accepts it, absorbing
/// [`Reject::QueueFull`] backpressure with a short sleep. The retry
/// targets the same dispatch (rejection has no side effects), so
/// backpressure never perturbs dispatch order.
fn with_backpressure<T>(mut dispatch: impl FnMut() -> Result<T, Reject>, retries: &mut u64) -> T {
    loop {
        match dispatch() {
            Ok(t) => return t,
            Err(Reject::QueueFull { .. }) => {
                *retries += 1;
                std::thread::sleep(Duration::from_micros(50));
            }
        }
    }
}

fn digest_outputs(fp: &mut Fnv, outputs: &[Vec<FpValue>]) {
    fp.write(outputs.len() as u64);
    for vector in outputs {
        fp.write(vector.len() as u64);
        for v in vector {
            fp.write(v.bits);
        }
    }
}

/// Everything in flight for one job: the five tickets of its scripted
/// lifecycle, dispatched back-to-back (FIFO per shard serializes them
/// in order, so a tenant's release always precedes the next tenant's
/// admission *on that shard* — at most one resident tenant per shard,
/// which means placement never waits on capacity, while different
/// shards pipeline different jobs concurrently).
struct InFlight {
    at: ShardTenant,
    admit: Ticket<Result<runtime::Admission, runtime::RuntimeError>>,
    run1: Ticket<Result<Vec<runtime::TenantRun>, runtime::RuntimeError>>,
    swap: Ticket<Result<runtime::SwapReport, runtime::RuntimeError>>,
    run2: Ticket<Result<Vec<runtime::TenantRun>, runtime::RuntimeError>>,
    release: Ticket<Result<Vec<runtime::Admitted>, runtime::RuntimeError>>,
}

/// Drives a plan through a server: per wave, every job's full lifecycle
/// (admit → stream → swap → stream → release) is dispatched without
/// waiting — the server names the tenant at dispatch time — and the
/// replies are collected once the wave is fully in flight. Then
/// (optionally) every shard is verified. Returns the aggregated report;
/// fails on the first invariant violation a wave-boundary verification
/// finds.
pub fn run(server: &mut ShardServer, plan: &LoadPlan) -> Result<LoadReport, DrainError> {
    let mut fp = Fnv::new();
    let mut wave_reports = Vec::with_capacity(plan.waves.len());
    let mut total_items = 0u64;
    let mut timed_seconds = 0.0f64;
    let mut total_spills = 0u64;
    let mut total_retries = 0u64;
    let mut kept: BTreeMap<String, JobOutputs> = BTreeMap::new();

    for (w, jobs) in plan.waves.iter().enumerate() {
        let timed = w > 0;
        let mut retries = 0u64;
        let mut spills = 0u64;
        let t0 = Instant::now();

        // Dispatch every job's full lifecycle in plan order. Only the
        // admission tickets carry routing load, and they stay open until
        // the collection loop below, so the router sees load build up
        // job-by-job within the wave and fall back to zero at the
        // boundary — a pure function of this dispatch order.
        let mut flights = Vec::with_capacity(jobs.len());
        for job in jobs {
            let (at, pick, admit) = with_backpressure(
                || server.submit(job.name.clone(), job.graph.clone()),
                &mut retries,
            );
            if matches!(pick, crate::route::RoutePick::Spilled { .. }) {
                spills += 1;
            }
            let run1 = with_backpressure(
                || {
                    server.run(
                        at.shard,
                        vec![StreamRequest { tenant: at.tenant, inputs: job.inputs.clone() }],
                    )
                },
                &mut retries,
            );
            let swap =
                with_backpressure(|| server.swap_params(at, job.swap_coeffs.clone()), &mut retries);
            let run2 = with_backpressure(
                || {
                    server.run(
                        at.shard,
                        vec![StreamRequest { tenant: at.tenant, inputs: job.inputs.clone() }],
                    )
                },
                &mut retries,
            );
            let release = with_backpressure(|| server.release(at), &mut retries);
            flights.push(InFlight { at, admit, run1, swap, run2, release });
        }

        // Collect in plan order (not completion order), so the digest is
        // shard-count-invariant. Collecting the release replies doubles
        // as the wave's completion barrier: replies are FIFO with the
        // work.
        let mut items = 0u64;
        for (job, flight) in jobs.iter().zip(flights) {
            let admission = flight.admit.wait().expect("admission failed");
            assert_eq!(
                admission.tenant(),
                flight.at.tenant,
                "tenant-id prediction broke: shard runtimes must assign ids in arrival order"
            );
            let out1 = flight
                .run1
                .wait()
                .expect("phase-1 run failed")
                .pop()
                .expect("one tenant per run")
                .outputs;
            flight.swap.wait().expect("parameter swap failed");
            let out2 = flight
                .run2
                .wait()
                .expect("phase-2 run failed")
                .pop()
                .expect("one tenant per run")
                .outputs;
            flight.release.wait().expect("release failed");
            items += (out1.len() + out2.len()) as u64;
            digest_outputs(&mut fp, &out1);
            digest_outputs(&mut fp, &out2);
            if plan.keep_outputs {
                kept.insert(job.name.clone(), [out1, out2]);
            }
        }
        let seconds = t0.elapsed().as_secs_f64();

        if timed {
            total_items += items;
            timed_seconds += seconds;
        }
        total_spills += spills;
        total_retries += retries;
        wave_reports.push(WaveReport { wave: w, jobs: jobs.len(), items, seconds, timed, spills, retries });

        // Wave boundary: prove every shard's scheduler invariants before
        // the next wave starts (outside the timed window).
        if plan.verify_each_wave {
            server.drain(true)?;
        }
    }

    let shard_stats = server.drain(plan.verify_each_wave)?;
    let warm_hits: u64 = shard_stats.iter().map(|s| s.cache.hits).sum();
    let cold_misses: u64 = shard_stats.iter().map(|s| s.cache.misses).sum();
    Ok(LoadReport {
        shards: server.shards(),
        seed: plan.seed,
        waves: wave_reports,
        total_items,
        timed_seconds,
        throughput: total_items as f64 / timed_seconds.max(1e-12),
        fingerprint: fp.finish(),
        warm_hits,
        cold_misses,
        warm_hit_rate: warm_hits as f64 / ((warm_hits + cold_misses) as f64).max(1.0),
        spills: total_spills,
        retries: total_retries,
        shard_stats,
        outputs: plan.keep_outputs.then_some(kept),
    })
}
