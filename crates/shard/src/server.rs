//! The sharded front-end: N worker threads, each owning one [`Runtime`],
//! fed by bounded FIFO queues with explicit backpressure.
//!
//! Request flow: the caller holds a [`ShardServer`] (`&mut self` — one
//! dispatcher, the classic single-ingress front-end). Each operation is
//! routed (admissions by [`RouteKey`] affinity, tenant-addressed
//! operations to the tenant's home shard), wrapped in a typed request,
//! and `try_send`-ed into the target shard's **bounded** queue. A full
//! queue returns [`Reject::QueueFull`] immediately — the caller decides
//! whether to retry, shed, or redirect; the server never silently drops
//! accepted work. On success the caller gets a [`Ticket`]: a one-shot
//! receiver for that operation's typed reply. Admission tickets double
//! as the router's load signal — each open one counts one unit of
//! outstanding work against its shard, decremented exactly once at
//! [`Ticket::wait`] or drop.
//!
//! Workers drain their queue in strict FIFO order, so *per-shard
//! admission order equals dispatch order* — the property the seeded
//! load generator's determinism test pins down. Each worker records
//! queue-wait / admit / execute latencies into shared histograms
//! (aggregate and per-shard) and keeps an admission log for the
//! determinism proof.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use runtime::{
    Admission, Admitted, CacheStats, Ledger, Runtime, RuntimeConfig, RuntimeError, StreamRequest,
    SwapReport, TenantId, TenantRun,
};
use softfloat::FpValue;
use vcgra::app::AppGraph;

use crate::route::{RouteKey, RoutePick, Router};

/// Serving-tier construction parameters.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of shards (= worker threads = independent `Runtime`s).
    pub shards: usize,
    /// Per-shard runtime template (each shard gets its own clone, i.e.
    /// its own grid pool and configuration cache).
    pub runtime: RuntimeConfig,
    /// Bounded queue depth per shard; a full queue rejects with
    /// [`Reject::QueueFull`].
    pub queue_depth: usize,
    /// Router spill margin: divert from the affine shard when its
    /// outstanding load runs ahead of the least-loaded shard by at least
    /// this many tickets. `u64::MAX` disables spilling (pure affinity).
    pub spill_margin: u64,
}

impl ShardConfig {
    /// A config with `shards` shards and defaults everywhere else.
    pub fn new(shards: usize) -> Self {
        ShardConfig { shards, ..ShardConfig::default() }
    }
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 2,
            runtime: RuntimeConfig::default(),
            queue_depth: 64,
            spill_margin: 8,
        }
    }
}

/// Backpressure: why a dispatch was refused. The request was **not**
/// enqueued; retrying later (or shedding) is the caller's decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reject {
    /// The target shard's bounded queue is at capacity.
    QueueFull {
        /// The shard whose queue was full.
        shard: usize,
        /// The queue's (fixed) capacity.
        capacity: usize,
    },
}

impl fmt::Display for Reject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reject::QueueFull { shard, capacity } => {
                write!(f, "shard {shard} queue full ({capacity} requests outstanding)")
            }
        }
    }
}

impl std::error::Error for Reject {}

/// A tenant's address in the tier: which shard owns it, and its id
/// *within that shard's runtime* (tenant ids are per-shard, not global).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardTenant {
    /// Owning shard.
    pub shard: usize,
    /// Tenant id inside that shard's `Runtime`.
    pub tenant: TenantId,
}

/// One-shot receiver for a dispatched operation's reply. An *admission*
/// ticket additionally counts one unit of outstanding load against its
/// shard until it settles — exactly once, at [`Ticket::wait`] or drop —
/// which is what makes the router's load signal a pure function of the
/// caller's own submit/collect order. Tickets for the other operations
/// carry no load (they follow an admission the router already charged).
#[derive(Debug)]
pub struct Ticket<T> {
    rx: Receiver<T>,
    load: Option<Arc<AtomicU64>>,
    settled: bool,
}

impl<T> Ticket<T> {
    /// Blocks until the worker replies, releasing the outstanding-load
    /// unit this ticket held.
    ///
    /// # Panics
    /// If the shard worker exited without replying (a worker panic —
    /// the tier's invariant is that accepted work is always answered).
    pub fn wait(mut self) -> T {
        let v = self.rx.recv().expect("shard worker exited without replying");
        self.settle();
        v
    }

    fn settle(&mut self) {
        if !self.settled {
            self.settled = true;
            if let Some(load) = &self.load {
                load.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

impl<T> Drop for Ticket<T> {
    fn drop(&mut self) {
        self.settle();
    }
}

/// Point-in-time view of one shard (via [`ShardServer::stats`] or
/// [`ShardServer::drain`]). Because replies are FIFO with the work, a
/// stats reply proves every earlier request on that shard completed.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// The shard.
    pub shard: usize,
    /// The shard runtime's cost ledger.
    pub ledger: Ledger,
    /// The shard's configuration-cache counters.
    pub cache: CacheStats,
    /// Tenants currently resident (placed, not queued).
    pub live_tenants: usize,
    /// Tenants waiting in the runtime's internal admission queue.
    pub queue_len: usize,
    /// PE-utilization of the shard's grid pool.
    pub utilization: f64,
    /// Requests this worker has fully processed.
    pub processed: u64,
    /// Admission log: application names in the order the worker admitted
    /// them (the determinism test's witness).
    pub admission_order: Vec<String>,
}

/// A shard's final state, returned by [`ShardServer::shutdown`].
#[derive(Debug)]
pub struct ShardFinal {
    /// The shard.
    pub shard: usize,
    /// Final cost ledger.
    pub ledger: Ledger,
    /// Final cache counters.
    pub cache: CacheStats,
    /// Total requests processed over the shard's lifetime.
    pub processed: u64,
    /// Full admission log.
    pub admission_order: Vec<String>,
    /// Closing scheduler-state verification of the shard's runtime.
    pub verify: verify::VerifyReport,
}

/// Why a drain failed. Accepted work still completed — drain only
/// reports, it never cancels.
#[derive(Debug)]
pub enum DrainError {
    /// A shard's scheduler-state verification found a violation.
    Invariant {
        /// The offending shard.
        shard: usize,
        /// The failing report (violations are non-empty).
        report: verify::VerifyReport,
    },
}

impl fmt::Display for DrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrainError::Invariant { shard, report } => {
                write!(f, "shard {shard} failed verification: {}", report.summary())
            }
        }
    }
}

impl std::error::Error for DrainError {}

/// Typed operations a worker serves. Every variant carries its own
/// reply channel, so callers get back exactly the type the underlying
/// `Runtime` method returns — no downcasting, no stringly results.
enum Op {
    Admit { name: String, graph: AppGraph, reply: Sender<Result<Admission, RuntimeError>> },
    Swap { tenant: TenantId, coeffs: Vec<FpValue>, reply: Sender<Result<SwapReport, RuntimeError>> },
    Run { requests: Vec<StreamRequest>, reply: Sender<Result<Vec<TenantRun>, RuntimeError>> },
    Release { tenant: TenantId, reply: Sender<Result<Vec<Admitted>, RuntimeError>> },
    Verify { reply: Sender<verify::VerifyReport> },
    Stats { reply: Sender<ShardStats> },
}

impl Op {
    fn kind(&self) -> &'static str {
        match self {
            Op::Admit { .. } => "admit",
            Op::Swap { .. } => "swap",
            Op::Run { .. } => "run",
            Op::Release { .. } => "release",
            Op::Verify { .. } => "verify",
            Op::Stats { .. } => "stats",
        }
    }
}

struct Request {
    id: u64,
    enqueued: Instant,
    op: Op,
}

/// The serving tier: router + bounded queues + worker threads.
pub struct ShardServer {
    router: Router,
    queues: Vec<SyncSender<Request>>,
    workers: Vec<JoinHandle<ShardFinal>>,
    registry: Arc<trace::Registry>,
    queue_depth: usize,
    next_id: u64,
    /// Admissions dispatched per shard. Because each shard serves its
    /// queue FIFO and its `Runtime` assigns tenant ids in arrival order
    /// starting at 0, the k-th admission dispatched to a shard is tenant
    /// k — so [`ShardServer::submit`] can name the tenant at dispatch
    /// time, before the worker replies, and callers can pipeline a
    /// tenant's whole lifecycle without a round-trip per step.
    submitted: Vec<u64>,
    routed: trace::Counter,
    spilled: trace::Counter,
    rejected: trace::Counter,
    depth: Vec<trace::Gauge>,
}

impl ShardServer {
    /// Starts `cfg.shards` workers, each owning a fresh `Runtime` built
    /// from the config's runtime template.
    pub fn start(cfg: ShardConfig) -> Self {
        assert!(cfg.shards > 0, "serving tier needs at least one shard");
        assert!(cfg.queue_depth > 0, "queue depth must be positive");
        let registry = Arc::new(trace::Registry::new());
        let mut queues = Vec::with_capacity(cfg.shards);
        let mut workers = Vec::with_capacity(cfg.shards);
        let mut depth = Vec::with_capacity(cfg.shards);
        for shard in 0..cfg.shards {
            let (tx, rx) = std::sync::mpsc::sync_channel::<Request>(cfg.queue_depth);
            let rt_cfg = cfg.runtime.clone();
            let reg = Arc::clone(&registry);
            let gauge = registry.gauge(&format!("shard.{shard}.queue_depth"));
            let worker_gauge = gauge.clone();
            let handle = std::thread::Builder::new()
                .name(format!("shard-{shard}"))
                .spawn(move || worker_loop(shard, rx, rt_cfg, reg, worker_gauge))
                .expect("spawn shard worker");
            queues.push(tx);
            workers.push(handle);
            depth.push(gauge);
        }
        ShardServer {
            router: Router::new(cfg.shards, cfg.spill_margin),
            queues,
            workers,
            routed: registry.counter("shard.route"),
            spilled: registry.counter("shard.spill"),
            rejected: registry.counter("shard.reject"),
            registry,
            queue_depth: cfg.queue_depth,
            next_id: 0,
            submitted: vec![0; cfg.shards],
            depth,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    /// The tier's metrics registry (`shard.*` cells live here; workers
    /// also record their latency histograms into it).
    pub fn metrics(&self) -> &trace::Registry {
        &self.registry
    }

    /// Current outstanding-ticket count per shard (the router's load
    /// signal).
    pub fn loads(&self) -> Vec<u64> {
        self.router.loads()
    }

    /// The routing key an admission of `graph` would be routed by.
    pub fn route_key(&self, graph: &AppGraph) -> RouteKey {
        RouteKey::of(graph)
    }

    /// Routes and dispatches an admission. Returns the tenant's address
    /// (shard + the tenant id the shard's runtime will assign — known at
    /// dispatch time, see [`ShardServer::submit`]'s field note on
    /// `submitted`), why the shard was chosen, and a ticket for the
    /// admission report — or [`Reject::QueueFull`] if the chosen shard's
    /// queue is at capacity (nothing was enqueued; the route decision
    /// itself has no side effect on load, so an immediate retry targets
    /// the same shard).
    #[allow(clippy::type_complexity)]
    pub fn submit(
        &mut self,
        name: impl Into<String>,
        graph: AppGraph,
    ) -> Result<(ShardTenant, RoutePick, Ticket<Result<Admission, RuntimeError>>), Reject> {
        let key = RouteKey::of(&graph);
        let (shard, pick) = self.router.route(key);
        let mut span = trace::span("shard.route");
        span.arg("key", key.hash());
        span.arg("shard", shard as u64);
        span.arg("spilled", matches!(pick, RoutePick::Spilled { .. }));
        self.routed.inc();
        if let RoutePick::Spilled { from } = pick {
            self.spilled.inc();
            trace::instant("shard.spill", vec![("from", (from as u64).into()), ("to", (shard as u64).into())]);
        }
        let (tx, rx) = channel();
        self.dispatch(shard, Op::Admit { name: name.into(), graph, reply: tx })?;
        let tenant = self.submitted[shard];
        self.submitted[shard] += 1;
        Ok((ShardTenant { shard, tenant }, pick, self.ticket(shard, rx)))
    }

    /// Dispatches a parameter swap to the tenant's home shard.
    pub fn swap_params(
        &mut self,
        at: ShardTenant,
        coeffs: Vec<FpValue>,
    ) -> Result<Ticket<Result<SwapReport, RuntimeError>>, Reject> {
        let (tx, rx) = channel();
        self.dispatch(at.shard, Op::Swap { tenant: at.tenant, coeffs, reply: tx })?;
        Ok(self.ticket_unloaded(rx))
    }

    /// Dispatches a streaming run to one shard. The requests' tenant ids
    /// are per-shard — they must all belong to `shard`.
    #[allow(clippy::type_complexity)]
    pub fn run(
        &mut self,
        shard: usize,
        requests: Vec<StreamRequest>,
    ) -> Result<Ticket<Result<Vec<TenantRun>, RuntimeError>>, Reject> {
        let (tx, rx) = channel();
        self.dispatch(shard, Op::Run { requests, reply: tx })?;
        Ok(self.ticket_unloaded(rx))
    }

    /// Dispatches a release of one tenant (or cancellation of its queued
    /// admission) to its home shard.
    #[allow(clippy::type_complexity)]
    pub fn release(
        &mut self,
        at: ShardTenant,
    ) -> Result<Ticket<Result<Vec<Admitted>, RuntimeError>>, Reject> {
        let (tx, rx) = channel();
        self.dispatch(at.shard, Op::Release { tenant: at.tenant, reply: tx })?;
        Ok(self.ticket_unloaded(rx))
    }

    /// Dispatches a scheduler-state verification of one shard's runtime.
    pub fn verify_shard(&mut self, shard: usize) -> Result<Ticket<verify::VerifyReport>, Reject> {
        let (tx, rx) = channel();
        self.dispatch(shard, Op::Verify { reply: tx })?;
        Ok(self.ticket_unloaded(rx))
    }

    /// Dispatches a stats snapshot request to one shard.
    pub fn stats(&mut self, shard: usize) -> Result<Ticket<ShardStats>, Reject> {
        let (tx, rx) = channel();
        self.dispatch(shard, Op::Stats { reply: tx })?;
        Ok(self.ticket_unloaded(rx))
    }

    /// Waits until every shard has served everything dispatched before
    /// this call (replies are FIFO with the work, so one synchronous
    /// round-trip per shard is a completion barrier). With `verify`, runs
    /// the scheduler-state checker on each shard first and fails on the
    /// first [`verify::Violation`] — the check the soak runs every wave.
    /// Uses blocking sends, so drain itself is never rejected.
    pub fn drain(&mut self, verify: bool) -> Result<Vec<ShardStats>, DrainError> {
        let mut out = Vec::with_capacity(self.shards());
        for shard in 0..self.shards() {
            if verify {
                let (tx, rx) = channel();
                self.send_blocking(shard, Op::Verify { reply: tx });
                let report = rx.recv().expect("shard worker exited during drain");
                if !report.ok() {
                    return Err(DrainError::Invariant { shard, report });
                }
            }
            let (tx, rx) = channel();
            self.send_blocking(shard, Op::Stats { reply: tx });
            out.push(rx.recv().expect("shard worker exited during drain"));
        }
        Ok(out)
    }

    /// Graceful shutdown: closes every queue, joins every worker, and
    /// returns their final state (each including a closing verification
    /// of its runtime). Work already accepted completes first.
    pub fn shutdown(self) -> Vec<ShardFinal> {
        let ShardServer { queues, workers, .. } = self;
        drop(queues);
        workers
            .into_iter()
            .map(|w| w.join().expect("shard worker panicked"))
            .collect()
    }

    /// Enqueues `op` on `shard`, refusing (without side effects) when the
    /// bounded queue is full. Request ids advance only on acceptance, so
    /// a rejected-then-retried operation keeps one id.
    fn dispatch(&mut self, shard: usize, op: Op) -> Result<(), Reject> {
        let kind = op.kind();
        let req = Request { id: self.next_id, enqueued: Instant::now(), op };
        match self.queues[shard].try_send(req) {
            Ok(()) => {
                self.next_id += 1;
                self.depth[shard].add(1);
                Ok(())
            }
            Err(TrySendError::Full(_)) => {
                self.rejected.inc();
                trace::instant(
                    "shard.reject",
                    vec![("shard", (shard as u64).into()), ("op", kind.into())],
                );
                Err(Reject::QueueFull { shard, capacity: self.queue_depth })
            }
            Err(TrySendError::Disconnected(_)) => {
                panic!("shard {shard} worker exited while the server was live")
            }
        }
    }

    /// Blocking variant for drain: waits for queue space instead of
    /// rejecting.
    fn send_blocking(&mut self, shard: usize, op: Op) {
        let req = Request { id: self.next_id, enqueued: Instant::now(), op };
        self.next_id += 1;
        self.depth[shard].add(1);
        self.queues[shard]
            .send(req)
            .unwrap_or_else(|_| panic!("shard {shard} worker exited while the server was live"));
    }

    /// Wraps an admission's reply receiver into a ticket, charging one
    /// unit of outstanding load to `shard` until the ticket settles.
    fn ticket<T>(&self, shard: usize, rx: Receiver<T>) -> Ticket<T> {
        let load = self.router.load_cell(shard);
        load.fetch_add(1, Ordering::SeqCst);
        Ticket { rx, load: Some(load), settled: false }
    }

    /// A ticket that carries no routing load (every operation other than
    /// admission — the admission already charged its shard).
    fn ticket_unloaded<T>(&self, rx: Receiver<T>) -> Ticket<T> {
        Ticket { rx, load: None, settled: false }
    }
}

/// The shard's full invariant sweep: the sched pass plus the modeled
/// time-axis pass, merged into one report so callers draining
/// [`Op::Verify`] (and the shutdown path) prove both in one round trip.
fn verify_all(rt: &Runtime) -> verify::VerifyReport {
    let mut report = rt.verify();
    let timeline = rt.verify_timeline();
    report.pass = "sched+timeline";
    report.checked += timeline.checked;
    report.seconds += timeline.seconds;
    report.violations.extend(timeline.violations);
    report
}

/// One shard's worker: owns the runtime, serves its queue FIFO, records
/// latency into the shared registry, and returns its final state when
/// the server closes the queue.
fn worker_loop(
    shard: usize,
    rx: Receiver<Request>,
    rt_cfg: RuntimeConfig,
    registry: Arc<trace::Registry>,
    depth: trace::Gauge,
) -> ShardFinal {
    let mut rt = Runtime::new(rt_cfg);
    let queue_wait = registry.histogram("shard.queue_wait_ns");
    let queue_wait_local = registry.histogram(&format!("shard.{shard}.queue_wait_ns"));
    let admit_ns = registry.histogram("shard.admit_ns");
    let admit_local = registry.histogram(&format!("shard.{shard}.admit_ns"));
    let execute_ns = registry.histogram("shard.execute_ns");
    let execute_local = registry.histogram(&format!("shard.{shard}.execute_ns"));
    let mut processed = 0u64;
    let mut admission_order: Vec<String> = Vec::new();
    while let Ok(req) = rx.recv() {
        depth.add(-1);
        let wait = req.enqueued.elapsed();
        queue_wait.record_duration(wait);
        queue_wait_local.record_duration(wait);
        trace::instant(
            "shard.queue_wait",
            vec![
                ("shard", (shard as u64).into()),
                ("id", req.id.into()),
                ("wait_ns", (wait.as_nanos() as u64).into()),
            ],
        );
        let mut span = trace::span("shard.serve");
        span.arg("shard", shard as u64);
        span.arg("id", req.id);
        span.arg("op", req.op.kind());
        match req.op {
            Op::Admit { name, graph, reply } => {
                admission_order.push(name.clone());
                let t0 = Instant::now();
                let result = rt.submit(name, graph);
                let dt = t0.elapsed();
                admit_ns.record_duration(dt);
                admit_local.record_duration(dt);
                let _ = reply.send(result);
            }
            Op::Swap { tenant, coeffs, reply } => {
                let t0 = Instant::now();
                let result = rt.swap_params(tenant, &coeffs);
                let dt = t0.elapsed();
                admit_ns.record_duration(dt);
                admit_local.record_duration(dt);
                let _ = reply.send(result);
            }
            Op::Run { requests, reply } => {
                let t0 = Instant::now();
                let result = rt.run(requests);
                let dt = t0.elapsed();
                execute_ns.record_duration(dt);
                execute_local.record_duration(dt);
                let _ = reply.send(result);
            }
            Op::Release { tenant, reply } => {
                let _ = reply.send(rt.release(tenant));
            }
            Op::Verify { reply } => {
                let _ = reply.send(verify_all(&rt));
            }
            Op::Stats { reply } => {
                let _ = reply.send(ShardStats {
                    shard,
                    ledger: *rt.ledger(),
                    cache: rt.cache_stats(),
                    live_tenants: rt.tenants().count(),
                    queue_len: rt.queue_len(),
                    utilization: rt.utilization(),
                    processed: processed + 1,
                    admission_order: admission_order.clone(),
                });
            }
        }
        processed += 1;
    }
    // Queue closed: graceful shutdown. Verify the runtime one last time
    // so every shard's invariants are proven at the moment it stops.
    let verify = verify_all(&rt);
    ShardFinal {
        shard,
        ledger: *rt.ledger(),
        cache: rt.cache_stats(),
        processed,
        admission_order,
        verify,
    }
}
