//! Cache-affine admission routing.
//!
//! The runtime's configuration cache is keyed by *(region, structure)*
//! with coefficient values excluded, so the natural affinity key for a
//! request is its graph's **structure**: route every structurally
//! identical submission to the same shard and that shard's cache serves
//! all of them from one compile. [`RouteKey`] is that identity as a
//! 64-bit FNV-1a hash — stable across processes and machines (no
//! `DefaultHasher` seeding, no pointer values), so routing decisions are
//! reproducible wherever the same workload runs.
//!
//! [`Router`] layers load balancing on top: the primary shard is
//! `key mod shards`; when the primary's outstanding load runs ahead of
//! the least-loaded shard by at least `spill_margin`, the request spills
//! to the least-loaded shard instead. The load signal is the number of
//! **uncollected tickets** per shard (incremented at dispatch,
//! decremented when the caller collects or drops the ticket) — a value
//! that depends only on the caller's own submit/collect order, never on
//! worker timing, which is what makes a seeded load-generator run
//! reproducible down to per-shard admission order.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use vcgra::app::{AppGraph, AppSource};
use vcgra::PeMode;

/// 64-bit FNV-1a, the crate's stable structural hash.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub(crate) fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    #[inline]
    pub(crate) fn write(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

/// Structure-only routing key: hashes everything the runtime's
/// `ConfigKey` keys a compile by *except* the region shape (which the
/// shard's own scheduler picks) — format, arity, per-node op/wiring/
/// has-coefficient flags, and outputs. Coefficient **values** are
/// excluded, so a warm re-admission routes to the shard that compiled
/// the structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RouteKey(u64);

fn src_tag(s: AppSource) -> (u64, u64) {
    match s {
        AppSource::External(i) => (0, i as u64),
        AppSource::Node(j) => (1, j as u64),
        AppSource::Zero => (2, 0),
    }
}

fn op_tag(op: PeMode) -> u64 {
    match op {
        PeMode::Mac => 0,
        PeMode::Mul => 1,
        PeMode::Add => 2,
        PeMode::Pass => 3,
    }
}

impl RouteKey {
    /// Derives the routing key for a graph.
    pub fn of(graph: &AppGraph) -> Self {
        let mut h = Fnv::new();
        h.write(u64::from(graph.format.we));
        h.write(u64::from(graph.format.wf));
        h.write(graph.num_inputs as u64);
        h.write(graph.nodes.len() as u64);
        for node in &graph.nodes {
            h.write(op_tag(node.op));
            let (ta, va) = src_tag(node.a);
            let (tb, vb) = src_tag(node.b);
            h.write(ta);
            h.write(va);
            h.write(tb);
            h.write(vb);
            h.write(u64::from(node.coeff.is_some()));
        }
        h.write(graph.outputs.len() as u64);
        for &o in &graph.outputs {
            h.write(o as u64);
        }
        RouteKey(h.finish())
    }

    /// The raw hash (recorded in `shard.route` spans).
    pub fn hash(&self) -> u64 {
        self.0
    }

    /// The affine (primary) shard under `shards` shards.
    pub fn shard(&self, shards: usize) -> usize {
        debug_assert!(shards > 0);
        (self.0 % shards as u64) as usize
    }
}

/// Why the router picked the shard it picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePick {
    /// The affine shard was within the load margin.
    Affinity,
    /// The affine shard ran ahead of the least-loaded one by at least
    /// the spill margin; the request went to the least-loaded shard.
    Spilled {
        /// The affine shard the request was diverted from.
        from: usize,
    },
}

/// The admission router: affinity hash + spill-on-imbalance.
#[derive(Debug)]
pub struct Router {
    /// Outstanding (dispatched, uncollected) tickets per shard. Shared
    /// with the [`crate::server::Ticket`]s, which decrement on collect.
    outstanding: Vec<Arc<AtomicU64>>,
    /// Spill when `load(primary) - min(load) >= spill_margin`.
    /// `u64::MAX` disables spilling entirely (pure affinity).
    spill_margin: u64,
}

impl Router {
    /// A router over `shards` shards with the given spill margin.
    pub fn new(shards: usize, spill_margin: u64) -> Self {
        assert!(shards > 0, "router needs at least one shard");
        Router {
            outstanding: (0..shards).map(|_| Arc::new(AtomicU64::new(0))).collect(),
            spill_margin: spill_margin.max(1),
        }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.outstanding.len()
    }

    /// Current outstanding-ticket count per shard.
    pub fn loads(&self) -> Vec<u64> {
        self.outstanding.iter().map(|a| a.load(Ordering::SeqCst)).collect()
    }

    /// Shared load cell for one shard (held by tickets).
    pub(crate) fn load_cell(&self, shard: usize) -> Arc<AtomicU64> {
        Arc::clone(&self.outstanding[shard])
    }

    /// Picks the shard for a new admission: the affine shard unless its
    /// outstanding load runs ahead of the least-loaded shard by at least
    /// the spill margin. Ties in the least-loaded scan break to the
    /// lowest shard index, so the decision is a pure function of the
    /// load vector.
    pub fn route(&self, key: RouteKey) -> (usize, RoutePick) {
        let loads = self.loads();
        let primary = key.shard(loads.len());
        let (min_shard, min_load) = loads
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|&(i, load)| (load, i))
            .expect("router has at least one shard");
        if self.spill_margin != u64::MAX
            && loads[primary] >= min_load.saturating_add(self.spill_margin)
        {
            (min_shard, RoutePick::Spilled { from: primary })
        } else {
            (primary, RoutePick::Affinity)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softfloat::{FpFormat, FpValue};

    const F: FpFormat = FpFormat::PAPER;

    #[test]
    fn route_key_ignores_coefficient_values() {
        let a = AppGraph::dot_product(F, &[1.0, 2.0, 3.0]);
        let b = a.with_coeffs(&[9.0, -1.0, 0.5].map(|c| FpValue::from_f64(c, F)));
        assert_eq!(RouteKey::of(&a), RouteKey::of(&b));
        // Structural change: different key.
        let c = AppGraph::dot_product(F, &[1.0, 2.0, 3.0, 4.0]);
        assert_ne!(RouteKey::of(&a), RouteKey::of(&c));
    }

    #[test]
    fn router_spills_only_past_the_margin() {
        let router = Router::new(4, 3);
        let key = RouteKey::of(&AppGraph::dot_product(F, &[1.0, 2.0]));
        let primary = key.shard(4);
        let (shard, pick) = router.route(key);
        assert_eq!((shard, pick), (primary, RoutePick::Affinity));
        // Load the primary to just under the margin: still affine.
        router.load_cell(primary).store(2, Ordering::SeqCst);
        assert_eq!(router.route(key).1, RoutePick::Affinity);
        // At the margin: spill to the least-loaded (lowest index wins).
        router.load_cell(primary).store(3, Ordering::SeqCst);
        let (shard, pick) = router.route(key);
        assert_eq!(pick, RoutePick::Spilled { from: primary });
        assert_ne!(shard, primary);
        assert_eq!(shard, if primary == 0 { 1 } else { 0 }, "least-loaded, lowest index");
    }

    #[test]
    fn disabled_margin_never_spills() {
        let router = Router::new(2, u64::MAX);
        let key = RouteKey::of(&AppGraph::dot_product(F, &[1.0]));
        router.load_cell(key.shard(2)).store(1_000_000, Ordering::SeqCst);
        assert_eq!(router.route(key).1, RoutePick::Affinity);
    }
}
