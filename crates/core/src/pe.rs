//! The Processing Element (Fig. 4): a floating-point MAC datapath wrapped
//! in a *virtual intra-connect*.
//!
//! The paper's PE contains BLE groups (the MAC's multiplier and adder)
//! connected by virtual routing switches — "connection multiplexers with
//! configuration memory". In the conventional overlay those multiplexers
//! burn LUTs; in the fully parameterized overlay their select bits are
//! parameters, so TCONMAP turns every one of them into a TCON realized on
//! the FPGA's physical switch blocks. The coefficient and the route
//! selects together form the PE's **settings register** content; the
//! iteration counter (used by the MAC control) also lives there but is
//! sequential state and does not appear in the combinational netlist.
//!
//! Two implementations are provided and cross-checked:
//!
//! * [`VirtualPe::build`] — the gate-level netlist (for the CAD flows of
//!   Table I), with every settings bit annotated `--PARAM`;
//! * [`PeSettings::evaluate`] — the value-level functional model used by
//!   the VCGRA application simulator (bit-exact FloPoCo arithmetic).

use logic::aig::{Aig, InputKind, Lit};
use softfloat::gen::{gen_add, gen_mul};
use softfloat::{FpFormat, FpValue};

/// Configuration of the virtual PE generator.
#[derive(Debug, Clone, Copy)]
pub struct VirtualPeConfig {
    /// Floating-point format of the datapath (the paper uses (6, 26)).
    pub format: FpFormat,
    /// Virtual switch hops per word-level connection. Fig. 4 routes every
    /// BLE-to-BLE connection through a connection block *and* a switch
    /// block, i.e. two hops.
    pub hops: usize,
}

impl Default for VirtualPeConfig {
    fn default() -> Self {
        Self { format: FpFormat::PAPER, hops: 2 }
    }
}

/// The routed word-level connections inside the PE, in settings order.
/// The multiplier's coefficient operand is *not* routed: it feeds straight
/// from the settings register into the multiplier BLEs (Fig. 4), which is
/// what lets TCONMAP specialize the multiplier for the constant.
pub const ROUTE_NAMES: [&str; 6] = ["x", "acc", "adda", "addb", "out", "fbn"];

/// High-level PE operating modes (what the settings register encodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeMode {
    /// `out = in_a * coeff + fb` (accumulating MAC — the filter kernel op).
    Mac,
    /// `out = in_a * coeff` (multiply only).
    Mul,
    /// `out = in_a + in_b` (add only).
    Add,
    /// `out = in_a` (route-through).
    Pass,
}

/// Settings-register content of one PE.
///
/// The paper stores a 32-bit settings word per PE (iteration counter) plus
/// the specialized coefficient; route selects configure the intra-connect.
#[derive(Debug, Clone, Copy)]
pub struct PeSettings {
    /// The (infrequently changing) filter coefficient — a parameter.
    pub coeff: FpValue,
    /// MAC iteration count (number of accumulations before emitting).
    pub counter: u32,
    /// Operating mode, compiled into route selects.
    pub mode: PeMode,
}

impl PeSettings {
    /// MAC settings with a coefficient.
    pub fn mac(coeff: FpValue, counter: u32) -> Self {
        Self { coeff, counter, mode: PeMode::Mac }
    }

    /// Route selects for every connection of [`ROUTE_NAMES`], as 2-bit
    /// codes indexing the candidate list of the first hop (subsequent hops
    /// select "previous", code 0).
    pub fn route_selects(&self) -> [u8; 6] {
        // Candidate orders (see `VirtualPe::build`):
        //   x:    [in_a, in_b, fb, zero]
        //   acc:  [fb, in_a, in_b, zero]
        //   adda: [mul_out, x, fb, zero]
        //   addb: [acc, in_b, fb, zero]
        //   out:  [add_out, mul_out, acc, x]
        //   fbn:  [add_out, mul_out, in_b, zero]
        match self.mode {
            // x=in_a, acc=fb, addA=mul, addB=acc, out=add, fb=add
            PeMode::Mac => [0, 0, 0, 0, 0, 0],
            // out = mul_out = in_a * coeff
            PeMode::Mul => [0, 3, 0, 3, 1, 1],
            // addA = x = in_a, addB = acc = in_b, out = add_out
            PeMode::Add => [0, 2, 1, 0, 0, 0],
            // out = x = in_a
            PeMode::Pass => [0, 0, 0, 0, 3, 1],
        }
    }

    /// Flattens the settings into the netlist's parameter bit order:
    /// `coeff[0..w]` then, per route, `hops × 2` select bits (low bit
    /// first; hops beyond the first default to "previous" = 0).
    pub fn to_param_bits(&self, cfg: &VirtualPeConfig) -> Vec<bool> {
        let w = cfg.format.width() as usize;
        let mut bits = Vec::with_capacity(w + ROUTE_NAMES.len() * cfg.hops * 2);
        for i in 0..w {
            bits.push((self.coeff.bits >> i) & 1 == 1);
        }
        for sel in self.route_selects() {
            bits.push(sel & 1 == 1);
            bits.push(sel & 2 == 2);
            for _ in 1..cfg.hops {
                bits.push(false);
                bits.push(false);
            }
        }
        bits
    }

    /// Value-level semantics of the PE for one cycle, mirroring the
    /// netlist: returns `(out, fb_next)`.
    pub fn evaluate(&self, in_a: FpValue, in_b: FpValue, fb: FpValue) -> (FpValue, FpValue) {
        let fmt = in_a.format;
        let zero = FpValue::zero(fmt);
        let one = FpValue::from_f64(1.0, fmt);
        let sel = self.route_selects();
        let pick4 = |s: u8, c: [FpValue; 4]| c[(s & 3) as usize];
        let x = pick4(sel[0], [in_a, in_b, fb, zero]);
        let acc = pick4(sel[1], [fb, in_a, in_b, zero]);
        let mul_out = x.mul(self.coeff);
        let adda = pick4(sel[2], [mul_out, x, fb, zero]);
        let addb = pick4(sel[3], [acc, in_b, fb, zero]);
        let add_out = adda.add(addb);
        let out = pick4(sel[4], [add_out, mul_out, acc, x]);
        let fbn = pick4(sel[5], [add_out, mul_out, in_b, zero]);
        let _ = one;
        (out, fbn)
    }
}

/// A generated PE netlist plus its parameter layout.
pub struct VirtualPe {
    /// The netlist: regular inputs `in_a`, `in_b`, `fb`; parameter inputs
    /// `coeff` and the route selects; outputs `out`, `fbn`.
    pub aig: Aig,
    /// Generator configuration.
    pub config: VirtualPeConfig,
}

impl VirtualPe {
    /// Builds the PE netlist. With `parameterized = false` every settings
    /// bit is declared a *regular* input — the conventional overlay, where
    /// the intra-connect multiplexers must be implemented in LUTs and the
    /// settings register in flip-flops.
    pub fn build(config: VirtualPeConfig, parameterized: bool) -> Self {
        let fmt = config.format;
        let w = fmt.width() as usize;
        let kind = if parameterized { InputKind::Param } else { InputKind::Regular };
        let mut g = Aig::new();

        let in_a = g.input_vec("in_a", w, InputKind::Regular);
        let in_b = g.input_vec("in_b", w, InputKind::Regular);
        let fb = g.input_vec("fb", w, InputKind::Regular);
        // Settings: coefficient first, then route selects (see
        // `PeSettings::to_param_bits` for the exact order).
        let coeff = g.input_vec("coeff", w, kind);
        let mut route_sels: Vec<Vec<Lit>> = Vec::new();
        for name in ROUTE_NAMES {
            let mut sels = Vec::with_capacity(config.hops * 2);
            for h in 0..config.hops {
                sels.push(g.input(format!("sel_{name}_h{h}[0]"), kind));
                sels.push(g.input(format!("sel_{name}_h{h}[1]"), kind));
            }
            route_sels.push(sels);
        }

        let zero: Vec<Lit> = vec![Lit::FALSE; w];
        let one: Vec<Lit> = {
            let v = FpValue::from_f64(1.0, fmt);
            (0..w)
                .map(|i| {
                    if (v.bits >> i) & 1 == 1 {
                        Lit::TRUE
                    } else {
                        Lit::FALSE
                    }
                })
                .collect()
        };

        // One virtual connection: `hops` 4:1 multiplexer stages per bit.
        // The first hop selects among the four candidates; each further hop
        // models the switch-block traversal (select 0 keeps the signal, the
        // other inputs are the PE ports, as a Fig. 4 ring would offer).
        let route = |g: &mut Aig,
                     sels: &[Lit],
                     cands: [&[Lit]; 4],
                     in_a: &[Lit],
                     in_b: &[Lit],
                     fb: &[Lit]|
         -> Vec<Lit> {
            let mux4 = |g: &mut Aig, s0: Lit, s1: Lit, c: [&[Lit]; 4]| -> Vec<Lit> {
                (0..c[0].len())
                    .map(|i| {
                        let lo = g.mux(s0, c[1][i], c[0][i]);
                        let hi = g.mux(s0, c[3][i], c[2][i]);
                        g.mux(s1, hi, lo)
                    })
                    .collect()
            };
            let mut cur = mux4(g, sels[0], sels[1], cands);
            let hops = sels.len() / 2;
            for h in 1..hops {
                let (s0, s1) = (sels[2 * h], sels[2 * h + 1]);
                cur = mux4(g, s0, s1, [&cur, in_a, in_b, fb]);
            }
            cur
        };

        let x = route(&mut g, &route_sels[0], [&in_a, &in_b, &fb, &zero], &in_a, &in_b, &fb);
        let acc = route(&mut g, &route_sels[1], [&fb, &in_a, &in_b, &zero], &in_a, &in_b, &fb);
        // The coefficient feeds the multiplier directly from the settings
        // register — no virtual routing in between (Fig. 4).
        let mul_out = gen_mul(&mut g, fmt, &x, &coeff);
        let adda = route(
            &mut g,
            &route_sels[2],
            [&mul_out, &x, &fb, &zero],
            &in_a,
            &in_b,
            &fb,
        );
        let addb = route(&mut g, &route_sels[3], [&acc, &in_b, &fb, &zero], &in_a, &in_b, &fb);
        let add_out = gen_add(&mut g, fmt, &adda, &addb);
        let out = route(
            &mut g,
            &route_sels[4],
            [&add_out, &mul_out, &acc, &x],
            &in_a,
            &in_b,
            &fb,
        );
        let fbn = route(
            &mut g,
            &route_sels[5],
            [&add_out, &mul_out, &in_b, &zero],
            &in_a,
            &in_b,
            &fb,
        );
        let _ = one;
        g.add_output_vec("out", &out);
        g.add_output_vec("fbn", &fbn);

        VirtualPe { aig: g, config }
    }

    /// Number of settings (parameter) bits in the netlist.
    pub fn settings_bits(&self) -> usize {
        self.config.format.width() as usize + ROUTE_NAMES.len() * self.config.hops * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::sim::simulate_u64;

    fn fmt() -> FpFormat {
        FpFormat::new(5, 8) // medium format keeps netlist tests fast
    }

    fn drive_pe(
        pe: &VirtualPe,
        settings: &PeSettings,
        in_a: FpValue,
        in_b: FpValue,
        fb: FpValue,
    ) -> (u64, u64) {
        let w = pe.config.format.width() as usize;
        let params = settings.to_param_bits(&pe.config);
        let mut words = Vec::new();
        let mut p_iter = params.iter();
        for info in pe.aig.inputs() {
            let word = match info.kind {
                InputKind::Param => {
                    if *p_iter.next().expect("param count") {
                        u64::MAX
                    } else {
                        0
                    }
                }
                InputKind::Regular => {
                    // Name-based: in_a[i], in_b[i], fb[i].
                    let (base, idx) = info
                        .name
                        .split_once('[')
                        .map(|(b, r)| (b, r.trim_end_matches(']').parse::<usize>().unwrap()))
                        .unwrap();
                    let v = match base {
                        "in_a" => in_a.bits,
                        "in_b" => in_b.bits,
                        "fb" => fb.bits,
                        other => panic!("unexpected input {other}"),
                    };
                    if (v >> idx) & 1 == 1 {
                        u64::MAX
                    } else {
                        0
                    }
                }
            };
            words.push(word);
        }
        let out = simulate_u64(&pe.aig, &words);
        let collect = |range: std::ops::Range<usize>| -> u64 {
            out[range]
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &x)| acc | ((x & 1) << i))
        };
        (collect(0..w), collect(w..2 * w))
    }

    #[test]
    fn netlist_matches_value_model_in_all_modes() {
        let cfg = VirtualPeConfig { format: fmt(), hops: 2 };
        let pe = VirtualPe::build(cfg, true);
        let mut rng = logic::SplitMix64::new(99);
        for mode in [PeMode::Mac, PeMode::Mul, PeMode::Add, PeMode::Pass] {
            for _ in 0..20 {
                let rnd_fp = |rng: &mut logic::SplitMix64| {
                    FpValue::from_f64((rng.unit_f64() - 0.5) * 16.0, cfg.format)
                };
                let coeff = rnd_fp(&mut rng);
                let a = rnd_fp(&mut rng);
                let b = rnd_fp(&mut rng);
                let fb = rnd_fp(&mut rng);
                let s = PeSettings { coeff, counter: 1, mode };
                let (hw_out, hw_fbn) = drive_pe(&pe, &s, a, b, fb);
                let (sw_out, sw_fbn) = s.evaluate(a, b, fb);
                assert_eq!(hw_out, sw_out.bits, "{mode:?} out");
                assert_eq!(hw_fbn, sw_fbn.bits, "{mode:?} fbn");
            }
        }
    }

    #[test]
    fn mac_mode_semantics() {
        let f = fmt();
        let s = PeSettings::mac(FpValue::from_f64(2.5, f), 4);
        let (out, fbn) = s.evaluate(
            FpValue::from_f64(3.0, f),
            FpValue::from_f64(99.0, f), // ignored in MAC mode
            FpValue::from_f64(1.0, f),
        );
        assert_eq!(out.to_f64(), 8.5, "3 * 2.5 + 1");
        assert_eq!(fbn.to_f64(), 8.5, "accumulator follows");
    }

    #[test]
    fn pass_mode_is_identity() {
        let f = fmt();
        let s = PeSettings { coeff: FpValue::zero(f), counter: 0, mode: PeMode::Pass };
        let a = FpValue::from_f64(-7.25, f);
        let (out, _) = s.evaluate(a, FpValue::from_f64(1.0, f), FpValue::zero(f));
        assert_eq!(out.bits, a.bits);
    }

    #[test]
    fn settings_bit_layout_is_stable() {
        let cfg = VirtualPeConfig { format: fmt(), hops: 2 };
        let pe = VirtualPe::build(cfg, true);
        let s = PeSettings::mac(FpValue::from_f64(1.5, cfg.format), 1);
        let bits = s.to_param_bits(&cfg);
        assert_eq!(bits.len(), pe.settings_bits());
        assert_eq!(
            pe.aig.num_inputs_of(InputKind::Param),
            pe.settings_bits(),
            "netlist param count must match the settings layout"
        );
    }

    #[test]
    fn conventional_build_has_no_params() {
        let cfg = VirtualPeConfig { format: fmt(), hops: 2 };
        let pe = VirtualPe::build(cfg, false);
        assert_eq!(pe.aig.num_inputs_of(InputKind::Param), 0);
    }
}
