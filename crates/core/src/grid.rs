//! VCGRA grid architecture and resource accounting (Table II).
//!
//! A `rows × cols` VCGRA contains `rows·cols` PEs, `(rows-1)·(cols-1)`
//! Virtual Switch Blocks at the interior corners (the paper's 4×4 grid has
//! 9) and two Virtual Connection Blocks per PE (input and output side — 32
//! for the 4×4 grid, giving the paper's 41 routing components in total).
//! Every PE and every VSB owns one 32-bit settings register (25 total).
//!
//! * In the **conventional** overlay, the 41 routing components are built
//!   out of LUTs and the 25 settings registers out of logic-cell
//!   flip-flops, updated through a dedicated settings bus.
//! * In the **fully parameterized** overlay both counts drop to zero: the
//!   routing components map onto the FPGA's physical switch/connection
//!   blocks (TCONs) and the settings registers onto configuration memory
//!   (micro-reconfiguration, Section II-C).

/// Width of a settings register in bits (the paper uses 32-bit registers).
pub const SETTINGS_REGISTER_BITS: usize = 32;

/// Geometry and sizing of a VCGRA instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VcgraArch {
    /// Number of PE rows.
    pub rows: usize,
    /// Number of PE columns.
    pub cols: usize,
    /// Word-level channel capacity between adjacent PEs (virtual wires per
    /// channel segment).
    pub channel_capacity: usize,
}

impl VcgraArch {
    /// The paper's evaluation grid: 4×4 PEs.
    pub fn paper_4x4() -> Self {
        Self { rows: 4, cols: 4, channel_capacity: 2 }
    }

    /// Creates a grid; both dimensions must be at least 2.
    pub fn new(rows: usize, cols: usize, channel_capacity: usize) -> Self {
        assert!(rows >= 2 && cols >= 2, "VCGRA needs at least a 2x2 grid");
        assert!(channel_capacity >= 1);
        Self { rows, cols, channel_capacity }
    }

    /// Number of Processing Elements.
    pub fn pe_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Number of Virtual Switch Blocks (interior corners of the PE grid).
    pub fn vsb_count(&self) -> usize {
        (self.rows - 1) * (self.cols - 1)
    }

    /// Number of Virtual Connection Blocks (one per PE side that meets a
    /// routing channel: input and output side per PE).
    pub fn vcb_count(&self) -> usize {
        2 * self.pe_count()
    }

    /// Total routing components of the inter-PE network.
    pub fn inter_network_components(&self) -> usize {
        self.vsb_count() + self.vcb_count()
    }

    /// Number of settings registers (one per PE, one per VSB).
    pub fn settings_register_count(&self) -> usize {
        self.pe_count() + self.vsb_count()
    }

    /// Resource accounting for one implementation style (a Table II row).
    pub fn resources(&self, parameterized: bool) -> GridResources {
        if parameterized {
            GridResources {
                inter_network_components_on_luts: 0,
                settings_registers_on_ffs: 0,
                flip_flops: 0,
                inter_network_luts: 0,
                settings_bits_in_config_memory: self.settings_register_count()
                    * SETTINGS_REGISTER_BITS,
                inter_network_tcons: self.inter_network_tcon_estimate(),
            }
        } else {
            GridResources {
                inter_network_components_on_luts: self.inter_network_components(),
                settings_registers_on_ffs: self.settings_register_count(),
                flip_flops: self.settings_register_count() * SETTINGS_REGISTER_BITS,
                inter_network_luts: self.inter_network_lut_estimate(),
                settings_bits_in_config_memory: 0,
                inter_network_tcons: 0,
            }
        }
    }

    /// LUT cost model of the conventional inter-PE network: every virtual
    /// 4:1 word-level multiplexer costs two 4-LUTs per bit (a standard
    /// 6-input 4:1 mux split over two 4-LUTs). A VSB switches a word
    /// towards 4 directions; a VCB selects among the adjacent channel's
    /// wires.
    pub fn inter_network_lut_estimate(&self) -> usize {
        let w = 35; // word width of the paper's FloPoCo format
        let per_mux4 = 2 * w;
        self.vsb_count() * 4 * per_mux4 * self.channel_capacity / 2
            + self.vcb_count() * per_mux4
    }

    /// TCON count when the same multiplexers are mapped onto physical
    /// routing switches (three 2:1 selections per 4:1 mux per bit).
    pub fn inter_network_tcon_estimate(&self) -> usize {
        let w = 35;
        let per_mux4 = 3 * w;
        self.vsb_count() * 4 * per_mux4 * self.channel_capacity / 2
            + self.vcb_count() * per_mux4
    }
}

/// One row of Table II (plus the LUT/FF cost behind the component counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridResources {
    /// Routing components that must be realized in LUTs (paper: 41 → 0).
    pub inter_network_components_on_luts: usize,
    /// Settings registers realized in flip-flops (paper: 25 → 0).
    pub settings_registers_on_ffs: usize,
    /// Flip-flop bits behind those registers.
    pub flip_flops: usize,
    /// Estimated LUTs behind the conventional inter-network.
    pub inter_network_luts: usize,
    /// Settings bits that live in configuration memory instead (the
    /// parameterized mapping of the registers).
    pub settings_bits_in_config_memory: usize,
    /// TCONs realizing the inter-network on physical routing switches.
    pub inter_network_tcons: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_counts_match_table2() {
        let g = VcgraArch::paper_4x4();
        assert_eq!(g.pe_count(), 16);
        assert_eq!(g.vsb_count(), 9);
        assert_eq!(g.vcb_count(), 32);
        assert_eq!(g.inter_network_components(), 41, "paper: 41 routing components");
        assert_eq!(g.settings_register_count(), 25, "paper: 25 settings registers");
    }

    #[test]
    fn conventional_row_of_table2() {
        let g = VcgraArch::paper_4x4();
        let r = g.resources(false);
        assert_eq!(r.inter_network_components_on_luts, 41);
        assert_eq!(r.settings_registers_on_ffs, 25);
        assert_eq!(r.flip_flops, 25 * 32);
        assert!(r.inter_network_luts > 0);
        assert_eq!(r.settings_bits_in_config_memory, 0);
    }

    #[test]
    fn parameterized_row_of_table2() {
        let g = VcgraArch::paper_4x4();
        let r = g.resources(true);
        assert_eq!(r.inter_network_components_on_luts, 0, "paper: 0");
        assert_eq!(r.settings_registers_on_ffs, 0, "paper: 0");
        assert_eq!(r.flip_flops, 0);
        assert_eq!(r.inter_network_luts, 0);
        assert_eq!(r.settings_bits_in_config_memory, 25 * 32);
        assert!(r.inter_network_tcons > 0, "network lives on physical switches");
    }

    #[test]
    fn scaling_other_grids() {
        let g = VcgraArch::new(3, 5, 2);
        assert_eq!(g.pe_count(), 15);
        assert_eq!(g.vsb_count(), 8);
        assert_eq!(g.vcb_count(), 30);
        assert_eq!(g.settings_register_count(), 23);
    }

    #[test]
    #[should_panic(expected = "at least a 2x2")]
    fn tiny_grid_rejected() {
        VcgraArch::new(1, 4, 1);
    }
}
