//! The paper's primary contribution: a fully parameterized Virtual
//! Coarse-Grained Reconfigurable Array (VCGRA).
//!
//! A VCGRA (Fig. 1 of the paper) is a grid of coarse Processing Elements
//! (PEs) connected by Virtual Switch Blocks (VSBs) and Virtual Connection
//! Blocks (VCBs), realized *on top of* a fine-grained FPGA. Every
//! configurable part of the overlay — the PE function (a floating-point
//! MAC with its coefficient), the intra-PE connections between BLE groups
//! (Fig. 4) and the inter-PE network — is expressed with *parameter*
//! inputs, so the parameterized tool flow maps it onto TLUTs, TCONs and
//! configuration memory instead of functional FPGA resources.
//!
//! Modules:
//!
//! * [`pe`] — the Processing Element: gate-level netlist generator
//!   (MAC datapath + virtual intra-connect) and the value-level functional
//!   model, plus the settings-register layout;
//! * [`grid`] — the VCGRA architecture (grid geometry, component and
//!   settings-register inventory — the quantities of Table II);
//! * [`app`] — application graphs: dataflow of PE operations (filter
//!   kernels from the retinal pipeline map here);
//! * [`flow`] — the fast VCGRA tool flow of Fig. 2: synthesis to a PE
//!   netlist, placement on the grid, routing through the virtual network,
//!   settings generation;
//! * [`sim`] — functional simulation of a mapped application (streams
//!   samples through the PEs using the bit-exact FloPoCo model);
//! * [`render`] — DOT/ASCII renderings of the grid and the PE (Figs. 1/4).

#![forbid(unsafe_code)]
#![deny(clippy::dbg_macro, clippy::todo)]

pub mod app;
pub mod flow;
pub mod grid;
pub mod pe;
pub mod render;
pub mod sim;

pub use grid::{GridResources, VcgraArch};
pub use pe::{PeMode, PeSettings, VirtualPe, VirtualPeConfig};
