//! Application graphs: dataflow of PE-level operations.
//!
//! The VCGRA tool flow (Fig. 2, right side) starts from an application
//! description whose primitives are whole Processing Elements — this is
//! what makes the flow orders of magnitude faster than gate-level
//! compilation. An [`AppGraph`] is that netlist-of-PEs: nodes are MAC /
//! MUL / ADD / PASS operations with optional coefficients, edges are
//! word-level dataflow.
//!
//! The builders cover the workloads of the retinal-vessel-segmentation
//! pipeline: dot products (filter kernels as multiply + adder-tree) and
//! elementwise stages.

use crate::pe::PeMode;
use softfloat::{FpFormat, FpValue};

/// Where an operand of a PE node comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppSource {
    /// External stream input with the given index.
    External(usize),
    /// Output of another node.
    Node(usize),
    /// Constant zero (unconnected operand).
    Zero,
}

/// One PE-level operation.
#[derive(Debug, Clone)]
pub struct AppNode {
    /// Human-readable name (used in renders and error messages).
    pub name: String,
    /// The PE mode this node needs.
    pub op: PeMode,
    /// Coefficient for MAC/MUL nodes.
    pub coeff: Option<FpValue>,
    /// First operand (`in_a` of the PE).
    pub a: AppSource,
    /// Second operand (`in_b` of the PE).
    pub b: AppSource,
}

/// A dataflow graph of PE operations.
#[derive(Debug, Clone)]
pub struct AppGraph {
    /// Floating-point format of the datapath.
    pub format: FpFormat,
    /// Nodes in topological order (a node only references earlier nodes).
    pub nodes: Vec<AppNode>,
    /// Number of external stream inputs.
    pub num_inputs: usize,
    /// Indices of the nodes whose outputs are the application outputs.
    pub outputs: Vec<usize>,
}

impl AppGraph {
    /// Creates an empty graph.
    pub fn new(format: FpFormat, num_inputs: usize) -> Self {
        Self { format, nodes: Vec::new(), num_inputs, outputs: Vec::new() }
    }

    fn check_source(&self, s: AppSource) {
        match s {
            AppSource::External(i) => assert!(i < self.num_inputs, "input {i} out of range"),
            AppSource::Node(n) => {
                assert!(n < self.nodes.len(), "node {n} referenced before definition")
            }
            AppSource::Zero => {}
        }
    }

    /// Adds a node and returns its index.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        op: PeMode,
        coeff: Option<FpValue>,
        a: AppSource,
        b: AppSource,
    ) -> usize {
        self.check_source(a);
        self.check_source(b);
        if matches!(op, PeMode::Mac | PeMode::Mul) {
            assert!(coeff.is_some(), "MAC/MUL nodes need a coefficient");
        }
        self.nodes.push(AppNode { name: name.into(), op, coeff, a, b });
        self.nodes.len() - 1
    }

    /// Marks a node as an application output.
    pub fn mark_output(&mut self, node: usize) {
        assert!(node < self.nodes.len());
        self.outputs.push(node);
    }

    /// Number of PEs this graph needs.
    pub fn pe_demand(&self) -> usize {
        self.nodes.len()
    }

    /// Dataflow depth (longest node chain) — the virtual pipeline latency.
    pub fn depth(&self) -> usize {
        let mut d = vec![0usize; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            let src_d = |s: AppSource| match s {
                AppSource::Node(j) => d[j] + 1,
                _ => 1,
            };
            d[i] = src_d(n.a).max(src_d(n.b));
        }
        self.outputs.iter().map(|&o| d[o]).max().unwrap_or(0)
    }

    /// Indices of the coefficient-bearing nodes (MAC/MUL), in node order.
    /// This is the parameter vector of the graph: two graphs with the same
    /// structure differ only in the values stored at these nodes.
    pub fn coeff_nodes(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.coeff.is_some())
            .map(|(i, _)| i)
            .collect()
    }

    /// Current coefficient values in [`Self::coeff_nodes`] order.
    pub fn coeff_values(&self) -> Vec<FpValue> {
        self.nodes.iter().filter_map(|n| n.coeff).collect()
    }

    /// Clone of the graph with new coefficients written into the
    /// coefficient-bearing nodes (in [`Self::coeff_nodes`] order). This is a
    /// parameter-only change: the structure — and therefore any placement or
    /// routing computed from it — is untouched.
    pub fn with_coeffs(&self, coeffs: &[FpValue]) -> AppGraph {
        let slots = self.coeff_nodes();
        assert_eq!(
            coeffs.len(),
            slots.len(),
            "one coefficient per MAC/MUL node"
        );
        let mut g = self.clone();
        for (&node, &c) in slots.iter().zip(coeffs) {
            assert_eq!(c.format, self.format, "coefficient format must match");
            g.nodes[node].coeff = Some(c);
        }
        g
    }

    /// True when two graphs share structure (ops, wiring, outputs, format)
    /// and differ at most in coefficient values — the condition under which
    /// one compiled configuration serves both via micro-reconfiguration.
    pub fn same_structure(&self, other: &AppGraph) -> bool {
        self.format == other.format
            && self.num_inputs == other.num_inputs
            && self.outputs == other.outputs
            && self.nodes.len() == other.nodes.len()
            && self.nodes.iter().zip(&other.nodes).all(|(a, b)| {
                a.op == b.op
                    && a.a == b.a
                    && a.b == b.b
                    && a.coeff.is_some() == b.coeff.is_some()
            })
    }

    /// Reduces a layer of node indices with a balanced binary adder tree
    /// and returns the root node. `tag` prefixes the generated node names
    /// (`{tag}add_l{level}_{k}`). Kernel builders — here and in the
    /// runtime's kernel library — share this one reduction so structurally
    /// equal graphs stay cache-key equal.
    pub fn reduce_add(&mut self, mut layer: Vec<usize>, tag: &str) -> usize {
        assert!(!layer.is_empty());
        let mut level = 0;
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for (k, pair) in layer.chunks(2).enumerate() {
                if pair.len() == 2 {
                    next.push(self.add(
                        format!("{tag}add_l{level}_{k}"),
                        PeMode::Add,
                        None,
                        AppSource::Node(pair[0]),
                        AppSource::Node(pair[1]),
                    ));
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
            level += 1;
        }
        layer[0]
    }

    /// Builds a dot product `Σ coeffs[i] · x_i` over `coeffs.len()` external
    /// inputs: one MUL layer followed by a binary adder tree. This is the
    /// shape of every filter kernel in the vessel-segmentation pipeline.
    pub fn dot_product(format: FpFormat, coeffs: &[f64]) -> AppGraph {
        assert!(!coeffs.is_empty());
        let mut g = AppGraph::new(format, coeffs.len());
        let layer: Vec<usize> = coeffs
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                g.add(
                    format!("mul{i}"),
                    PeMode::Mul,
                    Some(FpValue::from_f64(c, format)),
                    AppSource::External(i),
                    AppSource::Zero,
                )
            })
            .collect();
        let root = g.reduce_add(layer, "");
        g.mark_output(root);
        g
    }

    /// Builds a MAC chain computing the same dot product with accumulating
    /// PEs (`out_i = x_i · c_i + out_{i-1}`): fewer PEs, longer chain —
    /// the systolic alternative used when the grid is small.
    pub fn mac_chain(format: FpFormat, coeffs: &[f64]) -> AppGraph {
        assert!(!coeffs.is_empty());
        let mut g = AppGraph::new(format, coeffs.len());
        let mut prev: Option<usize> = None;
        for (i, &c) in coeffs.iter().enumerate() {
            let b = prev.map_or(AppSource::Zero, AppSource::Node);
            // "MAC over the bus": out = a * coeff + b. Encoded as a MUL
            // followed by ADD when b exists, i.e. two PEs per tap — the
            // builder keeps PE modes primitive.
            let m = g.add(
                format!("mul{i}"),
                PeMode::Mul,
                Some(FpValue::from_f64(c, format)),
                AppSource::External(i),
                AppSource::Zero,
            );
            let node = if let Some(_p) = prev {
                g.add(
                    format!("acc{i}"),
                    PeMode::Add,
                    None,
                    AppSource::Node(m),
                    b,
                )
            } else {
                m
            };
            prev = Some(node);
        }
        g.mark_output(prev.unwrap());
        g
    }

    /// Elementwise chain `y = ((x·c0) · c1) · c2 ...` (cascade of scalings,
    /// e.g. gain + normalization stages).
    pub fn scaling_cascade(format: FpFormat, coeffs: &[f64]) -> AppGraph {
        assert!(!coeffs.is_empty());
        let mut g = AppGraph::new(format, 1);
        let mut prev = AppSource::External(0);
        let mut last = 0;
        for (i, &c) in coeffs.iter().enumerate() {
            last = g.add(
                format!("scale{i}"),
                PeMode::Mul,
                Some(FpValue::from_f64(c, format)),
                prev,
                AppSource::Zero,
            );
            prev = AppSource::Node(last);
        }
        g.mark_output(last);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: FpFormat = FpFormat::PAPER;

    #[test]
    fn dot_product_structure() {
        let g = AppGraph::dot_product(F, &[1.0, 2.0, 3.0, 4.0, 5.0]);
        // 5 muls + adds(2+1+1) = 9 nodes, depth: mul + 3 add levels.
        assert_eq!(g.pe_demand(), 9);
        assert_eq!(g.outputs.len(), 1);
        assert_eq!(g.depth(), 4);
    }

    #[test]
    fn mac_chain_structure() {
        let g = AppGraph::mac_chain(F, &[0.5, 0.25, 0.125]);
        assert_eq!(g.pe_demand(), 5, "3 muls + 2 accumulate adds");
        assert_eq!(g.depth(), 3);
    }

    #[test]
    fn cascade_is_linear() {
        let g = AppGraph::scaling_cascade(F, &[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(g.pe_demand(), 4);
        assert_eq!(g.depth(), 4);
    }

    #[test]
    fn coeff_swap_is_structure_preserving() {
        let g = AppGraph::dot_product(F, &[1.0, 2.0, 3.0]);
        let slots = g.coeff_nodes();
        assert_eq!(slots.len(), 3, "three MUL taps");
        let new: Vec<FpValue> =
            [9.0, 8.0, 7.0].iter().map(|&c| FpValue::from_f64(c, F)).collect();
        let h = g.with_coeffs(&new);
        assert!(g.same_structure(&h));
        assert_eq!(h.coeff_values()[0].to_f64(), 9.0);
        // Different structure: an extra tap.
        let k = AppGraph::dot_product(F, &[1.0, 2.0, 3.0, 4.0]);
        assert!(!g.same_structure(&k));
    }

    #[test]
    #[should_panic(expected = "one coefficient per MAC/MUL node")]
    fn coeff_swap_arity_checked() {
        let g = AppGraph::dot_product(F, &[1.0, 2.0, 3.0]);
        g.with_coeffs(&[FpValue::from_f64(1.0, F)]);
    }

    #[test]
    #[should_panic(expected = "referenced before definition")]
    fn forward_reference_rejected() {
        let mut g = AppGraph::new(F, 1);
        g.add("bad", PeMode::Add, None, AppSource::Node(5), AppSource::Zero);
    }

    #[test]
    #[should_panic(expected = "need a coefficient")]
    fn mul_without_coeff_rejected() {
        let mut g = AppGraph::new(F, 1);
        g.add("bad", PeMode::Mul, None, AppSource::External(0), AppSource::Zero);
    }
}
