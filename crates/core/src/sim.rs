//! Functional simulation of applications on the VCGRA.
//!
//! Dataflow graphs execute through [`PeSettings::evaluate`], so every
//! arithmetic result is bit-exact with the FloPoCo netlists the CAD flow
//! maps (this is cross-checked by integration tests). Streaming MAC
//! execution with the per-PE iteration counter — the usage pattern the
//! paper describes for the filter kernels — is modeled by
//! [`StreamingMac`].

use crate::app::{AppGraph, AppSource};
use crate::pe::PeSettings;
use softfloat::FpValue;

/// Runs a stateless dataflow graph on one input vector.
///
/// `inputs[i]` feeds `AppSource::External(i)`. Returns the output values in
/// the order the graph declared them.
pub fn run_dataflow(app: &AppGraph, inputs: &[FpValue]) -> Vec<FpValue> {
    assert_eq!(inputs.len(), app.num_inputs, "one value per external input");
    let zero = FpValue::zero(app.format);
    let mut value = Vec::with_capacity(app.nodes.len());
    for node in &app.nodes {
        let read = |s: AppSource, value: &[FpValue]| match s {
            AppSource::External(i) => inputs[i],
            AppSource::Node(j) => value[j],
            AppSource::Zero => zero,
        };
        let a = read(node.a, &value);
        let b = read(node.b, &value);
        let settings = PeSettings {
            coeff: node.coeff.unwrap_or(zero),
            counter: 1,
            mode: node.op,
        };
        // Dataflow nodes are stateless: fb is not used by Mul/Add/Pass.
        let (out, _) = settings.evaluate(a, b, zero);
        value.push(out);
    }
    app.outputs.iter().map(|&o| value[o]).collect()
}

/// Runs the graph over many input vectors.
pub fn run_batch(app: &AppGraph, batches: &[Vec<FpValue>]) -> Vec<Vec<FpValue>> {
    batches.iter().map(|b| run_dataflow(app, b)).collect()
}

/// A PE in streaming MAC mode: accumulates `counter` products before the
/// result is read and the accumulator clears — exactly the settings-
/// register behavior the paper describes (Section IV).
pub struct StreamingMac {
    settings: PeSettings,
    fb: FpValue,
    seen: u32,
}

impl StreamingMac {
    /// Creates a MAC PE with a coefficient and an iteration count.
    pub fn new(coeff: FpValue, counter: u32) -> Self {
        let fmt = coeff.format;
        Self {
            settings: PeSettings::mac(coeff, counter),
            fb: FpValue::zero(fmt),
            seen: 0,
        }
    }

    /// Feeds one sample; returns `Some(result)` when the window completes.
    pub fn step(&mut self, x: FpValue) -> Option<FpValue> {
        let (out, fbn) = self
            .settings
            .evaluate(x, FpValue::zero(x.format), self.fb);
        self.fb = fbn;
        self.seen += 1;
        if self.seen == self.settings.counter {
            self.seen = 0;
            self.fb = FpValue::zero(x.format);
            Some(out)
        } else {
            None
        }
    }

    /// Reconfigures the coefficient (in hardware: one PE
    /// micro-reconfiguration through the parameterized flow).
    pub fn set_coeff(&mut self, coeff: FpValue) {
        self.settings.coeff = coeff;
    }
}

/// Applies a full dot-product kernel to a window of samples using the MAC
/// iteration pattern: one PE, `coeffs.len()` cycles, one reconfiguration
/// per coefficient — the time-multiplexed alternative to the spatial
/// adder-tree mapping. Returns the same value as the spatial mapping up to
/// accumulation order.
pub fn time_multiplexed_dot(
    coeffs: &[FpValue],
    window: &[FpValue],
) -> FpValue {
    assert_eq!(coeffs.len(), window.len());
    let fmt = coeffs[0].format;
    let mut acc = FpValue::zero(fmt);
    for (&c, &x) in coeffs.iter().zip(window) {
        acc = x.mac(c, acc);
    }
    acc
}

/// Verifies a mapped application: re-runs the dataflow through the
/// placement (every node must sit on a PE whose settings reproduce the
/// node's operation). Returns the simulated outputs.
pub fn run_mapped(
    mapping: &crate::flow::VcgraMapping,
    app: &AppGraph,
    inputs: &[FpValue],
) -> Vec<FpValue> {
    // The mapping stores settings per grid cell; execution order is the
    // app's topological order, reading each node's settings from its cell.
    let zero = FpValue::zero(app.format);
    let cols = mapping.arch.cols;
    let mut value = Vec::with_capacity(app.nodes.len());
    for (i, node) in app.nodes.iter().enumerate() {
        let (r, c) = mapping.place[i];
        let settings = mapping.pe_settings[r * cols + c]
            .expect("placed node must have settings");
        assert_eq!(settings.mode, node.op, "cell settings must match the node op");
        let read = |s: AppSource, value: &[FpValue]| match s {
            AppSource::External(k) => inputs[k],
            AppSource::Node(j) => value[j],
            AppSource::Zero => zero,
        };
        let a = read(node.a, &value);
        let b = read(node.b, &value);
        let (out, _) = settings.evaluate(a, b, zero);
        value.push(out);
    }
    app.outputs.iter().map(|&o| value[o]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use softfloat::FpFormat;

    const F: FpFormat = FpFormat::PAPER;

    fn fp(x: f64) -> FpValue {
        FpValue::from_f64(x, F)
    }

    #[test]
    fn dot_product_computes_correctly() {
        let coeffs = [0.5, -1.0, 2.0, 0.25];
        let app = AppGraph::dot_product(F, &coeffs);
        let xs = [4.0, 3.0, 2.0, 8.0];
        let inputs: Vec<FpValue> = xs.iter().map(|&x| fp(x)).collect();
        let out = run_dataflow(&app, &inputs);
        let expect: f64 = coeffs.iter().zip(&xs).map(|(c, x)| c * x).sum();
        assert_eq!(out[0].to_f64(), expect, "2 - 3 + 4 + 2 = 5");
    }

    #[test]
    fn mac_chain_equals_dot_product() {
        let coeffs = [1.5, 2.5, -0.5];
        let xs: Vec<FpValue> = [1.0, 2.0, 4.0].iter().map(|&x| fp(x)).collect();
        let tree = AppGraph::dot_product(F, &coeffs);
        let chain = AppGraph::mac_chain(F, &coeffs);
        let a = run_dataflow(&tree, &xs)[0];
        let b = run_dataflow(&chain, &xs)[0];
        // Same association order in this case (left fold vs balanced tree
        // can differ in rounding for adversarial values; these are exact).
        assert_eq!(a.to_f64(), b.to_f64());
    }

    #[test]
    fn streaming_mac_accumulates_window() {
        let mut pe = StreamingMac::new(fp(2.0), 3);
        assert_eq!(pe.step(fp(1.0)), None);
        assert_eq!(pe.step(fp(10.0)), None);
        let out = pe.step(fp(100.0)).expect("window complete");
        assert_eq!(out.to_f64(), 222.0, "2*(1+10+100)");
        // Accumulator must have reset.
        assert_eq!(pe.step(fp(1.0)), None);
        assert_eq!(pe.step(fp(1.0)), None);
        assert_eq!(pe.step(fp(1.0)).unwrap().to_f64(), 6.0);
    }

    #[test]
    fn time_multiplexed_matches_weighted_sum() {
        let coeffs: Vec<FpValue> = [0.25, 0.5, 0.25].iter().map(|&c| fp(c)).collect();
        let window: Vec<FpValue> = [4.0, 8.0, 4.0].iter().map(|&x| fp(x)).collect();
        let out = time_multiplexed_dot(&coeffs, &window);
        assert_eq!(out.to_f64(), 6.0, "1 + 4 + 1");
    }

    #[test]
    fn mapped_execution_matches_pure_dataflow() {
        let coeffs = [1.0, 0.5, 0.25, 0.125, 2.0];
        let app = AppGraph::dot_product(F, &coeffs);
        let mapping = crate::flow::map_app(&app, crate::grid::VcgraArch::paper_4x4(), 5)
            .expect("mappable");
        let inputs: Vec<FpValue> =
            [1.0, 2.0, 3.0, 4.0, 5.0].iter().map(|&x| fp(x)).collect();
        let direct = run_dataflow(&app, &inputs);
        let mapped = run_mapped(&mapping, &app, &inputs);
        assert_eq!(direct[0].bits, mapped[0].bits);
    }
}
