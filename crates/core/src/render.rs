//! Structural renderings of the architecture (the paper's Figs. 1 and 4).
//!
//! [`grid_dot`] emits Graphviz for a VCGRA fragment — PEs, VSBs and their
//! settings registers, like Fig. 1. [`pe_dot`] draws the fully
//! parameterized PE of Fig. 4 (settings register, BLE groups, TCON ring).
//! [`grid_ascii`] renders a mapped application as a text diagram for
//! terminal output.

use crate::flow::VcgraMapping;
use crate::grid::VcgraArch;
use crate::pe::PeMode;

/// Graphviz rendering of the VCGRA grid (Fig. 1 style): PEs as boxes, VSBs
/// as diamonds, settings registers as small rectangles.
pub fn grid_dot(arch: &VcgraArch) -> String {
    let mut s = String::from(
        "digraph vcgra {\n  rankdir=TB;\n  node [fontname=\"monospace\"];\n",
    );
    for r in 0..arch.rows {
        for c in 0..arch.cols {
            s.push_str(&format!(
                "  pe_{r}_{c} [shape=box, style=filled, fillcolor=lightblue, \
                 label=\"PE({r},{c})\\nsettings reg\"];\n"
            ));
        }
    }
    for r in 0..arch.rows - 1 {
        for c in 0..arch.cols - 1 {
            s.push_str(&format!(
                "  vsb_{r}_{c} [shape=diamond, style=filled, fillcolor=khaki, \
                 label=\"VSB\\nsettings reg\"];\n"
            ));
            // VSB connects the four surrounding PEs.
            for (pr, pc) in [(r, c), (r, c + 1), (r + 1, c), (r + 1, c + 1)] {
                s.push_str(&format!(
                    "  pe_{pr}_{pc} -> vsb_{r}_{c} [dir=both, color=gray40];\n"
                ));
            }
        }
    }
    s.push_str("}\n");
    s
}

/// Graphviz rendering of the fully parameterized PE (Fig. 4 style).
pub fn pe_dot() -> String {
    let mut s = String::from("digraph pe {\n  rankdir=LR;\n  node [fontname=\"monospace\"];\n");
    s.push_str(
        "  settings [shape=record, style=filled, fillcolor=lightgrey, \
         label=\"settings register|coeff|route selects|counter\"];\n",
    );
    for (i, ble) in ["BLE group (mul)", "BLE group (mul)", "BLE group (add)", "BLE group (add)"]
        .iter()
        .enumerate()
    {
        s.push_str(&format!(
            "  ble{i} [shape=box, style=filled, fillcolor=lightblue, label=\"{ble}\\n(TLUTs)\"];\n"
        ));
    }
    for i in 0..8 {
        s.push_str(&format!(
            "  tcon{i} [shape=circle, style=filled, fillcolor=khaki, label=\"TCON\"];\n"
        ));
    }
    // TCON ring connecting the BLE groups, as in Fig. 4.
    for i in 0..8 {
        s.push_str(&format!("  tcon{} -> tcon{} [color=gray40];\n", i, (i + 1) % 8));
    }
    for i in 0..4 {
        s.push_str(&format!("  tcon{} -> ble{} [dir=both];\n", 2 * i, i));
    }
    s.push_str("  settings -> tcon0 [style=dashed, label=\"config\"];\n");
    s.push_str("}\n");
    s
}

/// ASCII rendering of a mapped application on the grid.
pub fn grid_ascii(mapping: &VcgraMapping) -> String {
    let arch = &mapping.arch;
    let mut s = String::new();
    for r in 0..arch.rows {
        // PE row.
        for c in 0..arch.cols {
            let cell = mapping.pe_settings[r * arch.cols + c];
            let tag = match cell.map(|s| s.mode) {
                Some(PeMode::Mac) => "MAC",
                Some(PeMode::Mul) => "MUL",
                Some(PeMode::Add) => "ADD",
                Some(PeMode::Pass) => "PAS",
                None => " . ",
            };
            s.push_str(&format!("[{tag}]"));
            if c + 1 < arch.cols {
                s.push_str("--");
            }
        }
        s.push('\n');
        if r + 1 < arch.rows {
            for c in 0..arch.cols {
                s.push_str("  |  ");
                if c + 1 < arch.cols {
                    s.push_str("  ");
                }
            }
            s.push('\n');
        }
    }
    s.push_str(&format!(
        "PEs used: {}/{}  virtual WL: {} segments\n",
        mapping.pe_settings.iter().filter(|p| p.is_some()).count(),
        arch.pe_count(),
        mapping.virtual_wirelength
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppGraph;
    use softfloat::FpFormat;

    #[test]
    fn grid_dot_contains_all_components() {
        let arch = VcgraArch::paper_4x4();
        let dot = grid_dot(&arch);
        assert_eq!(dot.matches("shape=box").count(), 16, "16 PEs");
        assert_eq!(dot.matches("shape=diamond").count(), 9, "9 VSBs");
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn pe_dot_shows_fig4_structure() {
        let dot = pe_dot();
        assert_eq!(dot.matches("TCON").count(), 8, "Fig. 4 shows 8 TCON boxes");
        assert_eq!(dot.matches("BLE group").count(), 4);
        assert!(dot.contains("settings register"));
    }

    #[test]
    fn ascii_render_is_complete() {
        let app = AppGraph::dot_product(FpFormat::PAPER, &[1.0, 2.0, 3.0]);
        let m = crate::flow::map_app(&app, VcgraArch::paper_4x4(), 1).unwrap();
        let a = grid_ascii(&m);
        assert_eq!(a.matches('[').count(), 16, "all 16 cells rendered");
        assert!(a.contains("MUL") && a.contains("ADD"));
        assert!(a.contains("virtual WL"));
    }
}
