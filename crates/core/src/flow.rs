//! The VCGRA tool flow (Fig. 2, right-hand side): synthesis at PE
//! granularity, placement on the virtual grid, routing through the virtual
//! communication network, and settings generation.
//!
//! Because the basic programmable element is a whole PE, this flow works on
//! graphs of tens of nodes instead of tens of thousands of gates — the
//! source of the "orders of magnitude" compile-time advantage the paper
//! claims over the standard FPGA tool flow (quantified by the
//! `compile_time` bench in `xbench`).

use crate::app::{AppGraph, AppSource};
use crate::grid::VcgraArch;
use crate::pe::PeSettings;
use logic::SplitMix64;
use softfloat::FpValue;

/// Errors the flow can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowError {
    /// The application needs more PEs than the grid offers.
    NotEnoughPes {
        /// PEs required by the application graph.
        needed: usize,
        /// PEs available in the grid.
        available: usize,
    },
    /// The router could not legalize the design within its iteration budget.
    Unroutable {
        /// Channel segments still over capacity after the final iteration.
        overused_segments: usize,
    },
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::NotEnoughPes { needed, available } => {
                write!(f, "application needs {needed} PEs, grid has {available}")
            }
            FlowError::Unroutable { overused_segments } => {
                write!(f, "unroutable: {overused_segments} channel segments over capacity")
            }
        }
    }
}

impl std::error::Error for FlowError {}

/// A routed dataflow edge: the channel segments it occupies.
#[derive(Debug, Clone)]
pub struct RoutedEdge {
    /// Driving app node.
    pub from: usize,
    /// Consuming app node.
    pub to: usize,
    /// Path as a list of grid cells, starting at `from`'s PE and ending at
    /// `to`'s PE (adjacent pairs are channel segments).
    pub path: Vec<(usize, usize)>,
}

/// Result of mapping an application onto a VCGRA.
///
/// `Clone` lets a configuration cache hand out per-tenant copies of one
/// compiled placement whose settings are then specialized independently.
#[derive(Debug, Clone)]
pub struct VcgraMapping {
    /// The target architecture.
    pub arch: VcgraArch,
    /// Grid cell of every app node.
    pub place: Vec<(usize, usize)>,
    /// Routed node-to-node edges.
    pub routes: Vec<RoutedEdge>,
    /// Settings per grid cell (row-major), `None` for unused PEs.
    pub pe_settings: Vec<Option<PeSettings>>,
    /// Total virtual wirelength (channel segments over all routes).
    pub virtual_wirelength: usize,
    /// Wall-clock time of the whole flow.
    pub compile_time: std::time::Duration,
}

impl VcgraMapping {
    /// Settings register values (one 32-bit word per PE and VSB, as in the
    /// paper): the PE word holds the iteration counter; VSB words hold the
    /// packed turn-enable bits derived from the routes.
    pub fn settings_words(&self) -> Vec<u32> {
        let mut words = Vec::new();
        for s in &self.pe_settings {
            words.push(s.map_or(0, |s| s.counter));
        }
        // VSB words: accumulate turn usage at interior corners.
        let vsb_cols = self.arch.cols - 1;
        let mut vsb = vec![0u32; self.arch.vsb_count()];
        for r in &self.routes {
            for w in r.path.windows(2) {
                let (a, b) = (w[0], w[1]);
                // The VSB at the corner between the two cells notes the
                // direction pair.
                let (rr, cc) = (a.0.min(b.0), a.1.min(b.1));
                if rr < self.arch.rows - 1 && cc < self.arch.cols - 1 {
                    let dir = if a.0 == b.0 { 1u32 } else { 2u32 };
                    vsb[rr * vsb_cols + cc] |= dir;
                }
            }
        }
        words.extend(vsb);
        words
    }
}

/// Maps an application graph onto the grid: greedy topological seed
/// placement, simulated-annealing refinement, negotiated channel routing.
pub fn map_app(app: &AppGraph, arch: VcgraArch, seed: u64) -> Result<VcgraMapping, FlowError> {
    let t0 = std::time::Instant::now();
    let n = app.nodes.len();
    if n > arch.pe_count() {
        return Err(FlowError::NotEnoughPes { needed: n, available: arch.pe_count() });
    }

    // Edges between placed nodes.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (i, node) in app.nodes.iter().enumerate() {
        for s in [node.a, node.b] {
            if let AppSource::Node(j) = s {
                edges.push((j, i));
            }
        }
    }

    // --- placement ---
    // Seed: snake order over the grid follows the topological node order,
    // which keeps dataflow chains physically adjacent.
    let mut cells: Vec<(usize, usize)> = Vec::with_capacity(arch.pe_count());
    for r in 0..arch.rows {
        if r % 2 == 0 {
            for c in 0..arch.cols {
                cells.push((r, c));
            }
        } else {
            for c in (0..arch.cols).rev() {
                cells.push((r, c));
            }
        }
    }
    let mut place: Vec<(usize, usize)> = cells[..n].to_vec();
    let mut cell_of: Vec<Option<usize>> = vec![None; arch.pe_count()];
    let cell_index = |p: (usize, usize)| p.0 * arch.cols + p.1;
    for (i, &p) in place.iter().enumerate() {
        cell_of[cell_index(p)] = Some(i);
    }

    let dist = |a: (usize, usize), b: (usize, usize)| -> i64 {
        (a.0 as i64 - b.0 as i64).abs() + (a.1 as i64 - b.1 as i64).abs()
    };
    let cost = |place: &[(usize, usize)]| -> i64 {
        edges.iter().map(|&(u, v)| dist(place[u], place[v])).sum()
    };

    // SA refinement: swap two cells (or move to an empty one).
    let mut rng = SplitMix64::new(seed);
    let mut cur_cost = cost(&place);
    let mut temp = (cur_cost.max(4)) as f64 * 0.5;
    let moves_per_temp = 16 * arch.pe_count().max(n);
    while temp > 0.05 {
        for _ in 0..moves_per_temp {
            let i = rng.index(n);
            let target = cells[rng.index(cells.len())];
            let ti = cell_index(target);
            let old = place[i];
            if old == target {
                continue;
            }
            let displaced = cell_of[ti];
            // Apply.
            place[i] = target;
            if let Some(j) = displaced {
                place[j] = old;
            }
            let new_cost = cost(&place);
            let delta = new_cost - cur_cost;
            if delta <= 0 || rng.unit_f64() < (-(delta as f64) / temp).exp() {
                cell_of[ti] = Some(i);
                cell_of[cell_index(old)] = displaced;
                cur_cost = new_cost;
            } else {
                // Revert.
                place[i] = old;
                if let Some(j) = displaced {
                    place[j] = target;
                }
            }
        }
        temp *= 0.8;
    }

    // --- routing: negotiated congestion on the channel grid ---
    // Directed channel segments between 4-adjacent cells.
    let seg_id = |a: (usize, usize), b: (usize, usize)| -> usize {
        // 4 direction slots per cell.
        let d = match (b.0 as i64 - a.0 as i64, b.1 as i64 - a.1 as i64) {
            (0, 1) => 0,
            (0, -1) => 1,
            (1, 0) => 2,
            (-1, 0) => 3,
            _ => unreachable!("non-adjacent cells"),
        };
        (a.0 * arch.cols + a.1) * 4 + d
    };
    let num_segs = arch.pe_count() * 4;
    let mut usage = vec![0u32; num_segs];
    let mut history = vec![0f64; num_segs];
    let mut paths: Vec<Vec<(usize, usize)>> = vec![Vec::new(); edges.len()];
    let cap = arch.channel_capacity as u32;

    for iter in 0..24 {
        // (Re)route every edge with congestion-aware BFS/Dijkstra.
        for (e, &(u, v)) in edges.iter().enumerate() {
            // Remove the previous path from usage.
            for w in paths[e].windows(2) {
                usage[seg_id(w[0], w[1])] -= 1;
            }
            let (src, dst) = (place[u], place[v]);
            paths[e] = dijkstra_route(arch, src, dst, &usage, &history, cap);
            for w in paths[e].windows(2) {
                usage[seg_id(w[0], w[1])] += 1;
            }
        }
        let over: usize = usage.iter().filter(|&&u| u > cap).count();
        if over == 0 {
            break;
        }
        for (s, &u) in usage.iter().enumerate() {
            if u > cap {
                history[s] += (u - cap) as f64;
            }
        }
        if iter == 23 {
            return Err(FlowError::Unroutable { overused_segments: over });
        }
    }

    // --- settings generation ---
    let mut pe_settings: Vec<Option<PeSettings>> = vec![None; arch.pe_count()];
    for (i, node) in app.nodes.iter().enumerate() {
        let coeff = node
            .coeff
            .unwrap_or_else(|| FpValue::zero(app.format));
        pe_settings[cell_index(place[i])] = Some(PeSettings {
            coeff,
            counter: 1,
            mode: node.op,
        });
    }

    let virtual_wirelength = paths.iter().map(|p| p.len().saturating_sub(1)).sum();
    let routes = edges
        .iter()
        .zip(paths)
        .map(|(&(u, v), path)| RoutedEdge { from: u, to: v, path })
        .collect();

    Ok(VcgraMapping {
        arch,
        place,
        routes,
        pe_settings,
        virtual_wirelength,
        compile_time: t0.elapsed(),
    })
}

/// Congestion-aware shortest path on the cell grid (uniform segment cost
/// plus present/history congestion penalties, PathFinder-style).
fn dijkstra_route(
    arch: VcgraArch,
    src: (usize, usize),
    dst: (usize, usize),
    usage: &[u32],
    history: &[f64],
    cap: u32,
) -> Vec<(usize, usize)> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let idx = |p: (usize, usize)| p.0 * arch.cols + p.1;
    let n = arch.pe_count();
    let mut best = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(usize, usize)>> = vec![None; n];
    let mut heap: BinaryHeap<(Reverse<u64>, (usize, usize))> = BinaryHeap::new();
    best[idx(src)] = 0.0;
    heap.push((Reverse(0), src));
    let seg_id = |a: (usize, usize), b: (usize, usize)| -> usize {
        let d = match (b.0 as i64 - a.0 as i64, b.1 as i64 - a.1 as i64) {
            (0, 1) => 0,
            (0, -1) => 1,
            (1, 0) => 2,
            (-1, 0) => 3,
            _ => unreachable!(),
        };
        (a.0 * arch.cols + a.1) * 4 + d
    };
    while let Some((Reverse(d_fixed), cell)) = heap.pop() {
        let d = d_fixed as f64 / 1024.0;
        if cell == dst {
            break;
        }
        if d > best[idx(cell)] + 1e-9 {
            continue;
        }
        let (r, c) = cell;
        let mut neighbors = Vec::with_capacity(4);
        if c + 1 < arch.cols {
            neighbors.push((r, c + 1));
        }
        if c > 0 {
            neighbors.push((r, c - 1));
        }
        if r + 1 < arch.rows {
            neighbors.push((r + 1, c));
        }
        if r > 0 {
            neighbors.push((r - 1, c));
        }
        for nb in neighbors {
            let s = seg_id(cell, nb);
            let congestion = if usage[s] >= cap {
                3.0 * (usage[s] - cap + 1) as f64
            } else {
                0.0
            };
            let nd = d + 1.0 + congestion + history[s];
            if nd + 1e-9 < best[idx(nb)] {
                best[idx(nb)] = nd;
                prev[idx(nb)] = Some(cell);
                heap.push((Reverse((nd * 1024.0) as u64), nb));
            }
        }
    }
    // Reconstruct.
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = prev[idx(cur)].expect("connected grid");
        path.push(cur);
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use softfloat::FpFormat;

    const F: FpFormat = FpFormat::PAPER;

    #[test]
    fn small_kernel_maps_onto_4x4() {
        let app = AppGraph::dot_product(F, &[1.0, 2.0, 3.0, 4.0, 5.0]);
        let m = map_app(&app, VcgraArch::paper_4x4(), 42).expect("mappable");
        assert_eq!(m.place.len(), 9);
        // All placements distinct and in bounds.
        let mut seen = std::collections::HashSet::new();
        for &(r, c) in &m.place {
            assert!(r < 4 && c < 4);
            assert!(seen.insert((r, c)), "double occupancy at ({r},{c})");
        }
        assert!(m.virtual_wirelength > 0);
        // 8 node-to-node edges in a 9-node adder tree application.
        assert_eq!(m.routes.len(), 8);
    }

    #[test]
    fn too_big_graph_is_rejected() {
        let app = AppGraph::dot_product(F, &[1.0; 16]); // 16 muls + 15 adds
        let err = map_app(&app, VcgraArch::paper_4x4(), 1).unwrap_err();
        assert!(matches!(err, FlowError::NotEnoughPes { needed: 31, available: 16 }));
    }

    #[test]
    fn routes_are_contiguous_and_correct() {
        let app = AppGraph::mac_chain(F, &[0.5, 0.25, 0.125]);
        let m = map_app(&app, VcgraArch::paper_4x4(), 7).unwrap();
        for r in &m.routes {
            assert_eq!(r.path.first().copied(), Some(m.place[r.from]));
            assert_eq!(r.path.last().copied(), Some(m.place[r.to]));
            for w in r.path.windows(2) {
                let d = (w[0].0 as i64 - w[1].0 as i64).abs()
                    + (w[0].1 as i64 - w[1].1 as i64).abs();
                assert_eq!(d, 1, "path must step between adjacent cells");
            }
        }
    }

    #[test]
    fn settings_words_cover_pes_and_vsbs() {
        let app = AppGraph::dot_product(F, &[1.0, -1.0, 0.5]);
        let arch = VcgraArch::paper_4x4();
        let m = map_app(&app, arch, 3).unwrap();
        let words = m.settings_words();
        assert_eq!(words.len(), arch.settings_register_count());
    }

    #[test]
    fn placement_quality_chains_are_short() {
        // A 6-node chain on a 4x4 grid should place with near-minimal WL.
        let app = AppGraph::scaling_cascade(F, &[1.0; 6]);
        let m = map_app(&app, VcgraArch::paper_4x4(), 11).unwrap();
        assert!(
            m.virtual_wirelength <= 8,
            "chain of 5 edges should route in <= 8 segments, got {}",
            m.virtual_wirelength
        );
    }
}
