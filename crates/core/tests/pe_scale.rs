//! Paper-scale smoke test: maps the full (6,26) virtual PE through both
//! flows. Run with --release; prints the Table I quantities.

use mapping::{map_conventional, map_parameterized, MapOptions};

#[test]
#[ignore = "paper-scale; run explicitly in release mode"]
fn table1_shape() {
    let pe_par = vcgra::VirtualPe::build(vcgra::VirtualPeConfig::default(), true);
    let aig = logic::opt::sweep(&pe_par.aig);
    println!("AIG: {} live ANDs, depth {}", aig.live_ands(), aig.depth());
    let t0 = std::time::Instant::now();
    let conv = map_conventional(&aig, MapOptions::default());
    println!("conventional mapped in {:?}: {:?}", t0.elapsed(), conv.stats());
    let t1 = std::time::Instant::now();
    let par = map_parameterized(&aig, MapOptions::default());
    println!("parameterized mapped in {:?}: {:?}", t1.elapsed(), par.stats());
    let (sc, sp) = (conv.stats(), par.stats());
    let red = 100.0 * (1.0 - sp.luts as f64 / sc.luts as f64);
    println!("LUT reduction: {red:.1}% (paper: >=30%)");
    println!("TCONs: {} (paper: 568)", sp.tcons);
    println!("depth: {} -> {} (paper: 36 -> 33)", sc.depth, sp.depth);
}

#[test]
#[ignore = "paper-scale PaR; run explicitly in release mode"]
fn table1_par_shape() {
    let pe_par = vcgra::VirtualPe::build(vcgra::VirtualPeConfig::default(), true);
    let aig = logic::opt::sweep(&pe_par.aig);
    for (label, design) in [
        ("conventional", map_conventional(&aig, MapOptions::default())),
        ("parameterized", map_parameterized(&aig, MapOptions::default())),
    ] {
        let nl = par::extract(&design);
        println!(
            "{label}: {} logic blocks, {} nets ({} tunable)",
            nl.logic_count(),
            nl.nets.len(),
            nl.tunable_net_count()
        );
        let t = std::time::Instant::now();
        let rep = par::full_par(&nl, &par::cw::ParOptions::default()).expect("routable");
        println!(
            "{label}: WL {} CW {} (tcon switches {}) in {:?}",
            rep.result.wirelength,
            rep.min_channel_width,
            rep.result.tcon_switches,
            t.elapsed()
        );
    }
}
