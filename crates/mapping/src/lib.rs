//! Technology mapping for parameterized FPGA configurations.
//!
//! Two flows share one engine, exactly as in the paper's methodology
//! (Section III):
//!
//! * **conventional mapping** ([`map_conventional`]) treats every primary
//!   input as a regular signal and produces plain K-LUTs — the baseline
//!   column of Table I;
//! * **parameterized mapping** ([`map_parameterized`]) is our TCONMAP [4]:
//!   it computes, for every cut, a *parameterized truth table* whose
//!   2^k entries are Boolean functions of the parameter inputs (ROBDDs).
//!   A cut with ≤ K regular leaves is a **TLUT** candidate; a node whose
//!   function collapses — for *every* parameter assignment — to one of its
//!   leaves or to a constant is a **TCON** (tunable connection) and is
//!   implemented on the FPGA's physical routing switches instead of a LUT.
//!
//! The mapped design ([`design::MappedDesign`]) can be *specialized* for a
//! concrete parameter assignment (the job of the SCG in the `dcs` crate) and
//! simulated, which is how every mapping is verified against the source
//! netlist — the equivalence checker itself lives in the `verify` crate
//! (`verify::equiv`), which this crate's tests call as a dev-dependency.

#![forbid(unsafe_code)]
#![deny(clippy::dbg_macro, clippy::todo)]

pub mod design;
pub mod mapper;

pub use design::{MapStats, MappedDesign, MappedNode, Source, SpecializedDesign, Tcon, Tlut};
pub use mapper::{
    map_conventional, map_parameterized, map_parameterized_with_effort, MapEffort, MapOptions,
};
