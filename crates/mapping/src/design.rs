//! Mapped-netlist representation shared by both flows.
//!
//! A [`MappedDesign`] is a DAG of [`MappedNode`]s over the regular primary
//! inputs. LUT truth-table bits and TCON selection conditions are Boolean
//! functions of the parameters, stored as BDDs in the design's own manager.
//! [`MappedDesign::specialize`] freezes a parameter assignment into a
//! [`SpecializedDesign`] with concrete truth tables and resolved
//! connections — that is precisely what the paper's Specialized
//! Configuration Generator does when it evaluates the PPC.

use logic::bdd::{Bdd, BddManager};
use logic::tt::TruthTable;

/// A signal source inside a mapped design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Source {
    /// Regular primary input (index into [`MappedDesign::input_names`]).
    Input(u32),
    /// Output of mapped node `id`.
    Node(u32),
    /// A constant (only appears after specialization or on outputs).
    Const(bool),
}

/// A (possibly tunable) K-input LUT.
///
/// `ptt[m]` is the truth-table bit for input minterm `m`, as a function of
/// the parameters. If every entry is constant this is an ordinary LUT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tlut {
    /// LUT input connections, LSB of the minterm first.
    pub inputs: Vec<Source>,
    /// `2^inputs.len()` truth-table coefficient functions.
    pub ptt: Vec<Bdd>,
}

impl Tlut {
    /// A LUT is *tunable* when at least one truth-table bit depends on a
    /// parameter.
    pub fn is_tunable(&self) -> bool {
        self.ptt.iter().any(|b| !b.is_const())
    }
}

/// A tunable connection: for every parameter assignment the node's function
/// equals one of the `choices` sources (whose condition evaluates true) or a
/// constant.
///
/// On the FPGA this is pure routing: the conditions become configuration
/// bits of physical switch blocks / connection blocks, not LUTs. Routing
/// cannot invert, so a TCON may carry the *complement* of its logical
/// function (`invert = true`); consumers absorb the static inversion into
/// their truth tables (LUTs) or their own polarity annotation (TCONs) —
/// this is the phase-assignment step of TCONMAP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tcon {
    /// Candidate sources with their activation conditions (disjoint cover
    /// together with `const0`/`const1`; on overlap the first match wins).
    pub choices: Vec<(Source, Bdd)>,
    /// Condition under which the node is (logical) constant 0.
    pub const0: Bdd,
    /// Condition under which the node is (logical) constant 1.
    pub const1: Bdd,
    /// The wire physically carries the complement of the logical function.
    pub invert: bool,
}

/// One node of a mapped design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappedNode {
    /// A LUT (tunable or static).
    Lut(Tlut),
    /// A tunable connection (routing only).
    Tcon(Tcon),
}

/// A primary output: named, with a source and an optional inversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappedOutput {
    /// Output name (matches the source AIG).
    pub name: String,
    /// Driving signal.
    pub source: Source,
    /// True if the output is the complement of the source.
    pub invert: bool,
}

/// Aggregate resource statistics (the quantities of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapStats {
    /// Total LUT count (static + tunable).
    pub luts: usize,
    /// LUTs whose truth table depends on parameters.
    pub tluts: usize,
    /// Tunable connections (mapped to physical routing).
    pub tcons: usize,
    /// Parameter-only nodes (settings bits held in configuration memory).
    pub tunable_constants: usize,
    /// LUT logic depth over the outputs (TCONs contribute no level).
    pub depth: u32,
    /// Total LUT input pins in use (a proxy for connection-block demand).
    pub lut_pins: usize,
}

/// A technology-mapped design.
pub struct MappedDesign {
    /// Nodes in topological order (node `i` only references nodes `< i`).
    pub nodes: Vec<MappedNode>,
    /// Primary outputs.
    pub outputs: Vec<MappedOutput>,
    /// Names of the regular inputs, aligned with [`Source::Input`] indices.
    pub input_names: Vec<String>,
    /// Names of the parameters; BDD variable `v` is parameter `v`.
    pub param_names: Vec<String>,
    /// Owner of every [`Bdd`] handle in the design.
    pub bdd: BddManager,
}

impl MappedDesign {
    /// Resource statistics.
    pub fn stats(&self) -> MapStats {
        let mut luts = 0;
        let mut tluts = 0;
        let mut tcons = 0;
        let mut tunable_constants = 0;
        let mut lut_pins = 0;
        for n in &self.nodes {
            match n {
                MappedNode::Lut(l) => {
                    luts += 1;
                    lut_pins += l.inputs.len();
                    if l.is_tunable() {
                        tluts += 1;
                    }
                }
                MappedNode::Tcon(t) => {
                    if t.choices.is_empty() {
                        tunable_constants += 1;
                    } else {
                        tcons += 1;
                    }
                }
            }
        }
        MapStats {
            luts,
            tluts,
            tcons,
            tunable_constants,
            depth: self.depth(),
            lut_pins,
        }
    }

    /// LUT logic depth (levels) over the outputs; TCONs add no level.
    pub fn depth(&self) -> u32 {
        let mut level = vec![0u32; self.nodes.len()];
        let src_level = |level: &[u32], s: &Source| -> u32 {
            match s {
                Source::Node(id) => level[*id as usize],
                _ => 0,
            }
        };
        for (i, n) in self.nodes.iter().enumerate() {
            level[i] = match n {
                MappedNode::Lut(l) => {
                    1 + l
                        .inputs
                        .iter()
                        .map(|s| src_level(&level, s))
                        .max()
                        .unwrap_or(0)
                }
                MappedNode::Tcon(t) => t
                    .choices
                    .iter()
                    .map(|(s, _)| src_level(&level, s))
                    .max()
                    .unwrap_or(0),
            };
        }
        self.outputs
            .iter()
            .map(|o| src_level(&level, &o.source))
            .max()
            .unwrap_or(0)
    }

    /// Evaluates every node for a parameter assignment, producing concrete
    /// LUT truth tables and resolved connections.
    ///
    /// `params[v]` is the value of parameter (BDD variable) `v`.
    pub fn specialize(&self, params: &[bool]) -> SpecializedDesign {
        let nodes = self
            .nodes
            .iter()
            .map(|n| match n {
                MappedNode::Lut(l) => {
                    let mut tt = TruthTable::zero(l.inputs.len());
                    for (m, b) in l.ptt.iter().enumerate() {
                        if self.bdd.eval(*b, params) {
                            tt.set(m, true);
                        }
                    }
                    SpecNode::Lut(SpecLut { inputs: l.inputs.clone(), tt })
                }
                MappedNode::Tcon(t) => {
                    // The wire carries the physical value: logical ^ invert.
                    if self.bdd.eval(t.const0, params) {
                        SpecNode::Wire(Source::Const(t.invert))
                    } else if self.bdd.eval(t.const1, params) {
                        SpecNode::Wire(Source::Const(!t.invert))
                    } else {
                        let chosen = t
                            .choices
                            .iter()
                            .find(|(_, c)| self.bdd.eval(*c, params))
                            .map(|(s, _)| *s)
                            .expect("TCON cover must be exhaustive over parameters");
                        SpecNode::Wire(chosen)
                    }
                }
            })
            .collect();
        SpecializedDesign {
            nodes,
            outputs: self.outputs.clone(),
            num_inputs: self.input_names.len(),
        }
    }

    /// Convenience: parameter assignment from the low bits of a `u64`
    /// (parameter `v` = bit `v`).
    pub fn params_from_bits(&self, bits: u64) -> Vec<bool> {
        (0..self.param_names.len())
            .map(|v| (bits >> v) & 1 == 1)
            .collect()
    }
}

/// A specialized (parameter-free) LUT.
#[derive(Debug, Clone)]
pub struct SpecLut {
    /// Input connections.
    pub inputs: Vec<Source>,
    /// Concrete truth table.
    pub tt: TruthTable,
}

/// A node of a specialized design.
#[derive(Debug, Clone)]
pub enum SpecNode {
    /// Concrete LUT.
    Lut(SpecLut),
    /// Resolved connection (what a TCON becomes for fixed parameters).
    Wire(Source),
}

/// A design frozen for one parameter assignment.
pub struct SpecializedDesign {
    /// Nodes, same indexing as the mapped design.
    pub nodes: Vec<SpecNode>,
    /// Primary outputs.
    pub outputs: Vec<MappedOutput>,
    /// Number of regular inputs.
    pub num_inputs: usize,
}

impl SpecializedDesign {
    /// 64-way bit-parallel simulation: `input_words[i]` drives regular
    /// input `i`; returns one word per output.
    pub fn simulate(&self, input_words: &[u64]) -> Vec<u64> {
        assert_eq!(input_words.len(), self.num_inputs);
        let mut val = vec![0u64; self.nodes.len()];
        let read = |val: &[u64], s: &Source| -> u64 {
            match s {
                Source::Input(i) => input_words[*i as usize],
                Source::Node(n) => val[*n as usize],
                Source::Const(true) => u64::MAX,
                Source::Const(false) => 0,
            }
        };
        for (i, n) in self.nodes.iter().enumerate() {
            val[i] = match n {
                SpecNode::Wire(s) => read(&val, s),
                SpecNode::Lut(l) => {
                    let ins: Vec<u64> = l.inputs.iter().map(|s| read(&val, s)).collect();
                    let mut out = 0u64;
                    // Evaluate the LUT for each of the 64 lanes.
                    for m in 0..l.tt.len() {
                        if !l.tt.get(m) {
                            continue;
                        }
                        // Lanes where the input minterm equals m.
                        let mut lanes = u64::MAX;
                        for (bit, &w) in ins.iter().enumerate() {
                            lanes &= if (m >> bit) & 1 == 1 { w } else { !w };
                        }
                        out |= lanes;
                    }
                    out
                }
            };
        }
        self.outputs
            .iter()
            .map(|o| {
                let v = read(&val, &o.source);
                if o.invert {
                    !v
                } else {
                    v
                }
            })
            .collect()
    }

    /// Number of LUTs after specialization (wires cost nothing).
    pub fn lut_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, SpecNode::Lut(_)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::bdd::BddManager;

    /// Hand-builds a tiny tunable design: out = p ? a : b as one TCON.
    fn mux_tcon_design() -> MappedDesign {
        let mut bdd = BddManager::new();
        let p = bdd.var(0);
        let np = bdd.nvar(0);
        MappedDesign {
            nodes: vec![MappedNode::Tcon(Tcon {
                choices: vec![(Source::Input(0), p), (Source::Input(1), np)],
                const0: Bdd::FALSE,
                const1: Bdd::FALSE,
                invert: false,
            })],
            outputs: vec![MappedOutput {
                name: "out".into(),
                source: Source::Node(0),
                invert: false,
            }],
            input_names: vec!["a".into(), "b".into()],
            param_names: vec!["p".into()],
            bdd,
        }
    }

    #[test]
    fn tcon_specializes_to_wire() {
        let d = mux_tcon_design();
        let s1 = d.specialize(&[true]);
        match &s1.nodes[0] {
            SpecNode::Wire(Source::Input(0)) => {}
            other => panic!("expected wire to input 0, got {other:?}"),
        }
        let s0 = d.specialize(&[false]);
        match &s0.nodes[0] {
            SpecNode::Wire(Source::Input(1)) => {}
            other => panic!("expected wire to input 1, got {other:?}"),
        }
        // Simulation follows the selected source.
        assert_eq!(s1.simulate(&[0xAB, 0xCD]), vec![0xAB]);
        assert_eq!(s0.simulate(&[0xAB, 0xCD]), vec![0xCD]);
    }

    #[test]
    fn tlut_specialization_changes_function() {
        let mut bdd = BddManager::new();
        let p = bdd.var(0);
        let np = bdd.nvar(0);
        // 1-input LUT: identity when p, inverter when !p.
        let d = MappedDesign {
            nodes: vec![MappedNode::Lut(Tlut {
                inputs: vec![Source::Input(0)],
                ptt: vec![np, p], // tt(0) = !p, tt(1) = p
            })],
            outputs: vec![MappedOutput {
                name: "o".into(),
                source: Source::Node(0),
                invert: false,
            }],
            input_names: vec!["x".into()],
            param_names: vec!["p".into()],
            bdd,
        };
        assert_eq!(d.stats().tluts, 1);
        let ident = d.specialize(&[true]);
        assert_eq!(ident.simulate(&[0b01]), vec![0b01]);
        let inv = d.specialize(&[false]);
        assert_eq!(inv.simulate(&[0b01]) [0] & 0b11, 0b10);
    }

    #[test]
    fn stats_counts() {
        let d = mux_tcon_design();
        let s = d.stats();
        assert_eq!(s.luts, 0);
        assert_eq!(s.tcons, 1);
        assert_eq!(s.depth, 0, "TCONs add no logic level");
    }

    #[test]
    fn depth_counts_lut_levels_only() {
        let mut bdd = BddManager::new();
        let tt_and = vec![Bdd::FALSE, Bdd::FALSE, Bdd::FALSE, Bdd::TRUE];
        let p = bdd.var(0);
        let d = MappedDesign {
            nodes: vec![
                MappedNode::Lut(Tlut {
                    inputs: vec![Source::Input(0), Source::Input(1)],
                    ptt: tt_and.clone(),
                }),
                // TCON forwarding node 0 (or const 0) — no extra level.
                MappedNode::Tcon(Tcon {
                    choices: vec![(Source::Node(0), p)],
                    const0: bdd.nvar(0),
                    const1: Bdd::FALSE,
                    invert: false,
                }),
                MappedNode::Lut(Tlut {
                    inputs: vec![Source::Node(1), Source::Input(2)],
                    ptt: tt_and,
                }),
            ],
            outputs: vec![MappedOutput {
                name: "o".into(),
                source: Source::Node(2),
                invert: false,
            }],
            input_names: vec!["a".into(), "b".into(), "c".into()],
            param_names: vec!["p".into()],
            bdd,
        };
        assert_eq!(d.depth(), 2);
    }
}
