//! Cut-based K-LUT mapping with parameterized truth tables (TCONMAP).
//!
//! The engine enumerates priority cuts bottom-up over the live AIG. Cut
//! leaves are always *non-parameter* nodes — parameter inputs never become
//! leaves, they are folded into the cut's **parameterized truth table**
//! (PTT): a vector of `2^k` BDDs over the parameter variables, one Boolean
//! function per minterm of the `k` regular leaves.
//!
//! From the PTT the two tunable primitives of the paper fall out directly:
//!
//! * the cut is a **TLUT** if `k ≤ K`: the PTT entries become the LUT's
//!   configuration-bit functions (constant entries = ordinary LUT bits);
//! * the node is a **TCON** if, for every parameter assignment, its function
//!   equals one of the leaves (in either polarity) or a constant. With
//!   `C_i^q = ∧_m (ptt[m] ≡ bit_i(m) ⊕ q)` and `C_0/C_1` the constant
//!   conditions, the node is a TCON iff `C_0 ∨ C_1 ∨ ⋁_{i,q} C_i^q` is a
//!   tautology. The conditions are pairwise disjoint and become
//!   routing-switch configuration bits.
//!
//! Because physical routing cannot invert a signal, polarity is resolved in
//! a final phase-assignment pass: every mapped node gets a static `inv`
//! flag (its wire carries `f ⊕ inv`), LUT consumers absorb inverted inputs
//! by permuting their truth tables, and a TCON whose choices would need
//! inconsistent polarities is demoted to a TLUT.

use crate::design::{MappedDesign, MappedNode, MappedOutput, Source, Tcon, Tlut};
use logic::aig::{Aig, InputKind, Node};
use logic::bdd::{Bdd, BddManager};
use logic::fxhash::FxHashMap;

/// Mapper options.
#[derive(Debug, Clone, Copy)]
pub struct MapOptions {
    /// LUT input count K (the paper uses the VPR 4-LUT architecture).
    pub k: usize,
    /// Priority cuts kept per node.
    pub cuts_per_node: usize,
    /// Candidate cuts per node that receive the full (expensive) PTT
    /// construction and TCON tautology check. Candidates beyond this
    /// budget — pre-ranked by a cheap LUT-cost bound computed from leaf
    /// sets alone — are discarded without touching the BDD manager. The
    /// default preserves the mapping QoR of the test designs and the
    /// paper PE bit-for-bit (verified against the unlimited enumeration)
    /// while cutting mapping time ~20 % on the paper-scale PE.
    pub cut_eval_limit: usize,
    /// Extract TCONs (parameterized flow) or produce LUTs only.
    pub use_tcons: bool,
    /// Memoize per-cut BDD results across the whole map. Structurally
    /// repeated cones (ripple chains, bit-sliced datapaths) reach the
    /// same interned PTT signature over and over; with the cache on, the
    /// TCON tautology check and the PTT conjunction are computed once
    /// per distinct signature and replayed from the cache afterwards.
    /// Because every [`Bdd`] handle is interned and the manager's own
    /// operation caches are deterministic, a cache hit returns exactly
    /// the handles a recomputation would have — mapped designs are
    /// bit-identical with the cache on or off.
    pub cut_cache: bool,
}

impl Default for MapOptions {
    fn default() -> Self {
        Self { k: 4, cuts_per_node: 6, cut_eval_limit: 12, use_tcons: true, cut_cache: true }
    }
}

/// Work counters for one mapping run — how often the per-cut caches
/// ([`MapOptions::cut_cache`]) short-circuited BDD work.
///
/// This is a *view*: [`run_map`] records into a `trace::Registry`
/// (metric names `map.*`) and materializes this struct from the
/// counters on return, so the struct's public shape is unchanged while
/// the numbers share the observability plumbing everything else uses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MapEffort {
    /// TCON tautology checks requested (cache hits + misses).
    pub tcon_checks: usize,
    /// TCON checks answered from the cut-signature cache.
    pub tcon_cache_hits: usize,
    /// PTT conjunctions requested (cache hits + misses).
    pub ptt_merges: usize,
    /// PTT conjunctions answered from the signature cache.
    pub ptt_cache_hits: usize,
}

/// Conventional flow: parameters are treated as regular inputs and the
/// result contains only plain LUTs (the Table I baseline).
pub fn map_conventional(aig: &Aig, opts: MapOptions) -> MappedDesign {
    run_map(aig, MapOptions { use_tcons: false, ..opts }, false).0
}

/// Parameterized flow: honors `InputKind::Param`, extracts TLUTs and TCONs.
pub fn map_parameterized(aig: &Aig, opts: MapOptions) -> MappedDesign {
    run_map(aig, opts, true).0
}

/// [`map_parameterized`] plus the cut-cache work counters.
pub fn map_parameterized_with_effort(aig: &Aig, opts: MapOptions) -> (MappedDesign, MapEffort) {
    run_map(aig, opts, true)
}

#[derive(Clone)]
struct TconCand {
    /// (leaf position, polarity q, activation condition): under the
    /// condition, `f == leaf ⊕ q`. Conditions are pairwise disjoint.
    choices: Vec<(usize, bool, Bdd)>,
    const0: Bdd,
    const1: Bdd,
}

struct Cut {
    /// Sorted AIG node ids of the regular leaves.
    leaves: Vec<u32>,
    /// `2^leaves.len()` parameter functions.
    ptt: Vec<Bdd>,
    /// Arrival (LUT levels) when implementing the node with this cut.
    arr: u32,
    /// Area flow: own cost (1 LUT / 0 TCON) + shared leaf cost estimate.
    af: f32,
    /// TCON candidacy (computed only in the parameterized flow).
    tcon: Option<TconCand>,
    /// Trivial cut `{node}` — only usable by parents, not as an
    /// implementation of the node itself.
    trivial: bool,
}

fn expand_ptt(child: &[Bdd], child_leaves: &[u32], merged: &[u32]) -> Vec<Bdd> {
    // Position of every child leaf within the merged leaf set.
    let pos: Vec<usize> = child_leaves
        .iter()
        .map(|l| merged.binary_search(l).expect("child leaves ⊆ merged"))
        .collect();
    let k = merged.len();
    (0..1usize << k)
        .map(|m| {
            let mut mc = 0usize;
            for (ci, &mp) in pos.iter().enumerate() {
                if (m >> mp) & 1 == 1 {
                    mc |= 1 << ci;
                }
            }
            child[mc]
        })
        .collect()
}

fn negate_ptt(bdd: &mut BddManager, ptt: &[Bdd]) -> Vec<Bdd> {
    ptt.iter().map(|&e| bdd.not(e)).collect()
}

fn and_ptt(bdd: &mut BddManager, a: &[Bdd], b: &[Bdd]) -> Vec<Bdd> {
    a.iter().zip(b).map(|(&x, &y)| bdd.and(x, y)).collect()
}

fn tcon_check(bdd: &mut BddManager, ptt: &[Bdd], k: usize) -> Option<TconCand> {
    let mut const0 = Bdd::TRUE;
    let mut const1 = Bdd::TRUE;
    for &e in ptt {
        let ne = bdd.not(e);
        const0 = bdd.and(const0, ne);
        const1 = bdd.and(const1, e);
        if const0.is_false() && const1.is_false() {
            break;
        }
    }
    let mut cover = bdd.or(const0, const1);
    let mut choices = Vec::new();
    for i in 0..k {
        for q in [false, true] {
            let mut ci = Bdd::TRUE;
            for (m, &e) in ptt.iter().enumerate() {
                let bit = ((m >> i) & 1 == 1) ^ q;
                let term = if bit { e } else { bdd.not(e) };
                ci = bdd.and(ci, term);
                if ci.is_false() {
                    break;
                }
            }
            if !ci.is_false() {
                cover = bdd.or(cover, ci);
                choices.push((i, q, ci));
            }
        }
    }
    if cover.is_true() {
        Some(TconCand { choices, const0, const1 })
    } else {
        None
    }
}

#[derive(Clone)]
enum Impl {
    Lut {
        leaves: Vec<u32>,
        ptt: Vec<Bdd>,
    },
    Tcon {
        leaves: Vec<u32>,
        /// Kept for possible demotion back to a LUT.
        ptt: Vec<Bdd>,
        choices: Vec<(usize, bool, Bdd)>,
        const0: Bdd,
        const1: Bdd,
    },
}

/// Drops cut leaves the function does not depend on and compacts the PTT
/// accordingly. Used at cover time and when demoting a TCON (whose
/// function provably depends only on its *selected* leaves — the
/// never-selected ones were not marked required and must not be emitted).
fn prune_lut(leaves: &[u32], ptt: &[Bdd]) -> (Vec<u32>, Vec<Bdd>) {
    let k = leaves.len();
    let mut needed = Vec::new();
    for i in 0..k {
        let mut dep = false;
        for m in 0..1usize << k {
            if (m >> i) & 1 == 0 && ptt[m] != ptt[m | (1 << i)] {
                dep = true;
                break;
            }
        }
        if dep {
            needed.push(i);
        }
    }
    let new_leaves: Vec<u32> = needed.iter().map(|&i| leaves[i]).collect();
    let kk = new_leaves.len();
    let new_ptt: Vec<Bdd> = (0..1usize << kk)
        .map(|m| {
            let mut full = 0usize;
            for (new_i, &old_i) in needed.iter().enumerate() {
                if (m >> new_i) & 1 == 1 {
                    full |= 1 << old_i;
                }
            }
            ptt[full]
        })
        .collect();
    (new_leaves, new_ptt)
}

fn run_map(aig: &Aig, opts: MapOptions, honor_params: bool) -> (MappedDesign, MapEffort) {
    assert!(opts.k >= 2 && opts.k <= 6);
    let mut map_span = trace::span("map");
    map_span.arg("nodes", aig.num_nodes());
    map_span.arg("parameterized", honor_params);
    let mut bdd = BddManager::new();
    let live = aig.live_nodes();
    // Per-cut memo tables ([`MapOptions::cut_cache`]). Keys are interned
    // handle vectors, so key equality is function equality; values replay
    // the exact handles the original computation produced. The effort
    // counters live in a registry; `MapEffort` is read off it at return.
    let effort_reg = trace::Registry::new();
    let ptt_merges = effort_reg.counter("map.ptt_merges");
    let ptt_cache_hits = effort_reg.counter("map.ptt_cache_hits");
    let tcon_checks = effort_reg.counter("map.tcon_checks");
    let tcon_cache_hits = effort_reg.counter("map.tcon_cache_hits");
    let mut tcon_cache: FxHashMap<Vec<Bdd>, Option<TconCand>> = FxHashMap::default();
    let mut ptt_cache: FxHashMap<(Vec<Bdd>, Vec<Bdd>), Vec<Bdd>> = FxHashMap::default();

    // Input bookkeeping: regular-input index per AIG input, param variable
    // per AIG input.
    let mut input_names = Vec::new();
    let mut param_names = Vec::new();
    let mut reg_index: FxHashMap<u32, u32> = FxHashMap::default(); // AIG node -> regular idx
    let mut param_var: FxHashMap<u32, u32> = FxHashMap::default(); // AIG node -> BDD var
    for info in aig.inputs() {
        let is_param = honor_params && info.kind == InputKind::Param;
        if is_param {
            param_var.insert(info.node, param_names.len() as u32);
            param_names.push(info.name.clone());
        } else {
            reg_index.insert(info.node, input_names.len() as u32);
            input_names.push(info.name.clone());
        }
    }

    // ---- forward pass: priority cuts ----
    let cuts_span = trace::span("map.cuts");
    let n = aig.num_nodes();
    let fanout = aig.fanouts();
    let mut cutsets: Vec<Vec<Cut>> = Vec::with_capacity(n);
    let mut arrival = vec![0u32; n];
    let mut aflow = vec![0f32; n];
    for (id, node) in aig.iter_nodes() {
        let idu = id as usize;
        if !live[idu] && !matches!(node, Node::Input(_)) {
            cutsets.push(Vec::new());
            continue;
        }
        let cuts = match node {
            Node::Const => vec![Cut {
                leaves: vec![],
                ptt: vec![Bdd::FALSE],
                arr: 0,
                af: 0.0,
                tcon: Some(TconCand {
                    choices: vec![],
                    const0: Bdd::TRUE,
                    const1: Bdd::FALSE,
                }),
                trivial: false,
            }],
            Node::Input(_) => {
                if let Some(&v) = param_var.get(&id) {
                    let p = bdd.var(v);
                    let np = bdd.nvar(v);
                    vec![Cut {
                        leaves: vec![],
                        ptt: vec![p],
                        arr: 0,
                        af: 0.0,
                        tcon: Some(TconCand { choices: vec![], const0: np, const1: p }),
                        trivial: false,
                    }]
                } else {
                    vec![Cut {
                        leaves: vec![id],
                        ptt: vec![Bdd::FALSE, Bdd::TRUE],
                        arr: 0,
                        af: 0.0,
                        tcon: None,
                        trivial: true,
                    }]
                }
            }
            Node::And(a, b) => {
                let leaf_cost = |l: u32| -> f32 {
                    aflow[l as usize] / (fanout[l as usize].max(1) as f32)
                };
                // Phase 1 — candidate leaf sets only, no BDD work yet.
                // Each candidate carries a cheap LUT-cost bound (arrival,
                // area flow as if implemented by a plain LUT) computed
                // from the leaves alone.
                let mut cands: Vec<(Vec<u32>, usize, usize, u32, f32)> = Vec::new();
                let mut seen: FxHashMap<Vec<u32>, ()> = FxHashMap::default();
                for cai in 0..cutsets[a.node() as usize].len() {
                    for cbi in 0..cutsets[b.node() as usize].len() {
                        let ca = &cutsets[a.node() as usize][cai];
                        let cb = &cutsets[b.node() as usize][cbi];
                        // Union of sorted leaf sets, early reject over K.
                        let mut leaves =
                            Vec::with_capacity(ca.leaves.len() + cb.leaves.len());
                        let (mut i, mut j) = (0, 0);
                        let ok = loop {
                            if leaves.len() > opts.k {
                                break false;
                            }
                            match (ca.leaves.get(i), cb.leaves.get(j)) {
                                (Some(&x), Some(&y)) => {
                                    if x == y {
                                        leaves.push(x);
                                        i += 1;
                                        j += 1;
                                    } else if x < y {
                                        leaves.push(x);
                                        i += 1;
                                    } else {
                                        leaves.push(y);
                                        j += 1;
                                    }
                                }
                                (Some(&x), None) => {
                                    leaves.push(x);
                                    i += 1;
                                }
                                (None, Some(&y)) => {
                                    leaves.push(y);
                                    j += 1;
                                }
                                (None, None) => break true,
                            }
                        };
                        if !ok || leaves.len() > opts.k || seen.contains_key(&leaves) {
                            continue;
                        }
                        let arr_lb = 1 + leaves
                            .iter()
                            .map(|&l| arrival[l as usize])
                            .max()
                            .unwrap_or(0);
                        let af_lb: f32 =
                            1.0 + leaves.iter().map(|&l| leaf_cost(l)).sum::<f32>();
                        seen.insert(leaves.clone(), ());
                        cands.push((leaves, cai, cbi, arr_lb, af_lb));
                    }
                }
                // Phase 2 — rank by the cheap bound and run the expensive
                // PTT construction + TCON tautology check only on the best
                // `cut_eval_limit` candidates. The tie-break on the leaf
                // vector keeps the ranking fully deterministic.
                let eval_budget = opts.cut_eval_limit.max(opts.cuts_per_node).max(1);
                if cands.len() > eval_budget {
                    cands.sort_by(|x, y| {
                        x.3.cmp(&y.3)
                            .then(x.4.total_cmp(&y.4))
                            .then(x.0.len().cmp(&y.0.len()))
                            .then(x.0.cmp(&y.0))
                    });
                    cands.truncate(eval_budget);
                }
                let mut merged: Vec<Cut> = Vec::new();
                for (leaves, cai, cbi, _, _) in cands {
                    let ca = &cutsets[a.node() as usize][cai];
                    let cb = &cutsets[b.node() as usize][cbi];
                    let ea = expand_ptt(&ca.ptt, &ca.leaves, &leaves);
                    let eb = expand_ptt(&cb.ptt, &cb.leaves, &leaves);
                    let fa = if a.is_neg() { negate_ptt(&mut bdd, &ea) } else { ea };
                    let fb = if b.is_neg() { negate_ptt(&mut bdd, &eb) } else { eb };
                    ptt_merges.inc();
                    let ptt = if opts.cut_cache {
                        match ptt_cache.get(&(fa.clone(), fb.clone())) {
                            Some(p) => {
                                ptt_cache_hits.inc();
                                p.clone()
                            }
                            None => {
                                let p = and_ptt(&mut bdd, &fa, &fb);
                                ptt_cache.insert((fa, fb), p.clone());
                                p
                            }
                        }
                    } else {
                        and_ptt(&mut bdd, &fa, &fb)
                    };
                    let k = leaves.len();
                    let tcon = if !opts.use_tcons {
                        None
                    } else if opts.cut_cache {
                        tcon_checks.inc();
                        match tcon_cache.get(&ptt) {
                            Some(c) => {
                                tcon_cache_hits.inc();
                                c.clone()
                            }
                            None => {
                                let c = tcon_check(&mut bdd, &ptt, k);
                                tcon_cache.insert(ptt.clone(), c.clone());
                                c
                            }
                        }
                    } else {
                        tcon_checks.inc();
                        tcon_check(&mut bdd, &ptt, k)
                    };
                    // Arrival and area flow: TCONs are free logic-wise;
                    // their selected leaves' costs are shared through
                    // the fanout estimate (classic area flow).
                    let (arr, af) = if let Some(tc) = &tcon {
                        let arr = tc
                            .choices
                            .iter()
                            .map(|&(pos, _, _)| arrival[leaves[pos] as usize])
                            .max()
                            .unwrap_or(0);
                        // TCONs are LUT-free but consume routing
                        // switches: a small area cost makes the mapper
                        // absorb them into TLUT cones when a cone is
                        // available at no extra LUTs (TCONMAP's
                        // preference).
                        let af: f32 = 0.35
                            + tc
                                .choices
                                .iter()
                                .map(|&(pos, _, _)| leaf_cost(leaves[pos]))
                                .sum::<f32>();
                        (arr, af)
                    } else {
                        let arr = 1 + leaves
                            .iter()
                            .map(|&l| arrival[l as usize])
                            .max()
                            .unwrap_or(0);
                        let af: f32 =
                            1.0 + leaves.iter().map(|&l| leaf_cost(l)).sum::<f32>();
                        (arr, af)
                    };
                    merged.push(Cut { leaves, ptt, arr, af, tcon, trivial: false });
                }
                debug_assert!(!merged.is_empty(), "AND node must have at least one cut");
                merged.sort_by(|x, y| {
                    x.arr
                        .cmp(&y.arr)
                        .then(x.af.total_cmp(&y.af))
                        .then(x.leaves.len().cmp(&y.leaves.len()))
                });
                // Keep the best C cuts, plus the best TCON cut if pruning
                // would drop every one of them.
                let keep = opts.cuts_per_node.max(1);
                if merged.len() > keep {
                    let has_tcon_kept = merged[..keep].iter().any(|c| c.tcon.is_some());
                    let rescue = if !has_tcon_kept {
                        merged[keep..].iter().position(|c| c.tcon.is_some())
                    } else {
                        None
                    };
                    if let Some(r) = rescue {
                        merged.swap(keep - 1, keep + r);
                    }
                    merged.truncate(keep);
                }
                arrival[idu] = merged.iter().map(|c| c.arr).min().unwrap_or(0);
                aflow[idu] = merged
                    .iter()
                    .map(|c| c.af)
                    .fold(f32::INFINITY, f32::min)
                    .min(1e30);
                // Trivial cut for parents.
                merged.push(Cut {
                    leaves: vec![id],
                    ptt: vec![Bdd::FALSE, Bdd::TRUE],
                    arr: arrival[idu],
                    af: aflow[idu],
                    tcon: None,
                    trivial: true,
                });
                merged
            }
        };
        cutsets.push(cuts);
    }
    drop(cuts_span);

    // ---- cover pass ----
    let cover_span = trace::span("map.cover");
    let mut required = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    for (_, l) in aig.outputs() {
        let id = l.node();
        match aig.node(id) {
            Node::And(..) => stack.push(id),
            Node::Input(_) if param_var.contains_key(&id) => stack.push(id),
            _ => {}
        }
    }
    let mut chosen: FxHashMap<u32, Impl> = FxHashMap::default();
    while let Some(id) = stack.pop() {
        if required[id as usize] {
            continue;
        }
        required[id as usize] = true;
        let cuts = &cutsets[id as usize];
        let best = cuts
            .iter()
            .filter(|c| !c.trivial)
            .min_by(|x, y| {
                x.arr
                    .cmp(&y.arr)
                    .then(x.af.total_cmp(&y.af))
                    .then(x.leaves.len().cmp(&y.leaves.len()))
            })
            .expect("every required node has a non-trivial cut");
        let impl_ = if let Some(tc) = &best.tcon {
            // Only leaves actually selectable under some parameter value
            // stay connected.
            for &(pos, _, _) in &tc.choices {
                let leaf = best.leaves[pos];
                if matches!(aig.node(leaf), Node::And(..)) {
                    stack.push(leaf);
                }
            }
            Impl::Tcon {
                leaves: best.leaves.clone(),
                ptt: best.ptt.clone(),
                choices: tc.choices.clone(),
                const0: tc.const0,
                const1: tc.const1,
            }
        } else {
            // Support-prune the LUT: drop leaves no entry pair depends on.
            let (leaves, ptt) = prune_lut(&best.leaves, &best.ptt);
            for &leaf in &leaves {
                if matches!(aig.node(leaf), Node::And(..)) {
                    stack.push(leaf);
                }
            }
            Impl::Lut { leaves, ptt }
        };
        chosen.insert(id, impl_);
    }
    drop(cover_span);

    // ---- phase assignment: static polarity per mapped node ----
    let emit_span = trace::span("map.emit");
    // inv[aig_id] = the emitted wire carries (logical function ⊕ inv).
    let mut ids: Vec<u32> = chosen.keys().copied().collect();
    ids.sort_unstable();
    let mut inv: FxHashMap<u32, bool> = FxHashMap::default();
    for &id in &ids {
        let entry = chosen.get(&id).unwrap();
        match entry {
            Impl::Lut { .. } => {
                inv.insert(id, false);
            }
            Impl::Tcon { leaves, ptt, choices, .. } => {
                // Physical polarity constraint: for every choice,
                // inv(node) = q ⊕ inv(leaf); all must agree.
                let mut req: Option<bool> = None;
                let mut consistent = true;
                for &(pos, q, _) in choices {
                    let leaf = leaves[pos];
                    let leaf_inv = inv.get(&leaf).copied().unwrap_or(false);
                    let r = q ^ leaf_inv;
                    match req {
                        None => req = Some(r),
                        Some(prev) if prev != r => {
                            consistent = false;
                            break;
                        }
                        _ => {}
                    }
                }
                if consistent {
                    inv.insert(id, req.unwrap_or(false));
                } else {
                    // Demote to a TLUT (always feasible: ≤ K leaves).
                    // Support pruning removes never-selected leaves, which
                    // were not covered and must not be referenced.
                    let (pl, pp) = prune_lut(leaves, ptt);
                    debug_assert!(
                        pl.iter().all(|l| {
                            choices.iter().any(|&(pos, _, _)| leaves[pos] == *l)
                        }),
                        "demoted TLUT must only use selected leaves"
                    );
                    inv.insert(id, false);
                    chosen.insert(id, Impl::Lut { leaves: pl, ptt: pp });
                }
            }
        }
    }

    // ---- emit in topological (ascending AIG id) order ----
    let mut nodes: Vec<MappedNode> = Vec::new();
    let mut node_of: FxHashMap<u32, u32> = FxHashMap::default();
    let src_of = |aig_id: u32,
                  reg_index: &FxHashMap<u32, u32>,
                  node_of: &FxHashMap<u32, u32>|
     -> Source {
        if let Some(&r) = reg_index.get(&aig_id) {
            Source::Input(r)
        } else if let Some(&m) = node_of.get(&aig_id) {
            Source::Node(m)
        } else {
            unreachable!("leaf {aig_id} neither input nor mapped node")
        }
    };
    for &id in &ids {
        let impl_ = &chosen[&id];
        let mapped = match impl_ {
            Impl::Lut { leaves, ptt } => {
                // Absorb inverted-polarity leaves by permuting the PTT.
                let mut flip_mask = 0usize;
                for (i, leaf) in leaves.iter().enumerate() {
                    if inv.get(leaf).copied().unwrap_or(false) {
                        flip_mask |= 1 << i;
                    }
                }
                let ptt_fixed: Vec<Bdd> = if flip_mask == 0 {
                    ptt.clone()
                } else {
                    (0..ptt.len()).map(|m| ptt[m ^ flip_mask]).collect()
                };
                MappedNode::Lut(Tlut {
                    inputs: leaves
                        .iter()
                        .map(|&l| src_of(l, &reg_index, &node_of))
                        .collect(),
                    ptt: ptt_fixed,
                })
            }
            Impl::Tcon { leaves, choices, const0, const1, .. } => MappedNode::Tcon(Tcon {
                choices: choices
                    .iter()
                    .map(|&(pos, _, c)| (src_of(leaves[pos], &reg_index, &node_of), c))
                    .collect(),
                const0: *const0,
                const1: *const1,
                invert: inv[&id],
            }),
        };
        node_of.insert(id, nodes.len() as u32);
        nodes.push(mapped);
    }

    // ---- outputs ----
    let mut outputs = Vec::with_capacity(aig.outputs().len());
    for (name, l) in aig.outputs() {
        let id = l.node();
        let node_inv = inv.get(&id).copied().unwrap_or(false);
        let (source, invert) = match aig.node(id) {
            Node::Const => (Source::Const(l.is_neg()), false),
            Node::Input(_) => {
                if let Some(&m) = node_of.get(&id) {
                    (Source::Node(m), l.is_neg() ^ node_inv)
                } else {
                    (
                        Source::Input(*reg_index.get(&id).expect("regular input")),
                        l.is_neg(),
                    )
                }
            }
            Node::And(..) => (
                Source::Node(*node_of.get(&id).expect("covered node")),
                l.is_neg() ^ node_inv,
            ),
        };
        outputs.push(MappedOutput { name: name.clone(), source, invert });
    }
    drop(emit_span);

    let effort = MapEffort {
        tcon_checks: tcon_checks.get() as usize,
        tcon_cache_hits: tcon_cache_hits.get() as usize,
        ptt_merges: ptt_merges.get() as usize,
        ptt_cache_hits: ptt_cache_hits.get() as usize,
    };
    map_span.arg("luts", nodes.len());
    map_span.arg("ptt_merges", effort.ptt_merges);
    map_span.arg("ptt_cache_hits", effort.ptt_cache_hits);
    map_span.arg("tcon_checks", effort.tcon_checks);
    map_span.arg("tcon_cache_hits", effort.tcon_cache_hits);
    (MappedDesign { nodes, outputs, input_names, param_names, bdd }, effort)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::MappedNode;
    use logic::aig::{Aig, InputKind};

    fn small_param_circuit() -> Aig {
        // f = p ? (a & b) : (a | b); g = a ^ (q & b)
        let mut g = Aig::new();
        let a = g.input("a", InputKind::Regular);
        let b = g.input("b", InputKind::Regular);
        let p = g.input("p", InputKind::Param);
        let q = g.input("q", InputKind::Param);
        let ab = g.and(a, b);
        let aob = g.or(a, b);
        let f = g.mux(p, ab, aob);
        let qb = g.and(q, b);
        let x = g.xor(a, qb);
        g.add_output("f", f);
        g.add_output("g", x);
        g
    }

    #[test]
    fn conventional_maps_everything_to_luts() {
        let aig = small_param_circuit();
        let d = map_conventional(&aig, MapOptions::default());
        let s = d.stats();
        assert!(s.luts >= 1);
        assert_eq!(s.tcons, 0);
        assert_eq!(s.tluts, 0, "no parameters honored -> no tunable bits");
        assert!(d.param_names.is_empty());
        assert_eq!(d.input_names.len(), 4, "params become regular inputs");
    }

    #[test]
    fn parameterized_extracts_tunables() {
        let aig = small_param_circuit();
        let d = map_parameterized(&aig, MapOptions::default());
        let s = d.stats();
        assert_eq!(d.param_names.len(), 2);
        assert_eq!(d.input_names.len(), 2);
        assert!(s.tluts >= 1, "expected tunable LUTs, got {s:?}");
        assert!(s.luts <= 2, "two outputs, each one TLUT: {s:?}");
    }

    // The equivalence-asserting mapper tests live in
    // `tests/equivalence.rs`: they call `verify::equiv`, whose `mapping`
    // types only unify with the library build, not the unit-test harness.

    #[test]
    fn mapped_node_enum_is_exported() {
        let aig = small_param_circuit();
        let d = map_parameterized(&aig, MapOptions::default());
        for n in &d.nodes {
            match n {
                MappedNode::Lut(l) => assert!(l.inputs.len() <= 4),
                MappedNode::Tcon(t) => {
                    assert!(t.choices.len() <= 8);
                }
            }
        }
    }
}
