//! Mapper correctness against the `verify` crate's equivalence checker.
//!
//! These live as an integration test (not unit tests in `mapper.rs`)
//! because `verify` links the *library* build of `mapping` — calling the
//! checker from unit tests would pit the test harness's own types against
//! the library's and fail to unify. Each test pins both the structural
//! expectations (LUT/TLUT/TCON counts) and full AIG-vs-mapped
//! equivalence over random parameter draws.

use logic::aig::{Aig, InputKind};
use mapping::{map_conventional, map_parameterized, MapOptions};
use verify::equiv::assert_equivalent;

fn small_param_circuit() -> Aig {
    let mut g = Aig::new();
    let a = g.input("a", InputKind::Regular);
    let b = g.input("b", InputKind::Regular);
    let p = g.input("p", InputKind::Param);
    let q = g.input("q", InputKind::Param);
    let ab = g.and(a, b);
    let aob = g.or(a, b);
    let f = g.mux(p, ab, aob);
    let qb = g.and(q, b);
    let x = g.xor(a, qb);
    g.add_output("f", f);
    g.add_output("g", x);
    g
}

#[test]
fn parameterized_equivalence_all_params() {
    let aig = small_param_circuit();
    let d = map_parameterized(&aig, MapOptions::default());
    assert_equivalent(&aig, &d, 4, 0xFEED);
}

#[test]
fn conventional_equivalence() {
    let aig = small_param_circuit();
    let d = map_conventional(&aig, MapOptions::default());
    assert_equivalent(&aig, &d, 4, 0xBEEF);
}

#[test]
fn pure_wire_mux_becomes_tcon() {
    // f = p ? a : b — the canonical TCON example from the paper.
    let mut g = Aig::new();
    let a = g.input("a", InputKind::Regular);
    let b = g.input("b", InputKind::Regular);
    let p = g.input("p", InputKind::Param);
    let f = g.mux(p, a, b);
    g.add_output("f", f);
    let d = map_parameterized(&g, MapOptions::default());
    let s = d.stats();
    assert_eq!(s.tcons, 1, "mux on a parameter is pure routing: {s:?}");
    assert_eq!(s.luts, 0);
    assert_eq!(s.depth, 0);
    assert_equivalent(&g, &d, 4, 1);
}

#[test]
fn constant_multiplication_collapses() {
    // x * c for a 4-bit constant c: partial products are TCONs.
    let mut g = Aig::new();
    let x = g.input_vec("x", 4, InputKind::Regular);
    let c = g.input_vec("c", 4, InputKind::Param);
    let prod = softfloat::gates::mul_array(&mut g, &x, &c);
    g.add_output_vec("p", &prod);
    let conv = map_conventional(&g, MapOptions::default());
    let par = map_parameterized(&g, MapOptions::default());
    let (sc, sp) = (conv.stats(), par.stats());
    assert!(
        sp.luts < sc.luts,
        "parameterized map must save LUTs: {} vs {}",
        sp.luts,
        sc.luts
    );
    assert!(sp.tcons > 0, "expected TCONs: {sp:?}");
    assert_equivalent(&g, &par, 6, 2);
    assert_equivalent(&g, &conv, 3, 3);
}

#[test]
fn param_only_output_is_tunable_constant() {
    let mut g = Aig::new();
    let p = g.input_vec("p", 2, InputKind::Param);
    let f = g.and(p[0], p[1]);
    g.add_output("f", f);
    let d = map_parameterized(&g, MapOptions::default());
    let s = d.stats();
    assert_eq!(s.luts, 0);
    assert_eq!(s.tunable_constants, 1, "{s:?}");
    assert_equivalent(&g, &d, 4, 9);
}

#[test]
fn tcon_depth_is_free() {
    // Chain of param muxes: depth should stay 0 (pure routing).
    let mut g = Aig::new();
    let a = g.input("a", InputKind::Regular);
    let b = g.input("b", InputKind::Regular);
    let mut cur = a;
    for i in 0..5 {
        let p = g.input(format!("p{i}"), InputKind::Param);
        cur = g.mux(p, cur, b);
    }
    g.add_output("o", cur);
    let d = map_parameterized(&g, MapOptions::default());
    assert_eq!(d.stats().depth, 0, "{:?}", d.stats());
    assert_equivalent(&g, &d, 8, 4);
}

#[test]
fn inverted_wire_is_still_a_tcon() {
    // f = !(p ? a : b): physical routing with invert absorbed at output.
    let mut g = Aig::new();
    let a = g.input("a", InputKind::Regular);
    let b = g.input("b", InputKind::Regular);
    let p = g.input("p", InputKind::Param);
    let f = g.mux(p, a, b);
    g.add_output("f", !f);
    let d = map_parameterized(&g, MapOptions::default());
    assert_eq!(d.stats().tcons, 1, "{:?}", d.stats());
    assert_equivalent(&g, &d, 4, 11);
}

#[test]
fn xor_with_param_is_single_tlut() {
    // f = x ^ p: a 1-input tunable LUT (identity or inverter).
    let mut g = Aig::new();
    let x = g.input("x", InputKind::Regular);
    let p = g.input("p", InputKind::Param);
    let f = g.xor(x, p);
    g.add_output("f", f);
    let d = map_parameterized(&g, MapOptions::default());
    let s = d.stats();
    assert_eq!(s.luts, 1, "{s:?}");
    assert_eq!(s.tluts, 1, "{s:?}");
    assert_eq!(s.tcons, 0, "an inverting mux is not routable: {s:?}");
    assert_equivalent(&g, &d, 4, 12);
}

#[test]
fn cut_cache_is_bit_identical_and_actually_hits() {
    // A bit-sliced constant multiplier: heavy structural repetition, so
    // the same PTT signatures recur across slices — exactly the designs
    // `MapOptions::cut_cache` exists for.
    let mut g = Aig::new();
    let x = g.input_vec("x", 6, InputKind::Regular);
    let c = g.input_vec("c", 6, InputKind::Param);
    let prod = softfloat::gates::mul_array(&mut g, &x, &c);
    g.add_output_vec("p", &prod);

    let (cached, effort) =
        mapping::map_parameterized_with_effort(&g, MapOptions::default());
    let uncached =
        map_parameterized(&g, MapOptions { cut_cache: false, ..MapOptions::default() });

    // Handles are interned and the manager's op caches are deterministic,
    // so the cache must not perturb the result in any way — node for
    // node, handle for handle.
    assert_eq!(cached.nodes, uncached.nodes, "cut cache changed the mapping");
    assert_eq!(cached.outputs, uncached.outputs);
    assert_eq!(cached.stats(), uncached.stats());
    assert_equivalent(&g, &cached, 5, 0xCAFE);

    // And it must actually be a cache, not dead weight.
    assert!(
        effort.tcon_cache_hits > 0,
        "no TCON-check hits on a bit-sliced design: {effort:?}"
    );
    assert!(effort.ptt_cache_hits > 0, "no PTT-merge hits: {effort:?}");
    assert!(effort.tcon_checks >= effort.tcon_cache_hits);
    assert!(effort.ptt_merges >= effort.ptt_cache_hits);
}
