//! Standalone **`vcgra-verify`** driver: runs every verification pass
//! against freshly produced artifacts of every kind the toolchain emits.
//!
//! 1. **config** — maps every kernel in the runtime library onto its
//!    minimal overlay region and lints the resulting `VcgraMapping`
//!    (placement injectivity, route connectivity, channel capacity,
//!    settings/mode/coefficient agreement, frame addressing);
//! 2. **equiv** — maps the FP-MAC virtual PE with both flows and proves
//!    each mapped design equivalent to its source AIG over random
//!    parameter draws;
//! 3. **routes + wave-schedule** — places and routes the conventional
//!    PE, lints the route trees, then re-routes under the wave auditor
//!    at 1, 2 and 8 threads, requiring (a) a race-free schedule and
//!    (b) bit-identical trees across every thread count and against the
//!    serial audited reference;
//! 4. **sched** — drives a runtime churn scenario (queueing, streaming,
//!    resubmission, release) with `verify_on_admit` gating every
//!    operation, then re-proves the final scheduler state.
//!
//! Exits non-zero if any pass reports a violation. `--smoke` uses the
//! reduced (5,10) PE and a trimmed thread sweep so CI can run it per
//! push; the full run audits the paper-scale (6,26) PE.
//!
//! Usage: `cargo run -p xbench --release --bin verify [--smoke]`

use fabric::rrg::RouteGraph;
use par::{EngineOptions, ParEngine};
use runtime::{kernels, Runtime, RuntimeConfig, StreamRequest};
use softfloat::{FpFormat, FpValue};
use vcgra::VcgraArch;
use verify::Verifier;
use xbench::{build_pe_aig_with, map_pe};

/// Region with the same shape the runtime's admission layer would lease.
fn minimal_region(demand: usize) -> VcgraArch {
    VcgraArch::new(demand.div_ceil(4).max(2), 4, 2)
}

fn config_pass(fmt: FpFormat, reports: &mut Vec<verify::VerifyReport>) {
    println!("\n-- pass: config (overlay mappings of the kernel library) --");
    let v = Verifier::new();
    for w in kernels::library(fmt) {
        let region = minimal_region(w.graph.pe_demand());
        let mapping = vcgra::flow::map_app(&w.graph, region, 1)
            .unwrap_or_else(|e| panic!("{} unmappable on its minimal region: {e}", w.name));
        let r = v.verify_config(&w.graph, &mapping);
        println!("  {:<22} {}", w.name, r.summary());
        reports.push(r);
    }
}

fn equiv_pass(fmt: FpFormat, smoke: bool, reports: &mut Vec<verify::VerifyReport>) {
    println!("\n-- pass: equiv (PE mapped designs vs source AIG) --");
    let v = Verifier::new();
    let draws = if smoke { 4 } else { 2 };
    for parameterized in [false, true] {
        let aig = build_pe_aig_with(fmt, parameterized);
        let design = map_pe(&aig, parameterized);
        let r = v.verify_equivalence(&aig, &design, draws, 0x5EED);
        println!(
            "  {:<22} {}",
            if parameterized { "parameterized" } else { "conventional" },
            r.summary()
        );
        reports.push(r);
    }
}

fn wave_pass(fmt: FpFormat, smoke: bool, reports: &mut Vec<verify::VerifyReport>) {
    println!("\n-- pass: routes + wave-schedule (conventional PE) --");
    let design = map_pe(&build_pe_aig_with(fmt, false), false);
    let nl = par::extract(&design);
    let arch = fabric::arch::FabricArch::sized_for(nl.logic_count(), nl.io_count());
    let engine = ParEngine::new(EngineOptions::default());
    let placement = engine.place(&nl, arch);

    // One routable width is enough: the audit is about the schedule, not
    // the minimum. Start from the congestion estimate and double away
    // any optimism.
    let mut width = par::channel_width_estimate(&nl, &placement, arch).max(4);
    let (graph, reference) = loop {
        let graph = RouteGraph::build(arch, width);
        match engine.route(&nl, &placement, &graph) {
            Ok(r) => break (graph, r),
            Err(_) => width *= 2,
        }
    };
    println!("  fabric {0}x{0}, channel width {width}", arch.size);

    // Route-tree lint on the parallel reference result.
    let nets = par::troute::terminals(&nl, &placement, &graph);
    let r = Verifier::new().verify_routes(&graph, &nets, &reference.trees);
    println!("  route lint              {}", r.summary());
    reports.push(r);

    // Audited serial re-route: the schedule certificate...
    let (audited, wave_report) = engine.route_audited(&nl, &placement, &graph);
    let audited = audited.expect("audited re-route at a proven width");
    println!("  wave audit              {}", wave_report.summary());
    assert_eq!(
        audited.trees, reference.trees,
        "audited serial routing must reproduce the parallel trees"
    );
    reports.push(wave_report);

    // ...and determinism across thread counts against that certificate.
    let threads = if smoke { vec![1, 2] } else { vec![1, 2, 8] };
    for t in threads {
        let eng = ParEngine::new(EngineOptions { threads: t, ..EngineOptions::default() });
        let r = eng.route(&nl, &placement, &graph).expect("routable width");
        assert_eq!(
            r.trees, reference.trees,
            "routing at {t} threads must be bit-identical to the audited schedule"
        );
        println!("  {t} thread(s): trees bit-identical to the audited reference");
    }
}

fn sched_pass(fmt: FpFormat, reports: &mut Vec<verify::VerifyReport>) {
    println!("\n-- pass: sched (runtime churn under verify_on_admit) --");
    let cfg = RuntimeConfig {
        grids: vec![VcgraArch::new(6, 4, 2), VcgraArch::new(8, 4, 2)],
        verify_on_admit: true,
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(cfg);
    let mut rng = logic::SplitMix64::new(0xA0D1);
    let mut live = Vec::new();
    for (i, taps) in [3usize, 5, 8, 3, 12, 4].iter().enumerate() {
        let adm = rt
            .submit(format!("k{i}"), kernels::fir_seeded(fmt, *taps, i as u64 + 1).graph)
            .expect("gated submit");
        if let runtime::Admission::Admitted(a) = adm {
            live.push(a.tenant);
        }
    }
    for &t in &live {
        let n = rt.tenant(t).expect("live").graph.num_inputs;
        let inputs: Vec<Vec<FpValue>> = (0..8)
            .map(|_| (0..n).map(|_| FpValue::from_f64((rng.unit_f64() - 0.5) * 8.0, fmt)).collect())
            .collect();
        rt.run(vec![StreamRequest { tenant: t, inputs }]).expect("gated stream");
    }
    rt.resubmit(live[0], kernels::fir_seeded(fmt, 6, 99).graph).expect("gated resubmit");
    // Defragment in the idle window so the timeline pass below sees
    // lane-local compaction replays, not just port phases.
    rt.compact_background().expect("gated compaction");
    for &t in &live {
        rt.release(t).expect("gated release");
    }
    let r = rt.verify();
    println!("  churn scenario          {}", r.summary());
    reports.push(r);
    let t = rt.verify_timeline();
    println!("  churn time axis         {}", t.summary());
    reports.push(t);
}

fn main() {
    let smoke = xbench::smoke_mode();
    let trace_path = xbench::init_trace();
    let fmt = if smoke { FpFormat::new(5, 10) } else { FpFormat::PAPER };
    println!(
        "=== vcgra-verify sweep ({} mode, FloPoCo ({},{})) ===",
        if smoke { "smoke" } else { "full" },
        fmt.we,
        fmt.wf
    );

    let mut reports = Vec::new();
    config_pass(fmt, &mut reports);
    equiv_pass(fmt, smoke, &mut reports);
    wave_pass(fmt, smoke, &mut reports);
    sched_pass(fmt, &mut reports);

    let violations: usize = reports.iter().map(|r| r.violations.len()).sum();
    let overhead: f64 = reports.iter().map(|r| r.seconds).sum();
    let checked: usize = reports.iter().map(|r| r.checked).sum();
    println!(
        "\n{} passes, {checked} objects checked, {violations} violations, \
         {overhead:.3} s total verification time",
        reports.len()
    );
    if violations > 0 {
        for r in reports.iter().filter(|r| !r.ok()) {
            eprintln!("FAILED {}", r.summary());
            for v in &r.violations {
                eprintln!("  [{}] {v}", v.code());
            }
        }
        std::process::exit(1);
    }
    xbench::finish_trace(trace_path.as_deref());
    println!("verify OK: every invariant proven on every artifact kind.");
}
