//! CI regression gate over the provenance-stamped `BENCH_*.json`
//! records (see `xbench::bench`).
//!
//! Compares a candidate record against a committed baseline:
//!
//! - `schema_version` and `bench` must match exactly (envelope drift
//!   fails the gate);
//! - the two records must expose the **same set of leaf paths** — a
//!   missing or extra field is schema drift, which fails loudly instead
//!   of silently narrowing the comparison;
//! - numeric leaves must agree within a relative tolerance (default
//!   ±20%), **except** machine-varying time measurements (`*_seconds`,
//!   `*_time`, `*_ns`, `*_ms`, speedups, throughputs), which are
//!   skipped — the gate guards counters and structural results, not
//!   wall clocks;
//! - the `provenance` subtree is compared for shape only (its values
//!   differ per host/revision by design);
//! - records carrying a top-level `shards` field (the sharded serve
//!   bench) are only held to their shard-count-dependent leaves — the
//!   `shards` leaf and the whole `sharded.*` subtree — when the
//!   candidate ran at the **same** shard count as the baseline. At a
//!   different count those leaves legitimately change shape (per-shard
//!   arrays) and value (spill/warm counts), so both checks skip them;
//!   everything else (the deterministic plan counts, the output
//!   fingerprint) is still compared, which is exactly the sharding
//!   contract: shard count may move latency, never results. The
//!   `workers` leaf gets the same treatment when the engine-worker
//!   counts differ (CI's shards x workers matrix shares one baseline;
//!   worker count never changes results either).
//!
//! Usage: `cargo run -p xbench --bin bench_diff -- <baseline.json>
//!         <candidate.json> [--tolerance 0.20]`

use trace::json::{parse, JsonValue};

/// True for leaf keys whose values vary with the machine or the clock —
/// excluded from the tolerance comparison (shape is still checked).
fn time_like(key: &str) -> bool {
    key.ends_with("_ns")
        || key.ends_with("_ms")
        || key.contains("seconds")
        || key.contains("time")
        || key.contains("speedup")
        || key.contains("per_sec")
        || key.contains("throughput")
        || key.contains("makespan")
        || key.contains("overlap_saved")
}

/// True for leaf paths that depend on the shard count: the count itself
/// and everything under the `sharded` subtree (per-shard arrays, spill
/// and warm-hit counters). Compared only when baseline and candidate ran
/// at the same shard count.
fn shard_scoped(path: &str) -> bool {
    path == "shards" || path == "sharded" || path.starts_with("sharded.")
}

/// Reads a top-level numeric field, if the record has one.
fn top_num(record: &JsonValue, key: &str) -> Option<f64> {
    match record.get(key) {
        Some(JsonValue::Num(n)) => Some(*n),
        _ => None,
    }
}

/// Flattens a record into `path -> leaf` rows, `.`-joined object keys,
/// `[i]` for array elements.
fn flatten<'a>(v: &'a JsonValue, path: String, out: &mut Vec<(String, &'a JsonValue)>) {
    match v {
        JsonValue::Obj(fields) => {
            for (k, val) in fields {
                let p = if path.is_empty() { k.clone() } else { format!("{path}.{k}") };
                flatten(val, p, out);
            }
        }
        JsonValue::Arr(items) => {
            for (i, val) in items.iter().enumerate() {
                flatten(val, format!("{path}[{i}]"), out);
            }
        }
        leaf => out.push((path, leaf)),
    }
}

fn load(path: &str) -> JsonValue {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_diff: cannot read {path}: {e}"));
    parse(&text).unwrap_or_else(|e| panic!("bench_diff: {path} is not valid JSON: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!("usage: bench_diff <baseline.json> <candidate.json> [--tolerance 0.20]");
        std::process::exit(2);
    }
    let tolerance: f64 = args
        .iter()
        .position(|a| a == "--tolerance")
        .map(|i| args[i + 1].parse().expect("--tolerance takes a float"))
        .unwrap_or(0.20);
    let (base_path, cand_path) = (&args[1], &args[2]);
    let base = load(base_path);
    let cand = load(cand_path);

    let mut failures: Vec<String> = Vec::new();

    // Envelope: same schema version, same benchmark.
    for key in ["schema_version", "bench"] {
        let (b, c) = (base.get(key), cand.get(key));
        let same = match (b, c) {
            (Some(JsonValue::Num(x)), Some(JsonValue::Num(y))) => x == y,
            (Some(JsonValue::Str(x)), Some(JsonValue::Str(y))) => x == y,
            _ => false,
        };
        if !same {
            failures.push(format!("envelope mismatch on \"{key}\": {b:?} vs {c:?}"));
        }
    }

    // Shard-count gate: when the candidate ran at a different shard
    // count than the baseline, shard-count-dependent leaves are expected
    // to differ in both shape and value — exclude them from the gate.
    // Same for the engine-worker count: CI's shards x workers matrix
    // compares every cell against one committed baseline, and worker
    // count changes nothing deterministic (execution is bit-exact across
    // worker counts) except the `workers` leaf itself.
    let differs = |key: &str| match (top_num(&base, key), top_num(&cand, key)) {
        (Some(b), Some(c)) => b != c,
        _ => false,
    };
    let shards_differ = differs("shards");
    let workers_differ = differs("workers");
    if shards_differ {
        println!(
            "bench_diff: shard counts differ ({:?} vs {:?}); \"shards\" and the \
             \"sharded.*\" subtree are exempt from shape and value checks",
            top_num(&base, "shards"),
            top_num(&cand, "shards")
        );
    }
    if workers_differ {
        println!(
            "bench_diff: worker counts differ ({:?} vs {:?}); the \"workers\" leaf \
             is exempt from the value check",
            top_num(&base, "workers"),
            top_num(&cand, "workers")
        );
    }
    let scoped_out =
        |path: &str| (shards_differ && shard_scoped(path)) || (workers_differ && path == "workers");

    let mut base_leaves = Vec::new();
    let mut cand_leaves = Vec::new();
    flatten(&base, String::new(), &mut base_leaves);
    flatten(&cand, String::new(), &mut cand_leaves);

    // Shape: identical leaf-path sets (schema drift check).
    let base_paths: std::collections::BTreeSet<&str> = base_leaves
        .iter()
        .map(|(p, _)| p.as_str())
        .filter(|p| !scoped_out(p))
        .collect();
    let cand_paths: std::collections::BTreeSet<&str> = cand_leaves
        .iter()
        .map(|(p, _)| p.as_str())
        .filter(|p| !scoped_out(p))
        .collect();
    for missing in base_paths.difference(&cand_paths) {
        failures.push(format!("schema drift: \"{missing}\" present in baseline, absent in candidate"));
    }
    for extra in cand_paths.difference(&base_paths) {
        failures.push(format!("schema drift: \"{extra}\" present in candidate, absent in baseline"));
    }

    // Values: numeric leaves within tolerance; provenance and
    // time-like measurements shape-checked only.
    let cand_by_path: std::collections::BTreeMap<&str, &JsonValue> =
        cand_leaves.iter().map(|(p, v)| (p.as_str(), *v)).collect();
    let (mut compared, mut skipped) = (0usize, 0usize);
    for (path, bval) in &base_leaves {
        let Some(cval) = cand_by_path.get(path.as_str()) else { continue };
        if scoped_out(path) {
            continue;
        }
        if path.starts_with("provenance.") || time_like(path) {
            skipped += 1;
            continue;
        }
        match (bval, cval) {
            (JsonValue::Num(b), JsonValue::Num(c)) => {
                compared += 1;
                let rel = (c - b).abs() / b.abs().max(1.0);
                if rel > tolerance {
                    failures.push(format!(
                        "regression: \"{path}\" moved {b} -> {c} ({:.0}% > ±{:.0}%)",
                        rel * 100.0,
                        tolerance * 100.0
                    ));
                }
            }
            (JsonValue::Bool(b), JsonValue::Bool(c)) => {
                compared += 1;
                if b != c {
                    failures.push(format!("regression: \"{path}\" flipped {b} -> {c}"));
                }
            }
            (JsonValue::Str(b), JsonValue::Str(c)) => {
                compared += 1;
                if b != c {
                    failures.push(format!("regression: \"{path}\" changed \"{b}\" -> \"{c}\""));
                }
            }
            _ => {
                failures.push(format!("schema drift: \"{path}\" changed JSON type"));
            }
        }
    }

    if failures.is_empty() {
        println!(
            "bench_diff OK: {base_path} vs {cand_path} — {compared} leaves within ±{:.0}%, \
             {skipped} machine-varying leaves shape-checked only",
            tolerance * 100.0
        );
    } else {
        eprintln!("bench_diff FAILED: {base_path} vs {cand_path}");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
