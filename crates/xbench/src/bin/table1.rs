//! Regenerates **Table I**: resource utilization and PaR results of a PE.
//!
//! Paper row (conventional):       2522 LUTs,   0 TCONs, depth 36, WL 27242, CW 10
//! Paper row (fully parameterized): 1802 LUTs (526 TLUTs), 568 TCONs, depth 33,
//!                                  WL 16824, CW 10
//!
//! Absolute numbers depend on the substrate (our simulator vs. the
//! authors' Quartus/TCONMAP/TPaR stack); the claims under test are the
//! *shape*: ≥30 % LUT reduction, hundreds of TCONs moved to routing, a few
//! logic levels saved, ~31 % wirelength saved, no channel-width overhead.
//!
//! PaR runs on the `par-engine` (incremental reroute, warm-started width
//! search, wave parallelism); the per-probe effort log is printed after
//! the table.
//!
//! Usage: `cargo run -p xbench --release --bin table1 [--skip-par]
//!         [--smoke] [--verify] [--json <path>]`
//! (`--smoke` maps a reduced (5,10) PE and skips the PaR columns — the
//! paper-scale run is the scheduled CI job's business; `--verify`
//! re-proves every produced artifact through `vcgra-verify` — mapped
//! designs against the source AIG, route trees against the fabric
//! linter, wave schedules against the race detector — and both prints
//! and records the audit overhead; `--json` writes the machine-readable
//! benchmark record, e.g. `out/BENCH_table1.json`)

use fabric::rrg::RouteGraph;
use mapping::MapStats;
use par::{ParEngine, ParReport};
use softfloat::FpFormat;
use verify::Verifier;
use xbench::{build_pe_aig_with, map_pe, print_header, print_row, reduction};

struct FlowResult {
    map_seconds: f64,
    stats: MapStats,
    rep: Option<ParReport>,
    /// `--verify` audit reports (equiv, and with PaR: routes + waves).
    verify: Vec<verify::VerifyReport>,
}

fn print_probes(label: &str, rep: &ParReport) {
    println!(
        "\n{label}: place {:.2}s, width search {:.2}s \
         ({} iterations, {} rip-ups at the final width; minimum certified: {})",
        rep.place_seconds,
        rep.route_seconds,
        rep.result.iterations,
        rep.result.ripups,
        rep.certificate.name(),
    );
    for p in &rep.probes {
        println!(
            "  width {:>3}: {:<4} {:>8.2}s  {:>2} iters {:>7} rip-ups {:>5} warm nets{}",
            p.width,
            if p.success { "ok" } else { "FAIL" },
            p.seconds,
            p.iterations,
            p.ripups,
            p.warm_nets,
            if p.confirm { "  [cold confirm]" } else { "" },
        );
    }
}

fn json_flow(f: &FlowResult) -> String {
    let mut s = format!(
        "{{\n      \"map_seconds\": {:.6},\n      \"luts\": {},\n      \"tluts\": {},\n      \"tcons\": {},\n      \"depth\": {}",
        f.map_seconds, f.stats.luts, f.stats.tluts, f.stats.tcons, f.stats.depth
    );
    if let Some(rep) = &f.rep {
        s.push_str(&format!(
            ",\n      \"place_seconds\": {:.6},\n      \"route_seconds\": {:.6},\n      \"min_channel_width\": {},\n      \"width_certificate\": \"{}\",\n      \"wirelength\": {},\n      \"tunable_wirelength\": {},\n      \"tcon_switches\": {},\n      \"iterations\": {},\n      \"ripups\": {},\n      \"fabric_size\": {},\n      \"probes\": [",
            rep.place_seconds,
            rep.route_seconds,
            rep.min_channel_width,
            rep.certificate.name(),
            rep.result.wirelength,
            rep.result.tunable_wirelength,
            rep.result.tcon_switches,
            rep.result.iterations,
            rep.result.ripups,
            rep.arch.size
        ));
        for (i, p) in rep.probes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n        {{\"width\": {}, \"success\": {}, \"seconds\": {:.6}, \"iterations\": {}, \"ripups\": {}, \"warm_nets\": {}, \"confirm\": {}}}",
                p.width, p.success, p.seconds, p.iterations, p.ripups, p.warm_nets, p.confirm
            ));
        }
        s.push_str("\n      ]");
    }
    if !f.verify.is_empty() {
        s.push_str(",\n      \"verify\": [");
        for (i, r) in f.verify.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n        ");
            s.push_str(&r.to_json());
        }
        s.push_str("\n      ]");
    }
    s.push_str("\n    }");
    s
}

/// Runs the `--verify` audits for one flow: AIG-vs-mapped equivalence
/// always; route lint and a wave-schedule audit when PaR ran. Returns
/// the reports; the caller fails the run on any violation.
fn audit_flow(
    label: &str,
    aig: &logic::aig::Aig,
    design: &mapping::MappedDesign,
    netlist: Option<&par::ParNetlist>,
    rep: &mut Option<ParReport>,
    draws: usize,
) -> Vec<verify::VerifyReport> {
    let v = Verifier::new();
    let mut reports = vec![v.verify_equivalence(aig, design, draws, 0x7AB1)];
    if let (Some(nl), Some(rep)) = (netlist, rep.as_mut()) {
        let graph = RouteGraph::build(rep.arch, rep.min_channel_width);
        let nets = par::troute::terminals(nl, &rep.placement, &graph);
        reports.push(v.verify_routes(&graph, &nets, &rep.result.trees));
        if let Some(waves) = rep.wave_audit.take() {
            reports.push(waves);
        }
    }
    for r in &reports {
        println!("  {label:<15} {}", r.summary());
    }
    reports
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = xbench::smoke_mode();
    let trace_path = xbench::init_trace();
    let skip_par = smoke || args.iter().any(|a| a == "--skip-par");
    let verify_mode = args.iter().any(|a| a == "--verify");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json needs a path").clone());
    let fmt = if smoke { FpFormat::new(5, 10) } else { FpFormat::PAPER };

    println!("Building the FP-MAC virtual PE (FloPoCo we={}, wf={}) ...", fmt.we, fmt.wf);
    let conv_aig = build_pe_aig_with(fmt, false);
    let par_aig = build_pe_aig_with(fmt, true);

    let t0 = std::time::Instant::now();
    let conv = map_pe(&conv_aig, false);
    let t_conv = t0.elapsed();
    let t1 = std::time::Instant::now();
    let par = map_pe(&par_aig, true);
    let t_par = t1.elapsed();
    let (sc, sp) = (conv.stats(), par.stats());
    println!("mapped: conventional in {t_conv:?}, parameterized in {t_par:?}");

    print_header("Table I — resource utilization of a PE (mapping)");
    print_row("4-LUTs, conventional", "2522", &sc.luts.to_string());
    print_row("4-LUTs, fully parameterized", "1802", &sp.luts.to_string());
    print_row("  of which TLUTs", "526", &sp.tluts.to_string());
    print_row("TCONs (mapped tunable connections)", "568", &sp.tcons.to_string());
    print_row("logic depth, conventional", "36", &sc.depth.to_string());
    print_row("logic depth, parameterized", "33", &sp.depth.to_string());
    print_row(
        "LUT reduction",
        ">= 30%",
        &format!("{:.1}%", reduction(sc.luts, sp.luts)),
    );
    print_row(
        "depth reduction",
        "3 levels (~9%)",
        &format!("{} levels", sc.depth.saturating_sub(sp.depth)),
    );

    let mut conv_flow =
        FlowResult { map_seconds: t_conv.as_secs_f64(), stats: sc, rep: None, verify: Vec::new() };
    let mut par_flow =
        FlowResult { map_seconds: t_par.as_secs_f64(), stats: sp, rep: None, verify: Vec::new() };

    let mut netlists = None;
    if !skip_par {
        println!("\nPlace & route (par-engine, min channel width search) ...");
        // With `--verify`, the engine re-routes at the final width under
        // the wave auditor so the report lands in `rep.wave_audit`.
        let engine = ParEngine::new(par::EngineOptions {
            audit_waves: verify_mode,
            ..par::EngineOptions::default()
        });
        let nl_c = par::extract(&conv);
        let nl_p = par::extract(&par);
        let t2 = std::time::Instant::now();
        let rep_c = engine.run(&nl_c).expect("conventional PE routable");
        println!("conventional PaR done in {:?}", t2.elapsed());
        let t3 = std::time::Instant::now();
        let rep_p = engine.run(&nl_p).expect("parameterized PE routable");
        println!("parameterized PaR done in {:?}", t3.elapsed());

        print_header("Table I — PaR results of a PE");
        print_row(
            "wirelength, conventional",
            "27242",
            &rep_c.result.wirelength.to_string(),
        );
        print_row(
            "wirelength, parameterized",
            "16824",
            &rep_p.result.wirelength.to_string(),
        );
        print_row(
            "WL reduction",
            "~31%",
            &format!(
                "{:.1}%",
                reduction(rep_c.result.wirelength, rep_p.result.wirelength)
            ),
        );
        print_row(
            "min channel width, conventional",
            "10",
            &rep_c.min_channel_width.to_string(),
        );
        print_row(
            "min channel width, parameterized",
            "10",
            &rep_p.min_channel_width.to_string(),
        );
        print_row(
            "CW overhead from TCONs",
            "none",
            if rep_p.min_channel_width <= rep_c.min_channel_width {
                "none"
            } else {
                "PRESENT (!)"
            },
        );
        print_row(
            "TCON switch configurations",
            "(568 TCONs)",
            &rep_p.result.tcon_switches.to_string(),
        );
        println!(
            "\nfabrics: conventional {0}x{0}, parameterized {1}x{1} logic blocks",
            rep_c.arch.size, rep_p.arch.size
        );
        print_probes("conventional router effort", &rep_c);
        print_probes("parameterized router effort", &rep_p);
        conv_flow.rep = Some(rep_c);
        par_flow.rep = Some(rep_p);
        netlists = Some((nl_c, nl_p));
    } else {
        println!("\n(--skip-par: place & route columns skipped)");
    }

    let mut violation_count = 0usize;
    if verify_mode {
        let draws = if smoke { 4 } else { 2 };
        let (nl_c, nl_p) = match &netlists {
            Some((c, p)) => (Some(c), Some(p)),
            None => (None, None),
        };
        println!("\nVerification (vcgra-verify) ...");
        conv_flow.verify =
            audit_flow("conventional", &conv_aig, &conv, nl_c, &mut conv_flow.rep, draws);
        par_flow.verify =
            audit_flow("parameterized", &par_aig, &par, nl_p, &mut par_flow.rep, draws);
        let all = conv_flow.verify.iter().chain(&par_flow.verify);
        let (mut passes, mut overhead) = (0usize, 0.0f64);
        for r in all {
            passes += 1;
            overhead += r.seconds;
            violation_count += r.violations.len();
        }
        println!(
            "  verification overhead: {overhead:.3} s across {passes} passes \
             ({} violations)",
            violation_count
        );
    }

    if let Some(path) = json_path {
        let record = xbench::bench::BenchRecord::new("table1")
            .field("smoke", smoke)
            .raw("format", format!("{{\"we\": {}, \"wf\": {}}}", fmt.we, fmt.wf))
            .raw(
                "flows",
                format!(
                    "{{\n    \"conventional\": {},\n    \"parameterized\": {}\n  }}",
                    json_flow(&conv_flow),
                    json_flow(&par_flow)
                ),
            );
        record.write(&path).expect("write json");
        println!("\nwrote {path}");
    }

    xbench::finish_trace(trace_path.as_deref());
    if violation_count > 0 {
        eprintln!("table1: {violation_count} invariant violations — failing the run");
        std::process::exit(1);
    }
}
