//! Regenerates **Table I**: resource utilization and PaR results of a PE.
//!
//! Paper row (conventional):       2522 LUTs,   0 TCONs, depth 36, WL 27242, CW 10
//! Paper row (fully parameterized): 1802 LUTs (526 TLUTs), 568 TCONs, depth 33,
//!                                  WL 16824, CW 10
//!
//! Absolute numbers depend on the substrate (our simulator vs. the
//! authors' Quartus/TCONMAP/TPaR stack); the claims under test are the
//! *shape*: ≥30 % LUT reduction, hundreds of TCONs moved to routing, a few
//! logic levels saved, ~31 % wirelength saved, no channel-width overhead.
//!
//! Usage: `cargo run -p xbench --release --bin table1 [--skip-par] [--smoke]`
//! (`--smoke` maps a reduced (5,10) PE and skips the PaR columns — the
//! paper-scale run is the scheduled CI job's business)

use par::cw::ParOptions;
use softfloat::FpFormat;
use xbench::{build_pe_aig_with, map_pe, print_header, print_row, reduction};

fn main() {
    let smoke = xbench::smoke_mode();
    let skip_par = smoke || std::env::args().any(|a| a == "--skip-par");
    let fmt = if smoke { FpFormat::new(5, 10) } else { FpFormat::PAPER };

    println!("Building the FP-MAC virtual PE (FloPoCo we={}, wf={}) ...", fmt.we, fmt.wf);
    let conv_aig = build_pe_aig_with(fmt, false);
    let par_aig = build_pe_aig_with(fmt, true);

    let t0 = std::time::Instant::now();
    let conv = map_pe(&conv_aig, false);
    let t_conv = t0.elapsed();
    let t1 = std::time::Instant::now();
    let par = map_pe(&par_aig, true);
    let t_par = t1.elapsed();
    let (sc, sp) = (conv.stats(), par.stats());
    println!(
        "mapped: conventional in {t_conv:?}, parameterized in {t_par:?}"
    );

    print_header("Table I — resource utilization of a PE (mapping)");
    print_row("4-LUTs, conventional", "2522", &sc.luts.to_string());
    print_row(
        "4-LUTs, fully parameterized",
        "1802",
        &sp.luts.to_string(),
    );
    print_row("  of which TLUTs", "526", &sp.tluts.to_string());
    print_row("TCONs (mapped tunable connections)", "568", &sp.tcons.to_string());
    print_row("logic depth, conventional", "36", &sc.depth.to_string());
    print_row("logic depth, parameterized", "33", &sp.depth.to_string());
    print_row(
        "LUT reduction",
        ">= 30%",
        &format!("{:.1}%", reduction(sc.luts, sp.luts)),
    );
    print_row(
        "depth reduction",
        "3 levels (~9%)",
        &format!("{} levels", sc.depth.saturating_sub(sp.depth)),
    );

    if skip_par {
        println!("\n(--skip-par: place & route columns skipped)");
        return;
    }

    println!("\nPlace & route (TPLACE + TROUTE, min channel width search) ...");
    let opts = ParOptions::default();
    let nl_c = par::extract(&conv);
    let nl_p = par::extract(&par);
    let t2 = std::time::Instant::now();
    let rep_c = par::full_par(&nl_c, &opts).expect("conventional PE routable");
    println!("conventional PaR done in {:?}", t2.elapsed());
    let t3 = std::time::Instant::now();
    let rep_p = par::full_par(&nl_p, &opts).expect("parameterized PE routable");
    println!("parameterized PaR done in {:?}", t3.elapsed());

    print_header("Table I — PaR results of a PE");
    print_row(
        "wirelength, conventional",
        "27242",
        &rep_c.result.wirelength.to_string(),
    );
    print_row(
        "wirelength, parameterized",
        "16824",
        &rep_p.result.wirelength.to_string(),
    );
    print_row(
        "WL reduction",
        "~31%",
        &format!(
            "{:.1}%",
            reduction(rep_c.result.wirelength, rep_p.result.wirelength)
        ),
    );
    print_row(
        "min channel width, conventional",
        "10",
        &rep_c.min_channel_width.to_string(),
    );
    print_row(
        "min channel width, parameterized",
        "10",
        &rep_p.min_channel_width.to_string(),
    );
    print_row(
        "CW overhead from TCONs",
        "none",
        if rep_p.min_channel_width <= rep_c.min_channel_width {
            "none"
        } else {
            "PRESENT (!)"
        },
    );
    print_row(
        "TCON switch configurations",
        "(568 TCONs)",
        &rep_p.result.tcon_switches.to_string(),
    );
    println!(
        "\nfabrics: conventional {0}x{0}, parameterized {1}x{1} logic blocks",
        rep_c.arch.size, rep_p.arch.size
    );
}
