//! Ablation studies over the design choices the README calls out:
//!
//! 1. **Virtual intra-connect richness** (`hops` per word link): the paper's
//!    Fig. 4 shows a connection block *and* a switch block per link
//!    (2 hops). How do LUT savings and TCON counts move with 1–3 hops?
//! 2. **Priority-cut budget** of the mapper: quality vs. effort.
//! 3. **Floating-point precision**: the overlay overhead relative to the
//!    datapath as the mantissa grows.
//!
//! Usage: `cargo run -p xbench --release --bin ablations [--smoke]`
//! (`--smoke` trims each sweep to its cheapest points)

use mapping::{map_conventional, map_parameterized, MapOptions};
use softfloat::FpFormat;
use vcgra::{VirtualPe, VirtualPeConfig};

fn main() {
    let smoke = xbench::smoke_mode();
    let trace_path = xbench::init_trace();
    // Reduced format keeps each point fast; trends carry to (6,26).
    let fmt = if smoke { FpFormat::new(4, 6) } else { FpFormat::new(5, 10) };
    let max_hops = if smoke { 2 } else { 3 };

    println!("=== Ablation 1: virtual intra-connect hops (format ({},{})) ===", fmt.we, fmt.wf);
    println!(
        "{:<6} {:>10} {:>12} {:>8} {:>8} {:>10}",
        "hops", "conv LUTs", "param LUTs", "TLUTs", "TCONs", "LUT red."
    );
    for hops in 1..=max_hops {
        let cfg = VirtualPeConfig { format: fmt, hops };
        let conv_aig = logic::opt::sweep(&VirtualPe::build(cfg, false).aig);
        let par_aig = logic::opt::sweep(&VirtualPe::build(cfg, true).aig);
        let sc = map_conventional(&conv_aig, MapOptions::default()).stats();
        let sp = map_parameterized(&par_aig, MapOptions::default()).stats();
        println!(
            "{:<6} {:>10} {:>12} {:>8} {:>8} {:>9.1}%",
            hops,
            sc.luts,
            sp.luts,
            sp.tluts,
            sp.tcons,
            100.0 * (1.0 - sp.luts as f64 / sc.luts as f64)
        );
    }

    println!("\n=== Ablation 2: priority-cut budget (parameterized flow) ===");
    let cfg = VirtualPeConfig { format: fmt, hops: 2 };
    let par_aig = logic::opt::sweep(&VirtualPe::build(cfg, true).aig);
    println!(
        "{:<6} {:>10} {:>8} {:>8} {:>8} {:>12}",
        "cuts", "LUTs", "TLUTs", "TCONs", "depth", "map time"
    );
    let cut_points: &[usize] = if smoke { &[2, 4, 8] } else { &[2, 4, 6, 8, 12] };
    for &cuts in cut_points {
        let opts = MapOptions { cuts_per_node: cuts, ..Default::default() };
        let t = std::time::Instant::now();
        let s = map_parameterized(&par_aig, opts).stats();
        println!(
            "{:<6} {:>10} {:>8} {:>8} {:>8} {:>11.0?}",
            cuts,
            s.luts,
            s.tluts,
            s.tcons,
            s.depth,
            t.elapsed()
        );
    }

    println!("\n=== Ablation 3: floating-point precision (hops = 2) ===");
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>10}",
        "format", "conv LUTs", "param LUTs", "LUT red.", "depth c/p"
    );
    let formats: &[(u32, u32)] =
        if smoke { &[(4, 6), (5, 8)] } else { &[(4, 6), (5, 10), (5, 14), (6, 18)] };
    for &(we, wf) in formats {
        let f = FpFormat::new(we, wf);
        let cfg = VirtualPeConfig { format: f, hops: 2 };
        let conv_aig = logic::opt::sweep(&VirtualPe::build(cfg, false).aig);
        let par_aig = logic::opt::sweep(&VirtualPe::build(cfg, true).aig);
        let sc = map_conventional(&conv_aig, MapOptions::default()).stats();
        let sp = map_parameterized(&par_aig, MapOptions::default()).stats();
        println!(
            "({we:>2},{wf:>2})   {:>10} {:>12} {:>9.1}% {:>7}/{}",
            sc.luts,
            sp.luts,
            100.0 * (1.0 - sp.luts as f64 / sc.luts as f64),
            sc.depth,
            sp.depth
        );
    }
    println!(
        "\nTakeaways: richer intra-connect raises both the conventional mux cost\n\
         and the TCON count (the paper's regime sits at 2 hops); the LUT saving\n\
         is robust to the cut budget; and the relative saving grows with the\n\
         coefficient width, as constant propagation touches more of the datapath."
    );
    xbench::finish_trace(trace_path.as_deref());
}
