//! Regenerates the **Section II compile-time claim**: the VCGRA tool flow
//! (PE-granularity synthesis, placement, routing) is orders of magnitude
//! faster than the standard gate-level FPGA flow, because the higher
//! abstraction level shrinks the problem size.
//!
//! Both flows compile the same application: a 5-tap filter kernel.
//! * VCGRA flow: dataflow synthesis → PE placement → virtual routing →
//!   settings generation (the whole Fig. 2 right-hand side).
//! * FPGA flow: gate-level netlist generation → logic optimization →
//!   technology mapping → placement → routing at a fixed generous channel
//!   width (the `par-engine`; the full min-width search would only widen
//!   the gap).
//!
//! Usage: `cargo run -p xbench --release --bin compile_time [--smoke] [--check]
//!         [--partitions <k>] [--threads-sweep 1,2,4,8 [--json <path>]]`
//! (`--smoke` runs the gate-level flow on a reduced (5,10) PE — the gap
//! shrinks with the netlist but stays orders of magnitude. `--check`
//! turns the run into a regression gate: it exits non-zero when the
//! gate-level route exceeds a generous wall-time threshold, so CI fails
//! fast if the router hot path regresses. `--partitions` sets the
//! spatial-partition count of the router (0 = auto, 1 = waves only).
//! `--threads-sweep` re-routes the gate-level netlist at each listed
//! thread count, asserts the trees stay bit-identical, and writes the
//! scaling record — route seconds, waves per iteration, partition
//! occupancy — to `--json`, default `out/BENCH_route_scaling.json`.)

use fabric::RouteGraph;
use par::{EngineOptions, ParEngine};
use softfloat::FpFormat;
use vcgra::app::AppGraph;
use vcgra::flow::map_app;
use vcgra::VcgraArch;
use xbench::{print_header, print_row};

/// `--check` threshold for the gate-level PaR of the smoke PE (seconds).
/// The measured time is ~1 s in release; a 10× regression of the router
/// hot path trips this long before anyone reads a dashboard.
const CHECK_ROUTE_SECONDS: f64 = 10.0;

fn main() {
    let smoke = xbench::smoke_mode();
    let trace_path = xbench::init_trace();
    let args: Vec<String> = std::env::args().collect();
    let check = args.iter().any(|a| a == "--check");
    let flag_val = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .map(|i| args.get(i + 1).unwrap_or_else(|| panic!("{name} needs a value")).clone())
    };
    let partitions: usize = flag_val("--partitions")
        .map(|v| v.parse().expect("--partitions takes an integer"))
        .unwrap_or(0);
    let sweep: Vec<usize> = flag_val("--threads-sweep")
        .map(|v| {
            v.split(',')
                .map(|t| t.trim().parse().expect("--threads-sweep takes e.g. 1,2,4,8"))
                .collect()
        })
        .unwrap_or_default();
    let json_path =
        flag_val("--json").unwrap_or_else(|| "out/BENCH_route_scaling.json".to_string());
    let gate_fmt = if smoke { FpFormat::new(5, 10) } else { FpFormat::PAPER };
    let coeffs = [0.0625, 0.25, 0.375, 0.25, 0.0625]; // 5-tap binomial
    let arch = VcgraArch::paper_4x4();

    // --- VCGRA tool flow ---
    let t0 = std::time::Instant::now();
    let app = AppGraph::dot_product(FpFormat::PAPER, &coeffs);
    let mapping = map_app(&app, arch, 42).expect("fits the 4x4 grid");
    let t_vcgra = t0.elapsed();
    println!(
        "VCGRA flow: {} PEs placed, virtual WL {}, settings words {}",
        app.pe_demand(),
        mapping.virtual_wirelength,
        mapping.settings_words().len()
    );

    // --- standard FPGA flow on the same function (gate level) ---
    let t1 = std::time::Instant::now();
    let aig = xbench::build_pe_aig_with(gate_fmt, false); // one PE's worth of gates
    let t_synth = t1.elapsed();
    let t2 = std::time::Instant::now();
    let design = xbench::map_pe(&aig, false);
    let t_map = t2.elapsed();
    let t3 = std::time::Instant::now();
    let netlist = par::extract(&design);
    let fabric = fabric::FabricArch::sized_for(netlist.logic_count(), netlist.io_count());
    let engine = ParEngine::new(EngineOptions { partitions, ..Default::default() });
    let placement = engine.place(&netlist, fabric);
    let t_place = t3.elapsed();
    // Route once at a generous width — the compile-time claim is about
    // one compile, not the min-width characterization sweep. The
    // congestion estimate is a heuristic, so escalate (and keep the
    // retries in the measured time) rather than die if it undershoots.
    let t4 = std::time::Instant::now();
    let mut width = (par::channel_width_estimate(&netlist, &placement, fabric) + 4)
        .max(EngineOptions::default().min_width);
    let routed = loop {
        let graph = RouteGraph::build(fabric, width);
        match engine.route(&netlist, &placement, &graph) {
            Ok(r) => break r,
            Err(e) => {
                assert!(
                    width < EngineOptions::default().max_width,
                    "unroutable even at width {width}: {e:?}"
                );
                width = (width * 2).min(EngineOptions::default().max_width);
            }
        }
    };
    let t_route = t4.elapsed();
    let t_fpga = t_synth + t_map + t_place + t_route;
    println!(
        "FPGA flow (one PE): synth {t_synth:?} + map {t_map:?} + place {t_place:?} \
         + route {t_route:?} (width {width}, {} iters, {} rip-ups, WL {})",
        routed.iterations, routed.ripups, routed.wirelength
    );

    print_header("Section II — compile time, same application");
    print_row(
        "VCGRA flow (synth+place+route+settings)",
        "seconds",
        &format!("{:.3} ms", t_vcgra.as_secs_f64() * 1e3),
    );
    print_row(
        "FPGA flow (synth+map+place+route, 1 PE)",
        "tens of minutes",
        &format!("{:.1} ms", t_fpga.as_secs_f64() * 1e3),
    );
    let ratio = t_fpga.as_secs_f64() / t_vcgra.as_secs_f64().max(1e-9);
    print_row(
        "speedup of the VCGRA flow",
        "orders of magnitude",
        &format!("{ratio:.0}x"),
    );
    println!(
        "\n(the FPGA column covers a single PE; a full application instantiates\n\
         {} of them plus interconnect, widening the gap accordingly)",
        app.pe_demand()
    );

    // --- optional routing-scaling sweep over thread counts ---
    if !sweep.is_empty() {
        let graph = RouteGraph::build(fabric, width);
        println!("\nroute scaling sweep (width {width}, partitions {partitions}):");
        let mut rows = Vec::new();
        for &threads in &sweep {
            let eng =
                ParEngine::new(EngineOptions { threads, partitions, ..Default::default() });
            let t = std::time::Instant::now();
            let r = eng.route(&netlist, &placement, &graph).expect("routable in sweep");
            let secs = t.elapsed().as_secs_f64();
            assert_eq!(
                r.trees, routed.trees,
                "thread count {threads} changed the routing — determinism broken"
            );
            let waves_per_iter = r.waves as f64 / r.iterations.max(1) as f64;
            println!(
                "  threads {threads:>2}: {secs:>7.3}s  {} iters  {:.1} waves/iter  \
                 {} interior + {} boundary  occupancy {:?}",
                r.iterations, waves_per_iter, r.interior_routes, r.boundary_routes,
                r.partition_occupancy
            );
            let occupancy = r
                .partition_occupancy
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            rows.push(format!(
                "    {{\"threads\": {threads}, \"route_seconds\": {secs:.6}, \
                 \"iterations\": {}, \"waves\": {}, \"waves_per_iter\": {waves_per_iter:.3}, \
                 \"interior_routes\": {}, \"boundary_routes\": {}, \
                 \"partition_occupancy\": [{occupancy}]}}",
                r.iterations, r.waves, r.interior_routes, r.boundary_routes
            ));
        }
        let record = xbench::bench::BenchRecord::new("route_scaling")
            .field("smoke", smoke)
            .field("width", width)
            .field("partitions", partitions)
            .field("nets", netlist.nets.len())
            .raw("sweep", format!("[\n{}\n  ]", rows.join(",\n")));
        record.write(&json_path).expect("write scaling json");
        println!("wrote {json_path}");
    }

    if check {
        let secs = t_route.as_secs_f64();
        if secs > CHECK_ROUTE_SECONDS {
            eprintln!(
                "CHECK FAILED: gate-level route took {secs:.2}s \
                 (threshold {CHECK_ROUTE_SECONDS}s) — router hot path regressed"
            );
            std::process::exit(1);
        }
        println!(
            "check passed: gate-level route {secs:.2}s <= {CHECK_ROUTE_SECONDS}s threshold"
        );
    }
    xbench::finish_trace(trace_path.as_deref());
}
