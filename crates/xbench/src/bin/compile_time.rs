//! Regenerates the **Section II compile-time claim**: the VCGRA tool flow
//! (PE-granularity synthesis, placement, routing) is orders of magnitude
//! faster than the standard gate-level FPGA flow, because the higher
//! abstraction level shrinks the problem size.
//!
//! Both flows compile the same application: a 5-tap filter kernel.
//! * VCGRA flow: dataflow synthesis → PE placement → virtual routing →
//!   settings generation (the whole Fig. 2 right-hand side).
//! * FPGA flow: gate-level netlist generation → logic optimization →
//!   technology mapping → placement (routing excluded — it would only
//!   widen the gap).
//!
//! Usage: `cargo run -p xbench --release --bin compile_time [--smoke]`
//! (`--smoke` runs the gate-level flow on a reduced (5,10) PE — the gap
//! shrinks with the netlist but stays orders of magnitude)

use softfloat::FpFormat;
use vcgra::app::AppGraph;
use vcgra::flow::map_app;
use vcgra::VcgraArch;
use xbench::{print_header, print_row};

fn main() {
    let smoke = xbench::smoke_mode();
    let gate_fmt = if smoke { FpFormat::new(5, 10) } else { FpFormat::PAPER };
    let coeffs = [0.0625, 0.25, 0.375, 0.25, 0.0625]; // 5-tap binomial
    let arch = VcgraArch::paper_4x4();

    // --- VCGRA tool flow ---
    let t0 = std::time::Instant::now();
    let app = AppGraph::dot_product(FpFormat::PAPER, &coeffs);
    let mapping = map_app(&app, arch, 42).expect("fits the 4x4 grid");
    let t_vcgra = t0.elapsed();
    println!(
        "VCGRA flow: {} PEs placed, virtual WL {}, settings words {}",
        app.pe_demand(),
        mapping.virtual_wirelength,
        mapping.settings_words().len()
    );

    // --- standard FPGA flow on the same function (gate level) ---
    let t1 = std::time::Instant::now();
    let aig = xbench::build_pe_aig_with(gate_fmt, false); // one PE's worth of gates
    let t_synth = t1.elapsed();
    let t2 = std::time::Instant::now();
    let design = xbench::map_pe(&aig, false);
    let t_map = t2.elapsed();
    let t3 = std::time::Instant::now();
    let netlist = par::extract(&design);
    let fabric = fabric::FabricArch::sized_for(netlist.logic_count(), netlist.io_count());
    let _placement = par::place(&netlist, fabric, 1);
    let t_place = t3.elapsed();
    let t_fpga = t_synth + t_map + t_place;
    println!(
        "FPGA flow (one PE): synth {t_synth:?} + map {t_map:?} + place {t_place:?}"
    );

    print_header("Section II — compile time, same application");
    print_row(
        "VCGRA flow (synth+place+route+settings)",
        "seconds",
        &format!("{:.3} ms", t_vcgra.as_secs_f64() * 1e3),
    );
    print_row(
        "FPGA flow (synth+map+place, 1 PE)",
        "tens of minutes",
        &format!("{:.1} ms", t_fpga.as_secs_f64() * 1e3),
    );
    let ratio = t_fpga.as_secs_f64() / t_vcgra.as_secs_f64().max(1e-9);
    print_row(
        "speedup of the VCGRA flow",
        "orders of magnitude",
        &format!("{ratio:.0}x"),
    );
    println!(
        "\n(the FPGA column covers a single PE; a full application instantiates\n\
         {} of them plus interconnect, widening the gap accordingly)",
        app.pe_demand()
    );
}
