//! Regenerates **Table II**: resource utilization of a 4×4 VCGRA grid.
//!
//! Paper: conventional overlay needs 41 inter-network routing components
//! (9 VSBs + 32 VCBs) on LUTs and 25 32-bit settings registers on
//! flip-flops; the fully parameterized overlay needs 0 and 0 (physical
//! routing switches + configuration memory).
//!
//! Usage: `cargo run -p xbench --release --bin table2`

use vcgra::VcgraArch;
use xbench::{print_header, print_row};

fn main() {
    let trace_path = xbench::init_trace();
    let grid = VcgraArch::paper_4x4();
    let conv = grid.resources(false);
    let par = grid.resources(true);

    println!(
        "4x4 VCGRA: {} PEs, {} VSBs, {} VCBs",
        grid.pe_count(),
        grid.vsb_count(),
        grid.vcb_count()
    );

    print_header("Table II — resource utilization of a 4x4 VCGRA grid");
    print_row(
        "inter-network on LUTs, conventional",
        "41",
        &conv.inter_network_components_on_luts.to_string(),
    );
    print_row(
        "inter-network on LUTs, parameterized",
        "0",
        &par.inter_network_components_on_luts.to_string(),
    );
    print_row(
        "settings registers (FF), conventional",
        "25",
        &conv.settings_registers_on_ffs.to_string(),
    );
    print_row(
        "settings registers (FF), parameterized",
        "0",
        &par.settings_registers_on_ffs.to_string(),
    );

    println!("\nBehind the component counts:");
    print_row(
        "flip-flop bits, conventional",
        "25 x 32 = 800",
        &conv.flip_flops.to_string(),
    );
    print_row(
        "inter-network LUT estimate, conv.",
        "-",
        &conv.inter_network_luts.to_string(),
    );
    print_row(
        "settings bits in config memory, param.",
        "800",
        &par.settings_bits_in_config_memory.to_string(),
    );
    print_row(
        "inter-network TCONs, parameterized",
        "-",
        &par.inter_network_tcons.to_string(),
    );

    // Scaling sweep: the savings grow with the grid.
    println!("\nScaling (conventional FF bits / routing components eliminated):");
    for (r, c) in [(4usize, 4usize), (6, 6), (8, 8), (12, 12)] {
        let g = vcgra::VcgraArch::new(r, c, 2);
        let res = g.resources(false);
        println!(
            "  {r:>2}x{c:<2}: {:>5} FF bits, {:>4} routing components -> 0 / 0 when parameterized",
            res.flip_flops,
            res.inter_network_components_on_luts
        );
    }
    xbench::finish_trace(trace_path.as_deref());
}
