//! Regenerates the **Section V reconfiguration-overhead analysis**.
//!
//! The paper estimates 251 ms to micro-reconfigure one PE (526 TLUTs +
//! 568 TCONs through HWICAP) and argues the cost is negligible when a
//! coefficient change covers a 1000-image batch. This binary reproduces
//! the estimate from our own mapped PE, measures the SCG's
//! Boolean-function evaluation time, reports PPC memory, and prices the
//! same change on faster interfaces ([6], [16]).
//!
//! Usage: `cargo run -p xbench --release --bin reconfig [--smoke]`
//! (`--smoke` maps the PE in a reduced (5,10) format: same pipeline, a
//! fraction of the mapping time, trends intact)

use dcs::{pe_reconfig_estimate, ParamConfig, ReconfigInterface, Scg};
use logic::SplitMix64;
use softfloat::FpFormat;
use xbench::{build_pe_aig_with, map_pe, print_header, print_row};

fn main() {
    let smoke = xbench::smoke_mode();
    let trace_path = xbench::init_trace();
    let fmt = if smoke { FpFormat::new(5, 10) } else { FpFormat::PAPER };
    println!(
        "Building and mapping the parameterized PE (format ({}, {})) ...",
        fmt.we, fmt.wf
    );
    let aig = build_pe_aig_with(fmt, true);
    let design = map_pe(&aig, true);
    let stats = design.stats();
    println!(
        "PE: {} LUTs ({} TLUTs), {} TCONs, {} tunable constants",
        stats.luts, stats.tluts, stats.tcons, stats.tunable_constants
    );

    // --- the paper's own population, through our timing model ---
    let paper_stats = dcs::paper_pe_stats();

    print_header("Section V — reconfiguration overhead per PE");
    let t_paper = pe_reconfig_estimate(&paper_stats, ReconfigInterface::Hwicap);
    print_row(
        "HWICAP, paper's PE population",
        "251 ms",
        &format!("{:.1} ms", t_paper.as_secs_f64() * 1e3),
    );
    for iface in [
        ReconfigInterface::Hwicap,
        ReconfigInterface::Micap,
        ReconfigInterface::IcapDma,
    ] {
        let t = pe_reconfig_estimate(&stats, iface);
        print_row(
            &format!("{}, our PE population", iface.name()),
            "-",
            &format!("{:.1} ms", t.as_secs_f64() * 1e3),
        );
    }

    // --- SCG measurement on the real PPC ---
    println!("\nExtracting TC/PPC and measuring the SCG ...");
    let cfg = ParamConfig::extract(&design);
    println!(
        "TC: {} static bits; PPC: {} tunable bits over {} frames; PPC memory: {} BDD nodes",
        cfg.template_bits(),
        cfg.ppc_bits(),
        cfg.tunable_frames(),
        cfg.ppc_memory_nodes(&design)
    );
    let scg = Scg::new(&design, &cfg);
    let mut rng = SplitMix64::new(7);
    let n_params = design.param_names.len();
    let draws: Vec<Vec<bool>> = (0..32)
        .map(|_| (0..n_params).map(|_| rng.coin()).collect())
        .collect();
    let t0 = std::time::Instant::now();
    let mut bits_total = 0usize;
    for d in &draws {
        bits_total += scg.specialize(d).values.len();
    }
    let dt = t0.elapsed();
    print_row(
        "SCG Boolean evaluation / change",
        "(embedded CPU)",
        &format!("{:.2} ms host", dt.as_secs_f64() * 1e3 / draws.len() as f64),
    );
    print_row(
        "PPC bits evaluated / change",
        "-",
        &(bits_total / draws.len()).to_string(),
    );

    // --- coefficient-change working set and amortization ---
    let old = scg.specialize(&draws[0]);
    let new = scg.specialize(&draws[1]);
    let dirty = scg.dirty_frames(&old, &new).len();
    let port = dcs::timing::reconfig_cost(dirty, ReconfigInterface::Hwicap);
    print_row(
        "frames dirtied by a coefficient change",
        "-",
        &dirty.to_string(),
    );
    print_row(
        "port time for that change (HWICAP)",
        "-",
        &format!("{:.1} ms", port.as_secs_f64() * 1e3),
    );
    let per_image = t_paper.as_secs_f64() * 1e3 / 1000.0;
    print_row(
        "amortized over 1000 images",
        "0.251 ms/image",
        &format!("{per_image:.3} ms/image"),
    );
    xbench::finish_trace(trace_path.as_deref());
}
