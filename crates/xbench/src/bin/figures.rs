//! Regenerates the paper's **figures** as machine-readable artifacts in
//! `out/`:
//!
//! * Fig. 1 — `fig1_grid.dot`: a VCGRA fragment (PEs, VSBs, settings
//!   registers);
//! * Fig. 4 — `fig4_pe.dot`: the fully parameterized PE (settings
//!   register, BLE groups, TCON ring);
//! * Fig. 5 — `fig5_*.pgm`: every stage of the vessel-segmentation
//!   pipeline on a synthetic fundus image, plus an ASCII grid of a mapped
//!   kernel (Fig. 1's usage view).
//!
//! Usage: `cargo run -p xbench --release --bin figures [out_dir] [--smoke]`
//! (`--smoke` renders the pipeline on a smaller synthetic fundus so CI
//! can run the binary end-to-end in seconds)

use retina::pipeline::{run_pipeline, Metrics, PipelineConfig};
use retina::synth::{synth_fundus, SynthConfig};
use softfloat::FpFormat;
use vcgra::app::AppGraph;
use vcgra::render;
use vcgra::VcgraArch;

fn main() {
    let smoke = xbench::smoke_mode();
    let trace_path = xbench::init_trace();
    // First positional argument (flags and their values excluded, any
    // order) is out_dir. `--trace` takes a value, so its path must not
    // be mistaken for the positional.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_dir = args
        .iter()
        .enumerate()
        .find(|&(i, a)| {
            !a.starts_with("--") && (i == 0 || args[i - 1] != "--trace")
        })
        .map(|(_, a)| a.clone())
        .unwrap_or_else(|| "out".to_string());
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let path = |name: &str| format!("{out_dir}/{name}");

    // Fig. 1: grid schematic.
    let arch = VcgraArch::paper_4x4();
    std::fs::write(path("fig1_grid.dot"), render::grid_dot(&arch)).unwrap();
    println!("wrote {}", path("fig1_grid.dot"));

    // Fig. 4: PE schematic.
    std::fs::write(path("fig4_pe.dot"), render::pe_dot()).unwrap();
    println!("wrote {}", path("fig4_pe.dot"));

    // Fig. 1 (usage view): a mapped kernel on the grid, as ASCII.
    let app = AppGraph::dot_product(FpFormat::PAPER, &[0.25, 0.5, 0.25, 0.125, 0.0625]);
    let mapping = vcgra::flow::map_app(&app, arch, 3).expect("mappable");
    let ascii = render::grid_ascii(&mapping);
    std::fs::write(path("fig1_mapped.txt"), &ascii).unwrap();
    println!("wrote {}\n{ascii}", path("fig1_mapped.txt"));

    // Fig. 5: pipeline stages on a synthetic fundus image.
    let size = if smoke { 64 } else { 128 };
    let (img, truth) = synth_fundus(&SynthConfig { size, ..Default::default() }, 2026);
    let res = run_pipeline(&img, &PipelineConfig::default());
    let stages: [(&str, &retina::Image); 6] = [
        ("fig5_0_green.pgm", &img.g),
        ("fig5_1_preprocessed.pgm", &res.preprocessed),
        ("fig5_2_denoised.pgm", &res.denoised),
        ("fig5_3_matched_response.pgm", &res.response),
        ("fig5_4_textured.pgm", &res.textured),
        ("fig5_5_segmented.pgm", &res.segmented),
    ];
    for (name, image) in stages {
        std::fs::write(path(name), image.to_pgm()).unwrap();
        println!("wrote {}", path(name));
    }
    std::fs::write(path("fig5_truth.pgm"), truth.to_pgm()).unwrap();
    let m = Metrics::evaluate(&res.segmented, &truth);
    println!(
        "\nFig. 5 pipeline on synthetic fundus: precision {:.3}, recall {:.3}, F1 {:.3}, accuracy {:.3}",
        m.precision(),
        m.recall(),
        m.f1(),
        m.accuracy()
    );
    println!(
        "kernels loaded: {} ({} coefficients programmed)",
        res.kernels_loaded, res.coefficients_programmed
    );
    xbench::finish_trace(trace_path.as_deref());
}
