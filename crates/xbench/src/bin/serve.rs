//! Mixed-tenant soak over the **`vcgra-runtime`** overlay runtime.
//!
//! The scenario exercises the whole serving story the paper's overlay
//! argument implies:
//!
//! 1. a **cold wave** admits every kernel in the library (cache misses,
//!    full `map_app` compiles);
//! 2. a **warm wave** admits structurally identical kernels with new
//!    coefficients (cache hits — admission cost collapses to a settings
//!    specialize, oversubscribing the pool so some tenants time-share);
//! 3. **parameter swaps** retune live tenants through the
//!    micro-reconfiguration fast path (dirty frames only);
//! 4. **concurrent streams** batch inputs through every tenant on
//!    parallel band workers, with bit-exactness checked against
//!    `vcgra::sim::run_dataflow`.
//!
//! The run fails (non-zero exit) if the warm admission path is not at
//! least 10× faster than the cold compile of the same structures, or if
//! any tenant's outputs deviate from `run_dataflow` by a single bit.
//!
//! Usage: `cargo run -p xbench --release --bin serve [--smoke]`

use runtime::kernels;
use runtime::{Runtime, RuntimeConfig, StreamRequest};
use softfloat::{FpFormat, FpValue};
use std::time::Duration;
use vcgra::sim::run_dataflow;
use vcgra::VcgraArch;

const F: FpFormat = FpFormat::PAPER;

fn fp(x: f64) -> FpValue {
    FpValue::from_f64(x, F)
}

fn ms(d: Duration) -> String {
    format!("{:.3} ms", d.as_secs_f64() * 1e3)
}

fn us(d: Duration) -> String {
    format!("{:.1} us", d.as_secs_f64() * 1e6)
}

fn stream(n: usize, items: usize, salt: u64) -> Vec<Vec<FpValue>> {
    let mut rng = logic::SplitMix64::new(0x5EED ^ salt);
    (0..items)
        .map(|_| (0..n).map(|_| fp((rng.unit_f64() - 0.5) * 8.0)).collect())
        .collect()
}

fn main() {
    let smoke = xbench::smoke_mode();
    let items_per_tenant = if smoke { 200 } else { 2000 };
    let mut lib = kernels::library(F);
    if !smoke {
        // The big matched-filter stage goes first: large tenants admit
        // before the pool fragments into small bands.
        lib.insert(0, kernels::retina_soak_stage(F));
    }

    // Pool: uniform 4-wide grids (one overlay generation — a uniform
    // width keeps region shapes, and therefore cache keys, stable across
    // re-placements), one of them tall enough for the big retina stage.
    // Sized so the warm wave oversubscribes and time-shares.
    let cfg = RuntimeConfig {
        grids: vec![
            VcgraArch::new(8, 4, 2),
            VcgraArch::new(8, 4, 2),
            VcgraArch::new(8, 4, 2),
            VcgraArch::new(16, 4, 2),
        ],
        ..RuntimeConfig::default()
    };
    println!("=== vcgra-runtime serve: mixed-tenant soak ({} kernels) ===", lib.len());
    println!(
        "pool: {:?} grids, cache {} entries, {} workers, batch {}",
        cfg.grids.iter().map(|g| (g.rows, g.cols)).collect::<Vec<_>>(),
        cfg.cache_capacity,
        cfg.workers,
        cfg.batch_size,
    );
    let mut rt = Runtime::new(cfg);

    // --- phase 1: cold wave ---
    println!("\n-- cold admissions (cache misses, full compiles) --");
    println!(
        "  {:<22} {:>4} {:>9} {:>12} {:>12} {:>6}",
        "kernel", "PEs", "region", "compile", "admit", "cache"
    );
    let mut cold_ids = Vec::new();
    let mut cold_admits: Vec<Duration> = Vec::new();
    for w in &lib {
        let adm = rt.submit(&w.name, w.graph.clone()).expect("cold admission");
        println!(
            "  {:<22} {:>4} {:>6}x{:<2} {:>12} {:>12} {:>6}",
            w.name,
            w.graph.pe_demand(),
            adm.lease.rows,
            adm.lease.cols,
            ms(adm.compile_time),
            us(adm.admit_time),
            if adm.cache_hit { "hit" } else { "miss" },
        );
        // Structurally identical kernels (e.g. two 3x3 tap sets) may hit
        // within the first wave already — only misses enter the cold
        // baseline.
        if !adm.cache_hit {
            cold_admits.push(adm.admit_time);
        }
        cold_ids.push(adm.tenant);
    }
    assert!(cold_admits.len() >= 4, "library must hold >= 4 distinct structures");

    // --- phase 2: warm wave (same structures, new coefficients) ---
    println!("\n-- warm admissions (cache hits, parameters only) --");
    let mut rng = logic::SplitMix64::new(2026);
    let mut warm_ids = Vec::new();
    let mut warm_admits: Vec<Duration> = Vec::new();
    let mut warm_graphs = Vec::new();
    for w in &lib {
        let slots = w.graph.coeff_nodes();
        let coeffs: Vec<FpValue> =
            (0..slots.len()).map(|_| fp((rng.unit_f64() - 0.5) * 4.0)).collect();
        let graph = w.graph.with_coeffs(&coeffs);
        let adm = rt.submit(format!("{}-warm", w.name), graph.clone()).expect("warm admission");
        println!(
            "  {:<22} admit {:>12}  cache {}  {}",
            format!("{}-warm", w.name),
            us(adm.admit_time),
            if adm.cache_hit { "hit " } else { "MISS" },
            if adm.lease.shared { "time-shared" } else { "dedicated" },
        );
        assert!(adm.cache_hit, "second wave must hit the configuration cache");
        warm_admits.push(adm.admit_time);
        warm_ids.push(adm.tenant);
        warm_graphs.push(graph);
    }
    let cold_avg = cold_admits.iter().sum::<Duration>() / cold_admits.len() as u32;
    let warm_avg = warm_admits.iter().sum::<Duration>() / warm_admits.len() as u32;
    let speedup = cold_avg.as_secs_f64() / warm_avg.as_secs_f64().max(1e-12);
    println!(
        "\n  warm-path speedup: cold admission {} vs warm {} -> {speedup:.0}x (require >= 10x)",
        us(cold_avg),
        us(warm_avg),
    );
    assert!(speedup >= 10.0, "warm admission must be >= 10x faster, got {speedup:.1}x");

    // --- phase 3: parameter swaps on live tenants ---
    println!("\n-- parameter swaps (micro-reconfiguration fast path) --");
    println!(
        "  {:<22} {:>6} {:>8} {:>8} {:>12} {:>12}",
        "kernel", "dirty", "PPC fr", "set fr", "port", "SCG eval"
    );
    let mut swapped_graphs = Vec::new();
    for (&t, w) in cold_ids.iter().zip(&lib) {
        let slots = rt.tenant(t).unwrap().graph.coeff_nodes();
        let coeffs: Vec<FpValue> =
            (0..slots.len()).map(|_| fp((rng.unit_f64() - 0.5) * 2.0)).collect();
        let rep = rt.swap_params(t, &coeffs).expect("swap");
        println!(
            "  {:<22} {:>6} {:>8} {:>8} {:>12} {:>12}",
            w.name,
            rep.dirty_pes,
            rep.ppc_frames,
            rep.settings_frames,
            ms(rep.port_time),
            us(rep.eval_time),
        );
        swapped_graphs.push(rt.tenant(t).unwrap().graph.clone());
    }

    // --- phase 4: concurrent batched streams ---
    println!("\n-- streaming ({items_per_tenant} items/tenant, all tenants concurrent) --");
    let all_ids: Vec<_> = cold_ids.iter().chain(&warm_ids).copied().collect();
    let all_graphs: Vec<_> = swapped_graphs.iter().chain(&warm_graphs).cloned().collect();
    let requests: Vec<StreamRequest> = all_ids
        .iter()
        .zip(&all_graphs)
        .map(|(&t, g)| StreamRequest { tenant: t, inputs: stream(g.num_inputs, items_per_tenant, t) })
        .collect();
    let inputs: Vec<Vec<Vec<FpValue>>> = requests.iter().map(|r| r.inputs.clone()).collect();
    let t0 = std::time::Instant::now();
    let runs = rt.run(requests).expect("streaming");
    let wall = t0.elapsed();

    println!(
        "  {:<22} {:>7} {:>10} {:>12} {:>7} {:>10}",
        "tenant", "items", "host", "items/s", "cxsw", "bit-exact"
    );
    let mut total_items = 0usize;
    for run in &runs {
        let idx = all_ids.iter().position(|&t| t == run.tenant).unwrap();
        let graph = &all_graphs[idx];
        let name = &rt.tenant(run.tenant).unwrap().name;
        // Bit-exactness against the pure dataflow simulator.
        let check = inputs[idx].len().min(64);
        for (input, out) in inputs[idx][..check].iter().zip(&run.outputs) {
            let want = run_dataflow(graph, input);
            assert_eq!(
                out.iter().map(|v| v.bits).collect::<Vec<_>>(),
                want.iter().map(|v| v.bits).collect::<Vec<_>>(),
                "{name}: runtime output deviates from run_dataflow"
            );
        }
        total_items += run.items;
        println!(
            "  {:<22} {:>7} {:>10} {:>12.0} {:>7} {:>10}",
            name,
            run.items,
            ms(run.exec_time),
            run.throughput(),
            run.context_switches,
            "yes",
        );
    }
    println!(
        "  pool wall clock {} for {total_items} items -> {:.0} items/s aggregate",
        ms(wall),
        total_items as f64 / wall.as_secs_f64().max(1e-12),
    );

    // --- phase 5: the ledger ---
    let led = rt.ledger();
    let cache = rt.cache_stats();
    println!("\n-- ledger (measured host vs modeled configuration port) --");
    println!("  cold compiles          {:>10}   host compile {}", led.cold_compiles, ms(led.host_compile_time));
    println!("  warm admissions        {:>10}   host admit   {}", led.warm_admissions, ms(led.host_admit_time));
    println!("  parameter swaps        {:>10}   dirty frames {}", led.swaps, led.swap_frames);
    println!("  swap port time         {:>10}   SCG eval     {}", ms(led.swap_port_time), us(led.swap_eval_time));
    println!("  context switches       {:>10}   switch port  {}", led.context_switches, ms(led.switch_port_time));
    println!("  admission port time    {:>10}", ms(led.admission_port_time));
    println!("  total port time        {:>10}   vs exec      {}", ms(led.total_port_time()), ms(led.exec_time));
    println!(
        "  paper anchor: {} per PE full reconfig ({} interface)",
        ms(led.paper_pe_unit),
        rt.config().iface.name(),
    );
    println!(
        "  cache: {} hits / {} misses / {} evictions; pool utilization {:.0}%",
        cache.hits,
        cache.misses,
        cache.evictions,
        rt.utilization() * 100.0,
    );
    println!("\nOK: warm path {speedup:.0}x, all outputs bit-exact with run_dataflow.");
}
