//! Mixed-tenant soak over the **`vcgra-runtime`** overlay runtime.
//!
//! The scenario exercises the whole serving story the paper's overlay
//! argument implies:
//!
//! 1. a **cold wave** admits every kernel in the library (cache misses,
//!    full `map_app` compiles);
//! 2. a **warm wave** admits structurally identical kernels with new
//!    coefficients (cache hits — admission cost collapses to a settings
//!    specialize, oversubscribing the pool so some tenants time-share);
//! 3. **parameter swaps** retune live tenants through the
//!    micro-reconfiguration fast path (dirty frames only);
//! 4. **concurrent streams** batch inputs through every tenant on
//!    parallel band workers, with bit-exactness checked against
//!    `vcgra::sim::run_dataflow`;
//!
//! followed by the **scheduler waves** (the admission-layer story):
//!
//! 5. **queue wave** — a full pool queues submissions FIFO and drains
//!    them deterministically on release (asserted, not just printed);
//! 6. **compaction wave** — a 13-row tenant that first-fit refuses on 13
//!    fragmented free rows admits once the scheduler slides the surviving
//!    band down (relocation epochs and replay charges in the ledger);
//! 7. **cache wave** — the same submission sequence runs on a mixed-width
//!    pool with cache-aware placement off, then on: the warm-hit rate
//!    must strictly improve.
//!
//! The run fails (non-zero exit) if the warm admission path is not at
//! least 10× faster than the cold compile of the same structures, if any
//! tenant's outputs deviate from `run_dataflow` by a single bit, or if
//! any scheduler-wave assertion fires.
//!
//! Usage: `cargo run -p xbench --release --bin serve [--smoke] [--queue]
//! [--compact] [--check] [--verify] [--shards N] [--workers W]
//! [--json <path>]`
//!
//! `--queue` / `--compact` select just that scheduler wave; `--check`
//! (CI's queue-regression gate) runs everything regardless of selection.
//! `--shards N` runs the **sharded serving tier** bench instead: a
//! seeded deterministic load plan (`vcgra-shard`'s generator) driven
//! through N cache-affine shards, cross-checked for bit-exactness
//! against the same plan on a single-runtime tier, with per-shard and
//! aggregate admit/execute/queue-wait quantiles in the JSON record.
//! `--verify` turns on `verify_on_admit` (every mutating runtime
//! operation re-proves the scheduler invariants before returning) and a
//! final `vcgra-verify` sched pass per wave. `--check` implies the final
//! sched pass, so queue/ledger reconciliation drift *fails* the gate
//! instead of merely printing skewed counters. `--json` writes the soak's
//! machine-readable record — ledger counters plus the audit seconds the
//! admission-time `StructureSig` memo saved across snapshots.

use runtime::kernels;
use runtime::{Admission, Runtime, RuntimeConfig, StreamRequest, TenantId};
use softfloat::{FpFormat, FpValue};
use std::time::Duration;
use vcgra::sim::run_dataflow;
use vcgra::VcgraArch;

const F: FpFormat = FpFormat::PAPER;

fn fp(x: f64) -> FpValue {
    FpValue::from_f64(x, F)
}

fn ms(d: Duration) -> String {
    format!("{:.3} ms", d.as_secs_f64() * 1e3)
}

fn us(d: Duration) -> String {
    format!("{:.1} us", d.as_secs_f64() * 1e6)
}

/// Re-proves the scheduler invariants (band/lease disjointness, row
/// conservation, queue/ledger reconciliation, cache-key soundness) on
/// the live runtime and fails the run on any violation.
fn sched_verify(rt: &Runtime, label: &str) {
    let report = rt.verify();
    println!("  [verify] {label}: {}", report.summary());
    report.assert_ok();
    let timeline = rt.verify_timeline();
    println!("  [verify] {label} (time axis): {}", timeline.summary());
    timeline.assert_ok();
}

fn stream(n: usize, items: usize, salt: u64) -> Vec<Vec<FpValue>> {
    let mut rng = logic::SplitMix64::new(0x5EED ^ salt);
    (0..items)
        .map(|_| (0..n).map(|_| fp((rng.unit_f64() - 0.5) * 8.0)).collect())
        .collect()
}

/// Streams through one tenant and asserts bit-exactness on its current
/// graph.
fn assert_bit_exact(rt: &mut Runtime, tenant: TenantId, items: usize, salt: u64) {
    let graph = rt.tenant(tenant).unwrap().graph.clone();
    let ins = stream(graph.num_inputs, items, salt);
    let runs = rt.run(vec![StreamRequest { tenant, inputs: ins.clone() }]).expect("stream");
    for (input, out) in ins.iter().zip(&runs[0].outputs) {
        let want = run_dataflow(&graph, input);
        assert_eq!(
            out.iter().map(|v| v.bits).collect::<Vec<_>>(),
            want.iter().map(|v| v.bits).collect::<Vec<_>>(),
            "tenant {tenant} deviates from run_dataflow"
        );
    }
}

/// Phases 1–4 + ledger: the original mixed-tenant soak.
fn soak(smoke: bool, verify_on_admit: bool, audit: bool, json: Option<&str>) {
    // Per-wave latency histograms: cold/warm admission and streaming
    // execution, recorded at the driver so each wave reads out its own
    // p50/p95/p99 (the runtime's own `runtime.admit_ns` histogram pools
    // both waves).
    let lat = trace::Registry::new();
    let cold_hist = lat.histogram("serve.cold_admit_ns");
    let warm_hist = lat.histogram("serve.warm_admit_ns");
    let exec_hist = lat.histogram("serve.execute_ns");
    let items_per_tenant = if smoke { 200 } else { 2000 };
    let mut lib = kernels::library(F);
    if !smoke {
        // The big matched-filter stage goes first: large tenants admit
        // before the pool fragments into small bands.
        lib.insert(0, kernels::retina_soak_stage(F));
    }

    // Pool: uniform 4-wide grids (one overlay generation — a uniform
    // width keeps region shapes, and therefore cache keys, stable across
    // re-placements), one of them tall enough for the big retina stage.
    // Sized so the warm wave oversubscribes and time-shares.
    let cfg = RuntimeConfig {
        grids: vec![
            VcgraArch::new(8, 4, 2),
            VcgraArch::new(8, 4, 2),
            VcgraArch::new(8, 4, 2),
            VcgraArch::new(16, 4, 2),
        ],
        verify_on_admit,
        ..RuntimeConfig::default()
    };
    println!("=== vcgra-runtime serve: mixed-tenant soak ({} kernels) ===", lib.len());
    println!(
        "pool: {:?} grids, cache {} entries, {} workers, batch {}",
        cfg.grids.iter().map(|g| (g.rows, g.cols)).collect::<Vec<_>>(),
        cfg.cache_capacity,
        cfg.workers,
        cfg.batch_size,
    );
    let mut rt = Runtime::new(cfg);

    // --- phase 1: cold wave ---
    println!("\n-- cold admissions (cache misses, full compiles) --");
    println!(
        "  {:<22} {:>4} {:>9} {:>12} {:>12} {:>6}",
        "kernel", "PEs", "region", "compile", "admit", "cache"
    );
    let mut cold_ids = Vec::new();
    let mut cold_admits: Vec<Duration> = Vec::new();
    for w in &lib {
        let adm = rt
            .submit(&w.name, w.graph.clone())
            .expect("cold submission")
            .expect_admitted("cold wave fits the pool");
        println!(
            "  {:<22} {:>4} {:>6}x{:<2} {:>12} {:>12} {:>6}",
            w.name,
            w.graph.pe_demand(),
            adm.lease.rows,
            adm.lease.cols,
            ms(adm.compile_time),
            us(adm.admit_time),
            if adm.cache_hit { "hit" } else { "miss" },
        );
        // Structurally identical kernels (e.g. two 3x3 tap sets) may hit
        // within the first wave already — only misses enter the cold
        // baseline.
        if !adm.cache_hit {
            cold_admits.push(adm.admit_time);
        }
        cold_hist.record_duration(adm.admit_time);
        cold_ids.push(adm.tenant);
    }
    assert!(cold_admits.len() >= 4, "library must hold >= 4 distinct structures");

    // --- phase 2: warm wave (same structures, new coefficients) ---
    println!("\n-- warm admissions (cache hits, parameters only) --");
    let mut rng = logic::SplitMix64::new(2026);
    let mut warm_ids = Vec::new();
    let mut warm_admits: Vec<Duration> = Vec::new();
    let mut warm_graphs = Vec::new();
    for w in &lib {
        let slots = w.graph.coeff_nodes();
        let coeffs: Vec<FpValue> =
            (0..slots.len()).map(|_| fp((rng.unit_f64() - 0.5) * 4.0)).collect();
        let graph = w.graph.with_coeffs(&coeffs);
        let adm = rt
            .submit(format!("{}-warm", w.name), graph.clone())
            .expect("warm submission")
            .expect_admitted("warm wave time-shares instead of queueing");
        println!(
            "  {:<22} admit {:>12}  cache {}  {}",
            format!("{}-warm", w.name),
            us(adm.admit_time),
            if adm.cache_hit { "hit " } else { "MISS" },
            if adm.lease.shared { "time-shared" } else { "dedicated" },
        );
        assert!(adm.cache_hit, "second wave must hit the configuration cache");
        warm_admits.push(adm.admit_time);
        warm_hist.record_duration(adm.admit_time);
        warm_ids.push(adm.tenant);
        warm_graphs.push(graph);
    }
    let cold_avg = cold_admits.iter().sum::<Duration>() / cold_admits.len() as u32;
    let warm_avg = warm_admits.iter().sum::<Duration>() / warm_admits.len() as u32;
    let speedup = cold_avg.as_secs_f64() / warm_avg.as_secs_f64().max(1e-12);
    println!(
        "\n  warm-path speedup: cold admission {} vs warm {} -> {speedup:.0}x (require >= 10x)",
        us(cold_avg),
        us(warm_avg),
    );
    assert!(speedup >= 10.0, "warm admission must be >= 10x faster, got {speedup:.1}x");

    // --- phase 3: parameter swaps on live tenants ---
    println!("\n-- parameter swaps (micro-reconfiguration fast path) --");
    println!(
        "  {:<22} {:>6} {:>8} {:>8} {:>12} {:>12}",
        "kernel", "dirty", "PPC fr", "set fr", "port", "SCG eval"
    );
    let mut swapped_graphs = Vec::new();
    for (&t, w) in cold_ids.iter().zip(&lib) {
        let slots = rt.tenant(t).unwrap().graph.coeff_nodes();
        let coeffs: Vec<FpValue> =
            (0..slots.len()).map(|_| fp((rng.unit_f64() - 0.5) * 2.0)).collect();
        let rep = rt.swap_params(t, &coeffs).expect("swap");
        println!(
            "  {:<22} {:>6} {:>8} {:>8} {:>12} {:>12}",
            w.name,
            rep.dirty_pes,
            rep.ppc_frames,
            rep.settings_frames,
            ms(rep.port_time),
            us(rep.eval_time),
        );
        swapped_graphs.push(rt.tenant(t).unwrap().graph.clone());
    }

    // --- phase 4: concurrent batched streams ---
    println!("\n-- streaming ({items_per_tenant} items/tenant, all tenants concurrent) --");
    let all_ids: Vec<_> = cold_ids.iter().chain(&warm_ids).copied().collect();
    let all_graphs: Vec<_> = swapped_graphs.iter().chain(&warm_graphs).cloned().collect();
    let requests: Vec<StreamRequest> = all_ids
        .iter()
        .zip(&all_graphs)
        .map(|(&t, g)| StreamRequest { tenant: t, inputs: stream(g.num_inputs, items_per_tenant, t) })
        .collect();
    let inputs: Vec<Vec<Vec<FpValue>>> = requests.iter().map(|r| r.inputs.clone()).collect();
    let t0 = std::time::Instant::now();
    let runs = rt.run(requests).expect("streaming");
    let wall = t0.elapsed();

    println!(
        "  {:<22} {:>7} {:>10} {:>12} {:>7} {:>6} {:>10}",
        "tenant", "items", "host", "items/s", "cxsw", "epoch", "bit-exact"
    );
    let mut total_items = 0usize;
    for run in &runs {
        let idx = all_ids.iter().position(|&t| t == run.tenant).unwrap();
        let graph = &all_graphs[idx];
        let name = &rt.tenant(run.tenant).unwrap().name;
        // Bit-exactness against the pure dataflow simulator.
        let check = inputs[idx].len().min(64);
        for (input, out) in inputs[idx][..check].iter().zip(&run.outputs) {
            let want = run_dataflow(graph, input);
            assert_eq!(
                out.iter().map(|v| v.bits).collect::<Vec<_>>(),
                want.iter().map(|v| v.bits).collect::<Vec<_>>(),
                "{name}: runtime output deviates from run_dataflow"
            );
        }
        total_items += run.items;
        exec_hist.record_duration(run.exec_time);
        println!(
            "  {:<22} {:>7} {:>10} {:>12.0} {:>7} {:>6} {:>10}",
            name,
            run.items,
            ms(run.exec_time),
            run.throughput(),
            run.context_switches,
            run.epoch,
            "yes",
        );
    }
    println!(
        "  pool wall clock {} for {total_items} items -> {:.0} items/s aggregate",
        ms(wall),
        total_items as f64 / wall.as_secs_f64().max(1e-12),
    );

    // --- phase 5: background compaction in the idle window ---
    // Retire the warm tenants, then defragment between waves: the
    // replays are grid-local, so they hide behind the time axis's
    // existing history instead of serializing on the port.
    println!("\n-- background compaction (idle-window defragmentation) --");
    for &t in &warm_ids {
        rt.release(t).expect("release warm tenant");
    }
    let makespan_before = rt.ledger().modeled_makespan;
    let moved = rt.compact_background().expect("background compaction");
    println!(
        "  released {} warm tenants, {} band(s) relocated; makespan {} -> {}",
        warm_ids.len(),
        moved,
        ms(makespan_before),
        ms(rt.ledger().modeled_makespan),
    );

    // --- ledger ---
    let led = rt.ledger();
    let cache = rt.cache_stats();
    println!("\n-- ledger (measured host vs modeled configuration port) --");
    println!("  cold compiles          {:>10}   host compile {}", led.cold_compiles, ms(led.host_compile_time));
    println!("  warm admissions        {:>10}   host admit   {}", led.warm_admissions, ms(led.host_admit_time));
    println!(
        "  queued / drained       {:>6} / {:<3} dropped {} cancelled {}",
        led.queued, led.queue_admitted, led.queue_dropped, led.queue_cancelled
    );
    println!("  compactions            {:>10}   bands moved  {} ({})", led.compactions, led.relocated_bands, ms(led.compaction_port_time));
    println!("  parameter swaps        {:>10}   dirty frames {}", led.swaps, led.swap_frames);
    println!("  swap port time         {:>10}   SCG eval     {}", ms(led.swap_port_time), us(led.swap_eval_time));
    println!("  context switches       {:>10}   switch port  {}", led.context_switches, ms(led.switch_port_time));
    println!("  admission port time    {:>10}", ms(led.admission_port_time));
    println!("  total port time        {:>10}   vs exec      {}", ms(led.total_port_time()), ms(led.exec_time));
    println!(
        "  modeled makespan       {:>10}   overlap saved {}",
        ms(led.modeled_makespan),
        ms(led.overlap_saved),
    );
    if led.context_switches > 0 {
        // The acceptance bound of the time axis: once bands time-share,
        // their grid-local context switches overlap other bands' port
        // streams, so the honest makespan beats the flat sum.
        assert!(
            led.modeled_makespan < led.total_port_time(),
            "time-shared soak: modeled makespan {} must be strictly less than \
             the summed port time {}",
            ms(led.modeled_makespan),
            ms(led.total_port_time()),
        );
    }
    println!(
        "  paper anchor: {} per PE full reconfig ({} interface)",
        ms(led.paper_pe_unit),
        rt.config().iface.name(),
    );
    println!(
        "  cache: {} hits / {} misses / {} evictions ({:.0}% warm); pool utilization {:.0}%",
        cache.hits,
        cache.misses,
        cache.evictions,
        cache.hit_rate() * 100.0,
        rt.utilization() * 100.0,
    );
    if audit {
        sched_verify(&rt, "post-soak scheduler state");
    }
    println!(
        "  sig memo: {} derivations ({}) at admission, {} snapshot hits -> {:.3} ms audit saved",
        led.sig_derivations,
        us(led.sig_derive_time),
        rt.sig_memo_hits(),
        rt.sig_seconds_saved() * 1e3,
    );

    // --- latency quantiles (per-wave driver histograms + the runtime's
    //     own registry, which the ledger above is a view over) ---
    println!("\n-- latency (log-linear histograms, per wave) --");
    print!("{}", lat.render_table());
    println!("\n-- runtime metrics registry (ledger source of truth) --");
    print!("{}", rt.metrics().render_table());

    if let Some(path) = json {
        let record = xbench::bench::BenchRecord::new("serve_soak")
            .field("smoke", smoke)
            .field("verify_on_admit", verify_on_admit)
            .field("cold_compiles", led.cold_compiles)
            .field("warm_admissions", led.warm_admissions)
            .field("warm_speedup", speedup)
            .field("cache_hit_rate", cache.hit_rate())
            .field("swaps", led.swaps)
            .field("sig_derivations", led.sig_derivations)
            .field("sig_derive_seconds", led.sig_derive_time.as_secs_f64())
            .field("sig_memo_hits", rt.sig_memo_hits())
            .field("sig_audit_seconds_saved", rt.sig_seconds_saved())
            .field("modeled_makespan_seconds", led.modeled_makespan.as_secs_f64())
            .field("total_port_seconds", led.total_port_time().as_secs_f64())
            .field("overlap_saved_seconds", led.overlap_saved.as_secs_f64())
            .raw(
                "latency",
                format!(
                    "{{\n    \"cold_admit\": {},\n    \"warm_admit\": {},\n    \
                     \"execute\": {}\n  }}",
                    xbench::bench::latency_json(&cold_hist.snapshot()),
                    xbench::bench::latency_json(&warm_hist.snapshot()),
                    xbench::bench::latency_json(&exec_hist.snapshot()),
                ),
            );
        record.write(path).expect("write serve json");
        println!("  wrote {path}");
    }
    println!("\nsoak OK: warm path {speedup:.0}x, all outputs bit-exact with run_dataflow.");
}

/// Phase 5: FIFO admission queue — fill the pool, queue three tenants,
/// release the blocker, and require the drain to follow submission order.
fn queue_wave(verify_on_admit: bool, audit: bool) {
    println!("\n=== queue wave: FIFO admission under a full pool ===");
    let cfg = RuntimeConfig {
        grids: vec![VcgraArch::new(6, 4, 2)],
        time_share: false, // prefer queueing latency over context switches
        verify_on_admit,
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(cfg);
    let blocker = rt
        .submit("blocker", kernels::fir_seeded(F, 12, 1).graph)
        .expect("submit")
        .expect_admitted("empty pool");
    println!("  blocker holds all {} rows", blocker.lease.rows);

    println!("  {:<10} {:>6} {:>9}", "tenant", "rows", "position");
    let mut queued = Vec::new();
    for (i, seed) in [21u64, 22, 23].iter().enumerate() {
        match rt.submit(format!("wait{i}"), kernels::fir_seeded(F, 3, *seed).graph).expect("submit") {
            Admission::Queued(q) => {
                println!("  wait{:<6} {:>6} {:>9}", i, 2, q.position);
                assert_eq!(q.position, i, "queue positions count up");
                queued.push(q.tenant);
            }
            Admission::Admitted(_) => panic!("pool is full: wait{i} must queue"),
        }
    }
    assert_eq!(rt.queue_len(), 3);

    let drained = rt.release(blocker.tenant).expect("release");
    println!("  release(blocker) drained {} tenants:", drained.len());
    println!("  {:<10} {:>6} {:>6} {:>12}", "tenant", "row0", "rows", "admit");
    for adm in &drained {
        let name = rt.tenant(adm.tenant).unwrap().name.clone();
        println!("  {:<10} {:>6} {:>6} {:>12}", name, adm.lease.row0, adm.lease.rows, us(adm.admit_time));
    }
    assert_eq!(
        drained.iter().map(|a| a.tenant).collect::<Vec<_>>(),
        queued,
        "drain must follow FIFO submission order"
    );
    for &t in &queued {
        assert_bit_exact(&mut rt, t, 8, t);
    }
    let led = rt.ledger();
    println!(
        "  time axis: makespan {} vs summed port {} (overlap saved {})",
        ms(led.modeled_makespan),
        ms(led.total_port_time()),
        ms(led.overlap_saved),
    );
    if audit {
        sched_verify(&rt, "post-drain scheduler state");
    }
    println!("queue wave OK: 3 queued, drained in FIFO order, bit-exact.");
}

/// Phase 6: band compaction — the acceptance scenario. 13 free rows
/// fragmented 6+7 on a 16-row grid; first-fit refuses the 13-row retina
/// matched-filter stage, compaction admits it.
fn compact_wave(verify_on_admit: bool, audit: bool) {
    println!("\n=== compaction wave: 13-row tenant on 13 fragmented free rows ===");
    let grids = vec![VcgraArch::new(16, 4, 2)];
    let blocker = kernels::fir_seeded(F, 12, 31); // 23 nodes → 6 rows of 4
    let survivor = kernels::fir_seeded(F, 5, 32); // 9 nodes → 3 rows
    let big = kernels::retina_soak_stage(F); // 49 nodes → 13 rows

    // First fit (compaction off): the big tenant can only queue.
    let cfg = RuntimeConfig {
        grids: grids.clone(),
        compact: false,
        verify_on_admit,
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(cfg);
    let b = rt.submit("blocker", blocker.graph.clone()).unwrap().expect_admitted("fits");
    rt.submit("survivor", survivor.graph.clone()).unwrap().expect_admitted("fits");
    rt.release(b.tenant).unwrap();
    let refused = rt.submit(&big.name, big.graph.clone()).unwrap();
    assert!(
        refused.is_queued(),
        "first fit must refuse the 13-row tenant on 13 fragmented rows"
    );
    println!(
        "  first-fit: {} rows free, fragmented 6+7 -> {} queued",
        rt.pool().free_rows(0),
        big.name
    );

    // Same sequence with compaction on.
    let mut rt =
        Runtime::new(RuntimeConfig { grids, verify_on_admit, ..RuntimeConfig::default() });
    let b = rt.submit("blocker", blocker.graph.clone()).unwrap().expect_admitted("fits");
    let s = rt.submit("survivor", survivor.graph.clone()).unwrap().expect_admitted("fits");
    rt.release(b.tenant).unwrap();
    let adm = rt
        .submit(&big.name, big.graph.clone())
        .unwrap()
        .expect_admitted("compaction makes 13 contiguous rows");
    let led = rt.ledger();
    println!(
        "  compaction: {} admitted on rows {}..{} after {} relocation(s) \
         (replay charged {})",
        big.name,
        adm.lease.row0,
        adm.lease.row0 + adm.lease.rows - 1,
        adm.relocations,
        ms(led.compaction_port_time),
    );
    assert_eq!(adm.lease.rows, 13);
    assert_eq!(adm.relocations, 1);
    let survivor_lease = rt.tenant(s.tenant).unwrap().lease;
    assert_eq!((survivor_lease.row0, survivor_lease.epoch), (0, 1), "survivor slid to row 0");
    println!(
        "  survivor now at rows 0..2, lease epoch {} (stats: {} relocation)",
        survivor_lease.epoch,
        rt.tenant(s.tenant).unwrap().stats.relocations,
    );
    assert!(led.compaction_port_time > Duration::ZERO, "replay must be charged");

    // Both the mover and the newcomer stay bit-exact.
    assert_bit_exact(&mut rt, s.tenant, 8, 61);
    assert_bit_exact(&mut rt, adm.tenant, 8, 62);
    let led = rt.ledger();
    println!(
        "  time axis: makespan {} vs summed port {} (overlap saved {})",
        ms(led.modeled_makespan),
        ms(led.total_port_time()),
        ms(led.overlap_saved),
    );
    // The acceptance bound: the survivor's grid-local replay hides
    // behind the 13-row admission stream, so the honest makespan is
    // strictly below the flat sum that serializes the two.
    assert!(
        led.modeled_makespan < led.total_port_time(),
        "compaction wave: modeled makespan {} must be strictly less than \
         the summed port time {}",
        ms(led.modeled_makespan),
        ms(led.total_port_time()),
    );
    if audit {
        sched_verify(&rt, "post-compaction scheduler state");
    }
    println!("compaction wave OK: admitted via compaction, bit-exact across the move.");
}

/// Phase 7: cache-aware placement on a mixed-width pool, measured against
/// plain first fit on the identical submission sequence.
fn cache_wave(verify_on_admit: bool, audit: bool) {
    println!("\n=== cache wave: cache-aware placement on a mixed-width pool ===");
    fn scenario(cache_aware: bool, verify_on_admit: bool) -> (Runtime, TenantId) {
        let cfg = RuntimeConfig {
            grids: vec![VcgraArch::new(6, 4, 2), VcgraArch::new(6, 5, 2)],
            cache_aware,
            verify_on_admit,
            ..RuntimeConfig::default()
        };
        let mut rt = Runtime::new(cfg);
        // A 6-row blocker fills the 4-wide grid...
        let blocker = rt
            .submit("blocker", kernels::fir_seeded(F, 12, 71).graph)
            .unwrap()
            .expect_admitted("empty pool");
        // ...so the FIR compiles for the 5-wide grid.
        let first = rt
            .submit("fir-a", kernels::fir_seeded(F, 5, 72).graph)
            .unwrap()
            .expect_admitted("grid 1 has room");
        assert_eq!(first.lease.grid, 1);
        // Free the 4-wide grid: both widths feasible for the next FIR.
        rt.release(blocker.tenant).unwrap();
        let second = rt
            .submit("fir-b", kernels::fir_seeded(F, 5, 73).graph)
            .unwrap()
            .expect_admitted("both grids have room");
        (rt, second.tenant)
    }

    let (rt_first_fit, _) = scenario(false, verify_on_admit);
    let (mut rt_aware, second) = scenario(true, verify_on_admit);
    let (ff, aw) = (rt_first_fit.cache_stats(), rt_aware.cache_stats());
    println!(
        "  {:<22} {:>6} {:>8} {:>10} {:>10}",
        "policy", "hits", "misses", "warm rate", "compiles"
    );
    println!(
        "  {:<22} {:>6} {:>8} {:>9.0}% {:>10}",
        "first-fit",
        ff.hits,
        ff.misses,
        ff.hit_rate() * 100.0,
        rt_first_fit.ledger().cold_compiles,
    );
    println!(
        "  {:<22} {:>6} {:>8} {:>9.0}% {:>10}",
        "cache-aware",
        aw.hits,
        aw.misses,
        aw.hit_rate() * 100.0,
        rt_aware.ledger().cold_compiles,
    );
    assert!(
        aw.hit_rate() > ff.hit_rate(),
        "cache-aware placement must strictly raise the warm-hit rate \
         ({:.2} vs {:.2})",
        aw.hit_rate(),
        ff.hit_rate()
    );
    assert!(rt_aware.ledger().cold_compiles < rt_first_fit.ledger().cold_compiles);
    assert_eq!(rt_aware.tenant(second).unwrap().lease.grid, 1, "placed on the warm width");
    assert_bit_exact(&mut rt_aware, second, 8, 81);
    if audit {
        sched_verify(&rt_aware, "post-cache-wave scheduler state");
    }
    println!(
        "cache wave OK: warm-hit rate {:.0}% -> {:.0}%, one compile saved.",
        ff.hit_rate() * 100.0,
        aw.hit_rate() * 100.0
    );
}

/// The sharded serving tier (`--shards N`): drives one seeded load plan
/// through an N-shard tier and — when N > 1 — through a single-runtime
/// tier as the reference soak, then requires the two output fingerprints
/// to be bit-identical. Warm-hit floor (>= 33%), per-shard invariant
/// verification at every wave boundary, and the >= 3x warm-traffic
/// scaling requirement (asserted only where the host has the cores to
/// show it) all live here.
fn shard_bench(shards: usize, workers: Option<usize>, smoke: bool, verify_mode: bool, json: Option<&str>) {
    use shard::{LoadSpec, ShardConfig, ShardServer};

    let mut rt_cfg = RuntimeConfig { verify_on_admit: verify_mode, ..RuntimeConfig::default() };
    if let Some(w) = workers {
        rt_cfg.workers = w;
    }
    let spec = LoadSpec {
        waves: if smoke { 2 } else { 4 },
        tenants_per_wave: if smoke { 8 } else { 24 },
        items_per_tenant: if smoke { 8 } else { 64 },
        ..LoadSpec::default()
    };
    let plan = shard::synthesize(F, &spec);
    let cfg_for = |n: usize| ShardConfig { runtime: rt_cfg.clone(), ..ShardConfig::new(n) };

    println!("=== sharded serving tier: {shards} shard(s), {} engine worker(s)/shard ===", rt_cfg.workers);
    println!(
        "plan: seed {:#x}, {} tenants ({} priming + {} waves x {}), {} items/tenant/phase",
        spec.seed,
        plan.tenants(),
        plan.waves[0].len(),
        spec.waves,
        spec.tenants_per_wave,
        spec.items_per_tenant,
    );

    // Reference single-runtime soak: same plan, one shard. Its output
    // fingerprint is the bit-exactness witness for the sharded run, and
    // its throughput is the scaling baseline.
    let reference = (shards > 1).then(|| {
        let mut single = ShardServer::start(cfg_for(1));
        let rep = shard::loadgen::run(&mut single, &plan)
            .unwrap_or_else(|e| panic!("single-shard reference failed: {e}"));
        for fin in single.shutdown() {
            assert!(fin.verify.ok(), "reference shard invariants");
        }
        println!(
            "reference (1 shard): {:.0} items/s over {} timed items, warm rate {:.0}%",
            rep.throughput,
            rep.total_items,
            rep.warm_hit_rate * 100.0,
        );
        rep
    });

    let mut server = ShardServer::start(cfg_for(shards));
    let report = shard::loadgen::run(&mut server, &plan)
        .unwrap_or_else(|e| panic!("sharded run failed: {e}"));

    println!("\n-- waves (wave 0 primes the caches, untimed) --");
    println!("  {:<6} {:>6} {:>8} {:>12} {:>12} {:>7} {:>8}", "wave", "jobs", "items", "wall", "items/s", "spills", "retries");
    for w in &report.waves {
        println!(
            "  {:<6} {:>6} {:>8} {:>12} {:>12.0} {:>7} {:>8}",
            if w.timed { format!("w{}", w.wave) } else { format!("w{}*", w.wave) },
            w.jobs,
            w.items,
            ms(Duration::from_secs_f64(w.seconds)),
            w.items as f64 / w.seconds.max(1e-12),
            w.spills,
            w.retries,
        );
    }

    // Latency quantiles come off the tier's registry: aggregate cells
    // plus the per-shard `shard.<i>.*` cells the workers record into.
    let reg = server.metrics();
    let pct = |name: &str| {
        let s = reg.histogram(name).snapshot();
        (s.count, us(Duration::from_nanos(s.p50())), us(Duration::from_nanos(s.p95())), us(Duration::from_nanos(s.p99())))
    };
    println!("\n-- latency (p50 / p95 / p99) --");
    println!("  {:<22} {:>8} {:>12} {:>12} {:>12}", "cell", "count", "p50", "p95", "p99");
    for name in ["shard.queue_wait_ns", "shard.admit_ns", "shard.execute_ns"] {
        let (n, p50, p95, p99) = pct(name);
        println!("  {:<22} {:>8} {:>12} {:>12} {:>12}", name, n, p50, p95, p99);
    }
    let mut per_shard_json = Vec::with_capacity(shards);
    for s in &report.shard_stats {
        let i = s.shard;
        let (_, a50, a95, a99) = pct(&format!("shard.{i}.admit_ns"));
        let (_, e50, e95, e99) = pct(&format!("shard.{i}.execute_ns"));
        println!(
            "  shard {i}: {} reqs, {} admits ({} warm), util {:.0}%, makespan {}, admit p50/p95/p99 {a50}/{a95}/{a99}, exec {e50}/{e95}/{e99}",
            s.processed,
            s.admission_order.len(),
            s.cache.hits,
            s.utilization * 100.0,
            ms(s.ledger.modeled_makespan),
        );
        per_shard_json.push(format!(
            "{{\"processed\": {}, \"admissions\": {}, \"makespan_seconds\": {:.6}, \"overlap_saved_seconds\": {:.6}, \"queue_wait\": {}, \"admit\": {}, \"execute\": {}}}",
            s.processed,
            s.admission_order.len(),
            s.ledger.modeled_makespan.as_secs_f64(),
            s.ledger.overlap_saved.as_secs_f64(),
            xbench::bench::latency_json(&reg.histogram(&format!("shard.{i}.queue_wait_ns")).snapshot()),
            xbench::bench::latency_json(&reg.histogram(&format!("shard.{i}.admit_ns")).snapshot()),
            xbench::bench::latency_json(&reg.histogram(&format!("shard.{i}.execute_ns")).snapshot()),
        ));
    }
    // Shards run in parallel, each with its own configuration port: the
    // tier's modeled makespan is the slowest shard's axis; the flat
    // story is the sum of every shard's port time.
    let tier_makespan = report
        .shard_stats
        .iter()
        .map(|s| s.ledger.modeled_makespan)
        .max()
        .unwrap_or(Duration::ZERO);
    let tier_port: Duration = report.shard_stats.iter().map(|s| s.ledger.total_port_time()).sum();
    let tier_saved: Duration = report.shard_stats.iter().map(|s| s.ledger.overlap_saved).sum();
    println!(
        "  tier time axis: makespan {} (slowest shard) vs {} summed port time",
        ms(tier_makespan),
        ms(tier_port),
    );
    let agg_wait = reg.histogram("shard.queue_wait_ns").snapshot();
    let agg_admit = reg.histogram("shard.admit_ns").snapshot();
    let agg_exec = reg.histogram("shard.execute_ns").snapshot();
    let (routed, spilled, rejected) = (
        reg.counter_value("shard.route"),
        reg.counter_value("shard.spill"),
        reg.counter_value("shard.reject"),
    );

    for fin in server.shutdown() {
        assert!(fin.verify.ok(), "shard {} invariants at shutdown", fin.shard);
    }

    println!(
        "\n  routed {routed} ({spilled} spilled), {rejected} rejections absorbed by retry, \
         cache {} hits / {} misses ({:.0}% warm)",
        report.warm_hits,
        report.cold_misses,
        report.warm_hit_rate * 100.0,
    );
    println!(
        "  {} timed items in {} -> {:.0} items/s, fingerprint {:016x}",
        report.total_items,
        ms(Duration::from_secs_f64(report.timed_seconds)),
        report.throughput,
        report.fingerprint,
    );
    assert!(
        report.warm_hit_rate >= 1.0 / 3.0,
        "warm-hit rate {:.2} below the 33% floor — affinity routing is not keeping caches warm",
        report.warm_hit_rate
    );

    let mut speedup = None;
    if let Some(ref single) = reference {
        assert_eq!(
            report.fingerprint, single.fingerprint,
            "sharded outputs must be bit-exact with the single-runtime soak"
        );
        let x = report.throughput / single.throughput.max(1e-12);
        speedup = Some(x);
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        println!("  speedup over 1 shard: {x:.2}x ({cores} host cores), outputs bit-exact");
        if shards >= 8 && cores >= shards {
            assert!(
                x >= 3.0,
                "{shards} shards on {cores} cores must sustain >= 3x the single-shard \
                 warm-traffic throughput, got {x:.2}x"
            );
        } else {
            println!(
                "  (scaling assertion needs >= 8 shards and as many host cores; \
                 advisory only here)"
            );
        }
    }

    if let Some(path) = json {
        let mut sharded = format!(
            "{{\n    \"spills\": {},\n    \"warm_hits\": {},\n    \"cold_misses\": {},\n    \
             \"warm_hit_rate\": {:.6},\n    \"makespan_seconds\": {:.6},\n    \
             \"port_seconds\": {:.6},\n    \"overlap_saved_seconds\": {:.6},\n    \
             \"latency\": {{\n      \"queue_wait\": {},\n      \
             \"admit\": {},\n      \"execute\": {}\n    }},\n    \"per_shard\": [{}]",
            report.spills,
            report.warm_hits,
            report.cold_misses,
            report.warm_hit_rate,
            tier_makespan.as_secs_f64(),
            tier_port.as_secs_f64(),
            tier_saved.as_secs_f64(),
            xbench::bench::latency_json(&agg_wait),
            xbench::bench::latency_json(&agg_admit),
            xbench::bench::latency_json(&agg_exec),
            per_shard_json.join(", "),
        );
        if let Some(x) = speedup {
            sharded.push_str(&format!(",\n    \"single_shard_speedup\": {x:.6}"));
        }
        sharded.push_str("\n  }");
        let record = xbench::bench::BenchRecord::new("serve_shard")
            .field("smoke", smoke)
            .field("shards", shards as u64)
            .field("workers", rt_cfg.workers as u64)
            .field("seed", spec.seed)
            .field("waves", spec.waves as u64)
            .field("tenants_per_wave", spec.tenants_per_wave as u64)
            .field("items_per_tenant", spec.items_per_tenant as u64)
            .field("tenants", plan.tenants() as u64)
            .field("total_items", report.total_items)
            .field("fingerprint", format!("{:016x}", report.fingerprint))
            .field("timed_seconds", report.timed_seconds)
            .field("items_per_sec", report.throughput)
            .raw("sharded", sharded);
        record.write(path).expect("write serve_shard json");
        println!("  wrote {path}");
    }
    println!(
        "\nshard bench OK: {} tenants over {shards} shard(s), bit-exact, warm rate {:.0}%.",
        plan.tenants(),
        report.warm_hit_rate * 100.0,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = xbench::smoke_mode();
    let trace_path = xbench::init_trace();
    let check = args.iter().any(|a| a == "--check");
    let verify_mode = args.iter().any(|a| a == "--verify");
    let only_queue = args.iter().any(|a| a == "--queue");
    let only_compact = args.iter().any(|a| a == "--compact");
    let selected = only_queue || only_compact;
    // `--verify` gates every mutating operation; `--check` additionally
    // re-proves each wave's final state so ledger drift fails the gate.
    let audit = verify_mode || check;

    let json = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json needs a path").clone());

    // `--shards N` selects the sharded-tier bench and nothing else: it is
    // its own serving model (N runtimes behind a router) and CI runs it
    // as a separate matrix job.
    if let Some(i) = args.iter().position(|a| a == "--shards") {
        let shards: usize = args
            .get(i + 1)
            .expect("--shards needs a count")
            .parse()
            .expect("--shards takes an integer");
        assert!(shards >= 1, "--shards needs at least one shard");
        let workers = args.iter().position(|a| a == "--workers").map(|i| {
            args.get(i + 1)
                .expect("--workers needs a count")
                .parse()
                .expect("--workers takes an integer")
        });
        shard_bench(shards, workers, smoke, verify_mode, json.as_deref());
        xbench::finish_trace(trace_path.as_deref());
        return;
    }

    if check || !selected {
        soak(smoke, verify_mode, audit, json.as_deref());
    }
    if check || !selected || only_queue {
        queue_wave(verify_mode, audit);
    }
    if check || !selected || only_compact {
        compact_wave(verify_mode, audit);
    }
    if check || !selected {
        cache_wave(verify_mode, audit);
    }
    if check {
        println!(
            "\nCHECK OK: soak + queue + compaction + cache waves asserted green, \
             scheduler invariants re-proven per wave."
        );
    }
    xbench::finish_trace(trace_path.as_deref());
}
