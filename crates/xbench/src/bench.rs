//! Shared schema for the machine-readable `BENCH_*.json` records.
//!
//! Every driver that writes a benchmark record builds it through
//! [`BenchRecord`], so all records carry the same provenance header:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "bench": "serve_soak",
//!   "provenance": {"git_rev": "…", "host": "…", "profile": "release", "threads": 8},
//!   …driver fields…
//! }
//! ```
//!
//! `bench_diff` (the CI regression gate) relies on this shape: it keys
//! on `schema_version` + `bench`, skips the `provenance` subtree, and
//! compares the remaining numeric leaves against a committed baseline.

use std::io;
use std::path::Path;

/// Version of the record envelope. Bump when the provenance header or
/// the envelope shape changes; `bench_diff` refuses to compare records
/// of different versions.
pub const SCHEMA_VERSION: u64 = 1;

/// One field value in a benchmark record.
pub enum Field {
    U64(u64),
    F64(f64),
    Bool(bool),
    Str(String),
    /// Pre-rendered JSON spliced in verbatim — for nested objects and
    /// arrays the driver formats itself (flows, sweeps, latency blocks).
    Raw(String),
}

impl From<u64> for Field {
    fn from(v: u64) -> Self {
        Field::U64(v)
    }
}
impl From<usize> for Field {
    fn from(v: usize) -> Self {
        Field::U64(v as u64)
    }
}
impl From<f64> for Field {
    fn from(v: f64) -> Self {
        Field::F64(v)
    }
}
impl From<bool> for Field {
    fn from(v: bool) -> Self {
        Field::Bool(v)
    }
}
impl From<&str> for Field {
    fn from(v: &str) -> Self {
        Field::Str(v.to_string())
    }
}
impl From<String> for Field {
    fn from(v: String) -> Self {
        Field::Str(v)
    }
}

/// A provenance-stamped benchmark record under construction. Fields
/// render in insertion order after the envelope header.
pub struct BenchRecord {
    bench: String,
    fields: Vec<(String, Field)>,
}

impl BenchRecord {
    pub fn new(bench: &str) -> Self {
        BenchRecord { bench: bench.to_string(), fields: Vec::new() }
    }

    /// Appends one field (chainable).
    pub fn field(mut self, name: &str, value: impl Into<Field>) -> Self {
        self.fields.push((name.to_string(), value.into()));
        self
    }

    /// Appends a pre-rendered JSON subtree (chainable).
    pub fn raw(mut self, name: &str, json: impl Into<String>) -> Self {
        self.fields.push((name.to_string(), Field::Raw(json.into())));
        self
    }

    /// Renders the record, envelope first.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
        s.push_str(&format!("  \"bench\": \"{}\",\n", escape(&self.bench)));
        s.push_str(&format!(
            "  \"provenance\": {{\"git_rev\": \"{}\", \"host\": \"{}\", \"profile\": \"{}\", \"threads\": {}}}",
            escape(&git_rev()),
            escape(&hostname()),
            profile(),
            threads(),
        ));
        for (name, value) in &self.fields {
            s.push_str(",\n");
            s.push_str(&format!("  \"{}\": {}", escape(name), render(value)));
        }
        s.push_str("\n}\n");
        s
    }

    /// Writes the record, creating parent directories.
    pub fn write(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json())
    }
}

fn render(f: &Field) -> String {
    match f {
        Field::U64(v) => v.to_string(),
        Field::F64(v) if v.is_finite() => format!("{v:.6}"),
        Field::F64(_) => "null".to_string(),
        Field::Bool(v) => v.to_string(),
        Field::Str(v) => format!("\"{}\"", escape(v)),
        Field::Raw(v) => v.clone(),
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Short git revision: `GITHUB_SHA` when CI provides it, else the
/// working tree's `git rev-parse`, else `"unknown"` (no git, no repo).
fn git_rev() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if sha.len() >= 7 {
            return sha[..7].to_string();
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn hostname() -> String {
    std::env::var("HOSTNAME")
        .ok()
        .or_else(|| {
            std::fs::read_to_string("/etc/hostname").ok().map(|s| s.trim().to_string())
        })
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn profile() -> &'static str {
    if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    }
}

fn threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Renders one histogram's latency quantiles as a JSON object — the
/// block `serve --json` emits per wave.
pub fn latency_json(s: &trace::HistogramSnapshot) -> String {
    format!(
        "{{\"count\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
        s.count,
        s.p50(),
        s.p95(),
        s.p99(),
        s.max
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_envelope_parses_and_carries_provenance() {
        let rec = BenchRecord::new("demo")
            .field("items", 42u64)
            .field("rate", 0.5)
            .field("ok", true)
            .field("label", "a\"b")
            .raw("nested", "{\"x\": 1}");
        let json = rec.to_json();
        let v = trace::json::parse(&json).expect("record must be valid JSON");
        assert_eq!(v.get("schema_version").and_then(|s| s.as_f64()), Some(SCHEMA_VERSION as f64));
        assert_eq!(v.get("bench").and_then(|s| s.as_str()), Some("demo"));
        let prov = v.get("provenance").expect("provenance header");
        for key in ["git_rev", "host", "profile", "threads"] {
            assert!(prov.get(key).is_some(), "provenance must carry {key}");
        }
        assert_eq!(v.get("items").and_then(|s| s.as_f64()), Some(42.0));
        assert_eq!(v.get("label").and_then(|s| s.as_str()), Some("a\"b"));
        assert_eq!(
            v.get("nested").and_then(|n| n.get("x")).and_then(|x| x.as_f64()),
            Some(1.0)
        );
    }
}
