//! Benchmark harness: regenerates every table and figure of the paper.
//!
//! Binaries (run with `cargo run -p xbench --release --bin <name>`):
//!
//! | binary        | artefact reproduced                                    |
//! |---------------|--------------------------------------------------------|
//! | `table1`      | Table I — PE resource utilization and PaR results      |
//! | `table2`      | Table II — 4×4 VCGRA grid resources                    |
//! | `reconfig`    | §V reconfiguration-overhead estimate (251 ms per PE)   |
//! | `compile_time`| §II compile-time claim (VCGRA flow vs gate-level flow) |
//! | `figures`     | Figs. 1/4 (DOT renders), Fig. 5 (pipeline stage PGMs)  |
//! | `ablations`   | design-choice sweeps (hops, cut budget, precision)     |
//! | `serve`       | `vcgra-runtime` mixed-tenant soak + throughput table   |
//! | `verify`      | `vcgra-verify` invariant sweep over every artifact kind|
//! | `bench_diff`  | CI regression gate over `BENCH_*.json` records         |
//!
//! `serve --shards N [--workers W]` switches to the **sharded serving
//! tier** (`vcgra-shard`): a seeded load plan over N cache-affine
//! shards, bit-exactness cross-checked against a single-runtime run of
//! the same plan, per-shard + aggregate latency quantiles in the JSON
//! record (`BENCH_serve_shard.json`).
//!
//! `figures`, `reconfig`, `compile_time`, `ablations`, `serve` and
//! `verify` accept `--smoke` (reduced formats/grids/volumes) so CI can
//! run all of them end-to-end in seconds. `table1` and `serve` also take
//! `--verify`, which re-proves their artifacts through `vcgra-verify`
//! and reports the audit overhead alongside the benchmark figures.
//!
//! Criterion micro-benchmarks live in `benches/` (SCG throughput, router,
//! mapper, FloPoCo arithmetic, filter kernels).

#![forbid(unsafe_code)]
#![deny(clippy::dbg_macro, clippy::todo)]

pub mod bench;

use logic::aig::Aig;
use mapping::{MapOptions, MappedDesign};
use softfloat::FpFormat;
use vcgra::{VirtualPe, VirtualPeConfig};

/// True when `--smoke` appears on the command line.
pub fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--smoke")
}

/// Parses `--trace <path>` and, when present, arms the global span
/// recorder. Every driver calls this first thing in `main`, so
/// instrumentation across the whole compile + serve stack records into
/// one timeline. Pair with [`finish_trace`] before exit.
pub fn init_trace() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let path = args
        .iter()
        .position(|a| a == "--trace")
        .map(|i| args.get(i + 1).expect("--trace needs a path").clone());
    if path.is_some() {
        trace::configure(trace::TraceConfig::On);
    }
    path
}

/// Drains the recorder into a Chrome trace-event JSON file (load it at
/// `ui.perfetto.dev` or `chrome://tracing`). No-op when [`init_trace`]
/// found no `--trace` flag.
pub fn finish_trace(path: Option<&str>) {
    if let Some(path) = path {
        let events = trace::write_chrome_trace(path).expect("write trace file");
        println!("wrote {path} ({events} trace events)");
    }
}

/// A compact row printer for paper-vs-measured tables.
pub fn print_row(label: &str, paper: &str, measured: &str) {
    println!("  {label:<34} {paper:>16} {measured:>18}");
}

/// Header for paper-vs-measured tables.
pub fn print_header(title: &str) {
    println!("\n=== {title} ===");
    print_row("quantity", "paper", "measured");
    println!("  {}", "-".repeat(70));
}

/// Builds the paper's PE netlist (virtual PE, FloPoCo (6,26)) for one flow.
pub fn build_pe_aig(parameterized: bool) -> Aig {
    build_pe_aig_with(FpFormat::PAPER, parameterized)
}

/// Builds the PE netlist in an arbitrary format — the smoke modes use a
/// reduced format whose trends match the paper-scale PE at a fraction of
/// the mapping cost.
pub fn build_pe_aig_with(format: FpFormat, parameterized: bool) -> Aig {
    let pe = VirtualPe::build(VirtualPeConfig { format, hops: 2 }, parameterized);
    logic::opt::sweep(&pe.aig)
}

/// Maps the PE with the flow matching its annotation.
pub fn map_pe(aig: &Aig, parameterized: bool) -> MappedDesign {
    if parameterized {
        mapping::map_parameterized(aig, MapOptions::default())
    } else {
        mapping::map_conventional(aig, MapOptions::default())
    }
}

/// Percentage reduction helper.
pub fn reduction(before: usize, after: usize) -> f64 {
    if before == 0 {
        0.0
    } else {
        100.0 * (1.0 - after as f64 / before as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_math() {
        assert!((reduction(100, 70) - 30.0).abs() < 1e-9);
        assert_eq!(reduction(0, 10), 0.0);
    }

    #[test]
    fn pe_builders_differ_only_in_annotation() {
        let conv = build_pe_aig(false);
        let par = build_pe_aig(true);
        assert_eq!(conv.num_inputs(), par.num_inputs());
        assert!(par.num_inputs_of(logic::aig::InputKind::Param) > 0);
        assert_eq!(conv.num_inputs_of(logic::aig::InputKind::Param), 0);
    }
}
