//! Criterion micro-benchmarks of the CAD flows: technology mapping,
//! SCG specialization throughput, placement and routing on a mid-size
//! parameterized design.

use criterion::{criterion_group, criterion_main, Criterion};
use logic::aig::{Aig, InputKind};
use mapping::{map_conventional, map_parameterized, MapOptions};
use softfloat::gen::build_mac_pe;
use softfloat::FpFormat;
use std::hint::black_box;

/// Mid-size MAC (5,8): large enough to be representative, small enough to
/// iterate in a bench.
fn mac_aig() -> Aig {
    logic::opt::sweep(&build_mac_pe(FpFormat::new(5, 8), InputKind::Param))
}

fn bench_mapping(c: &mut Criterion) {
    let aig = mac_aig();
    let mut g = c.benchmark_group("mapping");
    g.sample_size(10);
    g.bench_function("conventional_mac_5_8", |b| {
        b.iter(|| black_box(map_conventional(&aig, MapOptions::default())))
    });
    g.bench_function("parameterized_mac_5_8", |b| {
        b.iter(|| black_box(map_parameterized(&aig, MapOptions::default())))
    });
    g.finish();
}

fn bench_scg(c: &mut Criterion) {
    let aig = mac_aig();
    let design = map_parameterized(&aig, MapOptions::default());
    let cfg = dcs::ParamConfig::extract(&design);
    let scg = dcs::Scg::new(&design, &cfg);
    let n = design.param_names.len();
    let mut rng = logic::SplitMix64::new(1);
    let params: Vec<Vec<bool>> = (0..64)
        .map(|_| (0..n).map(|_| rng.coin()).collect())
        .collect();
    let mut i = 0;
    c.bench_function("scg_specialize_mac_5_8", |b| {
        b.iter(|| {
            i = (i + 1) % params.len();
            black_box(scg.specialize(&params[i]))
        })
    });
}

fn bench_par(c: &mut Criterion) {
    let aig = mac_aig();
    let design = map_parameterized(&aig, MapOptions::default());
    let netlist = par::extract(&design);
    let arch = fabric::FabricArch::sized_for(netlist.logic_count(), netlist.io_count());
    let mut g = c.benchmark_group("par");
    g.sample_size(10);
    g.bench_function("tplace_mac_5_8", |b| {
        b.iter(|| black_box(par::place(&netlist, arch, 7)))
    });
    let placement = par::place(&netlist, arch, 7);
    let graph = fabric::RouteGraph::build(arch, 14);
    g.bench_function("troute_mac_5_8_w14", |b| {
        b.iter(|| {
            black_box(
                par::route(&netlist, &placement, &graph, par::RouteOptions::default())
                    .expect("routable"),
            )
        })
    });
    // The engine's full width search (warm-started binary probes); the
    // printed router stats come from the probe log it returns.
    let engine = par::ParEngine::new(par::EngineOptions::default());
    g.bench_function("engine_min_width_mac_5_8", |b| {
        b.iter(|| {
            let s = engine
                .min_channel_width(&netlist, &placement, arch)
                .expect("routable");
            black_box((s.min_width, s.result.wirelength, s.probes.len()))
        })
    });
    g.finish();
}

fn bench_vcgra_flow(c: &mut Criterion) {
    let app = vcgra::app::AppGraph::dot_product(
        FpFormat::PAPER,
        &[0.0625, 0.25, 0.375, 0.25, 0.0625],
    );
    let arch = vcgra::VcgraArch::paper_4x4();
    c.bench_function("vcgra_flow_5tap_4x4", |b| {
        b.iter(|| black_box(vcgra::flow::map_app(&app, arch, 42).expect("fits")))
    });
}

criterion_group!(benches, bench_mapping, bench_scg, bench_par, bench_vcgra_flow);
criterion_main!(benches);
