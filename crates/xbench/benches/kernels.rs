//! Criterion micro-benchmarks of the arithmetic and the application
//! kernels: FloPoCo operations, the two convolution engines, and one
//! pipeline stage.

use criterion::{criterion_group, criterion_main, Criterion};
use retina::filters::{convolve_f32, convolve_vcgra, gaussian, matched_filter};
use retina::synth::{synth_fundus, SynthConfig};
use softfloat::{FpFormat, FpValue};
use std::hint::black_box;

fn bench_softfloat(c: &mut Criterion) {
    let fmt = FpFormat::PAPER;
    let mut rng = logic::SplitMix64::new(3);
    let vals: Vec<(FpValue, FpValue, FpValue)> = (0..256)
        .map(|_| {
            let f = |rng: &mut logic::SplitMix64| {
                FpValue::from_f64((rng.unit_f64() - 0.5) * 100.0, fmt)
            };
            (f(&mut rng), f(&mut rng), f(&mut rng))
        })
        .collect();
    let mut i = 0;
    c.bench_function("flopoco_mac_6_26", |b| {
        b.iter(|| {
            i = (i + 1) & 255;
            let (x, c_, a) = vals[i];
            black_box(x.mac(c_, a))
        })
    });
    c.bench_function("flopoco_add_6_26", |b| {
        b.iter(|| {
            i = (i + 1) & 255;
            let (x, y, _) = vals[i];
            black_box(x.add(y))
        })
    });
}

fn bench_convolution(c: &mut Criterion) {
    let (img, _) = synth_fundus(&SynthConfig { size: 64, ..Default::default() }, 5);
    let k = gaussian(5, 1.25);
    let mut g = c.benchmark_group("convolution_64x64_5x5");
    g.sample_size(10);
    g.bench_function("f32_reference", |b| {
        b.iter(|| black_box(convolve_f32(&img.g, &k)))
    });
    g.bench_function("vcgra_flopoco", |b| {
        b.iter(|| black_box(convolve_vcgra(&img.g, &k, FpFormat::PAPER)))
    });
    g.finish();
}

fn bench_matched_stage(c: &mut Criterion) {
    let (img, _) = synth_fundus(&SynthConfig { size: 64, ..Default::default() }, 6);
    let k = matched_filter(16, 1.6, 9.0, 0.6);
    let mut g = c.benchmark_group("matched_filter_64x64_16x16");
    g.sample_size(10);
    g.bench_function("f32_reference", |b| {
        b.iter(|| black_box(convolve_f32(&img.g, &k)))
    });
    g.finish();
}

fn bench_gate_sim(c: &mut Criterion) {
    // 64-way bit-parallel simulation of the (6,26) MAC netlist: the
    // workhorse behind every equivalence check.
    let aig = softfloat::gen::build_mac_pe(FpFormat::PAPER, logic::aig::InputKind::Param);
    let words: Vec<u64> = (0..aig.num_inputs() as u64)
        .map(|i| i.wrapping_mul(0x9E37))
        .collect();
    c.bench_function("aig_sim64_mac_6_26", |b| {
        b.iter(|| black_box(logic::sim::simulate_u64(&aig, &words)))
    });
}

criterion_group!(
    benches,
    bench_softfloat,
    bench_convolution,
    bench_matched_stage,
    bench_gate_sim
);
criterion_main!(benches);
