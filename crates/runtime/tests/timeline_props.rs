//! Property suite for the modeled time axis.
//!
//! Two layers:
//!
//! * **pure timeline** — random phase schedules (with relocations)
//!   straight into [`Timeline`], asserting after every step the bounds
//!   that make the makespan *honest*:
//!   `max(per-lane busy) <= makespan <= serialized`, `makespan >=
//!   port_busy`, `overlap_saved` monotone, and — on execute-free
//!   schedules — `makespan <= charged`, the ISSUE's literal
//!   "never exceeds summed port time" bound (execute intervals can
//!   legitimately push a lane's later port phase past the flat port sum,
//!   which is why the general bound is `serialized`, not `charged`);
//! * **runtime-driven** — random admission / parameter-swap / release /
//!   compaction / run sequences through the real [`Runtime`], asserting
//!   the same bounds on the live axis plus a clean timeline verify pass
//!   and exact ledger reconciliation after every operation.
//!
//! The proptest stand-in draws inputs from a per-test deterministic
//! stream, so failures reproduce bit-for-bit.

use std::time::Duration;

use proptest::prelude::*;
use runtime::timeline::{Phase, Timeline};
use runtime::{kernels, Admission, Runtime, RuntimeConfig, StreamRequest, TenantId};
use softfloat::{FpFormat, FpValue};
use vcgra::VcgraArch;

const F: FpFormat = FpFormat::PAPER;

/// Decodes a draw into a phase; `allow_exec` gates [`Phase::Execute`]
/// out of execute-free schedules.
fn phase_of(kind: u8, allow_exec: bool) -> Phase {
    match kind % if allow_exec { 5 } else { 4 } {
        0 => Phase::Admission,
        1 => Phase::Swap,
        2 => Phase::Switch,
        3 => Phase::Replay,
        _ => Phase::Execute,
    }
}

/// Asserts every bound the axis promises, given the busiest lane.
fn assert_bounds(tl: &Timeline, ctx: &str) {
    let max_lane = tl.lane_busy().into_values().max().unwrap_or(Duration::ZERO);
    assert!(
        tl.makespan() >= max_lane,
        "{ctx}: makespan {:?} < busiest lane {:?}",
        tl.makespan(),
        max_lane
    );
    assert!(
        tl.makespan() >= tl.port_busy(),
        "{ctx}: makespan {:?} < port busy {:?} (the port is a single resource)",
        tl.makespan(),
        tl.port_busy()
    );
    assert!(
        tl.makespan() <= tl.serialized(),
        "{ctx}: makespan {:?} > serialized {:?} (overlap can only save time)",
        tl.makespan(),
        tl.serialized()
    );
    let summed: Duration = tl.intervals().iter().filter(|iv| iv.phase.charged()).map(|iv| iv.dur).sum();
    assert_eq!(tl.charged(), summed, "{ctx}: running charged sum drifted from the interval log");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    // Execute-free random schedules: everything on the axis is charged,
    // so the makespan can never exceed the flat summed port time.
    #[test]
    fn reconfig_only_makespan_never_exceeds_summed_port_time(
        ops in prop::collection::vec((any::<u8>(), any::<u8>(), 1u64..40), 1..80),
    ) {
        let mut tl = Timeline::new();
        let mut prev_saved = Duration::ZERO;
        for (kind, lane_draw, ms) in ops {
            let lane = ((lane_draw % 3) as usize, ((lane_draw / 3) % 4) as usize * 4);
            if kind % 16 == 15 {
                let to = ((lane_draw % 3) as usize, ((lane_draw / 7) % 4) as usize * 4);
                tl.relocate(lane, to, None, Duration::from_millis(ms));
            } else {
                tl.schedule(lane, phase_of(kind, false), None, Duration::from_millis(ms));
            }
            assert_bounds(&tl, "reconfig-only");
            prop_assert!(
                tl.makespan() <= tl.charged(),
                "execute-free: makespan {:?} must not exceed summed port time {:?}",
                tl.makespan(),
                tl.charged()
            );
            prop_assert!(tl.overlap_saved() >= prev_saved, "overlap_saved must be monotone");
            prev_saved = tl.overlap_saved();
        }
    }

    // Mixed schedules with execution: the general sandwich
    // `max(lane busy) <= makespan <= charged + exec` holds throughout.
    #[test]
    fn mixed_schedules_keep_the_makespan_sandwich(
        ops in prop::collection::vec((any::<u8>(), any::<u8>(), 1u64..40), 1..80),
    ) {
        let mut tl = Timeline::new();
        let mut prev_saved = Duration::ZERO;
        for (kind, lane_draw, ms) in ops {
            let lane = ((lane_draw % 3) as usize, ((lane_draw / 3) % 4) as usize * 4);
            if kind % 16 == 15 {
                let to = ((lane_draw % 3) as usize, ((lane_draw / 7) % 4) as usize * 4);
                tl.relocate(lane, to, None, Duration::from_millis(ms));
            } else {
                tl.schedule(lane, phase_of(kind, true), None, Duration::from_millis(ms));
            }
            assert_bounds(&tl, "mixed");
            prop_assert!(tl.overlap_saved() >= prev_saved, "overlap_saved must be monotone");
            prev_saved = tl.overlap_saved();
        }
    }

    // The real runtime under random admission / swap / release /
    // compaction / run churn: after every operation the live axis obeys
    // the bounds, the ledger mirrors it exactly, and the verify pass
    // finds zero violations.
    #[test]
    fn runtime_churn_keeps_an_honest_reconcilable_axis(
        ops in prop::collection::vec((any::<u8>(), 1u64..400), 1..24),
    ) {
        let mut rt = Runtime::new(RuntimeConfig {
            grids: vec![VcgraArch::new(6, 4, 2), VcgraArch::new(4, 4, 2)],
            ..RuntimeConfig::default()
        });
        let mut live: Vec<TenantId> = Vec::new();
        let mut ran = false;
        for (i, (kind, seed)) in ops.into_iter().enumerate() {
            match kind % 6 {
                // Admit a small seeded FIR (may queue or time-share).
                0 | 1 => {
                    let taps = 2 + (seed % 5) as usize;
                    let adm = rt.submit(format!("t{i}"), kernels::fir_seeded(F, taps, seed).graph)
                        .expect("submit");
                    if let Admission::Admitted(a) = adm {
                        live.push(a.tenant);
                    }
                }
                // Parameter swap on a pseudo-random live tenant.
                2 => {
                    if let Some(&t) = live.get(seed as usize % live.len().max(1)) {
                        let n = rt.tenant(t).expect("live").graph.coeff_nodes().len();
                        let coeffs: Vec<FpValue> = (0..n)
                            .map(|j| FpValue::from_f64((seed as f64 + j as f64) * 0.25, F))
                            .collect();
                        rt.swap_params(t, &coeffs).expect("swap");
                    }
                }
                // Release (drains the queue, may relocate bands).
                3 => {
                    if !live.is_empty() {
                        let t = live.remove(seed as usize % live.len());
                        for adm in rt.release(t).expect("release") {
                            live.push(adm.tenant);
                        }
                    }
                }
                // Background compaction into idle port windows.
                4 => {
                    rt.compact_background().expect("compact");
                }
                // Stream a few vectors (adds Execute/Switch intervals).
                _ => {
                    if let Some(&t) = live.get(seed as usize % live.len().max(1)) {
                        let n = rt.tenant(t).expect("live").graph.num_inputs;
                        let inputs: Vec<Vec<FpValue>> = (0..3)
                            .map(|v| {
                                (0..n)
                                    .map(|j| FpValue::from_f64((v + j) as f64 * 0.5, F))
                                    .collect()
                            })
                            .collect();
                        rt.run(vec![StreamRequest { tenant: t, inputs }]).expect("run");
                        ran = true;
                    }
                }
            }
            assert_bounds(rt.timeline(), "runtime churn");
            if !ran {
                // Until the first execution the axis is execute-free, so
                // the ISSUE's literal bound applies: modeled makespan
                // never exceeds the flat summed port time.
                prop_assert!(
                    rt.ledger().modeled_makespan <= rt.ledger().total_port_time(),
                    "exec-free prefix: makespan {:?} > summed port time {:?}",
                    rt.ledger().modeled_makespan,
                    rt.ledger().total_port_time()
                );
            }
            prop_assert_eq!(
                rt.ledger().modeled_makespan,
                rt.timeline().makespan(),
                "ledger gauge must mirror the axis"
            );
            prop_assert_eq!(
                rt.timeline().charged(),
                rt.ledger().total_port_time(),
                "charged axis time must reconcile with the flat port sum"
            );
            let report = rt.verify_timeline();
            prop_assert!(report.violations.is_empty(), "timeline pass: {:?}", report.violations);
        }
    }
}
