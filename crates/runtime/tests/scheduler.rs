//! Scheduler acceptance tests: admission queue FIFO discipline, band
//! compaction (including the 13-row tenant first-fit refuses), cache-aware
//! placement on a mixed-width pool, and a seeded multi-tenant churn soak —
//! everything asserted, nothing just printed.

use std::collections::VecDeque;

use runtime::kernels;
use runtime::{Admission, Runtime, RuntimeConfig, RuntimeError, StreamRequest, TenantId};
use softfloat::{FpFormat, FpValue};
use vcgra::sim::run_dataflow;
use vcgra::VcgraArch;

const F: FpFormat = FpFormat::PAPER;

fn fp(x: f64) -> FpValue {
    FpValue::from_f64(x, F)
}

fn stream(n: usize, items: usize, salt: u64) -> Vec<Vec<FpValue>> {
    let mut rng = logic::SplitMix64::new(0xFEED ^ salt);
    (0..items)
        .map(|_| (0..n).map(|_| fp((rng.unit_f64() - 0.5) * 8.0)).collect())
        .collect()
}

/// Streams `items` inputs through one tenant and asserts bit-exactness
/// against `run_dataflow` on the tenant's current graph.
fn assert_bit_exact(rt: &mut Runtime, tenant: TenantId, items: usize, salt: u64) {
    let graph = rt.tenant(tenant).unwrap().graph.clone();
    let ins = stream(graph.num_inputs, items, salt);
    let runs = rt
        .run(vec![StreamRequest { tenant, inputs: ins.clone() }])
        .expect("stream");
    for (input, out) in ins.iter().zip(&runs[0].outputs) {
        let want = run_dataflow(&graph, input);
        assert_eq!(
            out.iter().map(|v| v.bits).collect::<Vec<_>>(),
            want.iter().map(|v| v.bits).collect::<Vec<_>>(),
            "tenant {tenant} must stay bit-exact"
        );
    }
}

#[test]
fn queue_drains_in_fifo_order_on_release() {
    // One 6x4 grid. A 6-row blocker fills it; everything after queues.
    let cfg = RuntimeConfig {
        grids: vec![VcgraArch::new(6, 4, 2)],
        time_share: false,
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(cfg);
    let blocker = rt
        .submit("blocker", kernels::fir_seeded(F, 12, 1).graph) // 23 nodes → 6 rows
        .unwrap()
        .expect_admitted("empty pool");

    // Three 2-row tenants queue up in submission order.
    let mut queued = Vec::new();
    for (i, seed) in [2u64, 3, 4].iter().enumerate() {
        match rt.submit(format!("q{i}"), kernels::fir_seeded(F, 3, *seed).graph).unwrap() {
            Admission::Queued(q) => {
                assert_eq!(q.position, i, "positions count up from the head");
                queued.push(q.tenant);
            }
            Admission::Admitted(_) => panic!("pool is full, q{i} must queue"),
        }
    }
    assert_eq!(rt.queue_len(), 3);
    assert_eq!(rt.queued_tenants(), queued);
    assert_eq!(rt.ledger().queued, 3);

    // Releasing the blocker admits all three, strictly in FIFO order,
    // packed from row 0.
    let drained = rt.release(blocker.tenant).unwrap();
    assert_eq!(
        drained.iter().map(|a| a.tenant).collect::<Vec<_>>(),
        queued,
        "drain must follow submission order"
    );
    for (i, adm) in drained.iter().enumerate() {
        assert_eq!(adm.lease.row0, i * 2, "FIFO drain packs first-fit");
    }
    assert_eq!(rt.queue_len(), 0);
    assert_eq!(rt.ledger().queue_admitted, 3);
    for &t in &queued {
        assert_bit_exact(&mut rt, t, 6, t);
    }
}

#[test]
fn late_submissions_never_jump_the_queue_head() {
    let cfg = RuntimeConfig {
        grids: vec![VcgraArch::new(6, 4, 2)],
        time_share: false,
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(cfg);
    let blocker = rt
        .submit("blocker", kernels::fir_seeded(F, 12, 1).graph)
        .unwrap()
        .expect_admitted("empty pool");
    // Head of queue: another 6-row tenant. Behind it: a 2-row one.
    let big = rt.submit("big", kernels::fir_seeded(F, 12, 9).graph).unwrap();
    assert!(big.is_queued());
    let small = rt.submit("small", kernels::fir_seeded(F, 3, 5).graph).unwrap();
    assert!(small.is_queued(), "while the queue is non-empty, everyone joins it");

    // Releasing the blocker admits only the big head; the small tenant
    // must not overtake it even though it would have fit beside nothing.
    let drained = rt.release(blocker.tenant).unwrap();
    assert_eq!(drained.len(), 1);
    assert_eq!(drained[0].tenant, big.tenant());
    assert_eq!(rt.queued_tenants(), vec![small.tenant()]);

    // Now the big one leaves; the small head drains.
    let drained = rt.release(big.tenant()).unwrap();
    assert_eq!(drained.len(), 1);
    assert_eq!(drained[0].tenant, small.tenant());
    assert_eq!(rt.queue_len(), 0);
}

#[test]
fn queued_tenants_cannot_run_and_can_cancel() {
    let cfg = RuntimeConfig {
        grids: vec![VcgraArch::new(6, 4, 2)],
        time_share: false,
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(cfg);
    rt.submit("blocker", kernels::fir_seeded(F, 12, 1).graph).unwrap().expect_admitted("fits");
    let q = rt.submit("waiter", kernels::fir_seeded(F, 3, 2).graph).unwrap();
    assert!(q.is_queued());
    let id = q.tenant();

    // Operations on a queued tenant say "waiting", not "unknown".
    assert_eq!(
        rt.swap_params(id, &[fp(1.0); 3]).unwrap_err(),
        RuntimeError::Waiting(id)
    );
    assert_eq!(
        rt.run(vec![StreamRequest { tenant: id, inputs: stream(5, 1, 0) }]).unwrap_err(),
        RuntimeError::Waiting(id)
    );
    // Cancelling a queued admission frees nothing but empties the queue.
    assert!(rt.release(id).unwrap().is_empty());
    assert_eq!(rt.queue_len(), 0);
    assert_eq!(rt.release(id).unwrap_err(), RuntimeError::UnknownTenant(id));
}

#[test]
fn cancelling_the_queue_head_unblocks_the_tenants_behind_it() {
    let cfg = RuntimeConfig {
        grids: vec![VcgraArch::new(6, 4, 2)],
        time_share: false,
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(cfg);
    // Two free rows left; the 6-row head blocks a 2-row follower that
    // would fit right now.
    rt.submit("resident", kernels::fir_seeded(F, 7, 1).graph) // 13 nodes → 4 rows
        .unwrap()
        .expect_admitted("fits");
    let head = rt.submit("head", kernels::fir_seeded(F, 12, 2).graph).unwrap();
    assert!(head.is_queued());
    let follower = rt.submit("follower", kernels::fir_seeded(F, 3, 3).graph).unwrap();
    assert!(follower.is_queued());

    // Cancelling the blocked head must drain the follower immediately —
    // not leave it parked while two rows sit idle.
    let drained = rt.release(head.tenant()).unwrap();
    assert_eq!(drained.len(), 1);
    assert_eq!(drained[0].tenant, follower.tenant());
    assert_eq!(rt.queue_len(), 0);
}

#[test]
fn impossible_demands_are_rejected_synchronously_even_behind_a_queue() {
    let cfg = RuntimeConfig {
        grids: vec![VcgraArch::new(6, 4, 2)],
        time_share: false,
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(cfg);
    rt.submit("blocker", kernels::fir_seeded(F, 12, 1).graph).unwrap().expect_admitted("fits");
    let waiter = rt.submit("waiter", kernels::fir_seeded(F, 3, 2).graph).unwrap();
    assert!(waiter.is_queued());

    // 49 nodes need 13 rows — no grid of the pool could ever host that.
    // It must fail now, identically to the empty-queue case, instead of
    // queueing and being dropped silently at the next drain.
    let too_big = kernels::fir_seeded(F, 25, 3).graph;
    assert!(matches!(
        rt.submit("impossible", too_big.clone()).unwrap_err(),
        RuntimeError::Pool(runtime::PoolError::TooBig { .. })
    ));
    // Same for a queued tenant trying to swap to an impossible graph.
    assert!(matches!(
        rt.resubmit(waiter.tenant(), too_big).unwrap_err(),
        RuntimeError::Pool(runtime::PoolError::TooBig { .. })
    ));
    assert_eq!(rt.queue_len(), 1, "the waiter keeps its slot");
    assert!(rt.queue_failures().is_empty());
}

/// The acceptance scenario: 13 free rows, fragmented 6+7, and a 13-row
/// tenant. First-fit (no compaction) refuses / queues; compaction slides
/// the 3-row survivor down and admits — and everything stays bit-exact,
/// including the relocated tenant.
#[test]
fn compaction_admits_13_row_tenant_where_first_fit_refused() {
    let grids = vec![VcgraArch::new(16, 2, 2)];
    let blocker = kernels::fir_seeded(F, 6, 11); // 11 nodes → 6 rows of 2
    let survivor = kernels::fir_seeded(F, 3, 12); // 5 nodes → 3 rows
    let big = kernels::fir_seeded(F, 13, 13); // 25 nodes → 13 rows

    // Without compaction (queue on): the big tenant can only wait.
    let cfg = RuntimeConfig { grids: grids.clone(), compact: false, ..RuntimeConfig::default() };
    let mut rt = Runtime::new(cfg);
    let b = rt.submit("blocker", blocker.graph.clone()).unwrap().expect_admitted("fits");
    rt.submit("survivor", survivor.graph.clone()).unwrap().expect_admitted("fits");
    rt.release(b.tenant).unwrap();
    assert!(
        rt.submit("big", big.graph.clone()).unwrap().is_queued(),
        "13 fragmented free rows, first fit must refuse the 13-row tenant"
    );

    // Same sequence with compaction: the request admits immediately.
    let cfg = RuntimeConfig { grids, ..RuntimeConfig::default() };
    let mut rt = Runtime::new(cfg);
    let b = rt.submit("blocker", blocker.graph.clone()).unwrap().expect_admitted("fits");
    let s = rt.submit("survivor", survivor.graph.clone()).unwrap().expect_admitted("fits");
    assert_eq!((s.lease.row0, s.lease.rows), (6, 3));
    rt.release(b.tenant).unwrap();

    let adm = rt.submit("big", big.graph.clone()).unwrap().expect_admitted("compaction");
    assert_eq!(adm.lease.rows, 13, "a 13-row dedicated band");
    assert_eq!(adm.relocations, 1, "one band slid down to make room");
    assert_eq!(adm.lease.row0, 3, "admitted right above the compacted band");

    // The survivor moved to row 0 and its lease epoch advanced.
    let survivor_tenant = rt.tenant(s.tenant).unwrap();
    assert_eq!(survivor_tenant.lease.row0, 0);
    assert_eq!(survivor_tenant.lease.epoch, 1, "relocation must bump the epoch");
    assert_eq!(survivor_tenant.stats.relocations, 1);
    let led = rt.ledger();
    assert_eq!((led.compactions, led.relocated_bands), (1, 1));
    assert!(
        led.compaction_port_time > std::time::Duration::ZERO,
        "the replay must be charged as reconfiguration time"
    );

    // Bit-exact across the relocation, for mover and newcomer alike; the
    // run reports the epoch the tenant executed at.
    assert_bit_exact(&mut rt, s.tenant, 8, 21);
    assert_bit_exact(&mut rt, adm.tenant, 8, 22);
    let ins = stream(3, 2, 33);
    let runs = rt.run(vec![StreamRequest { tenant: s.tenant, inputs: ins }]).unwrap();
    assert_eq!(runs[0].epoch, 1, "the run must carry the relocation epoch");

    // A parameter swap on the relocated tenant still lands on the right
    // (translated) settings frames.
    let rep = rt.swap_params(s.tenant, &[fp(0.5), fp(-0.25), fp(0.125)]).unwrap();
    assert!(rep.dirty_pes > 0);
    assert_bit_exact(&mut rt, s.tenant, 4, 34);
}

/// Cache-aware placement on a mixed-width pool: the same structure is
/// already compiled for the 5-wide grid; a naive first fit recompiles it
/// for the 4-wide grid, the cache-aware policy goes where the key is warm.
#[test]
fn cache_aware_placement_raises_warm_hit_rate_on_mixed_width_pool() {
    fn scenario(cache_aware: bool) -> (u64, u64, f64, Runtime, TenantId) {
        let cfg = RuntimeConfig {
            grids: vec![VcgraArch::new(6, 4, 2), VcgraArch::new(6, 5, 2)],
            cache_aware,
            ..RuntimeConfig::default()
        };
        let mut rt = Runtime::new(cfg);
        // Fill the 4-wide grid with a 6-row blocker.
        let blocker = rt
            .submit("blocker", kernels::matvec(F, &[
                vec![1.0, 0.5, 0.25, 0.125],
                vec![-1.0, 2.0, -0.5, 0.75],
                vec![0.5, 0.5, 0.5, 0.5],
            ]).graph)
            .unwrap()
            .expect_admitted("empty pool"); // 21 nodes → 6 rows of 4
        assert_eq!(blocker.lease.grid, 0);
        // The FIR lands on the 5-wide grid and compiles for width 5.
        let first = rt
            .submit("fir-a", kernels::fir_seeded(F, 5, 41).graph)
            .unwrap()
            .expect_admitted("grid 1 has room");
        assert_eq!(first.lease.grid, 1);
        assert!(!first.cache_hit);
        // Free the 4-wide grid: both widths are now feasible.
        rt.release(blocker.tenant).unwrap();
        // Same structure, new coefficients. First fit picks the 4-wide
        // grid (cold compile); cache-aware goes to the warm width.
        let second = rt
            .submit("fir-b", kernels::fir_seeded(F, 5, 42).graph)
            .unwrap()
            .expect_admitted("both grids have room");
        let stats = rt.cache_stats();
        (stats.hits, stats.misses, stats.hit_rate(), rt, second.tenant)
    }

    let (cold_hits, cold_misses, cold_rate, _, _) = scenario(false);
    let (warm_hits, warm_misses, warm_rate, mut rt, second) = scenario(true);
    assert_eq!(cold_hits, 0, "first fit recompiles the structure for the new width");
    assert_eq!(cold_misses, 3);
    assert_eq!(warm_hits, 1, "cache-aware placement finds the warm width");
    assert_eq!(warm_misses, 2);
    assert!(
        warm_rate > cold_rate,
        "warm-hit rate must strictly improve ({warm_rate:.2} vs {cold_rate:.2})"
    );
    assert_eq!(rt.tenant(second).unwrap().lease.grid, 1, "placed on the warm grid");
    // The warm-admitted tenant computes its own coefficients' results.
    assert_bit_exact(&mut rt, second, 8, 55);
}

/// Seeded multi-tenant churn through the queue: submissions, releases and
/// streams interleave for dozens of rounds. The model tracks the expected
/// FIFO queue; every drain must match it, every stream must stay
/// bit-exact, and the pool invariants must hold throughout.
#[test]
fn seeded_churn_soak_preserves_fifo_and_bit_exactness() {
    let cfg = RuntimeConfig {
        grids: vec![VcgraArch::new(8, 4, 2), VcgraArch::new(6, 5, 2)],
        time_share: false,
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(cfg);
    let mut rng = logic::SplitMix64::new(0x50AC);
    let mut live: Vec<TenantId> = Vec::new();
    let mut expected_queue: VecDeque<TenantId> = VecDeque::new();
    let mut admitted_order: Vec<TenantId> = Vec::new();
    let mut submitted_order: Vec<TenantId> = Vec::new();

    let note_drained = |drained: &[runtime::Admitted],
                           expected_queue: &mut VecDeque<TenantId>,
                           live: &mut Vec<TenantId>,
                           admitted_order: &mut Vec<TenantId>| {
        for adm in drained {
            let head = expected_queue.pop_front().expect("drain with empty model queue");
            assert_eq!(adm.tenant, head, "drain must pop the FIFO head");
            live.push(adm.tenant);
            admitted_order.push(adm.tenant);
        }
    };

    for round in 0..60u64 {
        match rng.below(4) {
            // Submit a random small kernel.
            0 | 1 => {
                let w = match rng.below(3) {
                    0 => kernels::fir_seeded(F, 3, 100 + round),  // 2 rows
                    1 => kernels::fir_seeded(F, 5, 200 + round),  // 3 rows (of 4)
                    _ => kernels::tree_reduction(F, 4), // 2 rows
                };
                let adm = rt.submit(format!("t{round}"), w.graph).unwrap();
                submitted_order.push(adm.tenant());
                match adm {
                    Admission::Admitted(a) => {
                        assert!(
                            expected_queue.is_empty(),
                            "nobody may be admitted past a waiting queue"
                        );
                        live.push(a.tenant);
                        admitted_order.push(a.tenant);
                    }
                    Admission::Queued(q) => {
                        expected_queue.push_back(q.tenant);
                    }
                }
            }
            // Release a pseudo-random live tenant; the drain must follow
            // the model's FIFO queue.
            2 => {
                if !live.is_empty() {
                    let victim = live.remove((rng.below(live.len() as u64)) as usize);
                    let drained = rt.release(victim).unwrap();
                    note_drained(&drained, &mut expected_queue, &mut live, &mut admitted_order);
                }
            }
            // Stream a batch through a pseudo-random live tenant,
            // bit-exact against run_dataflow.
            _ => {
                if !live.is_empty() {
                    let t = live[(rng.below(live.len() as u64)) as usize];
                    assert_bit_exact(&mut rt, t, 4, round);
                }
            }
        }
        assert_eq!(
            rt.queued_tenants(),
            expected_queue.iter().copied().collect::<Vec<_>>(),
            "round {round}: runtime queue must match the FIFO model"
        );
        assert!(rt.utilization() <= 1.0 + 1e-12);
    }

    // Drain everything at the end: release all live tenants.
    while let Some(victim) = live.pop() {
        let drained = rt.release(victim).unwrap();
        note_drained(&drained, &mut expected_queue, &mut live, &mut admitted_order);
    }
    assert!(rt.queue_failures().is_empty(), "no queued tenant may be dropped");
    // Global FIFO: the admission order is exactly the submission order
    // restricted to tenants that were ever admitted.
    let admitted_set: std::collections::BTreeSet<_> = admitted_order.iter().copied().collect();
    let expected: Vec<TenantId> = submitted_order
        .iter()
        .copied()
        .filter(|t| admitted_set.contains(t))
        .collect();
    assert_eq!(admitted_order, expected, "admissions must respect submission order");
    // The cache did its job across the churn: structures repeat, so warm
    // admissions must dominate cold compiles.
    let led = rt.ledger();
    assert!(led.warm_admissions > led.cold_compiles);
}
