//! Property-based scheduler invariant suite.
//!
//! Random allocate / release / compact sequences against a model of the
//! pool. After **every** operation the scheduler must uphold:
//!
//! * **no overlap** — no two bands share a row, and every band lies
//!   inside its grid;
//! * **no leaks** — every live tenant sits on exactly one band, released
//!   tenants are gone, and empty bands are reclaimed;
//! * **conservation** — leased rows + free rows == grid rows, always;
//! * **compaction completeness** — a request whose row demand fits the
//!   *total* free rows of some grid is always admitted (dedicated, not
//!   time-shared) when compaction is on: fragmentation alone can never
//!   refuse work;
//! * **honest relocation reports** — every `Relocation` the scheduler
//!   returns matches the band state after the move.
//!
//! The proptest stand-in draws inputs from a per-test deterministic
//! stream, so failures reproduce bit-for-bit.

use std::collections::BTreeSet;

use proptest::prelude::*;
use runtime::pool::{GridPool, PoolError};
use runtime::TenantId;
use vcgra::VcgraArch;

/// A mixed-width pool: the widths differ so `rows_needed` differs per
/// grid, which is what makes candidate selection and compaction
/// interesting.
fn pool() -> GridPool {
    GridPool::new(vec![
        VcgraArch::new(6, 4, 2),
        VcgraArch::new(4, 5, 2),
        VcgraArch::new(5, 4, 2),
    ])
}

/// Full invariant sweep: overlap, leaks, conservation.
fn check_invariants(p: &GridPool, live: &BTreeSet<TenantId>) {
    let archs = p.grid_archs();
    let bands = p.bands();
    for (gi, arch) in archs.iter().enumerate() {
        let mut taken = vec![false; arch.rows];
        let mut used = 0;
        for b in bands.iter().filter(|b| b.grid == gi) {
            assert!(b.rows >= 2, "bands are valid regions");
            assert!(b.row0 + b.rows <= arch.rows, "band inside its grid");
            for (r, slot) in taken.iter_mut().enumerate().take(b.row0 + b.rows).skip(b.row0) {
                assert!(!*slot, "bands must never overlap (grid {gi} row {r})");
                *slot = true;
            }
            used += b.rows;
            assert!(!b.tenants.is_empty(), "empty bands must be reclaimed");
        }
        assert_eq!(used + p.free_rows(gi), arch.rows, "row conservation on grid {gi}");
    }
    // Every live tenant exactly once, no ghost of a released tenant.
    let mut seen = BTreeSet::new();
    for b in &bands {
        for &t in &b.tenants {
            assert!(seen.insert(t), "tenant {t} leased twice");
            assert!(live.contains(&t), "released tenant {t} still holds rows");
        }
    }
    for &t in live {
        assert!(seen.contains(&t), "live tenant {t} lost its lease");
    }
}

/// True when some grid could host a dedicated band for `demand` once its
/// free rows are coalesced.
fn fits_after_compaction(p: &GridPool, demand: usize) -> bool {
    p.grid_archs().iter().enumerate().any(|(gi, a)| {
        let rows = GridPool::rows_needed(demand, a.cols);
        rows <= a.rows && rows <= p.free_rows(gi)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn random_allocate_release_compact_sequences_uphold_invariants(
        ops in prop::collection::vec((any::<u8>(), 1usize..30), 1..60),
    ) {
        let mut p = pool();
        let mut live: BTreeSet<TenantId> = BTreeSet::new();
        let mut next: TenantId = 0;
        for (kind, demand) in ops {
            match kind % 4 {
                // Plain first-fit / time-share allocation.
                0 | 1 => {
                    let id = next;
                    next += 1;
                    match p.allocate(id, demand) {
                        Ok(_) => { live.insert(id); }
                        Err(PoolError::TooBig { .. } | PoolError::Oversubscribed { .. }) => {}
                    }
                }
                // Compacting allocation: must succeed (dedicated) whenever
                // total free rows suffice somewhere, and its relocation
                // report must match the resulting band state.
                2 => {
                    let id = next;
                    next += 1;
                    let guaranteed = fits_after_compaction(&p, demand);
                    match p.allocate_with(id, demand, true, kind % 8 < 4) {
                        Ok((lease, relocs)) => {
                            live.insert(id);
                            if guaranteed {
                                prop_assert!(
                                    !lease.shared,
                                    "free rows sufficed: must be dedicated, not shared"
                                );
                            }
                            for r in &relocs {
                                prop_assert_eq!(
                                    p.band_tenants(r.grid, r.new_row0),
                                    r.tenants.clone(),
                                    "relocation report must match the moved band"
                                );
                                prop_assert!(r.new_row0 < r.old_row0, "compaction slides down");
                            }
                        }
                        Err(e) => {
                            prop_assert!(
                                !guaranteed,
                                "fragmentation-only refusal despite compaction: {e} \
                                 (demand {demand})"
                            );
                        }
                    }
                }
                // Release a pseudo-random live tenant.
                _ => {
                    if let Some(&t) = live.iter().nth(demand % live.len().max(1)) {
                        prop_assert!(p.release(t), "live tenant must release");
                        live.remove(&t);
                        prop_assert!(!p.release(t), "double release must be a no-op");
                    }
                }
            }
            check_invariants(&p, &live);
        }
    }

    #[test]
    fn compaction_never_changes_total_free_rows(
        ops in prop::collection::vec((any::<u8>(), 1usize..25), 1..40),
    ) {
        let mut p = pool();
        let mut live: BTreeSet<TenantId> = BTreeSet::new();
        let mut next: TenantId = 0;
        for (kind, demand) in ops {
            if kind % 3 == 0 {
                if let Some(&t) = live.iter().nth(demand % live.len().max(1)) {
                    p.release(t);
                    live.remove(&t);
                }
            } else if p.allocate(next, demand).is_ok() {
                live.insert(next);
                next += 1;
            } else {
                next += 1;
            }
        }
        // Compacting every grid moves bands but conserves each grid's
        // free-row count and each band's shape and tenant list.
        let before: Vec<_> = (0..p.grid_archs().len()).map(|g| p.free_rows(g)).collect();
        let mut shapes_before: Vec<_> =
            p.bands().into_iter().map(|b| (b.rows, b.tenants)).collect();
        for g in 0..p.grid_archs().len() {
            p.compact_grid(g);
        }
        let after: Vec<_> = (0..p.grid_archs().len()).map(|g| p.free_rows(g)).collect();
        let mut shapes_after: Vec<_> =
            p.bands().into_iter().map(|b| (b.rows, b.tenants)).collect();
        prop_assert_eq!(before, after, "compaction must not create or destroy rows");
        shapes_before.sort();
        shapes_after.sort();
        prop_assert_eq!(shapes_before, shapes_after, "band shapes and tenants survive");
        check_invariants(&p, &live);
        // After a full compaction every grid's free space is one run: any
        // demand that fits the free rows is admissible without further
        // moves.
        for (gi, arch) in p.grid_archs().iter().enumerate() {
            let free = p.free_rows(gi);
            if free >= 2 {
                let demand = free * arch.cols;
                prop_assert!(
                    p.dedicated_candidates(demand).contains(&gi),
                    "grid {gi} must offer its {free} coalesced free rows"
                );
            }
        }
    }
}
