//! Scheduler-state verification tests: a churn soak under
//! `verify_on_admit` (every mutating operation re-proves the admission
//! invariants), and snapshot sanity for the exported plain-data view.

use runtime::kernels;
use runtime::{Admission, Runtime, RuntimeConfig, StreamRequest};
use softfloat::{FpFormat, FpValue};
use vcgra::VcgraArch;

const F: FpFormat = FpFormat::PAPER;

fn stream(n: usize, items: usize, salt: u64) -> Vec<Vec<FpValue>> {
    let mut rng = logic::SplitMix64::new(0xFEED ^ salt);
    (0..items)
        .map(|_| (0..n).map(|_| FpValue::from_f64((rng.unit_f64() - 0.5) * 8.0, F)).collect())
        .collect()
}

#[test]
fn churn_soak_verifies_after_every_operation() {
    // Mixed pool, everything on: queueing, compaction, time-sharing,
    // cache-aware placement — and the verifier gating every operation.
    let cfg = RuntimeConfig {
        grids: vec![VcgraArch::new(6, 4, 2), VcgraArch::new(8, 4, 2)],
        verify_on_admit: true,
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(cfg);

    // Fill the pool past capacity so some submissions queue.
    let mut tenants = Vec::new();
    for (i, taps) in [3usize, 5, 8, 3, 12, 4].iter().enumerate() {
        let adm = rt
            .submit(format!("t{i}"), kernels::fir_seeded(F, *taps, i as u64 + 1).graph)
            .expect("verified submit");
        if let Admission::Admitted(a) = adm {
            tenants.push(a.tenant);
        }
    }
    assert!(!tenants.is_empty());

    // Stream through the placed tenants.
    for &t in &tenants {
        let graph = rt.tenant(t).expect("live").graph.clone();
        rt.run(vec![StreamRequest { tenant: t, inputs: stream(graph.num_inputs, 8, t) }])
            .expect("verified run");
    }

    // Structural refresh on one tenant, then churn releases (each drains
    // the queue, each re-verified).
    let first = tenants[0];
    rt.resubmit(first, kernels::fir_seeded(F, 6, 99).graph).expect("verified resubmit");
    for &t in &tenants {
        rt.release(t).expect("verified release");
    }

    // Final state re-proves clean explicitly.
    let report = rt.verify();
    assert!(report.ok(), "{}", report.summary());
    assert_eq!(report.pass, "sched");
}

#[test]
fn snapshot_reflects_live_state() {
    let mut rt = Runtime::new(RuntimeConfig {
        grids: vec![VcgraArch::new(6, 4, 2)],
        ..RuntimeConfig::default()
    });
    let a = rt
        .submit("a", kernels::fir_seeded(F, 3, 1).graph)
        .expect("submit")
        .expect_admitted("empty pool");
    let snap = rt.snapshot();
    assert_eq!(snap.grids.len(), 1);
    assert_eq!(snap.tenants.len(), 1);
    assert_eq!(snap.tenants[0].id, a.tenant);
    assert_eq!(snap.bands.len(), 1);
    assert!(!snap.cache.is_empty(), "the admission compiled into the cache");
    assert!(verify::sched::check_sched(&snap).is_empty());
}
