//! Span-decomposition contract of the runtime's instrumentation: every
//! admission is a `request` span whose subtree contains the
//! `admission`, `cache`, and `pricing` phases, every streaming job is a
//! `request` span containing `execute`, and the ledger the driver
//! prints is exactly the view over the `runtime.*` metrics registry.
//!
//! Single `#[test]` on purpose: the span recorder is process-global, so
//! one test owns arm/drain and no sibling can interleave events.

use runtime::{kernels, Runtime, RuntimeConfig, StreamRequest};
use softfloat::FpFormat;
use std::collections::{BTreeMap, BTreeSet};
use vcgra::VcgraArch;

const F: FpFormat = FpFormat::PAPER;

/// Replays the per-thread Begin/End streams into parent -> children
/// edges, panicking on unbalanced or non-LIFO nesting.
fn child_map(events: &[trace::TraceEvent]) -> BTreeMap<&'static str, BTreeSet<&'static str>> {
    let mut stacks: BTreeMap<u64, Vec<&'static str>> = BTreeMap::new();
    let mut children: BTreeMap<&'static str, BTreeSet<&'static str>> = BTreeMap::new();
    for e in events {
        match e.phase {
            trace::Phase::Begin => {
                let stack = stacks.entry(e.tid).or_default();
                if let Some(&parent) = stack.last() {
                    children.entry(parent).or_default().insert(e.name);
                }
                stack.push(e.name);
            }
            trace::Phase::End => {
                let top = stacks
                    .get_mut(&e.tid)
                    .and_then(Vec::pop)
                    .expect("E event without a matching B on this thread");
                assert_eq!(top, e.name, "spans must close LIFO per thread");
            }
            _ => {}
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "thread {tid} left spans open: {stack:?}");
    }
    children
}

#[test]
fn request_spans_decompose_and_ledger_views_the_registry() {
    trace::configure(trace::TraceConfig::On);

    let mut rt = Runtime::new(RuntimeConfig {
        grids: vec![VcgraArch::new(8, 4, 2)],
        ..RuntimeConfig::default()
    });
    let lib = kernels::library(F);
    let w = &lib[0];
    let cold = rt.submit(&w.name, w.graph.clone()).expect("submit").expect_admitted("empty pool");
    assert!(!cold.cache_hit);
    let warm = rt
        .submit(format!("{}-warm", w.name), w.graph.clone())
        .expect("submit")
        .expect_admitted("fits");
    assert!(warm.cache_hit, "same structure must hit the cache");
    let inputs: Vec<Vec<softfloat::FpValue>> =
        (0..8).map(|i| (0..w.graph.num_inputs).map(|j| softfloat::FpValue::from_f64((i + j) as f64 * 0.25, F)).collect()).collect();
    let runs = rt.run(vec![StreamRequest { tenant: cold.tenant, inputs }]).expect("stream");
    assert_eq!(runs.len(), 1);

    // Free the lower band and compact: the survivor slides down, and the
    // relocation replay must be traced as a `reconfig_overlap` span.
    rt.release(cold.tenant).expect("release");
    let moved = rt.compact_background().expect("compact");
    assert!(moved >= 1, "freeing the lower band leaves a hole to compact");

    trace::configure(trace::TraceConfig::Off);
    let events = trace::take_events();
    let children = child_map(&events);

    // The acceptance shape: request spans decompose into admission /
    // cache / pricing / execute phases (cache and pricing live inside
    // the admission subtree; execute under the streaming request).
    let request = children.get("request").expect("request spans recorded");
    assert!(request.contains("admission"), "admit requests open an admission child");
    assert!(request.contains("execute"), "stream requests open an execute child");
    let admission = children.get("admission").expect("admission spans recorded");
    for phase in ["cache", "pricing", "placement", "sig"] {
        assert!(admission.contains(phase), "admission subtree must contain {phase}");
    }
    assert!(
        children.get("admission").unwrap().contains("compile"),
        "the cold admission compiled, so its span must appear"
    );
    let compaction = children.get("compaction").expect("compaction spans recorded");
    assert!(
        compaction.contains("reconfig_overlap"),
        "the compaction replay must nest a reconfig_overlap span"
    );

    // Ledger <-> registry agreement: the public Ledger is a view, so
    // every count it reports equals the corresponding runtime.* cell.
    let led = rt.ledger();
    let m = rt.metrics();
    assert_eq!(led.cold_compiles as u64, m.counter_value("runtime.cold_compiles"));
    assert_eq!(led.warm_admissions as u64, m.counter_value("runtime.warm_admissions"));
    assert_eq!(led.items as u64, m.counter_value("runtime.items"));
    assert_eq!(led.swaps as u64, m.counter_value("runtime.swaps"));
    assert_eq!(
        led.host_admit_time.as_nanos() as u64,
        m.counter_value("runtime.host_admit_ns")
    );
    assert_eq!(
        led.modeled_makespan.as_nanos() as u64,
        m.gauge("runtime.makespan_ns").get() as u64,
        "the makespan in the ledger is a view over the gauge"
    );
    assert_eq!(
        led.overlap_saved.as_nanos() as u64,
        m.counter_value("runtime.overlap_saved_ns")
    );
    assert!(
        led.overlap_saved > std::time::Duration::ZERO,
        "the warm admission streamed while the cold band executed: overlap must be saved"
    );
    assert!(
        led.modeled_makespan < led.total_port_time() + led.exec_time,
        "the modeled makespan must beat the fully serialized story"
    );

    // Latency histograms populated: one sample per admission, one per
    // streamed job.
    let hists: BTreeMap<String, trace::HistogramSnapshot> = m.histograms().into_iter().collect();
    assert_eq!(hists["runtime.admit_ns"].count, 2);
    assert_eq!(hists["runtime.execute_ns"].count, 1);
    assert!(hists["runtime.admit_ns"].p99() >= hists["runtime.admit_ns"].p50());
}
