//! Acceptance tests for the runtime: every kernel in the library executes
//! bit-exactly like `vcgra::sim::run_dataflow`, before and after a
//! warm-cache parameter swap, with all tenants live on one grid pool
//! concurrently.

use runtime::kernels;
use runtime::{Refresh, Runtime, RuntimeConfig, StreamRequest};
use softfloat::{FpFormat, FpValue};
use vcgra::sim::run_dataflow;

const F: FpFormat = FpFormat::PAPER;

fn fp(x: f64) -> FpValue {
    FpValue::from_f64(x, F)
}

/// Deterministic input stream for a graph with `n` inputs.
fn stream(n: usize, items: usize, salt: u64) -> Vec<Vec<FpValue>> {
    let mut rng = logic::SplitMix64::new(0xC0FFEE ^ salt);
    (0..items)
        .map(|_| (0..n).map(|_| fp((rng.unit_f64() - 0.5) * 8.0)).collect())
        .collect()
}

#[test]
fn every_library_kernel_is_bit_exact_cold_and_after_warm_swap() {
    let mut rt = Runtime::new(RuntimeConfig::default());
    let lib = kernels::library(F);
    assert!(lib.len() >= 4, "need at least four distinct kernels");

    // Admit every kernel concurrently onto the one pool.
    let mut ids = Vec::new();
    for w in &lib {
        let adm = rt.submit(&w.name, w.graph.clone()).expect("submitted").expect_admitted("placed");
        ids.push(adm.tenant);
    }

    // Concurrent cold streams: all tenants in one run() call.
    let requests: Vec<StreamRequest> = ids
        .iter()
        .zip(&lib)
        .map(|(&t, w)| StreamRequest {
            tenant: t,
            inputs: stream(w.graph.num_inputs, 16, t),
        })
        .collect();
    let inputs: Vec<Vec<Vec<FpValue>>> =
        requests.iter().map(|r| r.inputs.clone()).collect();
    let runs = rt.run(requests).expect("streamed");
    assert_eq!(runs.len(), lib.len());
    for ((run, w), ins) in runs.iter().zip(&lib).zip(&inputs) {
        for (input, out) in ins.iter().zip(&run.outputs) {
            let want = run_dataflow(&w.graph, input);
            assert_eq!(
                out.iter().map(|v| v.bits).collect::<Vec<_>>(),
                want.iter().map(|v| v.bits).collect::<Vec<_>>(),
                "{} cold outputs must be bit-exact",
                w.name
            );
        }
    }

    // Warm parameter swap on every coefficient-bearing tenant, then
    // re-stream and compare against run_dataflow on the swapped graph.
    let mut rng = logic::SplitMix64::new(99);
    for (&t, w) in ids.iter().zip(&lib) {
        let slots = w.graph.coeff_nodes();
        let new_coeffs: Vec<FpValue> =
            (0..slots.len()).map(|_| fp((rng.unit_f64() - 0.5) * 4.0)).collect();
        let report = rt.swap_params(t, &new_coeffs).expect("swap");
        if !slots.is_empty() {
            assert!(report.dirty_pes > 0, "{}: coefficients changed", w.name);
        }
        let swapped = w.graph.with_coeffs(&new_coeffs);
        let ins = stream(w.graph.num_inputs, 8, t ^ 0xABCD);
        let runs = rt
            .run(vec![StreamRequest { tenant: t, inputs: ins.clone() }])
            .expect("streamed after swap");
        for (input, out) in ins.iter().zip(&runs[0].outputs) {
            let want = run_dataflow(&swapped, input);
            assert_eq!(
                out.iter().map(|v| v.bits).collect::<Vec<_>>(),
                want.iter().map(|v| v.bits).collect::<Vec<_>>(),
                "{} post-swap outputs must be bit-exact",
                w.name
            );
        }
    }
}

#[test]
fn warm_admission_hits_cache_and_skips_compile() {
    let mut rt = Runtime::new(RuntimeConfig::default());
    let a = kernels::fir(F, &[0.1, 0.2, 0.3, 0.4, 0.5]);
    let b = kernels::fir(F, &[-1.0, 2.0, -3.0, 4.0, -5.0]); // same structure

    let cold = rt.submit("fir-cold", a.graph.clone()).unwrap().expect_admitted("placed");
    assert!(!cold.cache_hit);
    assert!(cold.compile_time > std::time::Duration::ZERO);

    let warm = rt.submit("fir-warm", b.graph.clone()).unwrap().expect_admitted("placed");
    assert!(warm.cache_hit, "structurally identical graph must hit");
    assert_eq!(warm.compile_time, std::time::Duration::ZERO);
    assert_eq!(
        rt.tenant(cold.tenant).unwrap().config_key(),
        rt.tenant(warm.tenant).unwrap().config_key()
    );

    // Both tenants produce their *own* coefficients' results (no
    // cross-tenant parameter leakage through the shared cache entry).
    let ins = stream(5, 4, 7);
    let runs = rt
        .run(vec![
            StreamRequest { tenant: cold.tenant, inputs: ins.clone() },
            StreamRequest { tenant: warm.tenant, inputs: ins.clone() },
        ])
        .unwrap();
    for (run, w) in runs.iter().zip([&a, &b]) {
        for (input, out) in ins.iter().zip(&run.outputs) {
            let want = run_dataflow(&w.graph, input);
            assert_eq!(out[0].bits, want[0].bits);
        }
    }
    let stats = rt.cache_stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 1);
}

#[test]
fn resubmit_routes_structure_changes_to_recompile() {
    let mut rt = Runtime::new(RuntimeConfig::default());
    let w = kernels::fir(F, &[0.25, 0.5, 0.25]);
    let adm = rt.submit("fir", w.graph.clone()).unwrap().expect_admitted("placed");

    // Parameter-only resubmit: swap fast path.
    let swapped = w.graph.with_coeffs(&[fp(1.0), fp(2.0), fp(3.0)]);
    match rt.resubmit(adm.tenant, swapped).unwrap() {
        Refresh::Swapped(r) => assert!(r.dirty_pes > 0),
        _ => panic!("same structure must not recompile or queue"),
    }

    // Structural resubmit: recompile under the same tenant id.
    let bigger = kernels::fir(F, &[1.0; 7]);
    match rt.resubmit(adm.tenant, bigger.graph.clone()).unwrap() {
        Refresh::Recompiled(a) => {
            assert_eq!(a.tenant, adm.tenant, "tenant id survives");
            assert!(!a.cache_hit);
        }
        _ => panic!("structure changed, must recompile"),
    }
    let ins = stream(7, 4, 3);
    let runs = rt
        .run(vec![StreamRequest { tenant: adm.tenant, inputs: ins.clone() }])
        .unwrap();
    for (input, out) in ins.iter().zip(&runs[0].outputs) {
        assert_eq!(out[0].bits, run_dataflow(&bigger.graph, input)[0].bits);
    }
}

#[test]
fn oversubscribed_pool_time_multiplexes_without_corruption() {
    // One tiny grid: 4 rows of 4. Three 2-row tenants oversubscribe it.
    let cfg = RuntimeConfig {
        grids: vec![vcgra::VcgraArch::new(4, 4, 2)],
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(cfg);
    let kernels: Vec<_> = [
        kernels::fir(F, &[0.5, 0.25, 0.125]),
        kernels::fir(F, &[-1.0, 1.0, -1.0]),
        kernels::tree_reduction(F, 4),
    ]
    .into_iter()
    .collect();
    let mut ids = Vec::new();
    for w in &kernels {
        ids.push(rt.submit(&w.name, w.graph.clone()).unwrap().tenant());
    }
    // The third tenant had to share a band.
    assert!(rt.tenant(ids[2]).unwrap().lease.shared);

    let requests: Vec<StreamRequest> = ids
        .iter()
        .zip(&kernels)
        .map(|(&t, w)| StreamRequest { tenant: t, inputs: stream(w.graph.num_inputs, 12, t) })
        .collect();
    let inputs: Vec<Vec<Vec<FpValue>>> = requests.iter().map(|r| r.inputs.clone()).collect();
    let runs = rt.run(requests).unwrap();
    let mut switches = 0;
    for ((run, w), ins) in runs.iter().zip(&kernels).zip(&inputs) {
        switches += run.context_switches;
        for (input, out) in ins.iter().zip(&run.outputs) {
            let want = run_dataflow(&w.graph, input);
            assert_eq!(
                out.iter().map(|v| v.bits).collect::<Vec<_>>(),
                want.iter().map(|v| v.bits).collect::<Vec<_>>(),
                "{}: time-multiplexed results must not corrupt",
                w.name
            );
        }
    }
    assert!(switches > 0, "sharing a band must charge context switches");
    assert!(rt.ledger().switch_port_time > std::time::Duration::ZERO);

    // Alternating single-tenant run() calls on the shared band must keep
    // charging switches: the runtime tracks which tenant's configuration
    // is resident across calls, not just within one call.
    let shared_pair: Vec<_> = ids
        .iter()
        .copied()
        .filter(|&t| {
            let l = rt.tenant(t).unwrap().lease;
            (l.grid, l.row0) == {
                let l2 = rt.tenant(ids[2]).unwrap().lease;
                (l2.grid, l2.row0)
            }
        })
        .collect();
    assert_eq!(shared_pair.len(), 2, "exactly two tenants share the band");
    let mut alternating_switches = 0;
    for &t in [shared_pair[0], shared_pair[1], shared_pair[0]].iter() {
        let w = &kernels[ids.iter().position(|&i| i == t).unwrap()];
        let runs = rt
            .run(vec![StreamRequest { tenant: t, inputs: stream(w.graph.num_inputs, 2, t) }])
            .unwrap();
        alternating_switches += runs[0].context_switches;
    }
    assert!(
        alternating_switches >= 2,
        "each swap-in across run() calls must be charged, got {alternating_switches}"
    );
}
