//! Micro-reconfiguration pricing for parameter-only changes.
//!
//! A warm parameter swap does what the paper's SCG does on the embedded
//! processor: evaluate the PE's PPC Boolean functions for the old and the
//! new settings, diff the specialized bits, and rewrite only the dirty
//! frames. The pricer owns one parameterized PE design (`mapping` +
//! `dcs::ParamConfig`) built lazily on first use — by default in a reduced
//! floating-point format so pricing stays interactive; the frame *counts*
//! it produces are a per-PE model, anchored against the paper's published
//! population through [`dcs::paper_pe_reconfig`].
//!
//! Two frame populations are priced per swap:
//!
//! * **PPC frames** — configuration frames of the PE datapath whose TLUT /
//!   TCON bits changed, from [`dcs::Scg::dirty_frames`];
//! * **settings frames** — the overlay's settings-register plane, addressed
//!   through [`fabric::frames::FrameModel::for_grid`]: PEs in the same
//!   column stripe share a frame, so a swap touching a whole column is one
//!   read-modify-write there.

use std::sync::OnceLock;
use std::time::Duration;

use dcs::{ParamConfig, ReconfigInterface, Scg};
use fabric::frames::FrameModel;
use fabric::Site;
use mapping::{map_parameterized, MapOptions, MappedDesign};
use softfloat::{FpFormat, FpValue};
use vcgra::{PeSettings, VirtualPe, VirtualPeConfig};

/// One PE whose settings change in a swap: region-local cell plus the old
/// and new settings-register content.
#[derive(Debug, Clone, Copy)]
pub struct PeChange {
    /// Cell in *physical grid* coordinates (row, col) — the lease offset is
    /// already applied, so settings frames are shared correctly between
    /// tenants stacked on the same grid column.
    pub cell: (usize, usize),
    /// Settings currently loaded.
    pub old: PeSettings,
    /// Settings to load.
    pub new: PeSettings,
}

/// Price of one parameter-only micro-reconfiguration.
#[derive(Debug, Clone, Copy, Default)]
pub struct SwapReport {
    /// PEs whose settings actually differed.
    pub dirty_pes: usize,
    /// Dirty PE-datapath frames (TLUT/TCON bits), summed over dirty PEs.
    pub ppc_frames: usize,
    /// Dirty settings-register frames (deduplicated across PEs).
    pub settings_frames: usize,
    /// Specialized bits that changed value.
    pub bits_changed: usize,
    /// Modeled configuration-port time for all dirty frames.
    pub port_time: Duration,
    /// Measured host time evaluating the PPC Boolean functions.
    pub eval_time: Duration,
}

impl SwapReport {
    /// Total frames rewritten.
    pub fn frames(&self) -> usize {
        self.ppc_frames + self.settings_frames
    }

    /// Total latency of the swap (port + SCG evaluation).
    pub fn total(&self) -> Duration {
        self.port_time + self.eval_time
    }
}

struct PricerModel {
    design: MappedDesign,
    config: ParamConfig,
    pe_cfg: VirtualPeConfig,
}

/// Lazily-built PPC pricer over one parameterized PE.
pub struct SettingsPricer {
    format: FpFormat,
    iface: ReconfigInterface,
    model: OnceLock<PricerModel>,
}

impl SettingsPricer {
    /// Creates a pricer; `format` is the floating-point format of the
    /// *pricing* PE (reduced formats price in well under a second; the
    /// trend matches the paper-scale PE).
    pub fn new(format: FpFormat, iface: ReconfigInterface) -> Self {
        SettingsPricer { format, iface, model: OnceLock::new() }
    }

    /// The configuration interface this pricer charges.
    pub fn interface(&self) -> ReconfigInterface {
        self.iface
    }

    fn model(&self) -> &PricerModel {
        self.model.get_or_init(|| {
            let pe_cfg = VirtualPeConfig { format: self.format, hops: 2 };
            let aig = logic::opt::sweep(&VirtualPe::build(pe_cfg, true).aig);
            let design = map_parameterized(&aig, MapOptions::default());
            let config = ParamConfig::extract(&design);
            PricerModel { design, config, pe_cfg }
        })
    }

    /// Converts overlay settings (in the application's format) into the
    /// pricing PE's parameter-bit vector.
    fn param_bits(&self, m: &PricerModel, s: &PeSettings) -> Vec<bool> {
        let coeff = FpValue::from_f64(s.coeff.to_f64(), m.pe_cfg.format);
        let scaled = PeSettings { coeff, counter: s.counter, mode: s.mode };
        scaled.to_param_bits(&m.pe_cfg)
    }

    /// Prices a parameter-only change over a set of PEs on one grid.
    ///
    /// `grid` is the physical grid shape hosting the cells (for the
    /// settings-plane frame model). Unchanged PEs (identical settings)
    /// contribute nothing — the SCG diff is empty and the settings word is
    /// identical, which is what makes the warm path cheap.
    pub fn price_swap(&self, grid: (usize, usize), changes: &[PeChange]) -> SwapReport {
        let m = self.model();
        let scg = Scg::new(&m.design, &m.config);
        let frame_model = FrameModel::for_grid(grid.0, grid.1);
        let mut report = SwapReport::default();
        let mut settings_frames = std::collections::BTreeSet::new();
        let t0 = std::time::Instant::now();
        for ch in changes {
            // The settings word covers the coefficient image, the iteration
            // counter, and the mode; the counter is sequential state and
            // does not reach the PPC, so compare the word first.
            let word_equal = ch.old.coeff.bits == ch.new.coeff.bits
                && ch.old.counter == ch.new.counter
                && ch.old.mode == ch.new.mode;
            if word_equal {
                continue;
            }
            report.dirty_pes += 1;
            let old_bits = self.param_bits(m, &ch.old);
            let new_bits = self.param_bits(m, &ch.new);
            if old_bits != new_bits {
                let old_spec = scg.specialize(&old_bits);
                let new_spec = scg.specialize(&new_bits);
                let dirty = scg.dirty_frames(&old_spec, &new_spec);
                report.ppc_frames += dirty.len();
                report.bits_changed += old_spec
                    .values
                    .iter()
                    .zip(&new_spec.values)
                    .filter(|(a, b)| a != b)
                    .count();
            }
            // The settings word (counter + coefficient image) lives in the
            // settings plane: one frame per column stripe.
            settings_frames.insert(frame_model.lut_frame(Site::Logic {
                x: ch.cell.1,
                y: ch.cell.0,
            }));
        }
        report.eval_time = t0.elapsed();
        report.settings_frames = settings_frames.len();
        report.port_time = dcs::timing::reconfig_cost(report.frames(), self.iface);
        report
    }

    /// Modeled port time to configure `pes` PEs from scratch (cold
    /// admission or a time-multiplexing context switch): the paper's
    /// full per-PE micro-reconfiguration, 251 ms each on HWICAP.
    pub fn full_config_cost(&self, pes: usize) -> Duration {
        let per_pe = dcs::paper_pe_reconfig(self.iface);
        per_pe * pes as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgra::PeMode;

    const F: FpFormat = FpFormat::PAPER;

    fn pricer() -> SettingsPricer {
        // Tiny pricing PE keeps the lazy build fast in debug tests.
        SettingsPricer::new(FpFormat::new(3, 4), ReconfigInterface::Hwicap)
    }

    fn mac(c: f64, counter: u32) -> PeSettings {
        PeSettings { coeff: FpValue::from_f64(c, F), counter, mode: PeMode::Mac }
    }

    #[test]
    fn identical_settings_price_to_zero() {
        let p = pricer();
        let ch = PeChange { cell: (0, 0), old: mac(0.5, 1), new: mac(0.5, 1) };
        let r = p.price_swap((4, 4), &[ch]);
        assert_eq!(r.dirty_pes, 0);
        assert_eq!(r.frames(), 0);
        assert_eq!(r.port_time, Duration::ZERO);
    }

    #[test]
    fn coefficient_change_dirties_ppc_and_settings_frames() {
        let p = pricer();
        let ch = PeChange { cell: (1, 2), old: mac(0.5, 1), new: mac(-1.25, 1) };
        let r = p.price_swap((4, 4), &[ch]);
        assert_eq!(r.dirty_pes, 1);
        assert!(r.ppc_frames > 0, "coefficient bits live in the PPC");
        assert_eq!(r.settings_frames, 1);
        assert!(r.port_time > Duration::ZERO);
        // Far below a full per-PE reconfiguration.
        assert!(r.port_time < p.full_config_cost(1));
    }

    #[test]
    fn counter_only_change_touches_settings_plane_only() {
        let p = pricer();
        let ch = PeChange { cell: (0, 0), old: mac(0.5, 1), new: mac(0.5, 16) };
        let r = p.price_swap((4, 4), &[ch]);
        assert_eq!(r.dirty_pes, 1);
        assert_eq!(r.ppc_frames, 0, "the datapath does not see the counter");
        assert_eq!(r.settings_frames, 1);
    }

    #[test]
    fn column_stripe_shares_one_settings_frame() {
        let p = pricer();
        let changes: Vec<PeChange> = (0..4)
            .map(|r| PeChange { cell: (r, 1), old: mac(1.0, 1), new: mac(2.0, 1) })
            .collect();
        let r = p.price_swap((4, 4), &changes);
        assert_eq!(r.dirty_pes, 4);
        assert_eq!(r.settings_frames, 1, "one column stripe, one frame");
    }

    #[test]
    fn full_config_reproduces_paper_estimate() {
        let p = pricer();
        let ms = p.full_config_cost(1).as_secs_f64() * 1e3;
        assert!((ms - 251.0).abs() < 1.0, "got {ms:.1} ms per PE");
    }
}
