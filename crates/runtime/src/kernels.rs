//! Kernel library: the application workloads the runtime serves.
//!
//! Every kernel is an [`AppGraph`] builder, so each one goes through the
//! same compile path (`vcgra::flow::map_app`), the same configuration
//! cache, and the same bit-exact FloPoCo execution. The set is chosen to
//! exercise genuinely different dataflow shapes:
//!
//! * [`fir`] — 1-D filter: multiply layer + balanced adder tree;
//! * [`separable_stencil`] — 2-D stencil over a window, factored into
//!   per-row dot products followed by a column combine (the classic
//!   separable-convolution trick, here spatially unrolled);
//! * [`matvec`] — tiled dense matrix–vector product: one dot-product tile
//!   per output row, all rows sharing the input vector;
//! * [`tree_reduction`] — pure adder tree (no coefficients, so a
//!   parameter swap on it is a no-op — the degenerate cache case);
//! * [`retina_stage`] — the vessel-segmentation filter kernels from the
//!   `retina` crate (Gaussian denoise, matched filter, texture filter)
//!   re-exported as runtime workloads.

use retina::filters::{gaussian, matched_filter, texture_filter, Kernel};
use softfloat::{FpFormat, FpValue};
use vcgra::app::{AppGraph, AppSource};
use vcgra::PeMode;

/// A named application workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name (shows up in the serve table and the ledger).
    pub name: String,
    /// The dataflow graph.
    pub graph: AppGraph,
}

impl Workload {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, graph: AppGraph) -> Self {
        Workload { name: name.into(), graph }
    }
}

/// FIR filter over a `taps.len()`-sample window: multiply layer plus
/// balanced adder tree (the spatial mapping of the paper's filter kernels).
pub fn fir(format: FpFormat, taps: &[f64]) -> Workload {
    Workload::new(
        format!("fir{}", taps.len()),
        AppGraph::dot_product(format, taps),
    )
}

/// FIR whose `taps` coefficients are drawn from a seeded deterministic
/// stream (2·taps−1 nodes, so row demand is easy to steer). The
/// scheduler tests and the `serve` driver share this one definition so
/// their workloads can never drift apart.
pub fn fir_seeded(format: FpFormat, taps: usize, seed: u64) -> Workload {
    let mut rng = logic::SplitMix64::new(seed);
    let coeffs: Vec<f64> = (0..taps).map(|_| (rng.unit_f64() - 0.5) * 2.0).collect();
    fir(format, &coeffs)
}

/// Separable 2-D stencil over a `col.len() × row.len()` window.
///
/// External input `r * row.len() + c` is window pixel `(r, c)`. Each window
/// row is reduced with the horizontal taps, each row result is scaled by
/// its vertical tap, and a final adder tree combines the rows — exactly
/// `Σ_r col[r] · Σ_c row[c] · x[r][c]`.
pub fn separable_stencil(format: FpFormat, row: &[f64], col: &[f64]) -> Workload {
    assert!(!row.is_empty() && !col.is_empty());
    let mut g = AppGraph::new(format, row.len() * col.len());
    let mut scaled_rows = Vec::with_capacity(col.len());
    for (r, &cv) in col.iter().enumerate() {
        let muls: Vec<usize> = row
            .iter()
            .enumerate()
            .map(|(c, &rv)| {
                g.add(
                    format!("r{r}mul{c}"),
                    PeMode::Mul,
                    Some(FpValue::from_f64(rv, format)),
                    AppSource::External(r * row.len() + c),
                    AppSource::Zero,
                )
            })
            .collect();
        let row_sum = g.reduce_add(muls, &format!("r{r}_"));
        scaled_rows.push(g.add(
            format!("colmul{r}"),
            PeMode::Mul,
            Some(FpValue::from_f64(cv, format)),
            AppSource::Node(row_sum),
            AppSource::Zero,
        ));
    }
    let out = g.reduce_add(scaled_rows, "col_");
    g.mark_output(out);
    Workload::new(format!("stencil{}x{}", col.len(), row.len()), g)
}

/// Tiled dense matrix–vector product `y = A·x` for an `M × N` matrix:
/// one dot-product tile per output row, all tiles reading the shared
/// input vector. The graph has `M` outputs.
pub fn matvec(format: FpFormat, a: &[Vec<f64>]) -> Workload {
    assert!(!a.is_empty());
    let n = a[0].len();
    assert!(a.iter().all(|row| row.len() == n), "rectangular matrix");
    let mut g = AppGraph::new(format, n);
    for (m, row) in a.iter().enumerate() {
        let muls: Vec<usize> = row
            .iter()
            .enumerate()
            .map(|(j, &c)| {
                g.add(
                    format!("t{m}mul{j}"),
                    PeMode::Mul,
                    Some(FpValue::from_f64(c, format)),
                    AppSource::External(j),
                    AppSource::Zero,
                )
            })
            .collect();
        let out = g.reduce_add(muls, &format!("t{m}_"));
        g.mark_output(out);
    }
    Workload::new(format!("matvec{}x{}", a.len(), n), g)
}

/// Pure `n`-input tree reduction (sum). No coefficient-bearing nodes, so
/// its parameter vector is empty: the configuration cache serves every
/// instance of a given `n` from one entry.
pub fn tree_reduction(format: FpFormat, n: usize) -> Workload {
    assert!(n >= 2);
    let mut g = AppGraph::new(format, n);
    let leaves: Vec<usize> = (0..n)
        .map(|i| {
            g.add(
                format!("leaf{i}"),
                PeMode::Pass,
                None,
                AppSource::External(i),
                AppSource::Zero,
            )
        })
        .collect();
    let out = g.reduce_add(leaves, "red_");
    g.mark_output(out);
    Workload::new(format!("reduce{n}"), g)
}

/// A vessel-segmentation filter kernel as a runtime workload: the kernel's
/// taps become the coefficient vector of a dot product over the pixel
/// window (the same shape `retina::filters::convolve_vcgra` streams
/// through the MAC PEs).
pub fn retina_stage(format: FpFormat, kernel: &Kernel) -> Workload {
    let taps: Vec<f64> = kernel.taps.iter().map(|&t| t as f64).collect();
    Workload::new(
        format!("retina_{}", kernel.name),
        AppGraph::dot_product(format, &taps),
    )
}

/// The standard mixed-tenant set: one of each dataflow shape, sized to fit
/// comfortably on small grid regions. `serve` and the integration tests
/// drive exactly this library.
pub fn library(format: FpFormat) -> Vec<Workload> {
    vec![
        fir(format, &[0.0625, 0.25, 0.375, 0.25, 0.0625]),
        separable_stencil(format, &[0.25, 0.5, 0.25], &[0.25, 0.5, 0.25]),
        matvec(
            format,
            &[
                vec![1.0, 0.5, 0.25, 0.125],
                vec![-1.0, 2.0, -0.5, 0.75],
                vec![0.5, 0.5, 0.5, 0.5],
            ],
        ),
        tree_reduction(format, 8),
        retina_stage(format, &gaussian(3, 0.85)),
        retina_stage(format, &texture_filter(3, 1.2)),
    ]
}

/// A larger retina stage for soak runs (needs a bigger grid region).
pub fn retina_soak_stage(format: FpFormat) -> Workload {
    retina_stage(format, &matched_filter(5, 1.6, 4.0, 0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgra::sim::run_dataflow;

    const F: FpFormat = FpFormat::PAPER;

    fn fp(x: f64) -> FpValue {
        FpValue::from_f64(x, F)
    }

    #[test]
    fn stencil_matches_direct_sum() {
        let w = separable_stencil(F, &[0.25, 0.5, 0.25], &[1.0, 2.0, 1.0]);
        // Window values 1..9 row-major.
        let inputs: Vec<FpValue> = (1..=9).map(|v| fp(v as f64)).collect();
        let got = run_dataflow(&w.graph, &inputs)[0].to_f64();
        let rows: [f64; 3] = std::array::from_fn(|r| {
            (0..3).map(|c| [0.25, 0.5, 0.25][c] * (r * 3 + c + 1) as f64).sum()
        });
        let want = 1.0 * rows[0] + 2.0 * rows[1] + 1.0 * rows[2];
        assert!((got - want).abs() < 1e-6, "got {got}, want {want}");
    }

    #[test]
    fn matvec_produces_one_output_per_row() {
        let a = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let w = matvec(F, &a);
        assert_eq!(w.graph.outputs.len(), 3);
        let out = run_dataflow(&w.graph, &[fp(10.0), fp(1.0)]);
        assert_eq!(out[0].to_f64(), 12.0);
        assert_eq!(out[1].to_f64(), 34.0);
        assert_eq!(out[2].to_f64(), 56.0);
    }

    #[test]
    fn tree_reduction_sums_and_has_no_params() {
        let w = tree_reduction(F, 8);
        assert!(w.graph.coeff_nodes().is_empty());
        let inputs: Vec<FpValue> = (0..8).map(|v| fp(v as f64)).collect();
        assert_eq!(run_dataflow(&w.graph, &inputs)[0].to_f64(), 28.0);
    }

    #[test]
    fn library_is_diverse_and_mappable() {
        let lib = library(F);
        assert!(lib.len() >= 4, "at least four distinct kernels");
        for w in &lib {
            // Every library kernel fits an 8x8 grid region.
            assert!(w.graph.pe_demand() <= 64, "{} too big", w.name);
            vcgra::flow::map_app(&w.graph, vcgra::VcgraArch::new(8, 8, 2), 1)
                .unwrap_or_else(|e| panic!("{} unmappable: {e}", w.name));
        }
    }
}
