//! Batched streaming execution over the grid pool.
//!
//! Execution is organized by **band** (the scheduler's unit of spatial
//! isolation): bands are independent hardware regions, so they run on
//! parallel worker threads; tenants *within* a shared band are
//! time-multiplexed, so they run serialized, and every slot change is
//! charged a full-region micro-reconfiguration in the ledger (the cost
//! that makes oversubscription visible).
//!
//! Every input vector streams through [`vcgra::sim::run_mapped`], i.e.
//! through the tenant's placed settings in bit-exact FloPoCo arithmetic —
//! the same value `run_dataflow` computes, which is what the bit-exactness
//! acceptance tests pin down.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Duration;

use softfloat::FpValue;
use vcgra::app::AppGraph;
use vcgra::flow::VcgraMapping;
use vcgra::sim::run_mapped;

use crate::pool::TenantId;

/// One tenant's work within a band.
pub struct Job<'a> {
    /// The tenant being served.
    pub tenant: TenantId,
    /// Relocation epoch of the tenant's lease at submission time (how
    /// many times compaction has moved the band) — carried into the
    /// [`TenantRun`] so callers can correlate results with relocations.
    pub epoch: u64,
    /// Its application graph (current parameters).
    pub graph: &'a AppGraph,
    /// Its placed configuration (settings match the graph).
    pub mapping: &'a VcgraMapping,
    /// Input vectors to stream.
    pub inputs: Vec<Vec<FpValue>>,
}

/// All work scheduled onto one band this run.
pub struct BandWork<'a> {
    /// True when the band time-multiplexes several tenants.
    pub shared: bool,
    /// True when the band's resident configuration (from a previous run)
    /// is not the first job's — the first slot must swap in too.
    pub swap_in_first: bool,
    /// Modeled port time of one context switch (full-region reconfig).
    pub switch_cost: Duration,
    /// Jobs, executed in order (run-to-completion per slot).
    pub jobs: Vec<Job<'a>>,
}

/// Per-tenant result of one streaming run.
#[derive(Debug, Clone)]
pub struct TenantRun {
    /// The tenant.
    pub tenant: TenantId,
    /// Relocation epoch the tenant ran at (see [`Job::epoch`]).
    pub epoch: u64,
    /// One output vector per input vector, in order.
    pub outputs: Vec<Vec<FpValue>>,
    /// Input vectors processed.
    pub items: usize,
    /// Batches (chunks of `batch_size`) processed.
    pub batches: usize,
    /// Measured host execution time.
    pub exec_time: Duration,
    /// Context switches charged to this tenant (slot swap-ins).
    pub context_switches: usize,
    /// Modeled port time of those switches.
    pub switch_port_time: Duration,
}

impl TenantRun {
    /// Items per second of measured host execution.
    pub fn throughput(&self) -> f64 {
        self.items as f64 / self.exec_time.as_secs_f64().max(1e-12)
    }
}

/// Modeled port time of `switches` context switches at `cost` each.
///
/// Computed in 128-bit nanoseconds: the obvious `cost * switches as u32`
/// silently truncates once a long-lived time-shared tenant accumulates
/// more than `u32::MAX` switches, and `Duration::mul` panics on overflow
/// besides. Saturates at `Duration::MAX` instead of wrapping or
/// panicking — a modeled cost that large is already "never admit this".
pub fn switch_port_time(cost: Duration, switches: u64) -> Duration {
    const NANOS_PER_SEC: u128 = 1_000_000_000;
    let ns = cost.as_nanos().saturating_mul(u128::from(switches));
    match u64::try_from(ns / NANOS_PER_SEC) {
        Ok(secs) => Duration::new(secs, (ns % NANOS_PER_SEC) as u32),
        Err(_) => Duration::MAX,
    }
}

/// Runs every band, bands in parallel on up to `workers` threads, jobs
/// within a band serialized. `batch_size` is the streaming chunk size
/// (accounting granularity of the `batches` counter).
pub fn run_bands(bands: Vec<BandWork<'_>>, workers: usize, batch_size: usize) -> Vec<TenantRun> {
    assert!(batch_size > 0);
    let queue = Mutex::new(bands.into_iter().collect::<VecDeque<_>>());
    let results = Mutex::new(Vec::new());
    let n_workers = workers.max(1);
    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|| loop {
                let band = match queue.lock().expect("band queue mutex poisoned").pop_front() {
                    Some(b) => b,
                    None => break,
                };
                let mut runs = Vec::with_capacity(band.jobs.len());
                for (slot, job) in band.jobs.into_iter().enumerate() {
                    // Every slot after the first swaps a different tenant's
                    // configuration into the shared region; the first slot
                    // swaps in as well when another tenant was resident.
                    let swap_in = slot > 0 || band.swap_in_first;
                    let switches = if band.shared && swap_in { 1 } else { 0 };
                    let mut request_span = trace::span("request");
                    request_span.arg("tenant", job.tenant);
                    request_span.arg("op", "execute");
                    if switches > 0 {
                        // The swap-in reconfigures this band while other
                        // bands keep computing — the overlap the runtime's
                        // timeline models as a lane-local phase.
                        let mut sw = trace::span("reconfig_overlap");
                        sw.arg("tenant", job.tenant);
                        sw.arg("switch_ns", band.switch_cost.as_nanos() as u64);
                        drop(sw);
                    }
                    let mut exec_span = trace::span("execute");
                    let mut outputs = Vec::with_capacity(job.inputs.len());
                    let mut batches = 0;
                    let t0 = std::time::Instant::now();
                    for chunk in job.inputs.chunks(batch_size) {
                        for input in chunk {
                            outputs.push(run_mapped(job.mapping, job.graph, input));
                        }
                        batches += 1;
                    }
                    let exec_time = t0.elapsed();
                    exec_span.arg("items", outputs.len());
                    exec_span.arg("batches", batches as u64);
                    drop(exec_span);
                    drop(request_span);
                    runs.push(TenantRun {
                        tenant: job.tenant,
                        epoch: job.epoch,
                        items: outputs.len(),
                        outputs,
                        batches,
                        exec_time,
                        context_switches: switches,
                        switch_port_time: switch_port_time(band.switch_cost, switches as u64),
                    });
                }
                results.lock().expect("result mutex poisoned").extend(runs);
            });
        }
    });
    let mut out = results.into_inner().expect("result mutex poisoned");
    out.sort_by_key(|r| r.tenant);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use softfloat::FpFormat;
    use vcgra::flow::map_app;
    use vcgra::sim::run_dataflow;
    use vcgra::VcgraArch;

    const F: FpFormat = FpFormat::PAPER;

    fn fp(x: f64) -> FpValue {
        FpValue::from_f64(x, F)
    }

    #[test]
    fn parallel_bands_match_run_dataflow() {
        let apps: Vec<AppGraph> = vec![
            AppGraph::dot_product(F, &[0.5, 0.25, 0.125]),
            AppGraph::mac_chain(F, &[1.0, -1.0]),
        ];
        let mappings: Vec<_> = apps
            .iter()
            .map(|a| map_app(a, VcgraArch::paper_4x4(), 3).unwrap())
            .collect();
        let inputs: Vec<Vec<Vec<FpValue>>> = apps
            .iter()
            .map(|a| {
                (0..10)
                    .map(|i| (0..a.num_inputs).map(|j| fp((i * 7 + j) as f64 * 0.5)).collect())
                    .collect()
            })
            .collect();
        let bands: Vec<BandWork> = apps
            .iter()
            .zip(&mappings)
            .zip(&inputs)
            .enumerate()
            .map(|(t, ((graph, mapping), ins))| BandWork {
                shared: false,
                swap_in_first: false,
                switch_cost: Duration::ZERO,
                jobs: vec![Job {
                    tenant: t as TenantId,
                    epoch: 0,
                    graph,
                    mapping,
                    inputs: ins.clone(),
                }],
            })
            .collect();
        let runs = run_bands(bands, 4, 4);
        assert_eq!(runs.len(), 2);
        for (t, run) in runs.iter().enumerate() {
            assert_eq!(run.items, 10);
            assert_eq!(run.batches, 3, "10 items in chunks of 4");
            assert_eq!(run.context_switches, 0);
            for (input, out) in inputs[t].iter().zip(&run.outputs) {
                let want = run_dataflow(&apps[t], input);
                let got: Vec<u64> = out.iter().map(|v| v.bits).collect();
                let want_bits: Vec<u64> = want.iter().map(|v| v.bits).collect();
                assert_eq!(got, want_bits, "tenant {t} bit-exact");
            }
        }
    }

    #[test]
    fn switch_port_time_survives_huge_switch_counts() {
        let cost = Duration::from_millis(100);
        // Sanity at small counts: identical to the obvious product.
        assert_eq!(switch_port_time(cost, 0), Duration::ZERO);
        assert_eq!(switch_port_time(cost, 3), cost * 3);
        // Past u32::MAX switches the old `cost * switches as u32` cast
        // truncated the count (here to 1); the u128 path keeps every
        // switch.
        let switches = u64::from(u32::MAX) + 2;
        let got = switch_port_time(cost, switches);
        assert_eq!(got, Duration::from_millis(100 * switches));
        assert!(got > cost * u32::MAX, "no truncation back into u32 range");
        // And the astronomically-large product saturates instead of
        // panicking.
        assert_eq!(switch_port_time(Duration::MAX, u64::MAX), Duration::MAX);
    }

    #[test]
    fn shared_band_charges_context_switches() {
        let app = AppGraph::dot_product(F, &[1.0, 2.0]);
        let mapping = map_app(&app, VcgraArch::paper_4x4(), 1).unwrap();
        let inputs: Vec<Vec<FpValue>> = vec![vec![fp(1.0), fp(2.0)]; 3];
        let cost = Duration::from_millis(100);
        let band = BandWork {
            shared: true,
            swap_in_first: false,
            switch_cost: cost,
            jobs: (0..3)
                .map(|t| Job { tenant: t, epoch: 0, graph: &app, mapping: &mapping, inputs: inputs.clone() })
                .collect(),
        };
        let runs = run_bands(vec![band], 2, 8);
        assert_eq!(runs[0].context_switches, 0, "first slot is already resident");
        assert_eq!(runs[1].context_switches, 1);
        assert_eq!(runs[2].context_switches, 1);
        assert_eq!(runs[1].switch_port_time, cost);

        // With another tenant resident from a previous run, the first slot
        // pays a swap-in too.
        let band = BandWork {
            shared: true,
            swap_in_first: true,
            switch_cost: cost,
            jobs: vec![Job { tenant: 0, epoch: 0, graph: &app, mapping: &mapping, inputs }],
        };
        let runs = run_bands(vec![band], 1, 8);
        assert_eq!(runs[0].context_switches, 1, "resident tenant differs");
    }
}
