//! The runtime's modeled **time axis**: reconfiguration phases scheduled
//! as intervals on per-band lanes sharing one configuration port.
//!
//! The [`Ledger`](crate::Ledger) has always *summed* modeled port time —
//! an upper bound that pretends every reconfiguration serializes behind
//! every other one **and** behind all execution. The paper's virtual
//! overlay enables better: each leased band is an independent region, so
//! while the configuration port streams one band's bitstream, every
//! *other* band keeps computing (Kim et al.'s resource-sharing argument:
//! overlapping reconfiguration with computation is the domain-specific
//! win). The [`Timeline`] models exactly that:
//!
//! - every band (a `(grid, row0)` lease) is a **lane**; phases on one
//!   lane serialize (a band cannot compute while its own configuration
//!   is being rewritten), phases on different lanes overlap freely;
//! - **host→fabric port phases** ([`Phase::Admission`], [`Phase::Swap`])
//!   additionally serialize on the single configuration port — the
//!   HWICAP/MST-AXI interface streams one bitstream at a time;
//! - **grid-local replays** ([`Phase::Switch`], [`Phase::Replay`]) re-emit
//!   an image the grid already holds (a context switch re-activates a
//!   resident tenant's configuration; a compaction replay re-writes a
//!   cached image at a new row offset), so they occupy only their own
//!   lane and overlap both the port and other lanes;
//! - [`Phase::Execute`] is measured host compute on the lane — charged
//!   to no port, but it *occupies the band*, which is the window other
//!   bands' reconfigurations get to hide in.
//!
//! Scheduling is greedy and deterministic: each phase starts at its
//! lane's free time (port phases: also no earlier than the port's free
//! time) — event order *is* program order, so replaying the same
//! operations yields the same axis bit-for-bit.
//!
//! The derived quantities close ROADMAP direction 4's "charged, not
//! scheduled" gap:
//!
//! - [`Timeline::makespan`] — the modeled wall clock: when the last
//!   scheduled interval ends;
//! - [`Timeline::charged`] — summed charged durations; reconciles
//!   **exactly** with [`Ledger::total_port_time`](crate::Ledger) because
//!   the runtime feeds both from the same `Duration` values;
//! - [`Timeline::serialized`] — charged + execute: what the makespan
//!   would be if nothing overlapped (every phase end-to-end);
//! - [`Timeline::overlap_saved`] — `serialized − makespan`: the time the
//!   overlap model saves over the flat-sum story. Monotone nondecreasing
//!   over scheduling (each phase extends the makespan by at most its own
//!   duration), so it can back a monotone metrics counter.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::pool::TenantId;

/// A band lane: the `(grid, row0)` pair identifying a leased row band.
pub type Lane = (usize, usize);

/// What a scheduled interval models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Initial full configuration of an admitted tenant (host→fabric).
    Admission,
    /// Micro-reconfiguration parameter swap: dirty frames only
    /// (host→fabric).
    Swap,
    /// Time-share context switch: re-activating a resident tenant's
    /// configuration from the grid-local image (lane-local).
    Switch,
    /// Compaction replay: re-writing a relocated band's cached
    /// configuration at its new row offset (lane-local).
    Replay,
    /// Measured host execution of a tenant run (occupies the lane,
    /// charges no port).
    Execute,
}

impl Phase {
    /// True for phases that stream through the single host→fabric
    /// configuration port and therefore serialize against each other.
    pub fn uses_port(self) -> bool {
        matches!(self, Phase::Admission | Phase::Swap)
    }

    /// True for phases the [`Ledger`](crate::Ledger) charges as modeled
    /// port time. `Timeline::charged` sums exactly these, which is what
    /// lets the runtime reconcile the axis against `total_port_time`.
    pub fn charged(self) -> bool {
        !matches!(self, Phase::Execute)
    }

    /// Stable lower-case name (snapshots, traces, reports).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Admission => "admission",
            Phase::Swap => "swap",
            Phase::Switch => "switch",
            Phase::Replay => "replay",
            Phase::Execute => "execute",
        }
    }
}

/// One scheduled interval on the time axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// The band lane the interval occupies.
    pub lane: Lane,
    /// What the interval models.
    pub phase: Phase,
    /// The tenant the phase serves, when attributable.
    pub tenant: Option<TenantId>,
    /// Modeled start time (zero = runtime construction).
    pub start: Duration,
    /// Modeled duration (always non-zero: zero-length phases are not
    /// recorded).
    pub dur: Duration,
}

impl Interval {
    /// Modeled end time.
    pub fn end(&self) -> Duration {
        self.start + self.dur
    }
}

/// The modeled time axis: per-lane cursors, one port cursor, and the
/// interval log. See the module docs for the scheduling rules.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    intervals: Vec<Interval>,
    /// Next free time per lane. A lane absent from the map is free at
    /// zero. Cursors only ever advance (see [`Timeline::relocate`]), so
    /// intervals on one lane are always serialized.
    lane_free: BTreeMap<Lane, Duration>,
    /// Next free time of the configuration port.
    port_free: Duration,
    /// Running sums (kept incrementally so accessors are O(1)).
    charged: Duration,
    port_busy: Duration,
    exec_busy: Duration,
    makespan: Duration,
}

impl Timeline {
    /// An empty axis: every lane and the port free at time zero.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Schedules `dur` of `phase` on `lane`, returning the modeled start
    /// time. Zero durations return the would-be start without recording
    /// an interval (nothing happened; an empty interval would only trip
    /// the disjointness checker's bookkeeping).
    pub fn schedule(
        &mut self,
        lane: Lane,
        phase: Phase,
        tenant: Option<TenantId>,
        dur: Duration,
    ) -> Duration {
        let lane_cursor = self.lane_free.get(&lane).copied().unwrap_or(Duration::ZERO);
        let start = if phase.uses_port() { lane_cursor.max(self.port_free) } else { lane_cursor };
        if dur.is_zero() {
            return start;
        }
        let end = start + dur;
        self.lane_free.insert(lane, end);
        if phase.uses_port() {
            self.port_free = end;
            self.port_busy += dur;
        }
        if phase.charged() {
            self.charged += dur;
        }
        if phase == Phase::Execute {
            self.exec_busy += dur;
        }
        self.makespan = self.makespan.max(end);
        self.intervals.push(Interval { lane, phase, tenant, start, dur });
        start
    }

    /// Moves a lane (compaction relocation): the `from` cursor merges
    /// into `to` (the band cannot be busier than the later of the two),
    /// then the replay of the band's cached configuration is scheduled
    /// on the new lane. Returns the replay's modeled start time.
    ///
    /// The replay does *not* block the configuration port: post-slide
    /// target rows are disjoint from whatever the port streams next, and
    /// the image is grid-resident — that overlap is precisely what the
    /// flat `compaction_port_time` sum fails to model.
    ///
    /// The vacated rows stay occupied until the move completes: the
    /// `from` cursor advances to the replay's end rather than resetting,
    /// so a band admitted there later cannot overlap the outgoing band's
    /// history. That keeps every lane's intervals serialized, which is
    /// what makes `max(per-lane busy) <= makespan` a theorem.
    pub fn relocate(
        &mut self,
        from: Lane,
        to: Lane,
        tenant: Option<TenantId>,
        replay: Duration,
    ) -> Duration {
        let from_cursor = self.lane_free.get(&from).copied().unwrap_or(Duration::ZERO);
        let to_cursor = self.lane_free.get(&to).copied().unwrap_or(Duration::ZERO);
        self.lane_free.insert(to, from_cursor.max(to_cursor));
        let start = self.schedule(to, Phase::Replay, tenant, replay);
        if from != to {
            self.lane_free.insert(from, (start + replay).max(from_cursor));
        }
        start
    }

    /// The modeled wall clock: when the last scheduled interval ends.
    pub fn makespan(&self) -> Duration {
        self.makespan
    }

    /// Summed charged durations (everything but execute). Reconciles
    /// exactly with [`Ledger::total_port_time`](crate::Ledger).
    pub fn charged(&self) -> Duration {
        self.charged
    }

    /// Summed durations of phases that used the host→fabric port.
    pub fn port_busy(&self) -> Duration {
        self.port_busy
    }

    /// Summed execute durations.
    pub fn exec_busy(&self) -> Duration {
        self.exec_busy
    }

    /// What the makespan would be with no overlap at all: every charged
    /// phase and every execute laid end to end.
    pub fn serialized(&self) -> Duration {
        self.charged + self.exec_busy
    }

    /// Time the overlap model saves over the flat serialized story:
    /// `serialized() − makespan()`. Monotone nondecreasing over
    /// scheduling, so the runtime publishes it as a metrics counter.
    pub fn overlap_saved(&self) -> Duration {
        self.serialized().saturating_sub(self.makespan)
    }

    /// The interval log, in scheduling order.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Summed busy time per lane (all phases, execute included).
    pub fn lane_busy(&self) -> BTreeMap<Lane, Duration> {
        let mut busy: BTreeMap<Lane, Duration> = BTreeMap::new();
        for iv in &self.intervals {
            *busy.entry(iv.lane).or_default() += iv.dur;
        }
        busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: Duration = Duration::from_millis(1);

    #[test]
    fn port_phases_serialize_lane_phases_overlap() {
        let mut tl = Timeline::new();
        // Two admissions on different lanes share the one port: the
        // second starts when the first's stream ends.
        let a = tl.schedule((0, 0), Phase::Admission, Some(1), 10 * MS);
        let b = tl.schedule((0, 8), Phase::Admission, Some(2), 5 * MS);
        assert_eq!(a, Duration::ZERO);
        assert_eq!(b, 10 * MS);
        assert_eq!(tl.makespan(), 15 * MS);
        // Band (0,0) executes while band (0,8) is still being
        // configured — full overlap, makespan unchanged until the
        // execute outruns the port stream.
        let e = tl.schedule((0, 0), Phase::Execute, Some(1), 4 * MS);
        assert_eq!(e, 10 * MS);
        assert_eq!(tl.makespan(), 15 * MS);
        assert_eq!(tl.charged(), 15 * MS);
        assert_eq!(tl.port_busy(), 15 * MS);
        assert_eq!(tl.exec_busy(), 4 * MS);
        // Serialized story: 15 ms port + 4 ms exec = 19 ms; the axis
        // hides the execute entirely.
        assert_eq!(tl.overlap_saved(), 4 * MS);
    }

    #[test]
    fn lane_local_replay_overlaps_the_port() {
        let mut tl = Timeline::new();
        tl.schedule((0, 0), Phase::Admission, Some(1), 10 * MS);
        // A context switch on another band is grid-local: it does not
        // wait for the port.
        let s = tl.schedule((0, 8), Phase::Switch, Some(2), 3 * MS);
        assert_eq!(s, Duration::ZERO);
        assert_eq!(tl.makespan(), 10 * MS);
        assert_eq!(tl.charged(), 13 * MS);
        assert_eq!(tl.overlap_saved(), 3 * MS);
        // But the port *is* still serialized against the same lane: an
        // admission onto (0,8) waits for the switch.
        let a = tl.schedule((0, 8), Phase::Admission, Some(3), 2 * MS);
        assert_eq!(a, 10 * MS, "port free at 10ms >= lane free at 3ms");
    }

    #[test]
    fn relocate_merges_cursors_and_replays_on_the_new_lane() {
        let mut tl = Timeline::new();
        tl.schedule((0, 6), Phase::Execute, Some(1), 8 * MS);
        tl.schedule((0, 0), Phase::Execute, Some(2), 2 * MS);
        // Band at row 6 slides to row 0: the replay cannot start before
        // either the band's own history (8 ms) or the target lane's
        // (2 ms).
        let start = tl.relocate((0, 6), (0, 0), Some(1), 3 * MS);
        assert_eq!(start, 8 * MS);
        assert_eq!(tl.makespan(), 11 * MS);
        // The vacated rows stay occupied until the move completes: a new
        // band at row 6 cannot overlap the outgoing band's history.
        let a = tl.schedule((0, 6), Phase::Switch, Some(3), MS);
        assert_eq!(a, 11 * MS, "row 6 frees when the replay ends");
    }

    #[test]
    fn zero_durations_are_not_recorded() {
        let mut tl = Timeline::new();
        let start = tl.schedule((0, 0), Phase::Swap, Some(1), Duration::ZERO);
        assert_eq!(start, Duration::ZERO);
        assert!(tl.intervals().is_empty());
        assert_eq!(tl.makespan(), Duration::ZERO);
    }

    #[test]
    fn overlap_saved_is_monotone() {
        let mut tl = Timeline::new();
        let mut prev = Duration::ZERO;
        let phases =
            [Phase::Admission, Phase::Execute, Phase::Switch, Phase::Swap, Phase::Replay];
        for i in 0..40u64 {
            let lane = (0, (i % 4) as usize * 4);
            let phase = phases[(i % 5) as usize];
            tl.schedule(lane, phase, Some(i), Duration::from_millis(1 + i % 7));
            let saved = tl.overlap_saved();
            assert!(saved >= prev, "overlap_saved regressed at step {i}");
            prev = saved;
        }
    }

    #[test]
    fn makespan_bounds() {
        let mut tl = Timeline::new();
        tl.schedule((0, 0), Phase::Admission, Some(1), 10 * MS);
        tl.schedule((1, 0), Phase::Admission, Some(2), 7 * MS);
        tl.schedule((0, 0), Phase::Execute, Some(1), 20 * MS);
        tl.schedule((1, 0), Phase::Switch, Some(2), 2 * MS);
        let max_lane = tl.lane_busy().into_values().max().unwrap_or(Duration::ZERO);
        assert!(tl.makespan() >= max_lane);
        assert!(tl.makespan() >= tl.port_busy());
        assert!(tl.makespan() <= tl.serialized());
    }
}
