//! The specialized-configuration cache.
//!
//! A compiled configuration (placement + routing + settings template) is
//! keyed by the pair **(region architecture, graph structure)** — the
//! coefficient *values* are deliberately excluded. Two applications that
//! differ only in parameters (new filter taps, new iteration counts) hit
//! the same entry: the expensive `map_app` compile is skipped and only the
//! settings are specialized, which is the micro-reconfiguration fast path.
//! A structural change (different wiring, different ops, different region)
//! misses and triggers a full recompile.
//!
//! Eviction is least-recently-used over a fixed capacity.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use vcgra::app::{AppGraph, AppSource};
use vcgra::flow::VcgraMapping;
use vcgra::{PeMode, VcgraArch};

/// Structure-only signature of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct NodeSig {
    op: u8,
    a: (u8, usize),
    b: (u8, usize),
    has_coeff: bool,
}

fn src_sig(s: AppSource) -> (u8, usize) {
    match s {
        AppSource::External(i) => (0, i),
        AppSource::Node(j) => (1, j),
        AppSource::Zero => (2, 0),
    }
}

fn op_sig(op: PeMode) -> u8 {
    match op {
        PeMode::Mac => 0,
        PeMode::Mul => 1,
        PeMode::Add => 2,
        PeMode::Pass => 3,
    }
}

/// Cache key: region architecture + graph structure, coefficients excluded.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConfigKey {
    rows: usize,
    cols: usize,
    channel_capacity: usize,
    we: u32,
    wf: u32,
    num_inputs: usize,
    nodes: Vec<NodeSig>,
    outputs: Vec<usize>,
}

impl ConfigKey {
    /// Region shape the key names, `(rows, cols)`.
    pub fn region(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Nodes in the key's structure.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Stable-within-a-process fingerprint of the key: the hash the cache
    /// map buckets by. The verifier cross-checks these against an
    /// independently derived structural signature, so an `Eq`/`Hash`
    /// inconsistency here cannot silently serve one tenant another's
    /// circuit.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }

    /// Builds the key for a graph compiled onto a region architecture.
    pub fn new(region: VcgraArch, app: &AppGraph) -> Self {
        ConfigKey {
            rows: region.rows,
            cols: region.cols,
            channel_capacity: region.channel_capacity,
            we: app.format.we,
            wf: app.format.wf,
            num_inputs: app.num_inputs,
            nodes: app
                .nodes
                .iter()
                .map(|n| NodeSig {
                    op: op_sig(n.op),
                    a: src_sig(n.a),
                    b: src_sig(n.b),
                    has_coeff: n.coeff.is_some(),
                })
                .collect(),
            outputs: app.outputs.clone(),
        }
    }
}

/// One cached compile result. The mapping's settings hold whatever
/// coefficients the entry was compiled with; consumers clone it and write
/// their own parameters in (that rewrite is the fast path being bought).
#[derive(Debug)]
pub struct CachedConfig {
    /// The compiled placement/routing/settings, region-local coordinates.
    pub mapping: VcgraMapping,
    /// Host wall-clock of the `map_app` compile that produced it.
    pub compile_time: Duration,
}

/// Hit/miss/eviction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a structurally identical configuration.
    pub hits: u64,
    /// Lookups that required a compile.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
}

impl CacheStats {
    /// Warm-hit rate: hits over all lookups (0 when nothing was looked
    /// up). This is the number cache-aware placement exists to raise.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// LRU cache of compiled configurations.
pub struct ConfigCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<ConfigKey, (Arc<CachedConfig>, u64)>,
    stats: CacheStats,
}

impl ConfigCache {
    /// Creates a cache holding at most `capacity` configurations.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        ConfigCache { capacity, tick: 0, entries: HashMap::new(), stats: CacheStats::default() }
    }

    /// True when `key` is cached, **without** touching the LRU recency or
    /// the hit/miss counters. Cache-aware placement probes candidate
    /// region shapes with this before committing to a grid; counting
    /// those probes as hits would inflate the very statistic the policy
    /// is judged by.
    pub fn contains(&self, key: &ConfigKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Looks a configuration up, refreshing its recency on a hit.
    pub fn get(&mut self, key: &ConfigKey) -> Option<Arc<CachedConfig>> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some((cfg, used)) => {
                *used = self.tick;
                self.stats.hits += 1;
                Some(Arc::clone(cfg))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly compiled configuration, evicting the least
    /// recently used entry if the cache is full.
    pub fn insert(&mut self, key: ConfigKey, cfg: CachedConfig) -> Arc<CachedConfig> {
        self.tick += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        let arc = Arc::new(cfg);
        self.entries.insert(key, (Arc::clone(&arc), self.tick));
        arc
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no configuration is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Iterates the live entries (key, cached configuration), in no
    /// particular order — the verifier walks these to cross-check every
    /// entry against the region its key names.
    pub fn entries(&self) -> impl Iterator<Item = (&ConfigKey, &CachedConfig)> {
        self.entries.iter().map(|(k, (cfg, _))| (k, cfg.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softfloat::{FpFormat, FpValue};
    use vcgra::flow::map_app;

    const F: FpFormat = FpFormat::PAPER;

    fn compile(app: &AppGraph, arch: VcgraArch) -> CachedConfig {
        let m = map_app(app, arch, 7).expect("mappable");
        let t = m.compile_time;
        CachedConfig { mapping: m, compile_time: t }
    }

    #[test]
    fn parameter_only_variants_share_a_key() {
        let arch = VcgraArch::paper_4x4();
        let a = AppGraph::dot_product(F, &[1.0, 2.0, 3.0]);
        let b = a.with_coeffs(
            &[9.0, -1.0, 0.5].map(|c| FpValue::from_f64(c, F)),
        );
        assert_eq!(ConfigKey::new(arch, &a), ConfigKey::new(arch, &b));
        // Structural change: different key.
        let c = AppGraph::dot_product(F, &[1.0, 2.0, 3.0, 4.0]);
        assert_ne!(ConfigKey::new(arch, &a), ConfigKey::new(arch, &c));
        // Same graph, different region: different key.
        assert_ne!(
            ConfigKey::new(arch, &a),
            ConfigKey::new(VcgraArch::new(2, 4, 2), &a)
        );
    }

    #[test]
    fn hit_miss_and_lru_eviction() {
        let arch = VcgraArch::paper_4x4();
        let apps: Vec<AppGraph> = (2..=5)
            .map(|n| AppGraph::dot_product(F, &vec![1.0; n]))
            .collect();
        let mut cache = ConfigCache::new(2);
        for app in &apps[..2] {
            let key = ConfigKey::new(arch, app);
            assert!(cache.get(&key).is_none());
            cache.insert(key, compile(app, arch));
        }
        // Touch the first entry so the second becomes LRU.
        assert!(cache.get(&ConfigKey::new(arch, &apps[0])).is_some());
        cache.insert(ConfigKey::new(arch, &apps[2]), compile(&apps[2], arch));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&ConfigKey::new(arch, &apps[0])).is_some(), "kept");
        assert!(cache.get(&ConfigKey::new(arch, &apps[1])).is_none(), "evicted");
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.hits >= 2 && s.misses >= 3);
    }
}
