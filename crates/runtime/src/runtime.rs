//! The runtime orchestrator: admission, specialization, streaming.
//!
//! Lifecycle of an application:
//!
//! 1. **submit** — the scheduler leases a grid region. Placement is
//!    **cache-aware**: among the grids that could host a dedicated band,
//!    the runtime prefers one whose (region, structure) key is already
//!    warm in the configuration cache, so a mixed-width pool does not
//!    recompile one structure once per grid width. If no grid has a
//!    contiguous band but one has enough *fragmented* free rows, the
//!    scheduler **compacts** — slides that grid's bands down and replays
//!    the displaced tenants' configurations onto the translated bands
//!    (charged to the ledger as reconfiguration time; each moved lease's
//!    `epoch` advances). If even compaction cannot help and no band is
//!    shareable, the request enters the FIFO **admission queue** and
//!    `submit` returns [`Admission::Queued`] instead of an error.
//!    Once a region is leased, the configuration cache is consulted with
//!    the (region, structure) key: a **miss** runs the full `map_app`
//!    compile and caches the result; a **hit** clones the cached
//!    placement and only rewrites the settings with the tenant's own
//!    parameters (host-side fast path);
//! 2. **swap_params / set_counter** — parameter-only changes never
//!    recompile: the pricer evaluates the PE's PPC functions and prices
//!    exactly the dirty frames (micro-reconfiguration fast path);
//! 3. **resubmit** — the structural decision point: same structure routes
//!    to the swap path, a changed structure releases the lease and
//!    recompiles (or queues, when the pool is full);
//! 4. **run** — batched streams execute bands-in-parallel through the
//!    engine; every item is bit-exact with `run_dataflow`;
//! 5. **release** — frees the region and **drains the queue**: waiting
//!    tenants admit in strict FIFO order until the head no longer fits.
//!
//! Queue discipline: admission order is strict FIFO. While the queue is
//! non-empty every new submission joins the tail — a late small tenant
//! never jumps an early large one (head-of-line blocking is the price of
//! a deterministic, starvation-free order). [`Runtime::release`] returns
//! the admissions the drain produced; [`Runtime::run`] also drains before
//! executing so capacity freed out-of-band is never left idle.
//!
//! The [`Ledger`] accumulates both sides of the paper's Section V
//! argument: measured host compile/execution time, and modeled
//! configuration-port time anchored on the 251 ms-per-PE estimate —
//! including the replay cost of every compaction move.
//!
//! Since PR 10 the ledger's flat sum is complemented by a modeled **time
//! axis** ([`crate::timeline`]): every charged phase is also scheduled
//! as an interval on its band's lane (host→fabric phases serialized on
//! the one configuration port, grid-local replays overlapping freely),
//! yielding [`Ledger::modeled_makespan`] — what the reconfiguration
//! story actually costs when one band's reconfiguration overlaps other
//! bands' execution — and [`Ledger::overlap_saved`], the gap to the
//! serialized sum. [`Runtime::compact_background`] uses the axis to
//! schedule compaction into idle port windows between waves instead of
//! charging it synchronously against an admission.

use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

use dcs::ReconfigInterface;
use softfloat::{FpFormat, FpValue};
use vcgra::app::AppGraph;
use vcgra::flow::{FlowError, VcgraMapping};
use vcgra::{PeSettings, VcgraArch};

use crate::cache::{CacheStats, CachedConfig, ConfigCache, ConfigKey};
use crate::engine::{run_bands, BandWork, Job, TenantRun};
use crate::pool::{GridPool, Lease, PoolError, Relocation, TenantId};
use crate::pricer::{PeChange, SettingsPricer, SwapReport};
use crate::timeline::{Phase, Timeline};

/// Runtime construction parameters.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// The grid pool (one overlay generation: equal channel capacity).
    pub grids: Vec<VcgraArch>,
    /// Configurations kept in the cache.
    pub cache_capacity: usize,
    /// Worker threads for streaming execution.
    pub workers: usize,
    /// Streaming chunk size.
    pub batch_size: usize,
    /// Configuration interface priced by the ledger.
    pub iface: ReconfigInterface,
    /// Floating-point format of the pricing PE (reduced by default so the
    /// lazy pricer build stays sub-second).
    pub pricer_format: FpFormat,
    /// Placement seed for cold compiles.
    pub place_seed: u64,
    /// Queue oversubscribed submissions (FIFO, drained on release)
    /// instead of erroring with [`PoolError::Oversubscribed`].
    pub queue: bool,
    /// Compact fragmented grids (relocate bands) to admit tenants whose
    /// row demand fits the free rows but not any contiguous run.
    pub compact: bool,
    /// Cache-aware placement: among feasible grids, prefer one whose
    /// (region, structure) key is already warm in the configuration
    /// cache over plain first-fit.
    pub cache_aware: bool,
    /// Time-multiplex big-enough existing bands when no dedicated band
    /// can be carved (even by compaction). Off, the runtime prefers
    /// queueing latency over per-context-switch reconfiguration cost.
    pub time_share: bool,
    /// Run the scheduler-state verifier after every mutating operation
    /// (`submit`/`resubmit`/`run`/`release`) and fail the operation with
    /// [`RuntimeError::Invariant`] if any invariant is violated. Off by
    /// default; the serve driver's `--verify` mode turns it on.
    pub verify_on_admit: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            grids: vec![VcgraArch::new(8, 4, 2), VcgraArch::new(8, 4, 2)],
            cache_capacity: 32,
            workers: 4,
            batch_size: 64,
            iface: ReconfigInterface::Hwicap,
            pricer_format: FpFormat::new(4, 6),
            place_seed: 42,
            queue: true,
            compact: true,
            cache_aware: true,
            time_share: true,
            verify_on_admit: false,
        }
    }
}

/// Everything that can go wrong at the runtime surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The scheduler could not place the application.
    Pool(PoolError),
    /// The compile failed (e.g. unroutable on the leased region).
    Flow(FlowError),
    /// Unknown tenant id.
    UnknownTenant(TenantId),
    /// The tenant is waiting in the admission queue — it has no lease
    /// yet, so it cannot run, swap, or resubmit structurally.
    Waiting(TenantId),
    /// Parameter vector does not match the graph's coefficient slots.
    BadParamArity {
        /// Coefficient-bearing nodes in the graph.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// Stream input arity does not match the graph.
    BadInputArity {
        /// External inputs the graph declares.
        expected: usize,
        /// Values supplied per vector.
        got: usize,
    },
    /// Node index outside the tenant's graph.
    NodeOutOfRange {
        /// Index supplied.
        node: usize,
        /// Nodes in the graph.
        nodes: usize,
    },
    /// The scheduler-state verifier found a broken invariant
    /// (`RuntimeConfig::verify_on_admit`). The string lists every
    /// violation the sched pass reported.
    Invariant(String),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Pool(e) => write!(f, "placement failed: {e}"),
            RuntimeError::Flow(e) => write!(f, "compile failed: {e}"),
            RuntimeError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            RuntimeError::Waiting(t) => {
                write!(f, "tenant {t} is queued for admission and has no lease yet")
            }
            RuntimeError::BadParamArity { expected, got } => {
                write!(f, "parameter vector has {got} values, graph has {expected} slots")
            }
            RuntimeError::BadInputArity { expected, got } => {
                write!(f, "input vector has {got} values, graph has {expected} inputs")
            }
            RuntimeError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range, graph has {nodes} nodes")
            }
            RuntimeError::Invariant(detail) => {
                write!(f, "scheduler invariant violated: {detail}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<PoolError> for RuntimeError {
    fn from(e: PoolError) -> Self {
        RuntimeError::Pool(e)
    }
}

impl From<FlowError> for RuntimeError {
    fn from(e: FlowError) -> Self {
        RuntimeError::Flow(e)
    }
}

/// Result of one `submit`: the application was either placed immediately
/// or joined the FIFO admission queue.
#[derive(Debug, Clone)]
pub enum Admission {
    /// A region was leased and the configuration is loaded.
    Admitted(Admitted),
    /// The pool is full; the application waits in the admission queue
    /// and will be placed by a future `release`/`drain_queue`.
    Queued(Queued),
}

impl Admission {
    /// The tenant id, placed or queued.
    pub fn tenant(&self) -> TenantId {
        match self {
            Admission::Admitted(a) => a.tenant,
            Admission::Queued(q) => q.tenant,
        }
    }

    /// True when the submission went to the queue.
    pub fn is_queued(&self) -> bool {
        matches!(self, Admission::Queued(_))
    }

    /// The placement report, if the application was placed immediately.
    pub fn admitted(self) -> Option<Admitted> {
        match self {
            Admission::Admitted(a) => Some(a),
            Admission::Queued(_) => None,
        }
    }

    /// Unwraps the placement report; panics with `msg` if queued.
    pub fn expect_admitted(self, msg: &str) -> Admitted {
        match self {
            Admission::Admitted(a) => a,
            Admission::Queued(q) => panic!("{msg}: tenant {} was queued", q.tenant),
        }
    }
}

/// Report of one *placed* admission.
#[derive(Debug, Clone)]
pub struct Admitted {
    /// Assigned tenant id.
    pub tenant: TenantId,
    /// Leased region.
    pub lease: Lease,
    /// True when the configuration cache already held the structure.
    pub cache_hit: bool,
    /// Bands the scheduler relocated (compaction) to place this tenant.
    pub relocations: usize,
    /// Measured host time of the whole admission (compile or specialize).
    pub admit_time: Duration,
    /// Measured host time of `map_app` (zero on a cache hit).
    pub compile_time: Duration,
    /// Modeled port time to configure the tenant's PEs from scratch.
    pub config_port_time: Duration,
}

/// A submission parked in the admission queue.
#[derive(Debug, Clone)]
pub struct Queued {
    /// Assigned tenant id (stable across the wait).
    pub tenant: TenantId,
    /// Position in the queue at enqueue time (0 = head).
    pub position: usize,
}

/// What `resubmit` decided to do.
#[derive(Debug, Clone)]
pub enum Refresh {
    /// Structure unchanged: served by the micro-reconfiguration fast path.
    Swapped(SwapReport),
    /// Structure changed: full recompile (possibly relocated).
    Recompiled(Admitted),
    /// Structure changed and the pool is full: the tenant surrendered its
    /// lease and joined the admission queue with the new graph.
    Queued(Queued),
}

/// Per-tenant accumulated accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct TenantStats {
    /// Input vectors processed.
    pub items: usize,
    /// Streaming batches processed.
    pub batches: usize,
    /// Measured host execution time.
    pub exec_time: Duration,
    /// Parameter swaps served from the fast path.
    pub swaps: usize,
    /// Frames rewritten by those swaps.
    pub swap_frames: usize,
    /// Modeled port time of those swaps.
    pub swap_port_time: Duration,
    /// Context switches charged while time-multiplexed.
    pub context_switches: usize,
    /// Modeled port time of those switches.
    pub switch_port_time: Duration,
    /// Times this tenant's band was relocated by compaction.
    pub relocations: usize,
}

/// One admitted application.
pub struct Tenant {
    /// Tenant id.
    pub id: TenantId,
    /// Display name.
    pub name: String,
    /// Current graph (parameters included).
    pub graph: AppGraph,
    /// Placed configuration, settings in sync with `graph`.
    pub mapping: VcgraMapping,
    /// Leased region (its `epoch` counts compaction moves).
    pub lease: Lease,
    key: ConfigKey,
    /// Accumulated accounting.
    pub stats: TenantStats,
    /// Memoized structural signature for the sched verifier, derived once
    /// at admission. Sound to reuse for the tenant's lifetime: every
    /// mutating path either preserves `same_structure` (parameter swaps,
    /// counters — the signature ignores coefficient *values*) or retires
    /// this `Tenant` and admits a fresh one (structural resubmit), and
    /// compaction moves bands without touching the compiled region shape.
    sig: verify::sched::StructureSig,
}

impl Tenant {
    /// The cache key this tenant's configuration lives under — tenants
    /// with equal keys share one cached compile.
    pub fn config_key(&self) -> &ConfigKey {
        &self.key
    }
}

/// Pool-wide accounting: measured host cost vs modeled port cost.
///
/// This struct is a *view*: every counter lives in the runtime's
/// [`trace::Registry`] (metric names `runtime.*`, durations as `*_ns`
/// nanosecond counters), and the runtime materializes this struct from
/// the registry after each mutating operation. The public shape is
/// unchanged; [`Runtime::metrics`] exposes the registry itself, which
/// additionally carries the admission/execute latency histograms.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ledger {
    /// Admissions that compiled.
    pub cold_compiles: usize,
    /// Admissions served from the configuration cache.
    pub warm_admissions: usize,
    /// Host time in `map_app`.
    pub host_compile_time: Duration,
    /// Host time of all admissions (compile + specialize).
    pub host_admit_time: Duration,
    /// Modeled port time of initial configurations.
    pub admission_port_time: Duration,
    /// Submissions that entered the admission queue.
    pub queued: usize,
    /// Queued submissions later placed by a drain.
    pub queue_admitted: usize,
    /// Queued submissions dropped because placement failed terminally
    /// (too big for any grid, or the compile failed).
    pub queue_dropped: usize,
    /// Queued submissions cancelled by `release` before being placed
    /// (`queued == queue_admitted + queue_dropped + queue_cancelled +`
    /// the current queue depth, always).
    pub queue_cancelled: usize,
    /// Structural signatures derived at admission (the memo fills).
    pub sig_derivations: usize,
    /// Host time spent deriving those signatures.
    pub sig_derive_time: Duration,
    /// Compaction events (each may relocate several bands).
    pub compactions: usize,
    /// Bands relocated across all compactions.
    pub relocated_bands: usize,
    /// Modeled port time replaying relocated bands' configurations.
    pub compaction_port_time: Duration,
    /// Parameter swaps.
    pub swaps: usize,
    /// Frames rewritten by swaps.
    pub swap_frames: usize,
    /// Modeled port time of swaps.
    pub swap_port_time: Duration,
    /// Host time evaluating PPC functions during swaps.
    pub swap_eval_time: Duration,
    /// Context switches across all shared bands.
    pub context_switches: usize,
    /// Modeled port time of context switches.
    pub switch_port_time: Duration,
    /// Input vectors executed.
    pub items: usize,
    /// Measured host execution time (summed over parallel bands).
    pub exec_time: Duration,
    /// Modeled makespan of the time axis: when the last scheduled
    /// phase ends, with reconfiguration of one band overlapped against
    /// other bands' execution (see [`crate::timeline`]). Always at most
    /// `total_port_time() + exec_time`-shaped serialized story; on
    /// overlapping workloads strictly less than [`Ledger::total_port_time`].
    pub modeled_makespan: Duration,
    /// Time the overlap model saves over the fully serialized story
    /// (`charged + execute` laid end to end minus the makespan).
    /// Monotone nondecreasing.
    pub overlap_saved: Duration,
    /// The paper's per-PE full-reconfiguration unit on the priced
    /// interface (251 ms on HWICAP) — the ledger's anchor constant.
    pub paper_pe_unit: Duration,
}

impl Ledger {
    /// Total modeled configuration-port time (admissions + swaps +
    /// context switches + compaction replays) — the "reconfiguration
    /// cost" side of Section V. This is the *flat sum*: every charge
    /// laid end to end. [`Ledger::modeled_makespan`] is what the same
    /// charges cost on the scheduled time axis.
    pub fn total_port_time(&self) -> Duration {
        self.admission_port_time
            + self.swap_port_time
            + self.switch_port_time
            + self.compaction_port_time
    }
}

/// One tenant's streaming request.
#[derive(Debug, Clone)]
pub struct StreamRequest {
    /// Target tenant.
    pub tenant: TenantId,
    /// Input vectors (each `graph.num_inputs` long).
    pub inputs: Vec<Vec<FpValue>>,
}

/// A submission waiting in the admission queue.
struct Pending {
    tenant: TenantId,
    name: String,
    graph: AppGraph,
}

/// Registry-backed cells behind the [`Ledger`] view: one counter handle
/// per field, recorded lock-free and materialized by
/// [`LedgerCells::view`]. Durations are nanosecond counters (`*_ns`).
struct LedgerCells {
    cold_compiles: trace::Counter,
    warm_admissions: trace::Counter,
    host_compile_ns: trace::Counter,
    host_admit_ns: trace::Counter,
    admission_port_ns: trace::Counter,
    queued: trace::Counter,
    queue_admitted: trace::Counter,
    queue_dropped: trace::Counter,
    queue_cancelled: trace::Counter,
    sig_derivations: trace::Counter,
    sig_derive_ns: trace::Counter,
    compactions: trace::Counter,
    relocated_bands: trace::Counter,
    compaction_port_ns: trace::Counter,
    swaps: trace::Counter,
    swap_frames: trace::Counter,
    swap_port_ns: trace::Counter,
    swap_eval_ns: trace::Counter,
    context_switches: trace::Counter,
    switch_port_ns: trace::Counter,
    items: trace::Counter,
    exec_ns: trace::Counter,
    /// Modeled makespan of the time axis (a gauge: it is a level, not a
    /// flow — it can only be *read* as "the current end of the axis").
    makespan_ns: trace::Gauge,
    /// Overlap savings vs the serialized story (monotone, so a counter:
    /// `sync_ledger` adds the delta since the last sync).
    overlap_saved_ns: trace::Counter,
}

impl LedgerCells {
    fn new(reg: &trace::Registry) -> Self {
        LedgerCells {
            cold_compiles: reg.counter("runtime.cold_compiles"),
            warm_admissions: reg.counter("runtime.warm_admissions"),
            host_compile_ns: reg.counter("runtime.host_compile_ns"),
            host_admit_ns: reg.counter("runtime.host_admit_ns"),
            admission_port_ns: reg.counter("runtime.admission_port_ns"),
            queued: reg.counter("runtime.queued"),
            queue_admitted: reg.counter("runtime.queue_admitted"),
            queue_dropped: reg.counter("runtime.queue_dropped"),
            queue_cancelled: reg.counter("runtime.queue_cancelled"),
            sig_derivations: reg.counter("runtime.sig_derivations"),
            sig_derive_ns: reg.counter("runtime.sig_derive_ns"),
            compactions: reg.counter("runtime.compactions"),
            relocated_bands: reg.counter("runtime.relocated_bands"),
            compaction_port_ns: reg.counter("runtime.compaction_port_ns"),
            swaps: reg.counter("runtime.swaps"),
            swap_frames: reg.counter("runtime.swap_frames"),
            swap_port_ns: reg.counter("runtime.swap_port_ns"),
            swap_eval_ns: reg.counter("runtime.swap_eval_ns"),
            context_switches: reg.counter("runtime.context_switches"),
            switch_port_ns: reg.counter("runtime.switch_port_ns"),
            items: reg.counter("runtime.items"),
            exec_ns: reg.counter("runtime.exec_ns"),
            makespan_ns: reg.gauge("runtime.makespan_ns"),
            overlap_saved_ns: reg.counter("runtime.overlap_saved_ns"),
        }
    }

    /// Materialize the [`Ledger`] view from the registry counters.
    fn view(&self, paper_pe_unit: Duration) -> Ledger {
        fn ns(c: &trace::Counter) -> Duration {
            Duration::from_nanos(c.get())
        }
        Ledger {
            cold_compiles: self.cold_compiles.get() as usize,
            warm_admissions: self.warm_admissions.get() as usize,
            host_compile_time: ns(&self.host_compile_ns),
            host_admit_time: ns(&self.host_admit_ns),
            admission_port_time: ns(&self.admission_port_ns),
            queued: self.queued.get() as usize,
            queue_admitted: self.queue_admitted.get() as usize,
            queue_dropped: self.queue_dropped.get() as usize,
            queue_cancelled: self.queue_cancelled.get() as usize,
            sig_derivations: self.sig_derivations.get() as usize,
            sig_derive_time: ns(&self.sig_derive_ns),
            compactions: self.compactions.get() as usize,
            relocated_bands: self.relocated_bands.get() as usize,
            compaction_port_time: ns(&self.compaction_port_ns),
            swaps: self.swaps.get() as usize,
            swap_frames: self.swap_frames.get() as usize,
            swap_port_time: ns(&self.swap_port_ns),
            swap_eval_time: ns(&self.swap_eval_ns),
            context_switches: self.context_switches.get() as usize,
            switch_port_time: ns(&self.switch_port_ns),
            items: self.items.get() as usize,
            exec_time: ns(&self.exec_ns),
            modeled_makespan: Duration::from_nanos(self.makespan_ns.get().max(0) as u64),
            overlap_saved: ns(&self.overlap_saved_ns),
            paper_pe_unit,
        }
    }
}

/// The multi-tenant overlay runtime.
pub struct Runtime {
    cfg: RuntimeConfig,
    pool: GridPool,
    cache: ConfigCache,
    pricer: SettingsPricer,
    tenants: BTreeMap<TenantId, Tenant>,
    next_id: TenantId,
    /// Source of truth for the [`Ledger`] view plus the admission and
    /// execute latency histograms (`runtime.admit_ns`,
    /// `runtime.execute_ns`).
    metrics: trace::Registry,
    /// Counter handles into `metrics`, one per ledger field.
    cells: LedgerCells,
    /// Per-admission host-latency histogram (`runtime.admit_ns`).
    admit_hist: trace::Histogram,
    /// Per-tenant-run host-latency histogram (`runtime.execute_ns`).
    exec_hist: trace::Histogram,
    /// Cached [`Ledger`] view, refreshed after every mutating operation
    /// so `ledger()` can keep returning a reference.
    ledger: Ledger,
    /// FIFO admission queue: submissions the pool could not place yet.
    queue: VecDeque<Pending>,
    /// Queued tenants that were dropped during a drain (placement failed
    /// terminally), with the error that killed them.
    queue_failures: Vec<(TenantId, RuntimeError)>,
    /// Which tenant's configuration is loaded in each band
    /// (`(grid, row0)` → tenant): a shared band whose resident differs
    /// from the next run's first job pays a swap-in context switch.
    resident: BTreeMap<(usize, usize), TenantId>,
    /// The modeled time axis: every charged phase scheduled as an
    /// interval on its band's lane (see [`crate::timeline`]). Source of
    /// the `runtime.makespan_ns` gauge and `runtime.overlap_saved_ns`
    /// counter published by [`Runtime::sync_ledger`].
    timeline: Timeline,
    /// Snapshot tenant rows served from the memoized [`Tenant::sig`]
    /// instead of a fresh `StructureSig` derivation (a `Cell` because
    /// [`Runtime::snapshot`] takes `&self`).
    sig_memo_hits: std::cell::Cell<usize>,
}

impl Runtime {
    /// Builds a runtime over the configured grid pool.
    pub fn new(cfg: RuntimeConfig) -> Self {
        let pool = GridPool::new(cfg.grids.clone());
        let cache = ConfigCache::new(cfg.cache_capacity);
        let pricer = SettingsPricer::new(cfg.pricer_format, cfg.iface);
        let metrics = trace::Registry::new();
        let cells = LedgerCells::new(&metrics);
        let admit_hist = metrics.histogram("runtime.admit_ns");
        let exec_hist = metrics.histogram("runtime.execute_ns");
        let ledger = cells.view(dcs::paper_pe_reconfig(cfg.iface));
        Runtime {
            cfg,
            pool,
            cache,
            pricer,
            tenants: BTreeMap::new(),
            next_id: 0,
            metrics,
            cells,
            admit_hist,
            exec_hist,
            ledger,
            queue: VecDeque::new(),
            queue_failures: Vec::new(),
            resident: BTreeMap::new(),
            timeline: Timeline::new(),
            sig_memo_hits: std::cell::Cell::new(0),
        }
    }

    /// Admits an application: lease a region (cache-aware, compacting if
    /// needed), then compile or specialize. When the pool is full and the
    /// queue is enabled the submission parks in the FIFO queue instead of
    /// failing — it will be placed by a future [`Runtime::release`] or
    /// [`Runtime::drain_queue`] under the same tenant id.
    pub fn submit(
        &mut self,
        name: impl Into<String>,
        graph: AppGraph,
    ) -> Result<Admission, RuntimeError> {
        let id = self.next_id;
        self.next_id += 1;
        let name = name.into();
        // Strict FIFO: while earlier submissions wait, later ones join
        // the tail even if they would fit — no queue jumping. A graph
        // that could never fit any grid is still rejected synchronously;
        // queueing it would only defer the TooBig to a silent drop.
        if self.cfg.queue && !self.queue.is_empty() {
            self.pool.fits_any_grid(graph.pe_demand())?;
            let queued = self.enqueue(id, name, graph);
            self.enforce_invariants()?;
            return Ok(Admission::Queued(queued));
        }
        let admission = match self.place_and_admit(id, &name, &graph) {
            Ok(adm) => Admission::Admitted(adm),
            Err(RuntimeError::Pool(PoolError::Oversubscribed { .. })) if self.cfg.queue => {
                Admission::Queued(self.enqueue(id, name, graph))
            }
            Err(e) => return Err(e),
        };
        self.enforce_invariants()?;
        Ok(admission)
    }

    fn enqueue(&mut self, tenant: TenantId, name: String, graph: AppGraph) -> Queued {
        let position = self.queue.len();
        self.queue.push_back(Pending { tenant, name, graph });
        self.cells.queued.inc();
        self.sync_ledger();
        trace::instant("runtime.queued", vec![("tenant", tenant.into()), ("position", position.into())]);
        Queued { tenant, position }
    }

    /// Refresh the cached [`Ledger`] view from the registry counters,
    /// first publishing the time axis's derived metrics (the makespan
    /// gauge, the monotone overlap-savings counter). Called at the end
    /// of every mutating operation.
    fn sync_ledger(&mut self) {
        self.cells.makespan_ns.set(self.timeline.makespan().as_nanos() as i64);
        // `overlap_saved` is monotone over scheduling (each phase extends
        // the makespan by at most its own duration), so the counter only
        // ever needs the delta since the last sync.
        let saved = self.timeline.overlap_saved().as_nanos() as u64;
        let prev = self.cells.overlap_saved_ns.get();
        debug_assert!(saved >= prev, "overlap_saved regressed: {saved} < {prev}");
        self.cells.overlap_saved_ns.add(saved.saturating_sub(prev));
        // Charge conservation: the axis schedules exactly the durations
        // the ledger charges — nothing double-counted (a compaction
        // charged at admission is scheduled once, by the same call),
        // nothing dropped. The timeline verify pass re-proves this from
        // plain data; here it guards every mutating operation in tests.
        debug_assert_eq!(
            self.timeline.charged().as_nanos() as u64,
            self.cells.admission_port_ns.get()
                + self.cells.swap_port_ns.get()
                + self.cells.switch_port_ns.get()
                + self.cells.compaction_port_ns.get(),
            "timeline charged durations must reconcile with the ledger's port counters"
        );
        self.ledger = self.cells.view(self.ledger.paper_pe_unit);
    }

    /// Drains the admission queue: places waiting tenants in strict FIFO
    /// order until the head no longer fits (head-of-line blocking keeps
    /// the order deterministic). A head whose placement fails terminally
    /// (too big, compile error) is dropped and recorded in
    /// [`Runtime::queue_failures`]. Returns the admissions produced.
    ///
    /// `release` and `run` call this automatically; it is public so
    /// callers that free capacity out-of-band can drain explicitly.
    pub fn drain_queue(&mut self) -> Vec<Admitted> {
        let mut admitted = Vec::new();
        while let Some(front) = self.queue.pop_front() {
            match self.place_and_admit(front.tenant, &front.name, &front.graph) {
                Ok(adm) => {
                    self.cells.queue_admitted.inc();
                    admitted.push(adm);
                }
                Err(RuntimeError::Pool(PoolError::Oversubscribed { .. })) => {
                    // Still blocked: the head keeps its place.
                    self.queue.push_front(front);
                    break;
                }
                Err(e) => {
                    self.cells.queue_dropped.inc();
                    self.queue_failures.push((front.tenant, e));
                }
            }
        }
        self.sync_ledger();
        admitted
    }

    /// Leases a region and loads the configuration. Never queues — the
    /// caller decides what an `Oversubscribed` error means. `name` and
    /// `graph` are only cloned once placement has succeeded.
    fn place_and_admit(
        &mut self,
        id: TenantId,
        name: &str,
        graph: &AppGraph,
    ) -> Result<Admitted, RuntimeError> {
        // Per-request span tree: request > admission > {placement, cache,
        // compile, pricing, sig}; compaction opens its own child inside
        // apply_relocations. `serve --trace` renders admissions as these
        // nested slices.
        let mut request_span = trace::span("request");
        request_span.arg("tenant", id);
        request_span.arg("op", "admit");
        let admission_span = trace::span("admission");
        let demand = graph.pe_demand();
        let channel_capacity = self.pool.channel_capacity();

        // Cache-aware placement: among grids that can host a dedicated
        // band right now, prefer one whose region shape already has this
        // structure compiled — a warm hit there skips `map_app` entirely.
        // With no candidate, fall through to compaction / time-sharing.
        let placement_span = trace::span("placement");
        let candidates = self.pool.dedicated_candidates(demand);
        let (lease, relocations) = if !candidates.is_empty() {
            let pick = if self.cfg.cache_aware {
                let archs = self.pool.grid_archs();
                candidates
                    .iter()
                    .copied()
                    .find(|&gi| {
                        let region = VcgraArch::new(
                            GridPool::rows_needed(demand, archs[gi].cols),
                            archs[gi].cols,
                            channel_capacity,
                        );
                        self.cache.contains(&ConfigKey::new(region, graph))
                    })
                    .unwrap_or(candidates[0])
            } else {
                candidates[0]
            };
            let lease = self
                .pool
                .allocate_on(pick, id, demand)
                .expect("candidate grid has a free band");
            (lease, Vec::new())
        } else {
            self.pool.allocate_with(id, demand, self.cfg.compact, self.cfg.time_share)?
        };
        drop(placement_span);
        self.apply_relocations(&relocations);

        // Compile against the *minimal* region for this demand, not the
        // leased band (a time-shared band can be taller than needed): the
        // cache key must depend only on (grid width, structure), so a
        // tenant re-admitted onto a roomier band still hits.
        let region = VcgraArch::new(
            GridPool::rows_needed(demand, lease.cols),
            lease.cols,
            channel_capacity,
        );
        let key = ConfigKey::new(region, graph);

        let t0 = std::time::Instant::now();
        let mut cache_span = trace::span("cache");
        let lookup = self.cache.get(&key);
        cache_span.arg("hit", lookup.is_some());
        drop(cache_span);
        let (mapping, cache_hit, compile_time) = match lookup {
            Some(cached) => {
                let mut mapping = cached.mapping.clone();
                Self::write_settings(&mut mapping, graph);
                (mapping, true, Duration::ZERO)
            }
            None => {
                let compile_span = trace::span("compile");
                let mapping = match vcgra::flow::map_app(graph, region, self.cfg.place_seed) {
                    Ok(m) => m,
                    Err(e) => {
                        // The lease is surrendered; any compaction the
                        // placement performed stays (already charged).
                        self.pool.release(id);
                        return Err(e.into());
                    }
                };
                drop(compile_span);
                let compile_time = mapping.compile_time;
                let cached = self.cache.insert(
                    key.clone(),
                    CachedConfig { mapping, compile_time },
                );
                (cached.mapping.clone(), false, compile_time)
            }
        };
        let admit_time = t0.elapsed();

        let mut pricing_span = trace::span("pricing");
        let config_port_time = self.pricer.full_config_cost(demand);
        pricing_span.arg("port_ns", config_port_time.as_nanos() as u64);
        drop(pricing_span);
        if cache_hit {
            self.cells.warm_admissions.inc();
        } else {
            self.cells.cold_compiles.inc();
            self.cells.host_compile_ns.add(compile_time.as_nanos() as u64);
        }
        self.cells.host_admit_ns.add(admit_time.as_nanos() as u64);
        self.cells.admission_port_ns.add(config_port_time.as_nanos() as u64);
        // The initial configuration streams host→fabric: an exclusive
        // slot on the configuration port, serialized behind whatever the
        // port is already streaming, overlapping other bands' execution.
        self.timeline.schedule(
            (lease.grid, lease.row0),
            Phase::Admission,
            Some(id),
            config_port_time,
        );
        self.admit_hist.record_duration(admit_time);

        // Derive the verifier's structural signature once, here, instead
        // of per snapshot: under `verify_on_admit` every mutating
        // operation snapshots every live tenant, so an O(graph) signature
        // per tenant per operation turns the audit quadratic. The ledger
        // keeps the measured derivation cost so drivers can report the
        // audit seconds the memo saves.
        let t_sig = std::time::Instant::now();
        let sig_span = trace::span("sig");
        let sig = verify::sched::StructureSig::of(
            mapping.arch.rows,
            mapping.arch.cols,
            channel_capacity,
            graph,
        );
        drop(sig_span);
        self.cells.sig_derivations.inc();
        self.cells.sig_derive_ns.add(t_sig.elapsed().as_nanos() as u64);

        // Admission writes the tenant's configuration into the region, so
        // it becomes the band's resident.
        self.resident.insert((lease.grid, lease.row0), id);
        self.tenants.insert(
            id,
            Tenant {
                id,
                name: name.to_string(),
                graph: graph.clone(),
                mapping,
                lease,
                key,
                stats: TenantStats::default(),
                sig,
            },
        );
        self.sync_ledger();
        drop(admission_span);
        request_span.arg("cache_hit", cache_hit);
        request_span.arg("admit_ns", admit_time.as_nanos() as u64);
        Ok(Admitted {
            tenant: id,
            lease,
            cache_hit,
            relocations: relocations.len(),
            admit_time,
            compile_time,
            config_port_time,
        })
    }

    /// Applies a compaction's band moves to the runtime's view: leases
    /// translate to their new rows (epoch advances), the resident map
    /// follows, and the ledger charges one full-region configuration
    /// replay per moved band — relocating a band means streaming its
    /// (cached) configuration back through the port at the new offset.
    fn apply_relocations(&mut self, relocations: &[Relocation]) {
        if relocations.is_empty() {
            return;
        }
        let mut compaction_span = trace::span("compaction");
        compaction_span.arg("bands", relocations.len());
        self.cells.compactions.inc();
        let archs = self.pool.grid_archs();
        for r in relocations {
            self.cells.relocated_bands.inc();
            let replay = self.pricer.full_config_cost(r.rows * archs[r.grid].cols);
            self.cells.compaction_port_ns.add(replay.as_nanos() as u64);
            // The replay re-emits a grid-resident image at the new row
            // offset: it occupies the moved band's lane but neither the
            // host→fabric port nor any other band — the overlap window
            // the `reconfig_overlap` span makes visible under the
            // enclosing request.
            let mut overlap_span = trace::span("reconfig_overlap");
            overlap_span.arg("grid", r.grid);
            overlap_span.arg("rows", r.rows);
            overlap_span.arg("replay_ns", replay.as_nanos() as u64);
            let start = self.timeline.relocate(
                (r.grid, r.old_row0),
                (r.grid, r.new_row0),
                r.tenants.first().copied(),
                replay,
            );
            overlap_span.arg("modeled_start_ns", start.as_nanos() as u64);
            drop(overlap_span);
            if let Some(res) = self.resident.remove(&(r.grid, r.old_row0)) {
                self.resident.insert((r.grid, r.new_row0), res);
            }
            for &t in &r.tenants {
                if let Some(tenant) = self.tenants.get_mut(&t) {
                    tenant.lease = tenant.lease.translated(r.new_row0);
                    tenant.stats.relocations += 1;
                }
            }
        }
        self.sync_ledger();
    }

    /// Writes a graph's parameters into a mapping's settings (the
    /// host-side half of a specialization).
    fn write_settings(mapping: &mut VcgraMapping, graph: &AppGraph) {
        let zero = FpValue::zero(graph.format);
        let cols = mapping.arch.cols;
        for (i, node) in graph.nodes.iter().enumerate() {
            let (r, c) = mapping.place[i];
            let slot = mapping.pe_settings[r * cols + c]
                .as_mut()
                .expect("placed node has settings");
            slot.coeff = node.coeff.unwrap_or(zero);
        }
    }

    /// Looks a *placed* tenant up, distinguishing "waiting in the queue"
    /// from "never heard of it".
    fn live(&self, tenant: TenantId) -> Result<&Tenant, RuntimeError> {
        match self.tenants.get(&tenant) {
            Some(t) => Ok(t),
            None if self.queue.iter().any(|p| p.tenant == tenant) => {
                Err(RuntimeError::Waiting(tenant))
            }
            None => Err(RuntimeError::UnknownTenant(tenant)),
        }
    }

    /// Parameter-only change: new coefficients for the tenant's
    /// coefficient-bearing nodes, served by the micro-reconfiguration
    /// fast path (no recompile, dirty frames only).
    pub fn swap_params(
        &mut self,
        tenant: TenantId,
        coeffs: &[FpValue],
    ) -> Result<SwapReport, RuntimeError> {
        let t = self.live(tenant)?;
        let slots = t.graph.coeff_nodes();
        if slots.len() != coeffs.len() {
            return Err(RuntimeError::BadParamArity { expected: slots.len(), got: coeffs.len() });
        }
        let new_graph = t.graph.with_coeffs(coeffs);
        let changes: Vec<PeChange> = slots
            .iter()
            .zip(coeffs)
            .map(|(&node, &c)| {
                let (r, col) = t.mapping.place[node];
                let old = t.mapping.pe_settings[r * t.mapping.arch.cols + col]
                    .expect("placed node has settings");
                let new = PeSettings { coeff: c, ..old };
                PeChange { cell: (t.lease.row0 + r, col), old, new }
            })
            .collect();
        self.apply_changes(tenant, new_graph, changes)
    }

    /// Parameter-only change of one node's iteration counter (the other
    /// settings-register content the paper's applications retune).
    pub fn set_counter(
        &mut self,
        tenant: TenantId,
        node: usize,
        counter: u32,
    ) -> Result<SwapReport, RuntimeError> {
        let t = self.live(tenant)?;
        if node >= t.graph.nodes.len() {
            return Err(RuntimeError::NodeOutOfRange { node, nodes: t.graph.nodes.len() });
        }
        let (r, col) = t.mapping.place[node];
        let old = t.mapping.pe_settings[r * t.mapping.arch.cols + col]
            .expect("placed node has settings");
        let new = PeSettings { counter, ..old };
        let change = PeChange { cell: (t.lease.row0 + r, col), old, new };
        let graph = t.graph.clone();
        self.apply_changes(tenant, graph, vec![change])
    }

    fn apply_changes(
        &mut self,
        tenant: TenantId,
        new_graph: AppGraph,
        changes: Vec<PeChange>,
    ) -> Result<SwapReport, RuntimeError> {
        let mut request_span = trace::span("request");
        request_span.arg("tenant", tenant);
        request_span.arg("op", "swap");
        let grid_arch = self.pool.grid_archs()[self.tenants[&tenant].lease.grid];
        let mut pricing_span = trace::span("pricing");
        let report = self.pricer.price_swap((grid_arch.rows, grid_arch.cols), &changes);
        pricing_span.arg("frames", report.frames());
        drop(pricing_span);
        let t = self.tenants.get_mut(&tenant).expect("caller verified the tenant is live");
        let cols = t.mapping.arch.cols;
        for ch in &changes {
            let (r, c) = (ch.cell.0 - t.lease.row0, ch.cell.1);
            t.mapping.pe_settings[r * cols + c] = Some(ch.new);
        }
        t.graph = new_graph;
        t.stats.swaps += 1;
        t.stats.swap_frames += report.frames();
        t.stats.swap_port_time += report.port_time;
        let lane = (t.lease.grid, t.lease.row0);
        self.cells.swaps.inc();
        self.cells.swap_frames.add(report.frames() as u64);
        self.cells.swap_port_ns.add(report.port_time.as_nanos() as u64);
        self.cells.swap_eval_ns.add(report.eval_time.as_nanos() as u64);
        // Dirty frames stream host→fabric like an admission does: the
        // swap takes a (short) exclusive slot on the configuration port.
        self.timeline.schedule(lane, Phase::Swap, Some(tenant), report.port_time);
        self.sync_ledger();
        Ok(report)
    }

    /// The structural decision point: a graph with the same structure as
    /// the tenant's current one takes the swap fast path; anything else
    /// releases the lease and recompiles (the tenant id survives). A
    /// still-queued tenant simply has its pending graph replaced.
    ///
    /// The refresh re-places *in place*: the tenant's freed rows are
    /// offered to its own recompile before the queue is drained (an
    /// in-place refresh would otherwise deadlock behind its own queue
    /// entry). If the new graph no longer fits, the tenant joins the
    /// queue tail ([`Refresh::Queued`]); if the recompile itself fails
    /// (too big / unroutable) the tenant is evicted — the old lease was
    /// already surrendered.
    pub fn resubmit(
        &mut self,
        tenant: TenantId,
        graph: AppGraph,
    ) -> Result<Refresh, RuntimeError> {
        if !self.tenants.contains_key(&tenant) {
            // Queued tenant: replace the pending graph, keep the slot.
            if let Some(pos) = self.queue.iter().position(|p| p.tenant == tenant) {
                self.pool.fits_any_grid(graph.pe_demand())?;
                self.queue[pos].graph = graph;
                return Ok(Refresh::Queued(Queued { tenant, position: pos }));
            }
            return Err(RuntimeError::UnknownTenant(tenant));
        }
        let t = &self.tenants[&tenant];
        if t.graph.same_structure(&graph) {
            let coeffs = graph.coeff_values();
            return Ok(Refresh::Swapped(self.swap_params(tenant, &coeffs)?));
        }
        // Structural change: recompile under the same id.
        let name = t.name.clone();
        let stats = t.stats;
        self.pool.release(tenant);
        self.tenants.remove(&tenant);
        self.resident.retain(|_, &mut r| r != tenant);
        let refresh = match self.place_and_admit(tenant, &name, &graph) {
            Ok(admission) => {
                self.tenants
                    .get_mut(&tenant)
                    .expect("place_and_admit inserted the tenant")
                    .stats = stats;
                Refresh::Recompiled(admission)
            }
            Err(RuntimeError::Pool(PoolError::Oversubscribed { .. })) if self.cfg.queue => {
                Refresh::Queued(self.enqueue(tenant, name, graph))
            }
            Err(e) => {
                // The tenant is evicted but its rows are free now — the
                // queue must still get them.
                self.drain_queue();
                return Err(e);
            }
        };
        // A smaller replacement region may have freed rows for waiters.
        self.drain_queue();
        self.enforce_invariants()?;
        Ok(refresh)
    }

    /// Streams batched inputs through every requested tenant: bands run
    /// in parallel, shared bands serialize with context-switch charges.
    /// Drains the admission queue first, so capacity freed since the last
    /// call is never left idle (the drain's admissions are visible in the
    /// ledger and via [`Runtime::tenant`]).
    pub fn run(&mut self, requests: Vec<StreamRequest>) -> Result<Vec<TenantRun>, RuntimeError> {
        self.drain_queue();
        // Validate before borrowing for the engine.
        for req in &requests {
            let t = self.live(req.tenant)?;
            for v in &req.inputs {
                if v.len() != t.graph.num_inputs {
                    return Err(RuntimeError::BadInputArity {
                        expected: t.graph.num_inputs,
                        got: v.len(),
                    });
                }
            }
        }

        // Group requests by band, jobs ordered by the band's slot order.
        let mut by_band: BTreeMap<(usize, usize), Vec<StreamRequest>> = BTreeMap::new();
        for req in requests {
            let lease = self.tenants[&req.tenant].lease;
            by_band.entry((lease.grid, lease.row0)).or_default().push(req);
        }
        let mut next_resident: Vec<((usize, usize), TenantId)> = Vec::with_capacity(by_band.len());
        let runs = {
            let tenants = &self.tenants;
            let mut bands: Vec<BandWork<'_>> = Vec::with_capacity(by_band.len());
            for ((grid, row0), mut reqs) in by_band {
                let slots = self.pool.band_tenants(grid, row0);
                reqs.sort_by_key(|r| slots.iter().position(|&t| t == r.tenant));
                let shared = slots.len() > 1;
                let region_pes = tenants[&reqs[0].tenant].lease.pe_count();
                // The band runs its jobs in order: the first job pays a
                // swap-in when another tenant's configuration is resident,
                // and the last job's configuration stays resident.
                let swap_in_first = self
                    .resident
                    .get(&(grid, row0))
                    .is_some_and(|&r| r != reqs[0].tenant);
                next_resident.push(((grid, row0), reqs.last().expect("band group is non-empty").tenant));
                bands.push(BandWork {
                    shared,
                    swap_in_first,
                    switch_cost: self.pricer.full_config_cost(region_pes),
                    jobs: reqs
                        .into_iter()
                        .map(|req| {
                            let t = &tenants[&req.tenant];
                            Job {
                                tenant: req.tenant,
                                epoch: t.lease.epoch,
                                graph: &t.graph,
                                mapping: &t.mapping,
                                inputs: req.inputs,
                            }
                        })
                        .collect(),
                });
            }
            run_bands(bands, self.cfg.workers, self.cfg.batch_size)
        };
        self.resident.extend(next_resident);

        for run in &runs {
            let tenant = self
                .tenants
                .get_mut(&run.tenant)
                .expect("runs only cover tenants validated live above");
            let lane = (tenant.lease.grid, tenant.lease.row0);
            let stats = &mut tenant.stats;
            stats.items += run.items;
            stats.batches += run.batches;
            stats.exec_time += run.exec_time;
            stats.context_switches += run.context_switches;
            stats.switch_port_time += run.switch_port_time;
            self.cells.items.add(run.items as u64);
            self.cells.exec_ns.add(run.exec_time.as_nanos() as u64);
            self.cells.context_switches.add(run.context_switches as u64);
            self.cells.switch_port_ns.add(run.switch_port_time.as_nanos() as u64);
            // Onto the time axis: the swap-in context switch (a
            // grid-local replay of the tenant's resident image — it does
            // not touch the host→fabric port) followed by the measured
            // execution, both occupying only this band's lane. Other
            // bands' reconfigurations overlap this window freely — the
            // makespan vs summed-port-time gap the axis exists to model.
            if run.context_switches > 0 {
                self.timeline.schedule(lane, Phase::Switch, Some(run.tenant), run.switch_port_time);
            }
            self.timeline.schedule(lane, Phase::Execute, Some(run.tenant), run.exec_time);
            self.exec_hist.record_duration(run.exec_time);
        }
        self.sync_ledger();
        self.enforce_invariants()?;
        Ok(runs)
    }

    /// Releases a tenant's region (or cancels its queued admission), then
    /// drains the admission queue in FIFO order. Returns the admissions
    /// the freed capacity produced.
    pub fn release(&mut self, tenant: TenantId) -> Result<Vec<Admitted>, RuntimeError> {
        if let Some(pos) = self.queue.iter().position(|p| p.tenant == tenant) {
            self.queue.remove(pos);
            self.cells.queue_cancelled.inc();
            self.sync_ledger();
            // Cancelling the head may unblock everyone behind it.
            let admitted = self.drain_queue();
            self.enforce_invariants()?;
            return Ok(admitted);
        }
        self.tenants
            .remove(&tenant)
            .ok_or(RuntimeError::UnknownTenant(tenant))?;
        self.pool.release(tenant);
        self.resident.retain(|_, &mut r| r != tenant);
        let admitted = self.drain_queue();
        self.enforce_invariants()?;
        Ok(admitted)
    }

    /// Compacts every grid in the background, **between waves**: slides
    /// each grid's bands down to row 0 and schedules the displaced
    /// bands' configuration replays into the time axis's idle windows —
    /// each replay is a grid-local re-emit that overlaps the port and
    /// every other band, so between-wave compaction costs modeled port
    /// *charge* but (on an otherwise busy axis) little to no modeled
    /// *makespan*. Contrast with synchronous compaction at admission,
    /// where the newcomer's port stream queues behind nothing but still
    /// pays the placement wait.
    ///
    /// Returns the number of bands relocated. A defragmented pool means
    /// the next oversized admission carves a contiguous band without
    /// triggering its own relocations.
    pub fn compact_background(&mut self) -> Result<usize, RuntimeError> {
        let mut request_span = trace::span("request");
        request_span.arg("op", "compact_background");
        let mut moved = 0;
        for grid in 0..self.pool.grid_archs().len() {
            let relocations = self.pool.compact_grid(grid);
            moved += relocations.len();
            self.apply_relocations(&relocations);
        }
        request_span.arg("bands", moved);
        self.sync_ledger();
        self.enforce_invariants()?;
        Ok(moved)
    }

    /// Read access to one tenant.
    pub fn tenant(&self, id: TenantId) -> Option<&Tenant> {
        self.tenants.get(&id)
    }

    /// All live tenants in id order.
    pub fn tenants(&self) -> impl Iterator<Item = &Tenant> {
        self.tenants.values()
    }

    /// Tenants waiting in the admission queue, head first.
    pub fn queued_tenants(&self) -> Vec<TenantId> {
        self.queue.iter().map(|p| p.tenant).collect()
    }

    /// Depth of the admission queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Queued tenants dropped during drains, with the terminal error.
    pub fn queue_failures(&self) -> &[(TenantId, RuntimeError)] {
        &self.queue_failures
    }

    /// Configuration-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The pool-wide ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// The metrics registry backing the ledger: `runtime.*` counters plus
    /// the `runtime.admit_ns` / `runtime.execute_ns` latency histograms.
    pub fn metrics(&self) -> &trace::Registry {
        &self.metrics
    }

    /// Snapshot tenant rows served from the memoized structural signature
    /// (one per live tenant per [`Runtime::snapshot`]).
    pub fn sig_memo_hits(&self) -> usize {
        self.sig_memo_hits.get()
    }

    /// Estimated audit host-seconds the signature memo saved: every memo
    /// hit would otherwise have paid one derivation, priced at the
    /// measured mean cost of the derivations actually performed at
    /// admission.
    pub fn sig_seconds_saved(&self) -> f64 {
        if self.ledger.sig_derivations == 0 {
            return 0.0;
        }
        let mean = self.ledger.sig_derive_time.as_secs_f64() / self.ledger.sig_derivations as f64;
        mean * self.sig_memo_hits.get() as f64
    }

    /// Fraction of pool rows currently leased.
    pub fn utilization(&self) -> f64 {
        self.pool.utilization()
    }

    /// Read access to the scheduler's band state (for reporting and
    /// invariant checks).
    pub fn pool(&self) -> &GridPool {
        &self.pool
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// Exports the whole scheduler state as a plain-data snapshot for the
    /// `verify` crate's sched pass: grids, bands, leases, the admission
    /// queue, the resident map, the queue-flow ledger counters, and every
    /// cache entry. Tenant snapshots carry both the runtime's own cache-key
    /// fingerprint and an independently derived structural signature so
    /// the pass can prove key soundness without trusting `ConfigKey`.
    pub fn snapshot(&self) -> verify::SchedSnapshot {
        use verify::sched::{BandSnap, CacheEntrySnap, GridSnap, LedgerSnap, StructureSig, TenantSnap};
        let archs = self.pool.grid_archs();
        let cap = self.pool.channel_capacity();
        verify::SchedSnapshot {
            grids: archs
                .iter()
                .enumerate()
                .map(|(g, a)| GridSnap { rows: a.rows, cols: a.cols, free_rows: self.pool.free_rows(g) })
                .collect(),
            bands: self
                .pool
                .bands()
                .into_iter()
                .map(|b| BandSnap { grid: b.grid, row0: b.row0, rows: b.rows, tenants: b.tenants })
                .collect(),
            tenants: self
                .tenants
                .values()
                .map(|t| TenantSnap {
                    id: t.id,
                    grid: t.lease.grid,
                    row0: t.lease.row0,
                    rows: t.lease.rows,
                    cols: t.lease.cols,
                    shared: t.lease.shared,
                    demand: t.graph.pe_demand(),
                    region: (t.mapping.arch.rows, t.mapping.arch.cols),
                    placed_nodes: t.mapping.place.len(),
                    key_id: t.key.fingerprint(),
                    sig: {
                        // Served from the admission-time memo; a fresh
                        // derivation here would make every audited
                        // operation O(tenants × graph).
                        self.sig_memo_hits.set(self.sig_memo_hits.get() + 1);
                        debug_assert_eq!(
                            t.sig,
                            StructureSig::of(
                                t.mapping.arch.rows,
                                t.mapping.arch.cols,
                                cap,
                                &t.graph
                            ),
                            "memoized StructureSig went stale for tenant {}",
                            t.id
                        );
                        t.sig.clone()
                    },
                })
                .collect(),
            queue: self.queue.iter().map(|p| p.tenant).collect(),
            resident: self.resident.iter().map(|(&(g, r), &t)| (g, r, t)).collect(),
            ledger: LedgerSnap {
                // Read the registry cells, not the cached view: the view is
                // refreshed at the end of each mutating call, so mid-call
                // snapshots (invariant enforcement) would otherwise see
                // stale queue-flow counts.
                queued: self.cells.queued.get(),
                queue_admitted: self.cells.queue_admitted.get(),
                queue_dropped: self.cells.queue_dropped.get(),
                queue_cancelled: self.cells.queue_cancelled.get(),
            },
            cache: self
                .cache
                .entries()
                .map(|(k, cfg)| CacheEntrySnap {
                    key_id: k.fingerprint(),
                    region: k.region(),
                    mapping_region: (cfg.mapping.arch.rows, cfg.mapping.arch.cols),
                    key_nodes: k.node_count(),
                    placed_nodes: cfg.mapping.place.len(),
                })
                .collect(),
        }
    }

    /// Read access to the modeled time axis.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Exports the time axis as a plain-data snapshot for the `verify`
    /// crate's timeline pass, carrying the ledger's summed port time so
    /// the pass can prove charge conservation without trusting either
    /// side.
    pub fn timeline_snapshot(&self) -> verify::TimelineSnapshot {
        verify::TimelineSnapshot {
            intervals: self
                .timeline
                .intervals()
                .iter()
                .map(|iv| verify::timeline::PhaseSnap {
                    lane: iv.lane,
                    phase: iv.phase.name(),
                    uses_port: iv.phase.uses_port(),
                    charged: iv.phase.charged(),
                    tenant: iv.tenant,
                    start_ns: iv.start.as_nanos() as u64,
                    dur_ns: iv.dur.as_nanos() as u64,
                })
                .collect(),
            makespan_ns: self.timeline.makespan().as_nanos() as u64,
            // Read the registry cells, not the cached view: mid-call
            // snapshots (invariant enforcement) must see the counters as
            // charged so far, like the sched snapshot does.
            ledger_port_ns: self.cells.admission_port_ns.get()
                + self.cells.swap_port_ns.get()
                + self.cells.switch_port_ns.get()
                + self.cells.compaction_port_ns.get(),
        }
    }

    /// Runs the scheduler-state verifier over [`Runtime::snapshot`].
    pub fn verify(&self) -> verify::VerifyReport {
        verify::Verifier::new().verify_sched(&self.snapshot())
    }

    /// Runs the timeline checker over [`Runtime::timeline_snapshot`]:
    /// port exclusivity, lane exclusivity, charge conservation.
    pub fn verify_timeline(&self) -> verify::VerifyReport {
        verify::Verifier::new().verify_timeline(&self.timeline_snapshot())
    }

    /// With `verify_on_admit` set, fails the enclosing operation when the
    /// sched pass or the timeline pass finds a violated invariant.
    fn enforce_invariants(&self) -> Result<(), RuntimeError> {
        if !self.cfg.verify_on_admit {
            return Ok(());
        }
        let mut violations = self.verify().violations;
        violations.extend(self.verify_timeline().violations);
        if violations.is_empty() {
            Ok(())
        } else {
            let details: Vec<String> =
                violations.iter().map(|v| format!("[{}] {v}", v.code())).collect();
            Err(RuntimeError::Invariant(details.join("; ")))
        }
    }
}
