//! `vcgra-runtime` — a multi-tenant overlay runtime for the fully
//! parameterized VCGRA.
//!
//! The paper's value proposition is that a parameterized overlay turns an
//! application change into millisecond-scale **micro-reconfiguration**
//! instead of a full place-and-route. This crate is the layer that
//! *serves* that proposition: concurrent applications submit dataflow
//! graphs, the runtime compiles each structure **once**, and every
//! subsequent parameter-only change (new filter coefficients, new
//! iteration counters) is a settings rewrite priced at exactly its dirty
//! configuration frames.
//!
//! Architecture (each piece has its own module):
//!
//! * [`cache`] — the **specialized-configuration cache**, keyed by
//!   *(region architecture, graph structure)* with coefficient values
//!   excluded, LRU-evicted. Hits skip `map_app` entirely; misses compile
//!   and populate.
//! * [`pricer`] — micro-reconfiguration pricing via the real DCS path:
//!   a lazily-built parameterized PE (`mapping` + [`dcs::Scg`]) evaluates
//!   PPC Boolean functions and diffs dirty datapath frames, while
//!   [`fabric::frames::FrameModel::for_grid`] addresses the overlay's
//!   settings-register plane (column stripes share frames). Costs are
//!   anchored on the paper's 251 ms-per-PE HWICAP estimate.
//! * [`pool`] — the **grid-pool scheduler**: tenants lease full-width row
//!   bands (first-fit packing of small graphs onto shared grids). When a
//!   grid's free rows are fragmented, **band compaction** slides bands
//!   down (reported as [`pool::Relocation`]s, replayed and charged by the
//!   runtime; leases carry a relocation `epoch`); when every row is
//!   taken, admission time-multiplexes the least-crowded band, and each
//!   context switch is charged a full-region reconfig; when nothing is
//!   shareable either, the runtime parks the submission in a FIFO
//!   **admission queue** drained on release. Placement is
//!   **cache-aware**: among feasible grids the runtime prefers one whose
//!   region shape is already warm in the configuration cache, so a
//!   mixed-width pool compiles each structure once, not once per width.
//! * [`engine`] — **batched streaming execution**: bands run on parallel
//!   worker threads, shared bands serialize their slots, every input
//!   vector streams through `vcgra::sim::run_mapped` in bit-exact FloPoCo
//!   arithmetic.
//! * [`kernels`] — the workload library (FIR, separable 2-D stencil,
//!   tiled matrix–vector, tree reduction, vessel-segmentation stages).
//! * [`runtime`] — the orchestrator tying it together, plus the
//!   [`Ledger`] that accumulates measured host time against modeled
//!   configuration-port time.
//! * [`timeline`] — the modeled **time axis**: every charged
//!   reconfiguration phase scheduled as an interval on its band's lane,
//!   host→fabric phases serialized on the one configuration port,
//!   grid-local replays (context switches, compaction) overlapping
//!   everything else. Yields [`Ledger::modeled_makespan`] — strictly
//!   less than the flat summed port time whenever reconfiguration
//!   actually overlaps other bands' execution — and the monotone
//!   `overlap_saved` counter.
//!
//! Fast path vs. recompile, in one table:
//!
//! | change                              | path                           |
//! |-------------------------------------|--------------------------------|
//! | new coefficients, same structure    | cache hit → dirty-frame swap   |
//! | new iteration counter               | settings-plane frame(s) only   |
//! | same structure, new tenant          | cache hit → settings specialize|
//! | new structure / region shape        | full `map_app` compile, cached |
//!
//! The `xbench` binary `serve` drives a mixed-tenant soak over this crate
//! and prints the throughput/ledger tables; the integration tests pin the
//! runtime's outputs bit-for-bit to `vcgra::sim::run_dataflow`.
//!
//! **Verification.** [`runtime::Runtime::snapshot`] exports the whole
//! scheduler state as plain data for the `verify` crate's sched pass
//! (lease/band disjointness, row conservation, queue/ledger
//! reconciliation, cache-key soundness), and
//! [`runtime::Runtime::timeline_snapshot`] does the same for the
//! timeline pass (port exclusivity, lane exclusivity, charge
//! conservation against the ledger);
//! [`runtime::RuntimeConfig::verify_on_admit`] runs both passes after
//! every mutating operation and fails it on a broken invariant.

#![forbid(unsafe_code)]
#![deny(clippy::dbg_macro, clippy::todo)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod cache;
pub mod engine;
pub mod kernels;
pub mod pool;
pub mod pricer;
pub mod runtime;
pub mod timeline;

pub use cache::{CacheStats, ConfigCache, ConfigKey};
pub use engine::TenantRun;
pub use timeline::{Interval, Phase, Timeline};
pub use kernels::Workload;
pub use pool::{BandInfo, GridPool, Lease, PoolError, Relocation, TenantId};
pub use pricer::{PeChange, SettingsPricer, SwapReport};
pub use runtime::{
    Admission, Admitted, Ledger, Queued, Refresh, Runtime, RuntimeConfig, RuntimeError,
    StreamRequest, Tenant, TenantStats,
};
