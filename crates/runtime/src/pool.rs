//! The grid pool: placement of concurrent tenants onto overlay instances.
//!
//! The pool owns a set of [`VcgraArch`] grids. A tenant asks for enough
//! PEs for its graph; the scheduler carves a **band** — a horizontal
//! stripe of consecutive rows spanning the grid's full width — out of the
//! first grid with room (first-fit packing, so several small applications
//! share one grid). The runtime layers three admission upgrades on top:
//!
//! * **placement candidates** — [`GridPool::dedicated_candidates`] lists
//!   every grid that could host a dedicated band *right now*, so the
//!   runtime can pick the grid whose region shape is already warm in the
//!   configuration cache instead of blindly taking the first fit;
//! * **band compaction** — when a tenant needs N contiguous rows and N
//!   rows are free but fragmented, [`GridPool::allocate_with`] slides the
//!   grid's bands down to row 0 (preserving their order), coalescing the
//!   free rows into one run. Every move is reported as a [`Relocation`]
//!   so the runtime can replay the displaced tenants' cached
//!   configurations onto the translated bands and charge the move as
//!   reconfiguration time;
//! * **time-multiplexing** — when no dedicated band exists even after
//!   compaction, the new tenant shares the smallest already-allocated
//!   band that is big enough, and the execution engine serializes the
//!   band's tenants, charging a full-region micro-reconfiguration per
//!   context switch.
//!
//! Bands span full grid width because the VCGRA routing channels run
//! between adjacent PEs: a full-width stripe guarantees a tenant's routes
//! can never cross another tenant's region. That is also what makes
//! compaction safe: a band's placement is region-local, so relocating it
//! is a pure row translation (the same translation
//! `RouteGraph::translate_from` does across route-graph generations in
//! the par-engine) — the placement and routes survive verbatim, only the
//! physical row offset and the settings-frame addresses change.

use vcgra::VcgraArch;

/// Identifier the runtime hands out per admitted application.
pub type TenantId = u64;

/// Where a tenant's region lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// Index of the grid in the pool.
    pub grid: usize,
    /// First physical row of the band.
    pub row0: usize,
    /// Rows in the band.
    pub rows: usize,
    /// Columns (the grid's full width).
    pub cols: usize,
    /// True when the band is shared with other tenants (time-multiplexed).
    pub shared: bool,
    /// Relocation epoch: how many times this lease has been moved by
    /// band compaction. A fresh lease is epoch 0; the runtime bumps it
    /// each time the band is slid to a new `row0`.
    pub epoch: u64,
}

impl Lease {
    /// The region as a standalone architecture (what the graph compiles
    /// against — region-local coordinates).
    pub fn region_arch(&self, channel_capacity: usize) -> VcgraArch {
        VcgraArch::new(self.rows, self.cols, channel_capacity)
    }

    /// PEs in the region.
    pub fn pe_count(&self) -> usize {
        self.rows * self.cols
    }

    /// The lease translated to a new band start (what compaction does):
    /// same shape, same grid, new physical rows, epoch advanced.
    pub fn translated(&self, new_row0: usize) -> Lease {
        Lease { row0: new_row0, epoch: self.epoch + 1, ..*self }
    }
}

/// One band moved by compaction. The runtime uses this to translate the
/// displaced tenants' leases and to charge the configuration replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relocation {
    /// Grid the band lives on.
    pub grid: usize,
    /// Row the band started at before the move.
    pub old_row0: usize,
    /// Row the band starts at now.
    pub new_row0: usize,
    /// Rows in the band.
    pub rows: usize,
    /// Tenants on the band, in admission order.
    pub tenants: Vec<TenantId>,
}

/// Read-only view of one allocated band (for invariant checks and
/// reporting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BandInfo {
    /// Grid the band lives on.
    pub grid: usize,
    /// First physical row.
    pub row0: usize,
    /// Rows in the band.
    pub rows: usize,
    /// Tenants on the band, in admission order.
    pub tenants: Vec<TenantId>,
}

#[derive(Debug)]
struct Band {
    row0: usize,
    rows: usize,
    tenants: Vec<TenantId>,
}

#[derive(Debug)]
struct Grid {
    arch: VcgraArch,
    bands: Vec<Band>,
}

impl Grid {
    /// First row index at which `rows` consecutive free rows start.
    fn find_free(&self, rows: usize) -> Option<usize> {
        let mut taken = vec![false; self.arch.rows];
        for b in &self.bands {
            taken[b.row0..b.row0 + b.rows].fill(true);
        }
        let mut run = 0;
        for (r, &t) in taken.iter().enumerate() {
            run = if t { 0 } else { run + 1 };
            if run == rows {
                return Some(r + 1 - rows);
            }
        }
        None
    }

    /// Rows not covered by any band.
    fn free_rows(&self) -> usize {
        self.arch.rows - self.bands.iter().map(|b| b.rows).sum::<usize>()
    }

    /// Slides every band down so they pack from row 0 in their current
    /// row order; all free rows coalesce at the top. Returns the bands
    /// that actually moved.
    fn compact(&mut self, grid_index: usize) -> Vec<Relocation> {
        self.bands.sort_by_key(|b| b.row0);
        let mut next = 0;
        let mut moved = Vec::new();
        for b in &mut self.bands {
            if b.row0 != next {
                moved.push(Relocation {
                    grid: grid_index,
                    old_row0: b.row0,
                    new_row0: next,
                    rows: b.rows,
                    tenants: b.tenants.clone(),
                });
                b.row0 = next;
            }
            next += b.rows;
        }
        moved
    }
}

/// Pool allocation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// The graph does not fit any grid of the pool, even an empty one.
    TooBig {
        /// PEs the application needs.
        needed: usize,
        /// PEs of the largest grid in the pool.
        largest: usize,
    },
    /// The graph would fit an empty grid, but every band big enough is
    /// already carved up by smaller tenants — admission must wait for a
    /// release (the runtime queues the request when its queue is on).
    Oversubscribed {
        /// PEs the application needs.
        needed: usize,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::TooBig { needed, largest } => {
                write!(f, "application needs {needed} PEs, largest grid has {largest}")
            }
            PoolError::Oversubscribed { needed } => {
                write!(f, "no band of {needed} PEs free or shareable; release a tenant first")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// The scheduler's state: grids and their allocated bands.
pub struct GridPool {
    grids: Vec<Grid>,
}

impl GridPool {
    /// Creates a pool over the given grids. All grids must share a channel
    /// capacity (one overlay generation).
    pub fn new(grids: Vec<VcgraArch>) -> Self {
        assert!(!grids.is_empty(), "pool needs at least one grid");
        let cap = grids[0].channel_capacity;
        assert!(
            grids.iter().all(|g| g.channel_capacity == cap),
            "one channel capacity per pool"
        );
        GridPool { grids: grids.into_iter().map(|arch| Grid { arch, bands: Vec::new() }).collect() }
    }

    /// Channel capacity of the pool's overlay generation.
    pub fn channel_capacity(&self) -> usize {
        self.grids[0].arch.channel_capacity
    }

    /// Grid shapes (for reporting).
    pub fn grid_archs(&self) -> Vec<VcgraArch> {
        self.grids.iter().map(|g| g.arch).collect()
    }

    /// Rows not covered by any band on one grid.
    pub fn free_rows(&self, grid: usize) -> usize {
        self.grids[grid].free_rows()
    }

    /// Every allocated band, grids in index order, bands in row order.
    pub fn bands(&self) -> Vec<BandInfo> {
        let mut out = Vec::new();
        for (gi, grid) in self.grids.iter().enumerate() {
            let mut rows: Vec<&Band> = grid.bands.iter().collect();
            rows.sort_by_key(|b| b.row0);
            out.extend(rows.into_iter().map(|b| BandInfo {
                grid: gi,
                row0: b.row0,
                rows: b.rows,
                tenants: b.tenants.clone(),
            }));
        }
        out
    }

    /// Rows a `demand`-PE application needs on a `cols`-wide grid
    /// (regions are at least 2×2 so they are valid [`VcgraArch`]s).
    /// Admission compiles against exactly this region, so band sizing and
    /// cache keys share one formula.
    pub fn rows_needed(demand: usize, cols: usize) -> usize {
        demand.div_ceil(cols).max(2)
    }

    /// Grids (in index order) that could host a *dedicated* band for
    /// `demand` PEs right now, without compaction. The runtime uses this
    /// list for cache-aware placement: among feasible grids, prefer one
    /// whose region shape is already warm in the configuration cache.
    pub fn dedicated_candidates(&self, demand: usize) -> Vec<usize> {
        self.grids
            .iter()
            .enumerate()
            .filter(|(_, g)| {
                let rows = Self::rows_needed(demand, g.arch.cols);
                rows <= g.arch.rows && g.find_free(rows).is_some()
            })
            .map(|(gi, _)| gi)
            .collect()
    }

    /// Places a dedicated band for `tenant` on a specific grid. Returns
    /// `None` when the grid has no contiguous run of the needed rows (use
    /// [`GridPool::dedicated_candidates`] first).
    pub fn allocate_on(&mut self, grid: usize, tenant: TenantId, demand: usize) -> Option<Lease> {
        assert!(demand > 0);
        let g = &mut self.grids[grid];
        let rows = Self::rows_needed(demand, g.arch.cols);
        if rows > g.arch.rows {
            return None;
        }
        let row0 = g.find_free(rows)?;
        g.bands.push(Band { row0, rows, tenants: vec![tenant] });
        Some(Lease { grid, row0, rows, cols: g.arch.cols, shared: false, epoch: 0 })
    }

    /// Places a tenant needing `demand` PEs: dedicated first-fit band if
    /// any grid has room; otherwise the least-crowded big-enough existing
    /// band, time-multiplexed. Never compacts — see
    /// [`GridPool::allocate_with`].
    pub fn allocate(&mut self, tenant: TenantId, demand: usize) -> Result<Lease, PoolError> {
        self.allocate_with(tenant, demand, false, true).map(|(lease, _)| lease)
    }

    /// Places a tenant needing `demand` PEs, with band compaction as a
    /// middle step when `compact` is set:
    ///
    /// 1. dedicated first-fit band on any grid;
    /// 2. (`compact`) first grid whose *total* free rows suffice: slide
    ///    its bands down to coalesce the free rows, then allocate the
    ///    dedicated band — the moves come back as [`Relocation`]s;
    /// 3. (`share`) time-multiplex the least-crowded big-enough existing
    ///    band — a runtime that prefers queueing latency over
    ///    context-switch cost passes `share: false` to skip this step;
    /// 4. [`PoolError::Oversubscribed`] / [`PoolError::TooBig`].
    pub fn allocate_with(
        &mut self,
        tenant: TenantId,
        demand: usize,
        compact: bool,
        share: bool,
    ) -> Result<(Lease, Vec<Relocation>), PoolError> {
        assert!(demand > 0);
        // 1. Dedicated band, first fit.
        for (gi, grid) in self.grids.iter_mut().enumerate() {
            let rows = Self::rows_needed(demand, grid.arch.cols);
            if rows > grid.arch.rows {
                continue;
            }
            if let Some(row0) = grid.find_free(rows) {
                grid.bands.push(Band { row0, rows, tenants: vec![tenant] });
                let lease =
                    Lease { grid: gi, row0, rows, cols: grid.arch.cols, shared: false, epoch: 0 };
                return Ok((lease, Vec::new()));
            }
        }
        // 2. Compaction: the free rows exist, just not contiguously.
        if compact {
            for gi in 0..self.grids.len() {
                let rows = Self::rows_needed(demand, self.grids[gi].arch.cols);
                if rows > self.grids[gi].arch.rows || self.grids[gi].free_rows() < rows {
                    continue;
                }
                let relocations = self.grids[gi].compact(gi);
                let grid = &mut self.grids[gi];
                let row0 = grid.find_free(rows).expect("compaction coalesces all free rows");
                grid.bands.push(Band { row0, rows, tenants: vec![tenant] });
                let lease =
                    Lease { grid: gi, row0, rows, cols: grid.arch.cols, shared: false, epoch: 0 };
                return Ok((lease, relocations));
            }
        }
        // 3. Time-multiplex: least-crowded band with enough PEs.
        let mut best: Option<(usize, usize)> = None; // (grid, band index)
        if share {
            for (gi, grid) in self.grids.iter().enumerate() {
                let rows = Self::rows_needed(demand, grid.arch.cols);
                for (bi, band) in grid.bands.iter().enumerate() {
                    if band.rows < rows {
                        continue;
                    }
                    let better = match best {
                        None => true,
                        Some((bg, bb)) => {
                            let cur = &self.grids[bg].bands[bb];
                            (band.tenants.len(), band.rows) < (cur.tenants.len(), cur.rows)
                        }
                    };
                    if better {
                        best = Some((gi, bi));
                    }
                }
            }
        }
        if let Some((gi, bi)) = best {
            let cols = self.grids[gi].arch.cols;
            let band = &mut self.grids[gi].bands[bi];
            band.tenants.push(tenant);
            let lease = Lease {
                grid: gi,
                row0: band.row0,
                rows: band.rows,
                cols,
                shared: true,
                epoch: 0,
            };
            return Ok((lease, Vec::new()));
        }
        // 4. Nothing free, nothing shareable: distinguish "never fits"
        // from "fits an empty grid, come back after a release".
        self.fits_any_grid(demand)?;
        Err(PoolError::Oversubscribed { needed: demand })
    }

    /// `Ok` when `demand` would fit some *empty* grid of the pool —
    /// i.e. admission is a matter of waiting, not impossibility.
    /// [`PoolError::TooBig`] otherwise. Touches no state; the runtime
    /// uses it to reject impossible submissions synchronously instead of
    /// parking them in the queue.
    pub fn fits_any_grid(&self, demand: usize) -> Result<(), PoolError> {
        let fits = self
            .grids
            .iter()
            .any(|g| Self::rows_needed(demand, g.arch.cols) <= g.arch.rows);
        if fits {
            Ok(())
        } else {
            let largest = self.grids.iter().map(|g| g.arch.pe_count()).max().unwrap_or(0);
            Err(PoolError::TooBig { needed: demand, largest })
        }
    }

    /// Compacts one grid unconditionally (test/maintenance hook): slides
    /// its bands down to row 0 preserving order, returns the moves.
    pub fn compact_grid(&mut self, grid: usize) -> Vec<Relocation> {
        self.grids[grid].compact(grid)
    }

    /// Releases a tenant's slot; empty bands are freed. Returns true if
    /// the tenant held a lease.
    pub fn release(&mut self, tenant: TenantId) -> bool {
        for grid in &mut self.grids {
            for band in &mut grid.bands {
                if let Some(pos) = band.tenants.iter().position(|&t| t == tenant) {
                    band.tenants.remove(pos);
                    grid.bands.retain(|b| !b.tenants.is_empty());
                    return true;
                }
            }
        }
        false
    }

    /// Tenants sharing the band at (`grid`, `row0`), in admission order.
    pub fn band_tenants(&self, grid: usize, row0: usize) -> Vec<TenantId> {
        self.grids[grid]
            .bands
            .iter()
            .find(|b| b.row0 == row0)
            .map(|b| b.tenants.clone())
            .unwrap_or_default()
    }

    /// Fraction of pool rows currently leased. A time-multiplexed band
    /// counts its rows **once** no matter how many tenants share it — the
    /// rows are a spatial resource; oversubscription shows up in the
    /// context-switch ledger, not here (so utilization never exceeds 1).
    pub fn utilization(&self) -> f64 {
        let total: usize = self.grids.iter().map(|g| g.arch.rows).sum();
        let used: usize = self
            .grids
            .iter()
            .flat_map(|g| g.bands.iter().map(|b| b.rows))
            .sum();
        used as f64 / total.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> GridPool {
        GridPool::new(vec![VcgraArch::new(6, 4, 2), VcgraArch::new(4, 4, 2)])
    }

    #[test]
    fn small_tenants_pack_one_grid() {
        let mut p = pool();
        let a = p.allocate(1, 7).unwrap(); // 2 rows of 4
        let b = p.allocate(2, 8).unwrap(); // 2 rows of 4
        assert_eq!((a.grid, a.row0, a.rows), (0, 0, 2));
        assert_eq!((b.grid, b.row0, b.rows), (0, 2, 2));
        assert!(!a.shared && !b.shared);
        assert_eq!((a.epoch, b.epoch), (0, 0));
        assert!(p.utilization() > 0.0);
    }

    #[test]
    fn overflow_spills_to_second_grid_then_time_multiplexes() {
        let mut p = pool();
        for t in 0..5 {
            let l = p.allocate(t, 8).unwrap();
            assert!(!l.shared, "tenant {t} should get a dedicated band");
        }
        // All 10 rows are taken (3 bands on grid 0, 2 on grid 1): the sixth
        // tenant shares.
        let l = p.allocate(5, 8).unwrap();
        assert!(l.shared);
        let mates = p.band_tenants(l.grid, l.row0);
        assert_eq!(mates.len(), 2);
        assert!(mates.contains(&5));
    }

    #[test]
    fn release_frees_bands_for_reuse() {
        let mut p = pool();
        let a = p.allocate(1, 24).unwrap(); // whole grid 0
        assert_eq!(a.rows, 6);
        // Grid 0 is full and grid 1 is too small, so a second 24-PE tenant
        // can only time-share tenant 1's band.
        assert!(p.allocate(2, 24).unwrap().shared);
        assert!(p.release(2));
        assert!(p.release(1));
        let b = p.allocate(3, 24).unwrap();
        assert_eq!((b.grid, b.row0, b.rows, b.shared), (0, 0, 6, false));
        assert!(!p.release(99), "unknown tenant");
    }

    #[test]
    fn too_big_is_rejected() {
        let mut p = pool();
        let err = p.allocate(1, 25).unwrap_err();
        assert_eq!(err, PoolError::TooBig { needed: 25, largest: 24 });
    }

    #[test]
    fn fragmented_pool_reports_oversubscription_not_too_big() {
        let mut p = pool();
        // Fill both grids with 2-row bands; a 5-row tenant would fit an
        // empty grid 0 (6 rows) but no band is big enough to share.
        for t in 0..5 {
            p.allocate(t, 8).unwrap();
        }
        let err = p.allocate(9, 18).unwrap_err();
        assert_eq!(err, PoolError::Oversubscribed { needed: 18 });
        // After releasing grid 0's bands the same tenant gets a lease.
        for t in 0..3 {
            p.release(t);
        }
        assert!(!p.allocate(9, 18).unwrap().shared);
    }

    #[test]
    fn region_arch_is_band_shaped() {
        let mut p = pool();
        let l = p.allocate(1, 10).unwrap(); // 3 rows of 4
        assert_eq!(l.rows, 3);
        let arch = l.region_arch(p.channel_capacity());
        assert_eq!((arch.rows, arch.cols), (3, 4));
    }

    #[test]
    fn compaction_admits_a_13_row_tenant_first_fit_refuses() {
        // One 16-row grid. Occupy rows 0-5 and 6-8, release the first
        // band: 13 rows are free (0-5 and 9-15) but the longest run is 7.
        let mut p = GridPool::new(vec![VcgraArch::new(16, 4, 2)]);
        p.allocate(1, 24).unwrap(); // rows 0-5
        let mid = p.allocate(2, 12).unwrap(); // rows 6-8
        assert_eq!((mid.row0, mid.rows), (6, 3));
        assert!(p.release(1));
        assert_eq!(p.free_rows(0), 13);

        // 52 PEs → 13 rows of 4. First fit (and time-sharing: the only
        // band has 3 rows) refuses.
        assert_eq!(p.allocate(9, 52).unwrap_err(), PoolError::Oversubscribed { needed: 52 });

        // With compaction the 3-row band slides to row 0 and the 13-row
        // tenant admits at row 3.
        let (lease, relocs) = p.allocate_with(9, 52, true, true).unwrap();
        assert_eq!((lease.row0, lease.rows, lease.shared), (3, 13, false));
        assert_eq!(relocs.len(), 1);
        assert_eq!(
            relocs[0],
            Relocation { grid: 0, old_row0: 6, new_row0: 0, rows: 3, tenants: vec![2] }
        );
        // The moved band kept its tenants and its shape.
        assert_eq!(p.band_tenants(0, 0), vec![2]);
        assert_eq!(p.free_rows(0), 0);
    }

    #[test]
    fn compaction_preserves_band_order_and_reports_every_move() {
        let mut p = GridPool::new(vec![VcgraArch::new(10, 4, 2)]);
        for t in 0..5 {
            p.allocate(t, 8).unwrap(); // five 2-row bands, rows 0..10
        }
        p.release(0); // rows 0-1 free
        p.release(2); // rows 4-5 free
        // 4 free rows, max run 2: a 3-row tenant needs compaction.
        assert!(p.allocate(7, 12).is_err());
        let (lease, relocs) = p.allocate_with(7, 12, true, true).unwrap();
        assert_eq!((lease.row0, lease.rows), (6, 3));
        // Bands 1, 3, 4 all moved down, order preserved.
        assert_eq!(
            relocs,
            vec![
                Relocation { grid: 0, old_row0: 2, new_row0: 0, rows: 2, tenants: vec![1] },
                Relocation { grid: 0, old_row0: 6, new_row0: 2, rows: 2, tenants: vec![3] },
                Relocation { grid: 0, old_row0: 8, new_row0: 4, rows: 2, tenants: vec![4] },
            ]
        );
        let bands = p.bands();
        assert_eq!(bands.len(), 4);
        assert_eq!(bands[0].tenants, vec![1]);
        assert_eq!(bands[1].tenants, vec![3]);
        assert_eq!(bands[2].tenants, vec![4]);
        assert_eq!(bands[3].tenants, vec![7]);
    }

    #[test]
    fn dedicated_candidates_lists_every_feasible_grid() {
        let mut p = pool();
        assert_eq!(p.dedicated_candidates(8), vec![0, 1]);
        // Fill grid 0 entirely.
        p.allocate(1, 24).unwrap();
        assert_eq!(p.dedicated_candidates(8), vec![1]);
        // A 5-row demand only ever fits grid 0.
        assert_eq!(p.dedicated_candidates(20), Vec::<usize>::new());
        p.release(1);
        assert_eq!(p.dedicated_candidates(20), vec![0]);
        // allocate_on honors the pick.
        let l = p.allocate_on(1, 9, 8).unwrap();
        assert_eq!((l.grid, l.row0, l.rows), (1, 0, 2));
        assert!(p.allocate_on(1, 10, 20).is_none(), "5 rows never fit grid 1");
    }

    #[test]
    fn utilization_counts_time_shared_bands_once() {
        let mut p = pool();
        // Fill every row of both grids with dedicated bands.
        for t in 0..5 {
            assert!(!p.allocate(t, 8).unwrap().shared);
        }
        assert_eq!(p.utilization(), 1.0);
        // Oversubscribe: three more tenants time-share existing bands.
        // The rows are a spatial resource — utilization must stay exactly
        // 1.0, not double-count the shared bands.
        for t in 5..8 {
            assert!(p.allocate(t, 8).unwrap().shared);
        }
        assert_eq!(p.utilization(), 1.0, "shared bands must count once");
        // Releasing one sharer of a 2-tenant band frees no rows...
        let shared = p.bands().into_iter().find(|b| b.tenants.len() > 1).unwrap();
        assert!(p.release(*shared.tenants.last().unwrap()));
        assert_eq!(p.utilization(), 1.0);
        // ...releasing the last tenant of a band does.
        let solo = p.bands().into_iter().find(|b| b.tenants.len() == 1).unwrap();
        assert!(p.release(solo.tenants[0]));
        assert!(p.utilization() < 1.0);
    }
}
