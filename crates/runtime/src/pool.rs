//! The grid pool: placement of concurrent tenants onto overlay instances.
//!
//! The pool owns a set of [`VcgraArch`] grids. A tenant asks for enough
//! PEs for its graph; the scheduler carves a **band** — a horizontal
//! stripe of consecutive rows spanning the grid's full width — out of the
//! first grid with room (first-fit packing, so several small applications
//! share one grid). When every row of every grid is taken, admission
//! falls back to **time-multiplexing**: the new tenant shares the
//! smallest already-allocated band that is big enough, and the execution
//! engine serializes the band's tenants, charging a full-region
//! micro-reconfiguration per context switch.
//!
//! Bands span full grid width because the VCGRA routing channels run
//! between adjacent PEs: a full-width stripe guarantees a tenant's routes
//! can never cross another tenant's region.

use vcgra::VcgraArch;

/// Identifier the runtime hands out per admitted application.
pub type TenantId = u64;

/// Where a tenant's region lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// Index of the grid in the pool.
    pub grid: usize,
    /// First physical row of the band.
    pub row0: usize,
    /// Rows in the band.
    pub rows: usize,
    /// Columns (the grid's full width).
    pub cols: usize,
    /// True when the band is shared with other tenants (time-multiplexed).
    pub shared: bool,
}

impl Lease {
    /// The region as a standalone architecture (what the graph compiles
    /// against — region-local coordinates).
    pub fn region_arch(&self, channel_capacity: usize) -> VcgraArch {
        VcgraArch::new(self.rows, self.cols, channel_capacity)
    }

    /// PEs in the region.
    pub fn pe_count(&self) -> usize {
        self.rows * self.cols
    }
}

#[derive(Debug)]
struct Band {
    row0: usize,
    rows: usize,
    tenants: Vec<TenantId>,
}

#[derive(Debug)]
struct Grid {
    arch: VcgraArch,
    bands: Vec<Band>,
}

impl Grid {
    /// First row index at which `rows` consecutive free rows start.
    fn find_free(&self, rows: usize) -> Option<usize> {
        let mut taken = vec![false; self.arch.rows];
        for b in &self.bands {
            taken[b.row0..b.row0 + b.rows].fill(true);
        }
        let mut run = 0;
        for (r, &t) in taken.iter().enumerate() {
            run = if t { 0 } else { run + 1 };
            if run == rows {
                return Some(r + 1 - rows);
            }
        }
        None
    }
}

/// Pool allocation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// The graph does not fit any grid of the pool, even an empty one.
    TooBig {
        /// PEs the application needs.
        needed: usize,
        /// PEs of the largest grid in the pool.
        largest: usize,
    },
    /// The graph would fit an empty grid, but every band big enough is
    /// already carved up by smaller tenants — admission must wait for a
    /// release (this runtime does not queue).
    Oversubscribed {
        /// PEs the application needs.
        needed: usize,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::TooBig { needed, largest } => {
                write!(f, "application needs {needed} PEs, largest grid has {largest}")
            }
            PoolError::Oversubscribed { needed } => {
                write!(f, "no band of {needed} PEs free or shareable; release a tenant first")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// The scheduler's state: grids and their allocated bands.
pub struct GridPool {
    grids: Vec<Grid>,
}

impl GridPool {
    /// Creates a pool over the given grids. All grids must share a channel
    /// capacity (one overlay generation).
    pub fn new(grids: Vec<VcgraArch>) -> Self {
        assert!(!grids.is_empty(), "pool needs at least one grid");
        let cap = grids[0].channel_capacity;
        assert!(
            grids.iter().all(|g| g.channel_capacity == cap),
            "one channel capacity per pool"
        );
        GridPool { grids: grids.into_iter().map(|arch| Grid { arch, bands: Vec::new() }).collect() }
    }

    /// Channel capacity of the pool's overlay generation.
    pub fn channel_capacity(&self) -> usize {
        self.grids[0].arch.channel_capacity
    }

    /// Grid shapes (for reporting).
    pub fn grid_archs(&self) -> Vec<VcgraArch> {
        self.grids.iter().map(|g| g.arch).collect()
    }

    /// Rows a `demand`-PE application needs on a `cols`-wide grid
    /// (regions are at least 2×2 so they are valid [`VcgraArch`]s).
    /// Admission compiles against exactly this region, so band sizing and
    /// cache keys share one formula.
    pub fn rows_needed(demand: usize, cols: usize) -> usize {
        demand.div_ceil(cols).max(2)
    }

    /// Places a tenant needing `demand` PEs.
    ///
    /// Dedicated first-fit band if any grid has room; otherwise the
    /// least-crowded big-enough existing band, time-multiplexed.
    pub fn allocate(&mut self, tenant: TenantId, demand: usize) -> Result<Lease, PoolError> {
        assert!(demand > 0);
        // Dedicated band, first fit.
        for (gi, grid) in self.grids.iter_mut().enumerate() {
            let rows = Self::rows_needed(demand, grid.arch.cols);
            if rows > grid.arch.rows {
                continue;
            }
            if let Some(row0) = grid.find_free(rows) {
                grid.bands.push(Band { row0, rows, tenants: vec![tenant] });
                return Ok(Lease { grid: gi, row0, rows, cols: grid.arch.cols, shared: false });
            }
        }
        // Time-multiplex: least-crowded band with enough PEs.
        let mut best: Option<(usize, usize)> = None; // (grid, band index)
        for (gi, grid) in self.grids.iter().enumerate() {
            let rows = Self::rows_needed(demand, grid.arch.cols);
            for (bi, band) in grid.bands.iter().enumerate() {
                if band.rows < rows {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((bg, bb)) => {
                        let cur = &self.grids[bg].bands[bb];
                        (band.tenants.len(), band.rows) < (cur.tenants.len(), cur.rows)
                    }
                };
                if better {
                    best = Some((gi, bi));
                }
            }
        }
        if let Some((gi, bi)) = best {
            let cols = self.grids[gi].arch.cols;
            let band = &mut self.grids[gi].bands[bi];
            band.tenants.push(tenant);
            return Ok(Lease { grid: gi, row0: band.row0, rows: band.rows, cols, shared: true });
        }
        // Nothing free, nothing shareable: distinguish "never fits" from
        // "fits an empty grid, come back after a release".
        let fits_somewhere = self
            .grids
            .iter()
            .any(|g| Self::rows_needed(demand, g.arch.cols) <= g.arch.rows);
        if fits_somewhere {
            Err(PoolError::Oversubscribed { needed: demand })
        } else {
            let largest = self.grids.iter().map(|g| g.arch.pe_count()).max().unwrap_or(0);
            Err(PoolError::TooBig { needed: demand, largest })
        }
    }

    /// Releases a tenant's slot; empty bands are freed. Returns true if
    /// the tenant held a lease.
    pub fn release(&mut self, tenant: TenantId) -> bool {
        for grid in &mut self.grids {
            for band in &mut grid.bands {
                if let Some(pos) = band.tenants.iter().position(|&t| t == tenant) {
                    band.tenants.remove(pos);
                    grid.bands.retain(|b| !b.tenants.is_empty());
                    return true;
                }
            }
        }
        false
    }

    /// Tenants sharing the band at (`grid`, `row0`), in admission order.
    pub fn band_tenants(&self, grid: usize, row0: usize) -> Vec<TenantId> {
        self.grids[grid]
            .bands
            .iter()
            .find(|b| b.row0 == row0)
            .map(|b| b.tenants.clone())
            .unwrap_or_default()
    }

    /// Fraction of pool rows currently leased.
    pub fn utilization(&self) -> f64 {
        let total: usize = self.grids.iter().map(|g| g.arch.rows).sum();
        let used: usize = self
            .grids
            .iter()
            .flat_map(|g| g.bands.iter().map(|b| b.rows))
            .sum();
        used as f64 / total.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> GridPool {
        GridPool::new(vec![VcgraArch::new(6, 4, 2), VcgraArch::new(4, 4, 2)])
    }

    #[test]
    fn small_tenants_pack_one_grid() {
        let mut p = pool();
        let a = p.allocate(1, 7).unwrap(); // 2 rows of 4
        let b = p.allocate(2, 8).unwrap(); // 2 rows of 4
        assert_eq!((a.grid, a.row0, a.rows), (0, 0, 2));
        assert_eq!((b.grid, b.row0, b.rows), (0, 2, 2));
        assert!(!a.shared && !b.shared);
        assert!(p.utilization() > 0.0);
    }

    #[test]
    fn overflow_spills_to_second_grid_then_time_multiplexes() {
        let mut p = pool();
        for t in 0..5 {
            let l = p.allocate(t, 8).unwrap();
            assert!(!l.shared, "tenant {t} should get a dedicated band");
        }
        // All 10 rows are taken (3 bands on grid 0, 2 on grid 1): the sixth
        // tenant shares.
        let l = p.allocate(5, 8).unwrap();
        assert!(l.shared);
        let mates = p.band_tenants(l.grid, l.row0);
        assert_eq!(mates.len(), 2);
        assert!(mates.contains(&5));
    }

    #[test]
    fn release_frees_bands_for_reuse() {
        let mut p = pool();
        let a = p.allocate(1, 24).unwrap(); // whole grid 0
        assert_eq!(a.rows, 6);
        // Grid 0 is full and grid 1 is too small, so a second 24-PE tenant
        // can only time-share tenant 1's band.
        assert!(p.allocate(2, 24).unwrap().shared);
        assert!(p.release(2));
        assert!(p.release(1));
        let b = p.allocate(3, 24).unwrap();
        assert_eq!((b.grid, b.row0, b.rows, b.shared), (0, 0, 6, false));
        assert!(!p.release(99), "unknown tenant");
    }

    #[test]
    fn too_big_is_rejected() {
        let mut p = pool();
        let err = p.allocate(1, 25).unwrap_err();
        assert_eq!(err, PoolError::TooBig { needed: 25, largest: 24 });
    }

    #[test]
    fn fragmented_pool_reports_oversubscription_not_too_big() {
        let mut p = pool();
        // Fill both grids with 2-row bands; a 5-row tenant would fit an
        // empty grid 0 (6 rows) but no band is big enough to share.
        for t in 0..5 {
            p.allocate(t, 8).unwrap();
        }
        let err = p.allocate(9, 18).unwrap_err();
        assert_eq!(err, PoolError::Oversubscribed { needed: 18 });
        // After releasing grid 0's bands the same tenant gets a lease.
        for t in 0..3 {
            p.release(t);
        }
        assert!(!p.allocate(9, 18).unwrap().shared);
    }

    #[test]
    fn region_arch_is_band_shaped() {
        let mut p = pool();
        let l = p.allocate(1, 10).unwrap(); // 3 rows of 4
        assert_eq!(l.rows, 3);
        let arch = l.region_arch(p.channel_capacity());
        assert_eq!((arch.rows, arch.cols), (3, 4));
    }
}
