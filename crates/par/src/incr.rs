//! The incremental PathFinder core: bounding-box-confined A*, a dirty-net
//! worklist, and deterministic wave parallelism.
//!
//! This module is the engine behind both [`crate::troute::route`] and the
//! [`crate::engine::ParEngine`] facade. It differs from a textbook
//! PathFinder loop in three ways:
//!
//! * **Incremental rip-up-and-reroute.** Occupancy and history live in a
//!   [`fabric::rrg::NodeState`] that is updated in place; per iteration
//!   only *dirty* nets (unrouted, or crossing an overused wire) are ripped
//!   and rerouted. Clean nets keep their trees untouched.
//! * **Per-net bounding boxes.** Each net's A* is confined to a box around
//!   its terminals. A net that cannot route inside its box escalates
//!   through staged margins (3 tiles → 10 tiles → the whole fabric), and
//!   the escalated stage sticks for later iterations.
//! * **Deterministic wave parallelism.** Dirty nets are greedily packed
//!   into *waves* of pairwise bbox-disjoint nets. All members of a wave
//!   are ripped first, then routed against the same immutable snapshot of
//!   occupancy/history — legal because disjoint boxes mean disjoint search
//!   regions — and committed in net order. The schedule depends only on
//!   the netlist, never on thread count, so results are **bit-identical**
//!   across `threads = 1..N`; threads only change who executes a wave
//!   member. Nets that fail inside their box are deferred and retried
//!   serially after the waves with a larger box.
//! * **Spatial partition routing.** With `partitions ≥ 2` the fabric is
//!   tiled into column regions; each worker thread takes exclusive
//!   ownership of a contiguous span of regions (a private `NodeState`
//!   replica) and streams through the region-interior nets, while
//!   boundary-crossing nets route on the coordinator in net order,
//!   broadcasting occupancy deltas to the workers whose spans they touch.
//!   The schedule is the *same* flattened wave order — interior tasks of
//!   different regions commute because their boxes are region-confined,
//!   so the result is bit-identical to the wave path for any partition
//!   count and any thread count (pinned by `tests/determinism.rs`).

use crate::netlist::ParNetlist;
use crate::tplace::Placement;
use crate::troute::{RouteOptions, RouteResult, Unroutable};
use fabric::rrg::{NodeState, RouteGraph};
use logic::fxhash::FxHashSet;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use verify::partition::{PartitionPlan, PartitionTask};
use verify::{WaveAuditor, WaveFootprint};

/// Engine knobs threaded into the core (subset of `EngineOptions` that the
/// router itself consumes).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Knobs {
    /// Worker threads for wave routing (≥ 1). Results do not depend on it.
    pub threads: usize,
    /// Confine per-net searches to placement-derived bounding boxes.
    pub bbox: bool,
    /// Reroute only dirty nets after the first iteration (the seed router's
    /// behavior); `false` restores full rip-up-every-net PathFinder.
    pub incremental: bool,
    /// Column regions for spatial partition routing (`0` = auto from the
    /// fabric size, `1` disables the partition path). Results do not
    /// depend on it.
    pub partitions: usize,
    /// Safety margin (tiles) around region borders: a net whose effective
    /// box comes within `halo` of a border is classified boundary-crossing
    /// and committed in order on the coordinator.
    pub halo: f32,
}

impl Default for Knobs {
    fn default() -> Self {
        Self { threads: 1, bbox: true, incremental: true, partitions: 1, halo: 1.0 }
    }
}

/// Fabric-size-derived partition count (used when `EngineOptions::
/// partitions == 0`): one column region per ~12 tile columns, capped at 8.
/// Deterministic in the fabric alone so auto never perturbs results.
pub(crate) fn auto_partitions(size: usize) -> usize {
    (size / 12).clamp(1, 8)
}

/// Smallest dirty worklist worth paying replica clones + channel traffic
/// for; below it the wave path is faster and results are identical anyway.
const MIN_PARTITION_DIRTY: usize = 48;

/// Staged bbox margins (tiles around the terminal extent). The last stage
/// is the whole fabric.
const MARGINS: [f32; 3] = [3.0, 10.0, f32::INFINITY];
const LAST_STAGE: u8 = (MARGINS.len() - 1) as u8;

/// True when `VCGRA_PAR_VERBOSE` is set: the router and the width search
/// narrate iterations/probes on stderr (diagnostics only, never parsed).
pub(crate) fn verbose() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| std::env::var_os("VCGRA_PAR_VERBOSE").is_some())
}

/// Axis-aligned closed box in tile coordinates.
#[derive(Debug, Clone, Copy)]
struct BBox {
    x0: f32,
    y0: f32,
    x1: f32,
    y1: f32,
}

impl BBox {
    #[inline]
    fn contains(&self, (x, y): (f32, f32)) -> bool {
        x >= self.x0 && x <= self.x1 && y >= self.y0 && y <= self.y1
    }

    #[inline]
    fn overlaps(&self, o: &BBox) -> bool {
        self.x0 <= o.x1 && o.x0 <= self.x1 && self.y0 <= o.y1 && o.y0 <= self.y1
    }

    #[inline]
    fn union(&self, o: &BBox) -> BBox {
        BBox {
            x0: self.x0.min(o.x0),
            y0: self.y0.min(o.y0),
            x1: self.x1.max(o.x1),
            y1: self.y1.max(o.y1),
        }
    }
}

/// Per-worker scratch: A* cost/prev arrays reset via a touched list, the
/// open heap, and the growing per-net tree.
struct Scratch {
    cost_to: Vec<f32>,
    prev: Vec<u32>,
    touched: Vec<u32>,
    heap: BinaryHeap<(Reverse<u64>, u32)>,
    tree_set: FxHashSet<u32>,
    tree_list: Vec<u32>,
    /// When set, every node whose occupancy/history the search consults
    /// (the `step_cost` operand) is appended to `reads` — the read
    /// footprint the wave auditor checks for serial equivalence.
    record: bool,
    reads: Vec<u32>,
}

impl Scratch {
    fn new(n_nodes: usize) -> Self {
        Self {
            cost_to: vec![f32::INFINITY; n_nodes],
            prev: vec![u32::MAX; n_nodes],
            touched: Vec::new(),
            heap: BinaryHeap::new(),
            tree_set: FxHashSet::default(),
            tree_list: Vec::new(),
            record: false,
            reads: Vec::new(),
        }
    }
}

#[inline]
fn dist(a: (f32, f32), b: (f32, f32)) -> f32 {
    (a.0 - b.0).abs() + (a.1 - b.1).abs()
}

/// Routes one net inside `bbox` against an immutable state snapshot.
/// Returns the sorted node set of the tree, or `None` if some sink is
/// unreachable within the box. Pure in its inputs: independent of which
/// scratch/thread executes it.
#[allow(clippy::too_many_arguments)]
fn route_net(
    graph: &RouteGraph,
    state: &NodeState,
    opts: &RouteOptions,
    pres_fac: f64,
    srcs: &[u32],
    sinks: &[u32],
    bbox: BBox,
    scratch: &mut Scratch,
) -> Option<Vec<u32>> {
    let Scratch { cost_to, prev, touched, heap, tree_set, tree_list, record, reads } = scratch;
    tree_set.clear();
    tree_list.clear();

    for &sink in sinks {
        // Reset the previous search (possibly a different net's).
        for &t in touched.iter() {
            cost_to[t as usize] = f32::INFINITY;
            prev[t as usize] = u32::MAX;
        }
        touched.clear();
        heap.clear();

        let tloc = graph.location_f32(sink);
        macro_rules! push {
            ($node:expr, $c:expr, $from:expr) => {{
                let node: u32 = $node;
                let c: f32 = $c;
                if c < cost_to[node as usize] {
                    if cost_to[node as usize] == f32::INFINITY {
                        touched.push(node);
                    }
                    cost_to[node as usize] = c;
                    prev[node as usize] = $from;
                    let h = dist(graph.location_f32(node), tloc) as f64 * opts.astar_fac;
                    heap.push((Reverse(((c as f64 + h) * 1024.0) as u64), node));
                }
            }};
        }
        for &s in srcs {
            push!(s, 0.0, u32::MAX);
        }
        for &t in tree_list.iter() {
            push!(t, 0.0, u32::MAX);
        }

        let mut found = false;
        while let Some((_, node)) = heap.pop() {
            if node == sink {
                found = true;
                break;
            }
            let c_here = cost_to[node as usize];
            for &next in graph.edges(node) {
                if !bbox.contains(graph.location_f32(next)) {
                    continue;
                }
                if *record {
                    reads.push(next);
                }
                push!(next, c_here + state.step_cost(next, pres_fac), node);
            }
        }
        if !found {
            return None;
        }
        // Trace back into the tree (stops at a seeded node, prev == MAX).
        let mut cur = sink;
        while cur != u32::MAX {
            if tree_set.insert(cur) {
                tree_list.push(cur);
            }
            cur = prev[cur as usize];
        }
    }
    let mut tree = tree_list.clone();
    tree.sort_unstable();
    Some(tree)
}

/// Greedy first-fit packing of dirty nets into waves of pairwise
/// bbox-disjoint members. Deterministic in the net order.
fn build_waves(dirty: &[u32], bboxes: &[BBox]) -> Vec<Vec<usize>> {
    // Waves hold *positions into `dirty`*; each wave carries a union box
    // for a quick reject before the member scan.
    let mut waves: Vec<(Vec<usize>, BBox)> = Vec::new();
    'nets: for (pos, _) in dirty.iter().enumerate() {
        let bb = bboxes[pos];
        for (members, ubox) in waves.iter_mut() {
            if !bb.overlaps(ubox) || !members.iter().any(|&m| bb.overlaps(&bboxes[m])) {
                *ubox = ubox.union(&bb);
                members.push(pos);
                continue 'nets;
            }
        }
        waves.push((vec![pos], bb));
    }
    waves.into_iter().map(|(m, _)| m).collect()
}

/// The incremental PathFinder loop. `seed_trees`, when given, warm-starts
/// the router: non-empty entries are taken as valid routes (the caller
/// must have verified connectivity in *this* graph), empty entries mark
/// nets to route from scratch.
///
/// When `auditor` is given, every wave's actual read/write footprints are
/// reported to it for the serial-equivalence check. Audited waves are
/// routed serially on one scratch — footprints (and trees) are identical
/// to the parallel execution because each member's search is pure in the
/// immutable pre-wave snapshot, so serialization only changes *who* runs
/// a member, never what it touches.
#[allow(clippy::too_many_arguments)]
pub(crate) fn route_core(
    netlist: &ParNetlist,
    placement: &Placement,
    graph: &RouteGraph,
    opts: RouteOptions,
    knobs: Knobs,
    seed_trees: Option<Vec<Vec<u32>>>,
    mut auditor: Option<&mut WaveAuditor>,
    mut plans: Option<&mut Vec<PartitionPlan>>,
) -> Result<RouteResult, Unroutable> {
    let n_nets = netlist.nets.len();
    let n_nodes = graph.node_count();
    let threads = knobs.threads.max(1);
    let k_regions = if knobs.partitions == 0 {
        auto_partitions(graph.arch.size)
    } else {
        knobs.partitions
    };
    let regions: Vec<(f32, f32)> =
        if k_regions >= 2 { graph.column_regions(k_regions) } else { Vec::new() };

    // Terminals in RRG space; sinks ordered far-first like the reference
    // router (route the hardest sink while the tree is small).
    let srcs: Vec<Vec<u32>> = netlist
        .nets
        .iter()
        .map(|n| {
            n.sources
                .iter()
                .map(|&b| graph.opin(placement.site_of[b as usize]))
                .collect()
        })
        .collect();
    let sinks: Vec<Vec<u32>> = netlist
        .nets
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let mut s: Vec<u32> = n
                .sinks
                .iter()
                .map(|&(b, p)| graph.ipin(placement.site_of[b as usize], p as usize))
                .collect();
            let s0 = graph.location_f32(srcs[i][0]);
            s.sort_by(|&a, &b| {
                let da = dist(graph.location_f32(a), s0);
                let db = dist(graph.location_f32(b), s0);
                db.total_cmp(&da).then(a.cmp(&b))
            });
            s
        })
        .collect();

    // Terminal extents (fixed by the placement) and escalation stages.
    let extents: Vec<BBox> = (0..n_nets)
        .map(|i| {
            let mut bb =
                BBox { x0: f32::INFINITY, y0: f32::INFINITY, x1: f32::NEG_INFINITY, y1: f32::NEG_INFINITY };
            for &t in srcs[i].iter().chain(sinks[i].iter()) {
                let (x, y) = graph.location_f32(t);
                bb.x0 = bb.x0.min(x);
                bb.y0 = bb.y0.min(y);
                bb.x1 = bb.x1.max(x);
                bb.y1 = bb.y1.max(y);
            }
            bb
        })
        .collect();
    let mut stage: Vec<u8> = vec![if knobs.bbox { 0 } else { LAST_STAGE }; n_nets];
    let bbox_of = |net: usize, stage: u8| -> BBox {
        let m = MARGINS[stage as usize];
        let e = &extents[net];
        BBox { x0: e.x0 - m, y0: e.y0 - m, x1: e.x1 + m, y1: e.y1 + m }
    };

    let mut state = NodeState::new(graph);
    let mut trees: Vec<Vec<u32>> = seed_trees.unwrap_or_else(|| vec![Vec::new(); n_nets]);
    // Checked in release builds too: a seed-tree/netlist length mismatch
    // would silently misattribute routes to the wrong nets.
    assert_eq!(trees.len(), n_nets, "seed trees must match the netlist net count");
    for t in &trees {
        for &n in t {
            state.occupy(n);
        }
    }
    // Warm-seeded nets that have not been rerouted yet. A stalled probe
    // with *small* overuse dissolves this set (see below): the frozen
    // routes hold capacity the contested nets may need, and ripping them
    // turns the probe into a cold-equivalent one instead of letting the
    // bias produce a false "unroutable" verdict.
    let mut warm_left: Vec<bool> = trees.iter().map(|t| !t.is_empty()).collect();
    let mut warm_n = warm_left.iter().filter(|&&w| w).count();
    let mut debias = false;

    let mut scratches: Vec<Scratch> = (0..threads).map(|_| Scratch::new(n_nodes)).collect();
    // Per-worker occupancy replicas for the partition path, allocated on
    // first use and refreshed (clone_from, no realloc) each partitioned
    // iteration.
    let mut replicas: Vec<NodeState> = Vec::new();
    let mut pres_fac = opts.first_pres_fac;
    let mut ripups = 0usize;
    let mut waves_total = 0usize;
    let mut interior_routes = 0usize;
    let mut boundary_routes = 0usize;
    let mut region_occupancy: Vec<usize> = vec![0; if k_regions >= 2 { k_regions } else { 0 }];
    let mut best_overused = usize::MAX;
    let mut stalled = 0usize;
    // Thrash escalation: in the endgame (small overuse), a net that keeps
    // being ripped yet always "succeeds" inside its box is playing
    // musical chairs over a local capacity deficit — the detour that
    // resolves it lies outside the box. Growing the box for such nets
    // recovers the unconfined router's verdicts. While overuse is large
    // the gate stays closed, so hopeless probes keep their cheap searches.
    let mut rips_of: Vec<u16> = vec![0; n_nets];
    let mut last_overused = usize::MAX;

    for iter in 0..opts.max_iters {
        let mut iter_span = trace::span("par.route_iter");
        iter_span.arg("iter", iter);
        // Dirty worklist: unrouted nets, nets crossing an overused wire —
        // or everything, in non-incremental mode.
        let dirty: Vec<u32> = (0..n_nets as u32)
            .filter(|&i| {
                let t = &trees[i as usize];
                (!knobs.incremental && iter > 0)
                    || (debias && warm_left[i as usize])
                    || t.is_empty()
                    || t.iter().any(|&n| state.overused(n))
            })
            .collect();
        ripups += dirty.len();
        if warm_n > 0 {
            for &i in &dirty {
                if warm_left[i as usize] {
                    warm_left[i as usize] = false;
                    warm_n -= 1;
                }
            }
        }
        debias = false;
        let endgame = last_overused <= n_nets / 16 + 64;
        for &i in &dirty {
            let i = i as usize;
            rips_of[i] = rips_of[i].saturating_add(1);
            if endgame && rips_of[i] >= 4 && stage[i] < LAST_STAGE {
                stage[i] += 1;
                rips_of[i] = 0;
            }
        }

        let bboxes: Vec<BBox> =
            dirty.iter().map(|&i| bbox_of(i as usize, stage[i as usize])).collect();
        // Effective box = search box ∪ the extent of the tree about to be
        // ripped. Warm-seeded trees translated from a wider probe can
        // stick out of the *current* stage box, and both wave packing and
        // partition ownership must cover every node a member writes —
        // cold runs have no seed trees, so there eff == the stage box and
        // packing is unchanged.
        let eff: Vec<BBox> = dirty
            .iter()
            .enumerate()
            .map(|(pos, &i)| {
                let mut bb = bboxes[pos];
                for &n in &trees[i as usize] {
                    let (x, y) = graph.location_f32(n);
                    bb.x0 = bb.x0.min(x);
                    bb.y0 = bb.y0.min(y);
                    bb.x1 = bb.x1.max(x);
                    bb.y1 = bb.y1.max(y);
                }
                bb
            })
            .collect();
        let waves = build_waves(&dirty, &eff);
        waves_total += waves.len();
        iter_span.arg("dirty", dirty.len());
        iter_span.arg("waves", waves.len());

        // Partition classification over the flattened wave order (the
        // canonical serial order every execution strategy reproduces).
        let use_partition = k_regions >= 2
            && threads >= 2
            && auditor.is_none()
            && dirty.len() >= MIN_PARTITION_DIRTY;
        let class: Vec<Option<usize>> = if k_regions >= 2 {
            (0..dirty.len())
                .map(|pos| {
                    let bb = eff[pos];
                    regions
                        .iter()
                        .position(|&(lo, hi)| bb.x0 - knobs.halo >= lo && bb.x1 + knobs.halo <= hi)
                })
                .collect()
        } else {
            Vec::new()
        };
        if k_regions >= 2 {
            if let Some(p) = plans.as_deref_mut() {
                let order: Vec<usize> = waves.iter().flatten().copied().collect();
                p.push(PartitionPlan {
                    iteration: iter,
                    regions: regions.clone(),
                    halo: knobs.halo,
                    executed: use_partition,
                    tasks: order
                        .iter()
                        .enumerate()
                        .map(|(rank, &pos)| PartitionTask {
                            net: dirty[pos],
                            rank,
                            region: class[pos],
                            x0: eff[pos].x0,
                            x1: eff[pos].x1,
                        })
                        .collect(),
                });
            }
        }

        let mut deferred: Vec<u32> = Vec::new();
        if use_partition {
            let order: Vec<usize> = waves.iter().flatten().copied().collect();
            let workers = (threads - 1).min(k_regions).max(1);
            while replicas.len() < workers {
                replicas.push(state.clone());
            }
            for r in replicas.iter_mut().take(workers) {
                r.clone_from(&state);
            }
            let mut part_span = trace::span("par.partition");
            let (mut iter_interior, mut iter_boundary) = (0usize, 0usize);
            for c in &class {
                match c {
                    Some(r) => {
                        interior_routes += 1;
                        iter_interior += 1;
                        region_occupancy[*r] += 1;
                    }
                    None => {
                        boundary_routes += 1;
                        iter_boundary += 1;
                    }
                }
            }
            part_span.arg("interior", iter_interior);
            part_span.arg("boundary", iter_boundary);
            part_span.arg("workers", workers);
            deferred = route_partitioned(
                graph,
                &mut state,
                &opts,
                pres_fac,
                &dirty,
                &order,
                &class,
                &eff,
                &bboxes,
                &regions,
                &srcs,
                &sinks,
                &mut trees,
                &mut replicas,
                &mut scratches,
                workers,
            );
            drop(part_span);
        } else {
            for wave in &waves {
                let mut wave_span = trace::span("par.wave");
                wave_span.arg("nets", wave.len());
                // The write footprint of a member includes the tree it is
                // about to rip — capture old trees before the rip-up.
                let old_writes: Vec<Vec<u32>> = if auditor.is_some() {
                    wave.iter().map(|&pos| trees[dirty[pos] as usize].clone()).collect()
                } else {
                    Vec::new()
                };
                // Rip up this wave's nets only, right before rerouting them —
                // later waves keep occupying their old wires so the snapshot
                // the wave searches against stays faithful to the serial
                // rip-right-before-reroute dynamics. Within the wave, a
                // member's rip-up touches only its own (disjoint) box.
                for &pos in wave {
                    let i = dirty[pos] as usize;
                    for &n in &trees[i] {
                        state.release(n);
                    }
                    trees[i].clear();
                }
                let results = if let Some(aud) = auditor.as_deref_mut() {
                    audited_wave(
                        graph, &state, &opts, pres_fac, &dirty, wave, &bboxes, &srcs, &sinks,
                        &mut scratches[0], &old_writes, iter, aud,
                    )
                } else {
                    route_wave(
                        graph, &state, &opts, pres_fac, &dirty, wave, &bboxes, &srcs, &sinks,
                        &mut scratches,
                    )
                };
                let mut wave_deferred = 0usize;
                for (net, res) in results {
                    match res {
                        Some(tree) => {
                            for &n in &tree {
                                state.occupy(n);
                            }
                            trees[net as usize] = tree;
                        }
                        None => {
                            deferred.push(net);
                            wave_deferred += 1;
                        }
                    }
                }
                wave_span.arg("deferred", wave_deferred);
            }
        }

        // Escalate nets that failed inside their box; serial, in order.
        for &net in &deferred {
            loop {
                if stage[net as usize] >= LAST_STAGE {
                    return Err(Unroutable {
                        overused: usize::MAX,
                        iterations: iter + 1,
                        ripups,
                        worst_cut_overuse: 0,
                    });
                }
                stage[net as usize] += 1;
                let bb = bbox_of(net as usize, stage[net as usize]);
                if let Some(tree) = route_net(
                    graph,
                    &state,
                    &opts,
                    pres_fac,
                    &srcs[net as usize],
                    &sinks[net as usize],
                    bb,
                    &mut scratches[0],
                ) {
                    for &n in &tree {
                        state.occupy(n);
                    }
                    trees[net as usize] = tree;
                    break;
                }
            }
        }

        let overused = state.accrue_history(opts.acc_fac);
        last_overused = overused;
        iter_span.arg("ripups", ripups);
        iter_span.arg("overused", overused);
        if verbose() {
            eprintln!(
                "    iter {:>2}: {} dirty nets, {} waves, {} overused wires",
                iter,
                dirty.len(),
                waves.len(),
                overused
            );
        }
        if overused == 0 {
            return Ok(build_result(
                netlist,
                graph,
                &state,
                trees,
                iter + 1,
                ripups,
                waves_total,
                interior_routes,
                boundary_routes,
                region_occupancy,
            ));
        }
        if iter + 1 == opts.max_iters {
            // A cold-equivalent verdict (no frozen warm trees biasing the
            // congestion) reports its worst-cut residual so the width
            // search can advance `lo` past hopeless widths.
            let cut = if warm_n == 0 { graph.cut_pressure(&state).max_overuse } else { 0 };
            return Err(Unroutable {
                overused,
                iterations: iter + 1,
                ripups,
                worst_cut_overuse: cut,
            });
        }
        // Stall detector: a hopelessly narrow channel shows as a large
        // overuse count that stops improving *meaningfully* (≥3 % per
        // window). Near-feasible runs either converge in a handful of
        // iterations or plateau far below the absolute guard.
        if (overused as f64) < best_overused as f64 * 0.97 {
            best_overused = overused;
            stalled = 0;
        } else {
            best_overused = best_overused.min(overused);
            stalled += 1;
            if opts.stall_iters > 0 && overused > n_nets / 16 + 64 {
                if stalled >= opts.stall_iters {
                    if warm_n > 0 {
                        // Never let warm bias manufacture an "unroutable":
                        // dissolve the remaining frozen routes and give the
                        // stall clock a fresh start before giving up.
                        if verbose() {
                            eprintln!("    de-biasing before abort: ripping {warm_n} frozen warm nets");
                        }
                        debias = true;
                        best_overused = usize::MAX;
                        stalled = 0;
                    } else {
                        // warm_n == 0 here, so the residual congestion is
                        // honest — report the worst cut's overuse.
                        return Err(Unroutable {
                            overused,
                            iterations: iter + 1,
                            ripups,
                            worst_cut_overuse: graph.cut_pressure(&state).max_overuse,
                        });
                    }
                }
            } else if stalled >= 3 && warm_n > 0 {
                // Small, stubborn overuse on a warm-started run: the
                // remaining frozen routes are the likely culprit. Rip
                // them all next iteration and restart the stall clock.
                if verbose() {
                    eprintln!("    de-biasing: ripping {warm_n} frozen warm nets");
                }
                debias = true;
                best_overused = usize::MAX;
                stalled = 0;
            }
        }
        pres_fac *= opts.pres_fac_mult;
    }
    unreachable!("loop returns before exhausting iterations")
}

/// Routes one wave. Members' boxes are pairwise disjoint, so each search
/// reads the shared snapshot without seeing the others — any partition of
/// the wave across workers yields the same trees. Chunks are contiguous,
/// so concatenating per-chunk results preserves member order.
#[allow(clippy::too_many_arguments)]
fn route_wave(
    graph: &RouteGraph,
    state: &NodeState,
    opts: &RouteOptions,
    pres_fac: f64,
    dirty: &[u32],
    wave: &[usize],
    bboxes: &[BBox],
    srcs: &[Vec<u32>],
    sinks: &[Vec<u32>],
    scratches: &mut [Scratch],
) -> Vec<(u32, Option<Vec<u32>>)> {
    let run_one = |pos: usize, scratch: &mut Scratch| -> (u32, Option<Vec<u32>>) {
        let net = dirty[pos] as usize;
        let tree = route_net(
            graph, state, opts, pres_fac, &srcs[net], &sinks[net], bboxes[pos], scratch,
        );
        (net as u32, tree)
    };

    let threads = scratches.len();
    if threads <= 1 || wave.len() <= 1 {
        let scratch = &mut scratches[0];
        return wave.iter().map(|&pos| run_one(pos, scratch)).collect();
    }

    let per = wave.len().div_ceil(threads);
    let mut out = Vec::with_capacity(wave.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (chunk, scratch) in wave.chunks(per).zip(scratches.iter_mut()) {
            handles.push(scope.spawn(move || {
                chunk.iter().map(|&pos| run_one(pos, scratch)).collect::<Vec<_>>()
            }));
        }
        for h in handles {
            out.extend(h.join().expect("router worker panicked"));
        }
    });
    out
}

/// Routes one wave serially while recording each member's actual
/// read/write footprint and reporting the wave to the auditor. The trees
/// are exactly those `route_wave` would produce — each member's search is
/// pure in the shared pre-wave snapshot — so auditing never perturbs the
/// routing result, only observes it.
#[allow(clippy::too_many_arguments)]
fn audited_wave(
    graph: &RouteGraph,
    state: &NodeState,
    opts: &RouteOptions,
    pres_fac: f64,
    dirty: &[u32],
    wave: &[usize],
    bboxes: &[BBox],
    srcs: &[Vec<u32>],
    sinks: &[Vec<u32>],
    scratch: &mut Scratch,
    old_writes: &[Vec<u32>],
    iteration: usize,
    auditor: &mut WaveAuditor,
) -> Vec<(u32, Option<Vec<u32>>)> {
    scratch.record = true;
    let mut members: Vec<WaveFootprint> = Vec::with_capacity(wave.len());
    let mut out = Vec::with_capacity(wave.len());
    for (k, &pos) in wave.iter().enumerate() {
        scratch.reads.clear();
        let net = dirty[pos] as usize;
        let tree = route_net(
            graph, state, opts, pres_fac, &srcs[net], &sinks[net], bboxes[pos], scratch,
        );
        let mut reads = std::mem::take(&mut scratch.reads);
        reads.sort_unstable();
        reads.dedup();
        let mut writes = old_writes[k].clone();
        if let Some(t) = &tree {
            writes.extend_from_slice(t);
        }
        writes.sort_unstable();
        writes.dedup();
        members.push(WaveFootprint { net: net as u32, reads, writes });
        out.push((net as u32, tree));
    }
    scratch.record = false;
    auditor.observe_wave(iteration, &members);
    out
}

/// Executes one iteration's flattened wave order with spatial partition
/// ownership. Interior tasks stream on worker threads against per-worker
/// occupancy replicas; boundary tasks run on the coordinator (this
/// thread) in rank order, each broadcasting its occupancy delta to the
/// workers whose spans it touches. The master state/trees end up exactly
/// as the serial rank-order execution leaves them. Returns the nets that
/// failed inside their box, in rank order, for the caller's escalation
/// pass.
#[allow(clippy::too_many_arguments)]
fn route_partitioned(
    graph: &RouteGraph,
    state: &mut NodeState,
    opts: &RouteOptions,
    pres_fac: f64,
    dirty: &[u32],
    order: &[usize],
    class: &[Option<usize>],
    eff: &[BBox],
    bboxes: &[BBox],
    regions: &[(f32, f32)],
    srcs: &[Vec<u32>],
    sinks: &[Vec<u32>],
    trees: &mut [Vec<u32>],
    replicas: &mut [NodeState],
    scratches: &mut [Scratch],
    workers: usize,
) -> Vec<u32> {
    let k = regions.len();
    let worker_of = |r: usize| r * workers / k;
    // Contiguous x-span each worker owns (union of its regions).
    let mut spans: Vec<(f32, f32)> = vec![(f32::INFINITY, f32::NEG_INFINITY); workers];
    for (r, &(lo, hi)) in regions.iter().enumerate() {
        let w = worker_of(r);
        spans[w].0 = spans[w].0.min(lo);
        spans[w].1 = spans[w].1.max(hi);
    }

    struct WTask {
        rank: usize,
        net: u32,
        search: BBox,
        old: Vec<u32>,
    }
    struct BTask {
        rank: usize,
        net: u32,
        search: BBox,
        overlap: Vec<usize>,
    }
    let mut wtasks: Vec<Vec<WTask>> = (0..workers).map(|_| Vec::new()).collect();
    // Boundary ranks each worker must sync on before advancing past them.
    let mut wbarriers: Vec<Vec<usize>> = (0..workers).map(|_| Vec::new()).collect();
    let mut btasks: Vec<BTask> = Vec::new();
    for (rank, &pos) in order.iter().enumerate() {
        let net = dirty[pos];
        match class[pos] {
            Some(r) => wtasks[worker_of(r)].push(WTask {
                rank,
                net,
                search: bboxes[pos],
                old: trees[net as usize].clone(),
            }),
            None => {
                let bb = eff[pos];
                let overlap: Vec<usize> = (0..workers)
                    .filter(|&w| bb.x0 <= spans[w].1 && spans[w].0 <= bb.x1)
                    .collect();
                for &w in &overlap {
                    wbarriers[w].push(rank);
                }
                btasks.push(BTask { rank, net, search: bboxes[pos], overlap });
            }
        }
    }
    let total_interior: usize = wtasks.iter().map(|v| v.len()).sum();

    let n_ranks = order.len();
    let mut done = vec![false; n_ranks];
    let mut frontier = 0usize;
    let mut applied = 0usize;
    let mut deferred: Vec<(usize, u32)> = Vec::new();

    let (res_tx, res_rx) = std::sync::mpsc::channel::<(usize, u32, Option<Vec<u32>>)>();
    let mut delta_txs = Vec::with_capacity(workers);
    let mut delta_rxs = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (tx, rx) = std::sync::mpsc::channel::<(Vec<u32>, Vec<u32>)>();
        delta_txs.push(tx);
        delta_rxs.push(rx);
    }

    let (head, wscrs) = scratches.split_at_mut(1);
    let cscr = &mut head[0];

    std::thread::scope(|scope| {
        for (((tasks, barriers), delta_rx), (replica, scratch)) in wtasks
            .into_iter()
            .zip(wbarriers)
            .zip(delta_rxs)
            .zip(replicas.iter_mut().zip(wscrs.iter_mut()))
        {
            let res_tx = res_tx.clone();
            scope.spawn(move || {
                let mut bidx = 0usize;
                for t in tasks {
                    // Apply every boundary delta ranked before this task:
                    // in the canonical order those boundary nets ripped
                    // and rerouted first, and their boxes may touch ours.
                    while bidx < barriers.len() && barriers[bidx] < t.rank {
                        let (old, new) = delta_rx.recv().expect("coordinator hung up");
                        for &n in &old {
                            replica.release(n);
                        }
                        for &n in &new {
                            replica.occupy(n);
                        }
                        bidx += 1;
                    }
                    for &n in &t.old {
                        replica.release(n);
                    }
                    let tree = route_net(
                        graph,
                        replica,
                        opts,
                        pres_fac,
                        &srcs[t.net as usize],
                        &sinks[t.net as usize],
                        t.search,
                        scratch,
                    );
                    if let Some(tr) = &tree {
                        for &n in tr {
                            replica.occupy(n);
                        }
                    }
                    if res_tx.send((t.rank, t.net, tree)).is_err() {
                        return;
                    }
                }
            });
        }
        drop(res_tx);

        // Coordinator: walk the boundary tasks in rank order; before each,
        // drain interior results until every earlier rank has been applied
        // to the master state. Results from non-overlapping workers may be
        // applied "early" (their ranks exceed the boundary's), which is
        // safe: the barrier construction guarantees any early result came
        // from a worker whose span — hence the result's entire footprint —
        // is disjoint from this boundary net's box.
        let apply = |state: &mut NodeState,
                         trees: &mut [Vec<u32>],
                         deferred: &mut Vec<(usize, u32)>,
                         done: &mut [bool],
                         rank: usize,
                         net: u32,
                         tree: Option<Vec<u32>>| {
            for &n in &trees[net as usize] {
                state.release(n);
            }
            match tree {
                Some(t) => {
                    for &n in &t {
                        state.occupy(n);
                    }
                    trees[net as usize] = t;
                }
                None => {
                    trees[net as usize] = Vec::new();
                    deferred.push((rank, net));
                }
            }
            done[rank] = true;
        };
        for b in &btasks {
            while frontier < b.rank {
                if done[frontier] {
                    frontier += 1;
                    continue;
                }
                let (rank, net, tree) = res_rx.recv().expect("router worker hung up");
                apply(state, trees, &mut deferred, &mut done, rank, net, tree);
                applied += 1;
            }
            let old = std::mem::take(&mut trees[b.net as usize]);
            for &n in &old {
                state.release(n);
            }
            let tree = route_net(
                graph,
                state,
                opts,
                pres_fac,
                &srcs[b.net as usize],
                &sinks[b.net as usize],
                b.search,
                cscr,
            );
            let new = match tree {
                Some(t) => {
                    for &n in &t {
                        state.occupy(n);
                    }
                    trees[b.net as usize] = t.clone();
                    t
                }
                None => {
                    deferred.push((b.rank, b.net));
                    Vec::new()
                }
            };
            for &w in &b.overlap {
                // A worker with no tasks past this rank has already
                // exited; the unreceived delta is irrelevant to it.
                let _ = delta_txs[w].send((old.clone(), new.clone()));
            }
            done[b.rank] = true;
            while frontier < n_ranks && done[frontier] {
                frontier += 1;
            }
        }
        while applied < total_interior {
            let (rank, net, tree) = res_rx.recv().expect("router worker hung up");
            apply(state, trees, &mut deferred, &mut done, rank, net, tree);
            applied += 1;
        }
    });

    deferred.sort_unstable_by_key(|&(rank, _)| rank);
    deferred.into_iter().map(|(_, net)| net).collect()
}

#[allow(clippy::too_many_arguments)]
fn build_result(
    netlist: &ParNetlist,
    graph: &RouteGraph,
    state: &NodeState,
    trees: Vec<Vec<u32>>,
    iterations: usize,
    ripups: usize,
    waves: usize,
    interior_routes: usize,
    boundary_routes: usize,
    partition_occupancy: Vec<usize>,
) -> RouteResult {
    let mut wl = 0usize;
    let mut twl = 0usize;
    let mut tcon_switches = 0usize;
    for (i, tree) in trees.iter().enumerate() {
        let wires = tree.iter().filter(|&&n| state.is_wire(n)).count();
        wl += wires;
        if netlist.nets[i].is_tunable() {
            twl += wires;
            // Every used node of a tunable net was entered through a
            // configured programmable switch.
            tcon_switches += tree.len().saturating_sub(netlist.nets[i].sources.len());
        }
    }
    RouteResult {
        trees,
        wirelength: wl,
        tunable_wirelength: twl,
        tcon_switches,
        iterations,
        ripups,
        waves,
        interior_routes,
        boundary_routes,
        partition_occupancy,
        worst_cut_used: graph.cut_pressure(state).max_used,
    }
}
