//! The incremental PathFinder core: bounding-box-confined A*, a dirty-net
//! worklist, and deterministic wave parallelism.
//!
//! This module is the engine behind both [`crate::troute::route`] and the
//! [`crate::engine::ParEngine`] facade. It differs from a textbook
//! PathFinder loop in three ways:
//!
//! * **Incremental rip-up-and-reroute.** Occupancy and history live in a
//!   [`fabric::rrg::NodeState`] that is updated in place; per iteration
//!   only *dirty* nets (unrouted, or crossing an overused wire) are ripped
//!   and rerouted. Clean nets keep their trees untouched.
//! * **Per-net bounding boxes.** Each net's A* is confined to a box around
//!   its terminals. A net that cannot route inside its box escalates
//!   through staged margins (3 tiles → 10 tiles → the whole fabric), and
//!   the escalated stage sticks for later iterations.
//! * **Deterministic wave parallelism.** Dirty nets are greedily packed
//!   into *waves* of pairwise bbox-disjoint nets. All members of a wave
//!   are ripped first, then routed against the same immutable snapshot of
//!   occupancy/history — legal because disjoint boxes mean disjoint search
//!   regions — and committed in net order. The schedule depends only on
//!   the netlist, never on thread count, so results are **bit-identical**
//!   across `threads = 1..N`; threads only change who executes a wave
//!   member. Nets that fail inside their box are deferred and retried
//!   serially after the waves with a larger box.

use crate::netlist::ParNetlist;
use crate::tplace::Placement;
use crate::troute::{RouteOptions, RouteResult, Unroutable};
use fabric::rrg::{NodeState, RouteGraph};
use logic::fxhash::FxHashSet;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use verify::{WaveAuditor, WaveFootprint};

/// Engine knobs threaded into the core (subset of `EngineOptions` that the
/// router itself consumes).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Knobs {
    /// Worker threads for wave routing (≥ 1). Results do not depend on it.
    pub threads: usize,
    /// Confine per-net searches to placement-derived bounding boxes.
    pub bbox: bool,
    /// Reroute only dirty nets after the first iteration (the seed router's
    /// behavior); `false` restores full rip-up-every-net PathFinder.
    pub incremental: bool,
}

impl Default for Knobs {
    fn default() -> Self {
        Self { threads: 1, bbox: true, incremental: true }
    }
}

/// Staged bbox margins (tiles around the terminal extent). The last stage
/// is the whole fabric.
const MARGINS: [f32; 3] = [3.0, 10.0, f32::INFINITY];
const LAST_STAGE: u8 = (MARGINS.len() - 1) as u8;

/// True when `VCGRA_PAR_VERBOSE` is set: the router and the width search
/// narrate iterations/probes on stderr (diagnostics only, never parsed).
pub(crate) fn verbose() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| std::env::var_os("VCGRA_PAR_VERBOSE").is_some())
}

/// Axis-aligned closed box in tile coordinates.
#[derive(Debug, Clone, Copy)]
struct BBox {
    x0: f32,
    y0: f32,
    x1: f32,
    y1: f32,
}

impl BBox {
    #[inline]
    fn contains(&self, (x, y): (f32, f32)) -> bool {
        x >= self.x0 && x <= self.x1 && y >= self.y0 && y <= self.y1
    }

    #[inline]
    fn overlaps(&self, o: &BBox) -> bool {
        self.x0 <= o.x1 && o.x0 <= self.x1 && self.y0 <= o.y1 && o.y0 <= self.y1
    }

    #[inline]
    fn union(&self, o: &BBox) -> BBox {
        BBox {
            x0: self.x0.min(o.x0),
            y0: self.y0.min(o.y0),
            x1: self.x1.max(o.x1),
            y1: self.y1.max(o.y1),
        }
    }
}

/// Per-worker scratch: A* cost/prev arrays reset via a touched list, the
/// open heap, and the growing per-net tree.
struct Scratch {
    cost_to: Vec<f32>,
    prev: Vec<u32>,
    touched: Vec<u32>,
    heap: BinaryHeap<(Reverse<u64>, u32)>,
    tree_set: FxHashSet<u32>,
    tree_list: Vec<u32>,
    /// When set, every node whose occupancy/history the search consults
    /// (the `step_cost` operand) is appended to `reads` — the read
    /// footprint the wave auditor checks for serial equivalence.
    record: bool,
    reads: Vec<u32>,
}

impl Scratch {
    fn new(n_nodes: usize) -> Self {
        Self {
            cost_to: vec![f32::INFINITY; n_nodes],
            prev: vec![u32::MAX; n_nodes],
            touched: Vec::new(),
            heap: BinaryHeap::new(),
            tree_set: FxHashSet::default(),
            tree_list: Vec::new(),
            record: false,
            reads: Vec::new(),
        }
    }
}

#[inline]
fn dist(a: (f32, f32), b: (f32, f32)) -> f32 {
    (a.0 - b.0).abs() + (a.1 - b.1).abs()
}

/// Routes one net inside `bbox` against an immutable state snapshot.
/// Returns the sorted node set of the tree, or `None` if some sink is
/// unreachable within the box. Pure in its inputs: independent of which
/// scratch/thread executes it.
#[allow(clippy::too_many_arguments)]
fn route_net(
    graph: &RouteGraph,
    state: &NodeState,
    opts: &RouteOptions,
    pres_fac: f64,
    srcs: &[u32],
    sinks: &[u32],
    bbox: BBox,
    scratch: &mut Scratch,
) -> Option<Vec<u32>> {
    let Scratch { cost_to, prev, touched, heap, tree_set, tree_list, record, reads } = scratch;
    tree_set.clear();
    tree_list.clear();

    for &sink in sinks {
        // Reset the previous search (possibly a different net's).
        for &t in touched.iter() {
            cost_to[t as usize] = f32::INFINITY;
            prev[t as usize] = u32::MAX;
        }
        touched.clear();
        heap.clear();

        let tloc = graph.location_f32(sink);
        macro_rules! push {
            ($node:expr, $c:expr, $from:expr) => {{
                let node: u32 = $node;
                let c: f32 = $c;
                if c < cost_to[node as usize] {
                    if cost_to[node as usize] == f32::INFINITY {
                        touched.push(node);
                    }
                    cost_to[node as usize] = c;
                    prev[node as usize] = $from;
                    let h = dist(graph.location_f32(node), tloc) as f64 * opts.astar_fac;
                    heap.push((Reverse(((c as f64 + h) * 1024.0) as u64), node));
                }
            }};
        }
        for &s in srcs {
            push!(s, 0.0, u32::MAX);
        }
        for &t in tree_list.iter() {
            push!(t, 0.0, u32::MAX);
        }

        let mut found = false;
        while let Some((_, node)) = heap.pop() {
            if node == sink {
                found = true;
                break;
            }
            let c_here = cost_to[node as usize];
            for &next in graph.edges(node) {
                if !bbox.contains(graph.location_f32(next)) {
                    continue;
                }
                if *record {
                    reads.push(next);
                }
                push!(next, c_here + state.step_cost(next, pres_fac), node);
            }
        }
        if !found {
            return None;
        }
        // Trace back into the tree (stops at a seeded node, prev == MAX).
        let mut cur = sink;
        while cur != u32::MAX {
            if tree_set.insert(cur) {
                tree_list.push(cur);
            }
            cur = prev[cur as usize];
        }
    }
    let mut tree = tree_list.clone();
    tree.sort_unstable();
    Some(tree)
}

/// Greedy first-fit packing of dirty nets into waves of pairwise
/// bbox-disjoint members. Deterministic in the net order.
fn build_waves(dirty: &[u32], bboxes: &[BBox]) -> Vec<Vec<usize>> {
    // Waves hold *positions into `dirty`*; each wave carries a union box
    // for a quick reject before the member scan.
    let mut waves: Vec<(Vec<usize>, BBox)> = Vec::new();
    'nets: for (pos, _) in dirty.iter().enumerate() {
        let bb = bboxes[pos];
        for (members, ubox) in waves.iter_mut() {
            if !bb.overlaps(ubox) || !members.iter().any(|&m| bb.overlaps(&bboxes[m])) {
                *ubox = ubox.union(&bb);
                members.push(pos);
                continue 'nets;
            }
        }
        waves.push((vec![pos], bb));
    }
    waves.into_iter().map(|(m, _)| m).collect()
}

/// The incremental PathFinder loop. `seed_trees`, when given, warm-starts
/// the router: non-empty entries are taken as valid routes (the caller
/// must have verified connectivity in *this* graph), empty entries mark
/// nets to route from scratch.
///
/// When `auditor` is given, every wave's actual read/write footprints are
/// reported to it for the serial-equivalence check. Audited waves are
/// routed serially on one scratch — footprints (and trees) are identical
/// to the parallel execution because each member's search is pure in the
/// immutable pre-wave snapshot, so serialization only changes *who* runs
/// a member, never what it touches.
pub(crate) fn route_core(
    netlist: &ParNetlist,
    placement: &Placement,
    graph: &RouteGraph,
    opts: RouteOptions,
    knobs: Knobs,
    seed_trees: Option<Vec<Vec<u32>>>,
    mut auditor: Option<&mut WaveAuditor>,
) -> Result<RouteResult, Unroutable> {
    let n_nets = netlist.nets.len();
    let n_nodes = graph.node_count();
    let threads = knobs.threads.max(1);

    // Terminals in RRG space; sinks ordered far-first like the reference
    // router (route the hardest sink while the tree is small).
    let srcs: Vec<Vec<u32>> = netlist
        .nets
        .iter()
        .map(|n| {
            n.sources
                .iter()
                .map(|&b| graph.opin(placement.site_of[b as usize]))
                .collect()
        })
        .collect();
    let sinks: Vec<Vec<u32>> = netlist
        .nets
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let mut s: Vec<u32> = n
                .sinks
                .iter()
                .map(|&(b, p)| graph.ipin(placement.site_of[b as usize], p as usize))
                .collect();
            let s0 = graph.location_f32(srcs[i][0]);
            s.sort_by(|&a, &b| {
                let da = dist(graph.location_f32(a), s0);
                let db = dist(graph.location_f32(b), s0);
                db.total_cmp(&da).then(a.cmp(&b))
            });
            s
        })
        .collect();

    // Terminal extents (fixed by the placement) and escalation stages.
    let extents: Vec<BBox> = (0..n_nets)
        .map(|i| {
            let mut bb =
                BBox { x0: f32::INFINITY, y0: f32::INFINITY, x1: f32::NEG_INFINITY, y1: f32::NEG_INFINITY };
            for &t in srcs[i].iter().chain(sinks[i].iter()) {
                let (x, y) = graph.location_f32(t);
                bb.x0 = bb.x0.min(x);
                bb.y0 = bb.y0.min(y);
                bb.x1 = bb.x1.max(x);
                bb.y1 = bb.y1.max(y);
            }
            bb
        })
        .collect();
    let mut stage: Vec<u8> = vec![if knobs.bbox { 0 } else { LAST_STAGE }; n_nets];
    let bbox_of = |net: usize, stage: u8| -> BBox {
        let m = MARGINS[stage as usize];
        let e = &extents[net];
        BBox { x0: e.x0 - m, y0: e.y0 - m, x1: e.x1 + m, y1: e.y1 + m }
    };

    let mut state = NodeState::new(graph);
    let mut trees: Vec<Vec<u32>> = seed_trees.unwrap_or_else(|| vec![Vec::new(); n_nets]);
    // Checked in release builds too: a seed-tree/netlist length mismatch
    // would silently misattribute routes to the wrong nets.
    assert_eq!(trees.len(), n_nets, "seed trees must match the netlist net count");
    for t in &trees {
        for &n in t {
            state.occupy(n);
        }
    }
    // Warm-seeded nets that have not been rerouted yet. A stalled probe
    // with *small* overuse dissolves this set (see below): the frozen
    // routes hold capacity the contested nets may need, and ripping them
    // turns the probe into a cold-equivalent one instead of letting the
    // bias produce a false "unroutable" verdict.
    let mut warm_left: Vec<bool> = trees.iter().map(|t| !t.is_empty()).collect();
    let mut warm_n = warm_left.iter().filter(|&&w| w).count();
    let mut debias = false;

    let mut scratches: Vec<Scratch> = (0..threads).map(|_| Scratch::new(n_nodes)).collect();
    let mut pres_fac = opts.first_pres_fac;
    let mut ripups = 0usize;
    let mut best_overused = usize::MAX;
    let mut stalled = 0usize;
    // Thrash escalation: in the endgame (small overuse), a net that keeps
    // being ripped yet always "succeeds" inside its box is playing
    // musical chairs over a local capacity deficit — the detour that
    // resolves it lies outside the box. Growing the box for such nets
    // recovers the unconfined router's verdicts. While overuse is large
    // the gate stays closed, so hopeless probes keep their cheap searches.
    let mut rips_of: Vec<u16> = vec![0; n_nets];
    let mut last_overused = usize::MAX;

    for iter in 0..opts.max_iters {
        // Dirty worklist: unrouted nets, nets crossing an overused wire —
        // or everything, in non-incremental mode.
        let dirty: Vec<u32> = (0..n_nets as u32)
            .filter(|&i| {
                let t = &trees[i as usize];
                (!knobs.incremental && iter > 0)
                    || (debias && warm_left[i as usize])
                    || t.is_empty()
                    || t.iter().any(|&n| state.overused(n))
            })
            .collect();
        ripups += dirty.len();
        if warm_n > 0 {
            for &i in &dirty {
                if warm_left[i as usize] {
                    warm_left[i as usize] = false;
                    warm_n -= 1;
                }
            }
        }
        debias = false;
        let endgame = last_overused <= n_nets / 16 + 64;
        for &i in &dirty {
            let i = i as usize;
            rips_of[i] = rips_of[i].saturating_add(1);
            if endgame && rips_of[i] >= 4 && stage[i] < LAST_STAGE {
                stage[i] += 1;
                rips_of[i] = 0;
            }
        }

        let bboxes: Vec<BBox> =
            dirty.iter().map(|&i| bbox_of(i as usize, stage[i as usize])).collect();
        let waves = build_waves(&dirty, &bboxes);

        let mut deferred: Vec<u32> = Vec::new();
        for wave in &waves {
            // The write footprint of a member includes the tree it is
            // about to rip — capture old trees before the rip-up.
            let old_writes: Vec<Vec<u32>> = if auditor.is_some() {
                wave.iter().map(|&pos| trees[dirty[pos] as usize].clone()).collect()
            } else {
                Vec::new()
            };
            // Rip up this wave's nets only, right before rerouting them —
            // later waves keep occupying their old wires so the snapshot
            // the wave searches against stays faithful to the serial
            // rip-right-before-reroute dynamics. Within the wave, a
            // member's rip-up touches only its own (disjoint) box.
            for &pos in wave {
                let i = dirty[pos] as usize;
                for &n in &trees[i] {
                    state.release(n);
                }
                trees[i].clear();
            }
            let results = if let Some(aud) = auditor.as_deref_mut() {
                audited_wave(
                    graph, &state, &opts, pres_fac, &dirty, wave, &bboxes, &srcs, &sinks,
                    &mut scratches[0], &old_writes, iter, aud,
                )
            } else {
                route_wave(
                    graph, &state, &opts, pres_fac, &dirty, wave, &bboxes, &srcs, &sinks,
                    &mut scratches,
                )
            };
            for (net, res) in results {
                match res {
                    Some(tree) => {
                        for &n in &tree {
                            state.occupy(n);
                        }
                        trees[net as usize] = tree;
                    }
                    None => deferred.push(net),
                }
            }
        }

        // Escalate nets that failed inside their box; serial, in order.
        for &net in &deferred {
            loop {
                if stage[net as usize] >= LAST_STAGE {
                    return Err(Unroutable { overused: usize::MAX, iterations: iter + 1, ripups });
                }
                stage[net as usize] += 1;
                let bb = bbox_of(net as usize, stage[net as usize]);
                if let Some(tree) = route_net(
                    graph,
                    &state,
                    &opts,
                    pres_fac,
                    &srcs[net as usize],
                    &sinks[net as usize],
                    bb,
                    &mut scratches[0],
                ) {
                    for &n in &tree {
                        state.occupy(n);
                    }
                    trees[net as usize] = tree;
                    break;
                }
            }
        }

        let overused = state.accrue_history(opts.acc_fac);
        last_overused = overused;
        if verbose() {
            eprintln!(
                "    iter {:>2}: {} dirty nets, {} waves, {} overused wires",
                iter,
                dirty.len(),
                waves.len(),
                overused
            );
        }
        if overused == 0 {
            return Ok(build_result(netlist, &state, trees, iter + 1, ripups));
        }
        if iter + 1 == opts.max_iters {
            return Err(Unroutable { overused, iterations: iter + 1, ripups });
        }
        // Stall detector: a hopelessly narrow channel shows as a large
        // overuse count that stops improving *meaningfully* (≥3 % per
        // window). Near-feasible runs either converge in a handful of
        // iterations or plateau far below the absolute guard.
        if (overused as f64) < best_overused as f64 * 0.97 {
            best_overused = overused;
            stalled = 0;
        } else {
            best_overused = best_overused.min(overused);
            stalled += 1;
            if opts.stall_iters > 0 && overused > n_nets / 16 + 64 {
                if stalled >= opts.stall_iters {
                    if warm_n > 0 {
                        // Never let warm bias manufacture an "unroutable":
                        // dissolve the remaining frozen routes and give the
                        // stall clock a fresh start before giving up.
                        if verbose() {
                            eprintln!("    de-biasing before abort: ripping {warm_n} frozen warm nets");
                        }
                        debias = true;
                        best_overused = usize::MAX;
                        stalled = 0;
                    } else {
                        return Err(Unroutable { overused, iterations: iter + 1, ripups });
                    }
                }
            } else if stalled >= 3 && warm_n > 0 {
                // Small, stubborn overuse on a warm-started run: the
                // remaining frozen routes are the likely culprit. Rip
                // them all next iteration and restart the stall clock.
                if verbose() {
                    eprintln!("    de-biasing: ripping {warm_n} frozen warm nets");
                }
                debias = true;
                best_overused = usize::MAX;
                stalled = 0;
            }
        }
        pres_fac *= opts.pres_fac_mult;
    }
    unreachable!("loop returns before exhausting iterations")
}

/// Routes one wave. Members' boxes are pairwise disjoint, so each search
/// reads the shared snapshot without seeing the others — any partition of
/// the wave across workers yields the same trees. Chunks are contiguous,
/// so concatenating per-chunk results preserves member order.
#[allow(clippy::too_many_arguments)]
fn route_wave(
    graph: &RouteGraph,
    state: &NodeState,
    opts: &RouteOptions,
    pres_fac: f64,
    dirty: &[u32],
    wave: &[usize],
    bboxes: &[BBox],
    srcs: &[Vec<u32>],
    sinks: &[Vec<u32>],
    scratches: &mut [Scratch],
) -> Vec<(u32, Option<Vec<u32>>)> {
    let run_one = |pos: usize, scratch: &mut Scratch| -> (u32, Option<Vec<u32>>) {
        let net = dirty[pos] as usize;
        let tree = route_net(
            graph, state, opts, pres_fac, &srcs[net], &sinks[net], bboxes[pos], scratch,
        );
        (net as u32, tree)
    };

    let threads = scratches.len();
    if threads <= 1 || wave.len() <= 1 {
        let scratch = &mut scratches[0];
        return wave.iter().map(|&pos| run_one(pos, scratch)).collect();
    }

    let per = wave.len().div_ceil(threads);
    let mut out = Vec::with_capacity(wave.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (chunk, scratch) in wave.chunks(per).zip(scratches.iter_mut()) {
            handles.push(scope.spawn(move || {
                chunk.iter().map(|&pos| run_one(pos, scratch)).collect::<Vec<_>>()
            }));
        }
        for h in handles {
            out.extend(h.join().expect("router worker panicked"));
        }
    });
    out
}

/// Routes one wave serially while recording each member's actual
/// read/write footprint and reporting the wave to the auditor. The trees
/// are exactly those `route_wave` would produce — each member's search is
/// pure in the shared pre-wave snapshot — so auditing never perturbs the
/// routing result, only observes it.
#[allow(clippy::too_many_arguments)]
fn audited_wave(
    graph: &RouteGraph,
    state: &NodeState,
    opts: &RouteOptions,
    pres_fac: f64,
    dirty: &[u32],
    wave: &[usize],
    bboxes: &[BBox],
    srcs: &[Vec<u32>],
    sinks: &[Vec<u32>],
    scratch: &mut Scratch,
    old_writes: &[Vec<u32>],
    iteration: usize,
    auditor: &mut WaveAuditor,
) -> Vec<(u32, Option<Vec<u32>>)> {
    scratch.record = true;
    let mut members: Vec<WaveFootprint> = Vec::with_capacity(wave.len());
    let mut out = Vec::with_capacity(wave.len());
    for (k, &pos) in wave.iter().enumerate() {
        scratch.reads.clear();
        let net = dirty[pos] as usize;
        let tree = route_net(
            graph, state, opts, pres_fac, &srcs[net], &sinks[net], bboxes[pos], scratch,
        );
        let mut reads = std::mem::take(&mut scratch.reads);
        reads.sort_unstable();
        reads.dedup();
        let mut writes = old_writes[k].clone();
        if let Some(t) = &tree {
            writes.extend_from_slice(t);
        }
        writes.sort_unstable();
        writes.dedup();
        members.push(WaveFootprint { net: net as u32, reads, writes });
        out.push((net as u32, tree));
    }
    scratch.record = false;
    auditor.observe_wave(iteration, &members);
    out
}

fn build_result(
    netlist: &ParNetlist,
    state: &NodeState,
    trees: Vec<Vec<u32>>,
    iterations: usize,
    ripups: usize,
) -> RouteResult {
    let mut wl = 0usize;
    let mut twl = 0usize;
    let mut tcon_switches = 0usize;
    for (i, tree) in trees.iter().enumerate() {
        let wires = tree.iter().filter(|&&n| state.is_wire(n)).count();
        wl += wires;
        if netlist.nets[i].is_tunable() {
            twl += wires;
            // Every used node of a tunable net was entered through a
            // configured programmable switch.
            tcon_switches += tree.len().saturating_sub(netlist.nets[i].sources.len());
        }
    }
    RouteResult {
        trees,
        wirelength: wl,
        tunable_wirelength: twl,
        tcon_switches,
        iterations,
        ripups,
    }
}
