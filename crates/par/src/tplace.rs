//! TPLACE: simulated-annealing placement.
//!
//! Classic VPR-style annealer: half-perimeter wirelength cost with a
//! fanout correction factor, adaptive temperature schedule, and a range
//! limit that shrinks as the anneal cools. Logic blocks move over logic
//! sites, pads over I/O sites. [`place_multi_seed`] runs independent
//! anneals on scoped threads (one per seed) and keeps the best — the
//! embarrassingly parallel pattern the hpc-parallel guides recommend.

use crate::netlist::{BlockKind, ParNetlist};
use fabric::arch::{FabricArch, Site};
use logic::SplitMix64;

/// A placement: one site per block.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Site of every block (indexed like `ParNetlist::blocks`).
    pub site_of: Vec<Site>,
    /// Final HPWL cost.
    pub cost: f64,
}

/// VPR's fanout correction for HPWL (q factor), tabulated for small nets.
fn q_factor(pins: usize) -> f64 {
    const Q: [f64; 11] = [
        1.0, 1.0, 1.0, 1.0, 1.0828, 1.1536, 1.2206, 1.2823, 1.3385, 1.3991, 1.4493,
    ];
    if pins < Q.len() {
        Q[pins]
    } else {
        1.4493 + 0.02616 * (pins - 10) as f64
    }
}

struct PlacerState<'a> {
    netlist: &'a ParNetlist,
    arch: FabricArch,
    site_of: Vec<Site>,
    occupant: logic::fxhash::FxHashMap<Site, u32>,
    // nets touching each block
    nets_of_block: Vec<Vec<u32>>,
    net_cost: Vec<f64>,
    cost: f64,
}

impl<'a> PlacerState<'a> {
    fn net_hpwl(&self, net: u32) -> f64 {
        let n = &self.netlist.nets[net as usize];
        let mut min_x = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        let mut pins = 0usize;
        let mut upd = |b: u32, state: &Self| {
            let (x, y) = state.site_of[b as usize].location(state.arch.size);
            if x < min_x {
                min_x = x;
            }
            if x > max_x {
                max_x = x;
            }
            if y < min_y {
                min_y = y;
            }
            if y > max_y {
                max_y = y;
            }
        };
        for &s in &n.sources {
            upd(s, self);
            pins += 1;
        }
        for &(b, _) in &n.sinks {
            upd(b, self);
            pins += 1;
        }
        q_factor(pins) * ((max_x - min_x) + (max_y - min_y))
    }

    fn recompute_all(&mut self) {
        self.cost = 0.0;
        for i in 0..self.netlist.nets.len() {
            let c = self.net_hpwl(i as u32);
            self.net_cost[i] = c;
            self.cost += c;
        }
    }
}

/// Runs the anneal with one seed.
pub fn place(netlist: &ParNetlist, arch: FabricArch, seed: u64) -> Placement {
    let mut rng = SplitMix64::new(seed);
    let s = arch.size;

    // Initial assignment: logic blocks into logic sites (row-major), pads
    // round-robin over the perimeter.
    let mut logic_sites: Vec<Site> = (0..s * s)
        .map(|i| Site::Logic { x: i % s, y: i / s })
        .collect();
    let mut io_sites: Vec<Site> = Vec::new();
    for side in 0..4u8 {
        for pos in 0..s {
            for slot in 0..arch.io_capacity {
                io_sites.push(Site::Io { side, pos, slot });
            }
        }
    }
    rng.shuffle(&mut logic_sites);
    rng.shuffle(&mut io_sites);
    let mut li = 0;
    let mut ii = 0;
    let mut site_of = Vec::with_capacity(netlist.blocks.len());
    for b in &netlist.blocks {
        let site = match b.kind {
            BlockKind::Logic => {
                li += 1;
                *logic_sites
                    .get(li - 1)
                    .unwrap_or_else(|| panic!("fabric too small: {} logic sites", s * s))
            }
            _ => {
                ii += 1;
                *io_sites
                    .get(ii - 1)
                    .unwrap_or_else(|| panic!("fabric too small for {ii} pads"))
            }
        };
        site_of.push(site);
    }

    let mut nets_of_block: Vec<Vec<u32>> = vec![Vec::new(); netlist.blocks.len()];
    for (i, n) in netlist.nets.iter().enumerate() {
        for &src in &n.sources {
            nets_of_block[src as usize].push(i as u32);
        }
        for &(b, _) in &n.sinks {
            nets_of_block[b as usize].push(i as u32);
        }
    }
    for v in &mut nets_of_block {
        v.sort_unstable();
        v.dedup();
    }

    let mut occupant = logic::fxhash::FxHashMap::default();
    for (b, &site) in site_of.iter().enumerate() {
        occupant.insert(site, b as u32);
    }

    let mut st = PlacerState {
        netlist,
        arch,
        site_of,
        occupant,
        nets_of_block,
        net_cost: vec![0.0; netlist.nets.len()],
        cost: 0.0,
    };
    st.recompute_all();

    let n_blocks = netlist.blocks.len();
    let moves_per_temp = ((n_blocks as f64).powf(4.0 / 3.0) as usize).max(64);
    let mut temp = 0.1 * st.cost / netlist.nets.len().max(1) as f64 * 20.0;
    let mut range = s as f64;

    // Candidate site pools for random proposals.
    let all_logic: Vec<Site> = (0..s * s)
        .map(|i| Site::Logic { x: i % s, y: i / s })
        .collect();
    let all_io: Vec<Site> = {
        let mut v = Vec::new();
        for side in 0..4u8 {
            for pos in 0..s {
                for slot in 0..arch.io_capacity {
                    v.push(Site::Io { side, pos, slot });
                }
            }
        }
        v
    };

    loop {
        let mut accepted = 0usize;
        for _ in 0..moves_per_temp {
            let b = rng.index(n_blocks) as u32;
            let kind = netlist.blocks[b as usize].kind;
            let pool = if kind == BlockKind::Logic { &all_logic } else { &all_io };
            // Range-limited proposal around the current site.
            let cur = st.site_of[b as usize];
            let (cx, cy) = cur.location(s);
            let target = {
                let mut t = pool[rng.index(pool.len())];
                for _ in 0..4 {
                    let (tx, ty) = t.location(s);
                    if (tx - cx).abs() <= range && (ty - cy).abs() <= range {
                        break;
                    }
                    t = pool[rng.index(pool.len())];
                }
                t
            };
            if target == cur {
                continue;
            }
            let displaced = st.occupant.get(&target).copied();
            if let Some(d) = displaced {
                if netlist.blocks[d as usize].kind != kind {
                    continue; // can't swap across site classes
                }
            }
            // Affected nets.
            let mut nets: Vec<u32> = st.nets_of_block[b as usize].clone();
            if let Some(d) = displaced {
                nets.extend_from_slice(&st.nets_of_block[d as usize]);
                nets.sort_unstable();
                nets.dedup();
            }
            let old_cost: f64 = nets.iter().map(|&i| st.net_cost[i as usize]).sum();
            // Apply.
            st.site_of[b as usize] = target;
            if let Some(d) = displaced {
                st.site_of[d as usize] = cur;
            }
            let new_cost: f64 = nets.iter().map(|&i| st.net_hpwl(i)).sum();
            let delta = new_cost - old_cost;
            if delta <= 0.0 || rng.unit_f64() < (-delta / temp).exp() {
                // Commit.
                for &i in &nets {
                    st.net_cost[i as usize] = st.net_hpwl(i);
                }
                st.cost += delta;
                st.occupant.insert(target, b);
                if let Some(d) = displaced {
                    st.occupant.insert(cur, d);
                } else {
                    st.occupant.remove(&cur);
                }
                accepted += 1;
            } else {
                // Revert.
                st.site_of[b as usize] = cur;
                if let Some(d) = displaced {
                    st.site_of[d as usize] = target;
                }
            }
        }
        let rate = accepted as f64 / moves_per_temp as f64;
        // VPR's adaptive alpha.
        let alpha = if rate > 0.96 {
            0.5
        } else if rate > 0.8 {
            0.9
        } else if rate > 0.15 {
            0.95
        } else {
            0.8
        };
        temp *= alpha;
        range = (range * (1.0 - 0.44 + rate)).clamp(1.0, s as f64);
        if temp < 0.005 * st.cost / netlist.nets.len().max(1) as f64 || temp < 1e-6 {
            break;
        }
    }
    st.recompute_all();
    Placement { site_of: st.site_of, cost: st.cost }
}

/// Runs several independent anneals in parallel (one thread per seed) and
/// returns the lowest-cost placement.
pub fn place_multi_seed(netlist: &ParNetlist, arch: FabricArch, seeds: &[u64]) -> Placement {
    place_multi_seed_on(netlist, arch, seeds, seeds.len())
}

/// [`place_multi_seed`] with a worker cap: seeds are split into at most
/// `threads` contiguous chunks, one scoped thread each. The winner is the
/// lowest-cost placement, ties broken by seed order — so the result never
/// depends on the thread count.
pub fn place_multi_seed_on(
    netlist: &ParNetlist,
    arch: FabricArch,
    seeds: &[u64],
    threads: usize,
) -> Placement {
    assert!(!seeds.is_empty());
    let threads = threads.max(1).min(seeds.len());
    let results: Vec<Placement> = if threads == 1 {
        seeds.iter().map(|&s| place(netlist, arch, s)).collect()
    } else {
        let per = seeds.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = seeds
                .chunks(per)
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk.iter().map(|&s| place(netlist, arch, s)).collect::<Vec<_>>()
                    })
                })
                .collect();
            // Contiguous chunks concatenated in order: results stay in
            // seed order regardless of the worker count.
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("placement thread"))
                .collect()
        })
    };
    results
        .into_iter()
        .enumerate()
        .min_by(|(ia, a), (ib, b)| a.cost.total_cmp(&b.cost).then(ia.cmp(ib)))
        .map(|(_, p)| p)
        .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{Block, Net};

    fn chain_netlist(n: usize) -> ParNetlist {
        // in -> L0 -> L1 -> ... -> out
        let mut blocks = vec![Block { name: "in".into(), kind: BlockKind::InputPad }];
        for i in 0..n {
            blocks.push(Block { name: format!("l{i}"), kind: BlockKind::Logic });
        }
        blocks.push(Block { name: "out".into(), kind: BlockKind::OutputPad });
        let mut nets = Vec::new();
        nets.push(Net { sources: vec![0], sinks: vec![(1, 0)] });
        for i in 0..n - 1 {
            nets.push(Net {
                sources: vec![(i + 1) as u32],
                sinks: vec![((i + 2) as u32, 0)],
            });
        }
        nets.push(Net {
            sources: vec![n as u32],
            sinks: vec![((n + 1) as u32, 0)],
        });
        ParNetlist { blocks, nets }
    }

    #[test]
    fn placement_is_legal() {
        let nl = chain_netlist(12);
        let arch = FabricArch::paper_4lut(5);
        let p = place(&nl, arch, 42);
        assert_eq!(p.site_of.len(), nl.blocks.len());
        // No double occupancy; kinds respected.
        let mut seen = std::collections::HashSet::new();
        for (b, &site) in p.site_of.iter().enumerate() {
            assert!(seen.insert(site), "two blocks on {site:?}");
            match nl.blocks[b].kind {
                BlockKind::Logic => assert!(matches!(site, Site::Logic { .. })),
                _ => assert!(matches!(site, Site::Io { .. })),
            }
        }
    }

    #[test]
    fn anneal_beats_random_for_chains() {
        let nl = chain_netlist(20);
        let arch = FabricArch::paper_4lut(6);
        let p = place(&nl, arch, 7);
        // A 20-long chain placed well should cost close to ~1-2 per edge.
        assert!(
            p.cost < 3.0 * nl.nets.len() as f64,
            "anneal cost {} too high",
            p.cost
        );
    }

    #[test]
    fn multi_seed_picks_best() {
        let nl = chain_netlist(10);
        let arch = FabricArch::paper_4lut(5);
        let best = place_multi_seed(&nl, arch, &[1, 2, 3, 4]);
        for s in [1u64, 2, 3, 4] {
            let single = place(&nl, arch, s);
            assert!(best.cost <= single.cost + 1e-9);
        }
    }
}
