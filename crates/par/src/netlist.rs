//! Physical netlist extraction from a mapped design.
//!
//! LUTs become logic blocks; regular inputs and primary outputs become I/O
//! pads. TCONs dissolve into **tunable nets**: each TCON contributes one
//! net whose source set is the flattened set of its (transitive) choice
//! drivers and whose sinks are the pins that consume the TCON's signal.
//! Because at most one alternative is active for any parameter assignment,
//! the router lets all alternatives of one tunable net share wires — the
//! mechanism by which the paper maps intra- and inter-connections onto the
//! physical switch blocks.

use logic::fxhash::{FxHashMap, FxHashSet};
use mapping::{MappedDesign, MappedNode, Source};

/// What a placeable block is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// A K-LUT logic block.
    Logic,
    /// An input pad (drives a net, consumes nothing).
    InputPad,
    /// An output pad (one input pin).
    OutputPad,
}

/// A placeable block.
#[derive(Debug, Clone)]
pub struct Block {
    /// Debug name.
    pub name: String,
    /// Site class this block may occupy.
    pub kind: BlockKind,
}

/// A routing net: one or more candidate sources, a set of sinks.
///
/// `sources.len() > 1` marks a tunable net (TCON alternatives).
#[derive(Debug, Clone)]
pub struct Net {
    /// Driving blocks (indices into [`ParNetlist::blocks`]).
    pub sources: Vec<u32>,
    /// Sinks as `(block, pin)`.
    pub sinks: Vec<(u32, u8)>,
}

impl Net {
    /// Tunable nets carry TCON alternatives.
    pub fn is_tunable(&self) -> bool {
        self.sources.len() > 1
    }
}

/// Blocks + nets, ready for place & route.
#[derive(Debug, Clone)]
pub struct ParNetlist {
    /// Placeable blocks.
    pub blocks: Vec<Block>,
    /// Routing nets.
    pub nets: Vec<Net>,
}

impl ParNetlist {
    /// Number of logic blocks.
    pub fn logic_count(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| b.kind == BlockKind::Logic)
            .count()
    }

    /// Number of I/O pads.
    pub fn io_count(&self) -> usize {
        self.blocks.len() - self.logic_count()
    }

    /// Number of tunable nets (flattened TCONs with at least 2 sources).
    pub fn tunable_net_count(&self) -> usize {
        self.nets.iter().filter(|n| n.is_tunable()).count()
    }
}

/// Flattens a mapped design into a physical netlist.
pub fn extract(design: &MappedDesign) -> ParNetlist {
    let mut blocks = Vec::new();
    // Input pads.
    let input_block: Vec<u32> = design
        .input_names
        .iter()
        .map(|n| {
            let id = blocks.len() as u32;
            blocks.push(Block { name: format!("in:{n}"), kind: BlockKind::InputPad });
            id
        })
        .collect();
    // Logic blocks for LUT nodes.
    let mut lut_block: FxHashMap<u32, u32> = FxHashMap::default();
    for (i, node) in design.nodes.iter().enumerate() {
        if matches!(node, MappedNode::Lut(_)) {
            let id = blocks.len() as u32;
            blocks.push(Block { name: format!("lut{i}"), kind: BlockKind::Logic });
            lut_block.insert(i as u32, id);
        }
    }

    // Resolve a source into the set of driving blocks (flattening TCONs).
    fn resolve(
        design: &MappedDesign,
        input_block: &[u32],
        lut_block: &FxHashMap<u32, u32>,
        s: &Source,
        out: &mut FxHashSet<u32>,
        visited: &mut FxHashSet<u32>,
    ) {
        match s {
            Source::Const(_) => {}
            Source::Input(i) => {
                out.insert(input_block[*i as usize]);
            }
            Source::Node(n) => match &design.nodes[*n as usize] {
                MappedNode::Lut(_) => {
                    out.insert(lut_block[n]);
                }
                MappedNode::Tcon(t) => {
                    if !visited.insert(*n) {
                        return;
                    }
                    for (cs, _) in &t.choices {
                        resolve(design, input_block, lut_block, cs, out, visited);
                    }
                }
            },
        }
    }

    // Nets: keyed by driver (normal) or by TCON node (tunable).
    #[derive(Hash, PartialEq, Eq, Clone, Copy)]
    enum NetKey {
        Block(u32),
        Tcon(u32),
    }
    let mut net_of: FxHashMap<NetKey, usize> = FxHashMap::default();
    let mut nets: Vec<Net> = Vec::new();

    let add_sink = |design: &MappedDesign,
                        nets: &mut Vec<Net>,
                        net_of: &mut FxHashMap<NetKey, usize>,
                        src: &Source,
                        sink: (u32, u8)| {
        let key = match src {
            Source::Const(_) => return, // constants need no routing
            Source::Input(i) => NetKey::Block(input_block[*i as usize]),
            Source::Node(n) => match &design.nodes[*n as usize] {
                MappedNode::Lut(_) => NetKey::Block(lut_block[n]),
                MappedNode::Tcon(_) => NetKey::Tcon(*n),
            },
        };
        let idx = *net_of.entry(key).or_insert_with(|| {
            let mut sources = FxHashSet::default();
            let mut visited = FxHashSet::default();
            resolve(design, &input_block, &lut_block, src, &mut sources, &mut visited);
            let mut sources: Vec<u32> = sources.into_iter().collect();
            sources.sort_unstable();
            nets.push(Net { sources, sinks: Vec::new() });
            nets.len() - 1
        });
        nets[idx].sinks.push(sink);
    };

    // LUT input pins.
    for (i, node) in design.nodes.iter().enumerate() {
        if let MappedNode::Lut(l) = node {
            let b = lut_block[&(i as u32)];
            for (pin, src) in l.inputs.iter().enumerate() {
                add_sink(design, &mut nets, &mut net_of, src, (b, pin as u8));
            }
        }
    }
    // Output pads.
    for o in &design.outputs {
        let pad = blocks.len() as u32;
        blocks.push(Block { name: format!("out:{}", o.name), kind: BlockKind::OutputPad });
        add_sink(design, &mut nets, &mut net_of, &o.source, (pad, 0));
    }

    // Drop degenerate nets (no sources — e.g. a TCON whose every choice is
    // constant; its consumers read configuration memory, not routing).
    let nets = nets
        .into_iter()
        .filter(|n| !n.sources.is_empty() && !n.sinks.is_empty())
        .collect();

    ParNetlist { blocks, nets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::aig::{Aig, InputKind};
    use mapping::{map_conventional, map_parameterized, MapOptions};

    fn param_mux_design() -> MappedDesign {
        let mut g = Aig::new();
        let a = g.input("a", InputKind::Regular);
        let b = g.input("b", InputKind::Regular);
        let p = g.input("p", InputKind::Param);
        let f = g.mux(p, a, b);
        g.add_output("f", f); // forces the mux to exist as a mapped node
        let h = g.and(f, a);
        g.add_output("h", h);
        map_parameterized(&g, MapOptions::default())
    }

    #[test]
    fn tcon_becomes_multi_source_net() {
        let d = param_mux_design();
        let n = extract(&d);
        assert_eq!(n.tunable_net_count(), 1, "one TCON -> one tunable net");
        let t = n.nets.iter().find(|n| n.is_tunable()).unwrap();
        assert_eq!(t.sources.len(), 2, "choices a and b");
    }

    #[test]
    fn conventional_design_has_single_source_nets() {
        let mut g = Aig::new();
        let a = g.input("a", InputKind::Regular);
        let b = g.input("b", InputKind::Regular);
        let c = g.input("c", InputKind::Regular);
        let ab = g.and(a, b);
        let f = g.xor(ab, c);
        g.add_output("f", f);
        let d = map_conventional(&g, MapOptions::default());
        let n = extract(&d);
        assert_eq!(n.tunable_net_count(), 0);
        for net in &n.nets {
            assert_eq!(net.sources.len(), 1);
        }
        // 3 input pads + LUTs + 1 output pad.
        assert!(n.logic_count() >= 1);
        assert_eq!(n.io_count(), 4);
    }

    #[test]
    fn every_lut_pin_is_driven_once() {
        let d = param_mux_design();
        let n = extract(&d);
        let mut seen = std::collections::HashSet::new();
        for net in &n.nets {
            for &(b, p) in &net.sinks {
                if n.blocks[b as usize].kind == BlockKind::Logic {
                    assert!(seen.insert((b, p)), "pin ({b},{p}) driven twice");
                }
            }
        }
    }

    #[test]
    fn tunable_constant_generates_no_net() {
        let mut g = Aig::new();
        let p = g.input_vec("p", 2, InputKind::Param);
        let x = g.input("x", InputKind::Regular);
        let f = g.and(p[0], p[1]);
        let h = g.and(f, x); // h = (p0 & p1) & x — TLUT absorbs or TCON const
        g.add_output("h", h);
        let d = map_parameterized(&g, MapOptions::default());
        let n = extract(&d);
        for net in &n.nets {
            assert!(!net.sources.is_empty());
        }
    }
}
