//! Minimum-channel-width search and the end-to-end place & route driver.
//!
//! VPR-style methodology: place once (placement does not depend on the
//! channel width), then binary-search the smallest width the router can
//! legalize. The paper reports, per flow, the total wirelength and the
//! minimum channel width (Table I: WL 27242 → 16824, CW 10 → 10).

use crate::netlist::ParNetlist;
use crate::tplace::{place_multi_seed, Placement};
use crate::troute::{audit, route, RouteOptions, RouteResult};
use fabric::arch::FabricArch;
use fabric::rrg::RouteGraph;

/// Options for the end-to-end run.
#[derive(Debug, Clone)]
pub struct ParOptions {
    /// Placement seeds (run in parallel, best kept).
    pub seeds: Vec<u64>,
    /// Router options.
    pub route: RouteOptions,
    /// Lower bound to start the width search from.
    pub min_width: usize,
    /// Upper bound; failing here aborts with an error.
    pub max_width: usize,
}

impl Default for ParOptions {
    fn default() -> Self {
        Self {
            seeds: vec![1],
            route: RouteOptions::default(),
            // The paper's designs need ~10 tracks; probing widths far below
            // that wastes PathFinder iterations on hopeless congestion.
            min_width: 6,
            max_width: 96,
        }
    }
}

/// End-to-end place & route report (one flow's PaR columns of Table I).
pub struct ParReport {
    /// Fabric used (auto-sized to the netlist).
    pub arch: FabricArch,
    /// The placement.
    pub placement: Placement,
    /// Minimum routable channel width.
    pub min_channel_width: usize,
    /// Routing result at the minimum channel width.
    pub result: RouteResult,
}

/// Routes at a specific width; helper for probes.
pub fn route_at_width(
    netlist: &ParNetlist,
    placement: &Placement,
    arch: FabricArch,
    width: usize,
    opts: &RouteOptions,
) -> Option<RouteResult> {
    let graph = RouteGraph::build(arch, width);
    route(netlist, placement, &graph, *opts).ok().map(|r| {
        debug_assert!(audit(netlist, placement, &graph, &r).is_ok());
        r
    })
}

/// Finds the minimum channel width by doubling then binary search.
pub fn min_channel_width(
    netlist: &ParNetlist,
    placement: &Placement,
    arch: FabricArch,
    opts: &ParOptions,
) -> Option<(usize, RouteResult)> {
    // Doubling phase.
    let mut lo = opts.min_width;
    let mut hi = lo;
    let mut best: Option<(usize, RouteResult)>;
    loop {
        match route_at_width(netlist, placement, arch, hi, &opts.route) {
            Some(r) => {
                best = Some((hi, r));
                break;
            }
            None => {
                lo = hi + 1;
                hi *= 2;
                if hi > opts.max_width {
                    return None;
                }
            }
        }
    }
    // Binary search in (lo, hi).
    let (mut hi_w, _) = (best.as_ref().unwrap().0, ());
    while lo < hi_w {
        let mid = (lo + hi_w) / 2;
        match route_at_width(netlist, placement, arch, mid, &opts.route) {
            Some(r) => {
                hi_w = mid;
                best = Some((mid, r));
            }
            None => lo = mid + 1,
        }
    }
    best
}

/// Auto-sizes a fabric, places (multi-seed), and searches the minimum
/// channel width.
pub fn full_par(netlist: &ParNetlist, opts: &ParOptions) -> Result<ParReport, String> {
    let arch = FabricArch::sized_for(netlist.logic_count(), netlist.io_count());
    let placement = place_multi_seed(netlist, arch, &opts.seeds);
    let (w, result) = min_channel_width(netlist, &placement, arch, opts)
        .ok_or_else(|| format!("unroutable up to width {}", opts.max_width))?;
    Ok(ParReport { arch, placement, min_channel_width: w, result })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::extract;
    use logic::aig::{Aig, InputKind};
    use mapping::{map_conventional, map_parameterized, MapOptions};
    use softfloat::gates;

    fn small_mul_aig() -> Aig {
        let mut g = Aig::new();
        let x = g.input_vec("x", 4, InputKind::Regular);
        let c = g.input_vec("c", 4, InputKind::Param);
        let p = gates::mul_array(&mut g, &x, &c);
        g.add_output_vec("p", &p);
        g
    }

    #[test]
    fn conventional_small_design_pars() {
        let aig = small_mul_aig();
        let d = map_conventional(&aig, MapOptions::default());
        let nl = extract(&d);
        let rep = full_par(&nl, &ParOptions::default()).expect("routable");
        assert!(rep.result.wirelength > 0);
        assert!(rep.min_channel_width >= 2);
        assert_eq!(rep.result.tcon_switches, 0, "no tunable nets conventionally");
    }

    #[test]
    fn parameterized_small_design_pars_with_less_wire() {
        let aig = small_mul_aig();
        let conv = map_conventional(&aig, MapOptions::default());
        let par = map_parameterized(&aig, MapOptions::default());
        let nl_c = extract(&conv);
        let nl_p = extract(&par);
        let rc = full_par(&nl_c, &ParOptions::default()).expect("conv routable");
        let rp = full_par(&nl_p, &ParOptions::default()).expect("par routable");
        // The parameterized design has fewer LUT blocks; with TCONs moved
        // into routing its wirelength should not explode.
        assert!(nl_p.logic_count() < nl_c.logic_count());
        assert!(rp.result.wirelength > 0 && rc.result.wirelength > 0);
    }

    #[test]
    fn min_width_is_minimal() {
        let aig = small_mul_aig();
        let d = map_conventional(&aig, MapOptions::default());
        let nl = extract(&d);
        let rep = full_par(&nl, &ParOptions::default()).expect("routable");
        // Minimality is only guaranteed above the search floor.
        if rep.min_channel_width > ParOptions::default().min_width {
            // One narrower must fail (that's what "minimum" means).
            let narrower = route_at_width(
                &nl,
                &rep.placement,
                rep.arch,
                rep.min_channel_width - 1,
                &RouteOptions::default(),
            );
            assert!(narrower.is_none(), "width was not minimal");
        }
    }
}
