//! Minimum-channel-width search and the end-to-end place & route driver.
//!
//! VPR-style methodology: place once (placement does not depend on the
//! channel width), then search the smallest width the router can
//! legalize. The paper reports, per flow, the total wirelength and the
//! minimum channel width (Table I: WL 27242 → 16824, CW 10 → 10).
//!
//! These free functions are the stable, options-light API; they delegate
//! to [`crate::engine::ParEngine`], which owns the incremental router,
//! the warm-started width search and the parallelism knobs.

use crate::engine::{EngineOptions, ParEngine};
use crate::netlist::ParNetlist;
use crate::tplace::Placement;
use crate::troute::{audit, route, RouteOptions, RouteResult};
use crate::warm::{WidthCertificate, WidthProbe};
use fabric::arch::FabricArch;
use fabric::rrg::RouteGraph;

/// Options for the end-to-end run.
#[derive(Debug, Clone)]
pub struct ParOptions {
    /// Placement seeds (run in parallel, best kept).
    pub seeds: Vec<u64>,
    /// Router options.
    pub route: RouteOptions,
    /// Lower bound to start the width search from.
    pub min_width: usize,
    /// Upper bound; failing here aborts with an error.
    pub max_width: usize,
}

impl Default for ParOptions {
    fn default() -> Self {
        let e = EngineOptions::default();
        Self { seeds: e.seeds, route: e.route, min_width: e.min_width, max_width: e.max_width }
    }
}

impl From<&ParOptions> for EngineOptions {
    fn from(o: &ParOptions) -> Self {
        Self {
            route: o.route,
            seeds: o.seeds.clone(),
            min_width: o.min_width,
            max_width: o.max_width,
            ..Default::default()
        }
    }
}

/// End-to-end place & route report (one flow's PaR columns of Table I).
pub struct ParReport {
    /// Fabric used (auto-sized to the netlist).
    pub arch: FabricArch,
    /// The placement.
    pub placement: Placement,
    /// Minimum routable channel width.
    pub min_channel_width: usize,
    /// Routing result at the minimum channel width.
    pub result: RouteResult,
    /// Width-search effort log: every probe with its wall time,
    /// iteration and rip-up counts, and warm-start coverage.
    pub probes: Vec<WidthProbe>,
    /// Why `min_channel_width` is trusted to be minimal (cold
    /// confirmation of the final `W−1` failure, sound lower bound, or
    /// the search floor).
    pub certificate: WidthCertificate,
    /// Wall time of placement.
    pub place_seconds: f64,
    /// Wall time of the whole width search.
    pub route_seconds: f64,
    /// Wave-schedule serial-equivalence report from an audited re-route
    /// at the minimum width (`Some` iff `EngineOptions::audit_waves`).
    pub wave_audit: Option<verify::VerifyReport>,
    /// Partition-schedule ownership report from a partitioned re-route at
    /// the minimum width, bit-compared against the audited run (`Some`
    /// iff `EngineOptions::audit_waves` and ≥ 2 partitions resolve).
    pub partition_audit: Option<verify::VerifyReport>,
}

/// Routes at a specific width; helper for probes.
pub fn route_at_width(
    netlist: &ParNetlist,
    placement: &Placement,
    arch: FabricArch,
    width: usize,
    opts: &RouteOptions,
) -> Option<RouteResult> {
    let graph = RouteGraph::build(arch, width);
    route(netlist, placement, &graph, *opts).ok().map(|r| {
        // A silently-corrupt route would poison everything downstream
        // (width certificates, Table I figures), so this commit-path
        // audit runs in release builds too.
        if let Err(e) = audit(netlist, placement, &graph, &r) {
            panic!("route audit failed at width {width}: {e}");
        }
        r
    })
}

/// Finds the minimum channel width by doubling then binary search, with
/// warm-started probes.
pub fn min_channel_width(
    netlist: &ParNetlist,
    placement: &Placement,
    arch: FabricArch,
    opts: &ParOptions,
) -> Option<(usize, RouteResult)> {
    let engine = ParEngine::new(EngineOptions::from(opts));
    engine
        .min_channel_width(netlist, placement, arch)
        .map(|s| (s.min_width, s.result))
}

/// Auto-sizes a fabric, places (multi-seed), and searches the minimum
/// channel width.
pub fn full_par(netlist: &ParNetlist, opts: &ParOptions) -> Result<ParReport, String> {
    ParEngine::new(EngineOptions::from(opts)).run(netlist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::extract;
    use logic::aig::{Aig, InputKind};
    use mapping::{map_conventional, map_parameterized, MapOptions};
    use softfloat::gates;

    fn small_mul_aig() -> Aig {
        let mut g = Aig::new();
        let x = g.input_vec("x", 4, InputKind::Regular);
        let c = g.input_vec("c", 4, InputKind::Param);
        let p = gates::mul_array(&mut g, &x, &c);
        g.add_output_vec("p", &p);
        g
    }

    #[test]
    fn conventional_small_design_pars() {
        let aig = small_mul_aig();
        let d = map_conventional(&aig, MapOptions::default());
        let nl = extract(&d);
        let rep = full_par(&nl, &ParOptions::default()).expect("routable");
        assert!(rep.result.wirelength > 0);
        assert!(rep.min_channel_width >= 2);
        assert_eq!(rep.result.tcon_switches, 0, "no tunable nets conventionally");
    }

    #[test]
    fn parameterized_small_design_pars_with_less_wire() {
        let aig = small_mul_aig();
        let conv = map_conventional(&aig, MapOptions::default());
        let par = map_parameterized(&aig, MapOptions::default());
        let nl_c = extract(&conv);
        let nl_p = extract(&par);
        let rc = full_par(&nl_c, &ParOptions::default()).expect("conv routable");
        let rp = full_par(&nl_p, &ParOptions::default()).expect("par routable");
        // The parameterized design has fewer LUT blocks; with TCONs moved
        // into routing its wirelength should not explode.
        assert!(nl_p.logic_count() < nl_c.logic_count());
        assert!(rp.result.wirelength > 0 && rc.result.wirelength > 0);
    }

    #[test]
    fn min_width_is_minimal() {
        let aig = small_mul_aig();
        let d = map_conventional(&aig, MapOptions::default());
        let nl = extract(&d);
        let rep = full_par(&nl, &ParOptions::default()).expect("routable");
        // Minimality is only guaranteed above the search floor.
        if rep.min_channel_width > ParOptions::default().min_width {
            // One narrower must fail (that's what "minimum" means).
            let narrower = route_at_width(
                &nl,
                &rep.placement,
                rep.arch,
                rep.min_channel_width - 1,
                &RouteOptions::default(),
            );
            assert!(narrower.is_none(), "width was not minimal");
        }
    }
}
