//! TPLACE and TROUTE: place & route for (parameterized) FPGA designs.
//!
//! This crate reproduces the role of the TPaR CAD tools [11] used in the
//! paper's evaluation:
//!
//! * [`netlist`] — flattens a mapped design into placeable blocks and
//!   routing nets. A TCON becomes a **tunable net**: a net with *several
//!   candidate sources* whose alternatives are mutually exclusive across
//!   parameter values, so they may share physical wires — exactly how
//!   TROUTE maps tunable connections onto the FPGA's switch blocks;
//! * [`tplace`] — simulated-annealing placement with half-perimeter
//!   wirelength cost (multi-seed parallel variant included);
//! * [`troute`] — PathFinder-style negotiated-congestion routing on the
//!   fabric's routing-resource graph, with A* directed expansion;
//! * [`incr`] — the incremental router core: in-place occupancy/history,
//!   dirty-net worklist, per-net A* bounding boxes with staged expansion,
//!   and deterministic wave parallelism (bit-identical for any thread
//!   count);
//! * [`warm`] — minimum-channel-width search (doubling + binary) whose
//!   probes are warm-started from the previous width's routing trees;
//! * [`engine`] — the [`engine::ParEngine`] facade owning every knob;
//! * [`cw`] — the stable options-light API ([`cw::full_par`]) that
//!   produces the WL/CW columns of Table I, now backed by the engine.

#![forbid(unsafe_code)]
#![deny(clippy::dbg_macro, clippy::todo)]

pub mod cw;
pub mod engine;
mod incr;
pub mod netlist;
pub mod tplace;
pub mod troute;
pub mod warm;

pub use cw::{full_par, ParReport};
pub use engine::{EngineOptions, ParEngine};
pub use netlist::{extract, Block, BlockKind, Net, ParNetlist};
pub use tplace::{place, place_multi_seed, place_multi_seed_on, Placement};
pub use troute::{route, RouteOptions, RouteResult};
pub use warm::{
    channel_width_estimate, channel_width_lower_bound, WidthCertificate, WidthProbe, WidthSearch,
};
