//! TPLACE and TROUTE: place & route for (parameterized) FPGA designs.
//!
//! This crate reproduces the role of the TPaR CAD tools [11] used in the
//! paper's evaluation:
//!
//! * [`netlist`] — flattens a mapped design into placeable blocks and
//!   routing nets. A TCON becomes a **tunable net**: a net with *several
//!   candidate sources* whose alternatives are mutually exclusive across
//!   parameter values, so they may share physical wires — exactly how
//!   TROUTE maps tunable connections onto the FPGA's switch blocks;
//! * [`tplace`] — simulated-annealing placement with half-perimeter
//!   wirelength cost (multi-seed parallel variant included);
//! * [`troute`] — PathFinder-style negotiated-congestion routing on the
//!   fabric's routing-resource graph, with A* directed expansion;
//! * [`cw`] — minimum-channel-width binary search and the end-to-end
//!   [`cw::full_par`] driver that produces the WL/CW columns of Table I.

pub mod cw;
pub mod netlist;
pub mod tplace;
pub mod troute;

pub use cw::{full_par, ParReport};
pub use netlist::{extract, Block, BlockKind, Net, ParNetlist};
pub use tplace::{place, place_multi_seed, Placement};
pub use troute::{route, RouteOptions, RouteResult};
