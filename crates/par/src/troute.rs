//! TROUTE: PathFinder-style negotiated-congestion routing with tunable
//! nets.
//!
//! Standard PathFinder: every net is repeatedly ripped up and rerouted
//! with costs that penalize present congestion (growing each iteration)
//! and accumulate history on persistently congested wires, until no wire
//! is shared by two different nets.
//!
//! The TROUTE twist: a **tunable net** has several candidate sources (the
//! TCON alternatives). All of them seed the same search, and everything
//! the net uses belongs to one occupancy bucket — alternatives legally
//! share wires because at most one of them is active for any parameter
//! value. This is what removes the paper's intra-/inter-connect from the
//! LUT budget at *zero* channel-width overhead.
//!
//! Since the `par-engine` rework the actual search loop lives in
//! [`crate::incr`] (incremental rip-up, bounding boxes, wave
//! parallelism); this module keeps the router's public types, the
//! single-shot [`route`] entry point (the incremental core on one
//! thread), and the [`audit`] used by tests and benches.

use crate::incr::{route_core, Knobs};
use crate::netlist::ParNetlist;
use crate::tplace::Placement;
use fabric::rrg::RouteGraph;
use verify::NetTerminals;

/// Router options.
#[derive(Debug, Clone, Copy)]
pub struct RouteOptions {
    /// Maximum PathFinder iterations before giving up.
    pub max_iters: usize,
    /// Initial present-congestion factor.
    pub first_pres_fac: f64,
    /// Multiplier on the present-congestion factor per iteration.
    pub pres_fac_mult: f64,
    /// History cost accumulation factor.
    pub acc_fac: f64,
    /// A* directedness (1.0 = admissible-ish, >1 trades quality for speed).
    pub astar_fac: f64,
    /// Abort early when the best overuse count has not improved by ≥3 %
    /// for this many consecutive iterations *while overuse is still
    /// massive* (> nets/16 + 64 wires) — the signature of a hopelessly
    /// narrow channel. `0` disables the stall detector. Near-feasible
    /// widths plateau far below the threshold and always get their full
    /// `max_iters` budget.
    pub stall_iters: usize,
}

impl Default for RouteOptions {
    fn default() -> Self {
        Self {
            max_iters: 30,
            first_pres_fac: 0.5,
            pres_fac_mult: 1.8,
            acc_fac: 1.0,
            astar_fac: 1.2,
            stall_iters: 6,
        }
    }
}

/// Result of a successful routing run.
pub struct RouteResult {
    /// Per net: the RRG nodes its route uses.
    pub trees: Vec<Vec<u32>>,
    /// Total wirelength: distinct channel wires in use.
    pub wirelength: usize,
    /// Wires used by tunable nets (the physical footprint of the TCONs).
    pub tunable_wirelength: usize,
    /// Configured switch count on tunable nets — the "TCON" figure at the
    /// physical level (edges entering used wires of tunable nets).
    pub tcon_switches: usize,
    /// PathFinder iterations used.
    pub iterations: usize,
    /// Net (re)route operations across all iterations — the router-effort
    /// figure the benches report next to wall time.
    pub ripups: usize,
    /// Disjoint-bbox waves scheduled across all iterations.
    pub waves: usize,
    /// Reroutes executed inside a partition worker's owned region.
    pub interior_routes: usize,
    /// Reroutes of boundary-crossing nets, committed in net order on the
    /// coordinator thread.
    pub boundary_routes: usize,
    /// Interior reroutes per column region (empty when the run never took
    /// the partition path).
    pub partition_occupancy: Vec<usize>,
    /// Most separator wires in use across any fabric cut in the final
    /// state — feeds the width search's success-side `lo` advance.
    pub worst_cut_used: usize,
}

/// Routing failure: congestion never resolved.
#[derive(Debug, Clone, Copy)]
pub struct Unroutable {
    /// Wires still overused in the final iteration (`usize::MAX` when a
    /// sink was outright unreachable).
    pub overused: usize,
    /// PathFinder iterations spent before giving up.
    pub iterations: usize,
    /// Net (re)route operations spent before giving up.
    pub ripups: usize,
    /// Largest summed residual overuse across any single fabric cut when
    /// the verdict was cold-equivalent (no frozen warm trees left); `0`
    /// otherwise. Dividing by the cut separator width gives the width
    /// search a per-failure `lo` advance sharper than `w + 1`.
    pub worst_cut_overuse: usize,
}

/// Routes a placed netlist on the given routing-resource graph: the
/// incremental core on a single thread.
pub fn route(
    netlist: &ParNetlist,
    placement: &Placement,
    graph: &RouteGraph,
    opts: RouteOptions,
) -> Result<RouteResult, Unroutable> {
    route_core(netlist, placement, graph, opts, Knobs::default(), None, None, None)
}

/// Terminal sets of every net, lifted into RRG node space — the input the
/// `verify` crate's route-tree linter checks trees against.
pub fn terminals(
    netlist: &ParNetlist,
    placement: &Placement,
    graph: &RouteGraph,
) -> Vec<NetTerminals> {
    netlist
        .nets
        .iter()
        .map(|n| NetTerminals {
            sources: n
                .sources
                .iter()
                .map(|&b| graph.opin(placement.site_of[b as usize]))
                .collect(),
            sinks: n
                .sinks
                .iter()
                .map(|&(b, p)| graph.ipin(placement.site_of[b as usize], p as usize))
                .collect(),
        })
        .collect()
}

/// Audits a routing result by delegating to the `verify` crate's
/// route-tree linter: every sink reachable from a source through the
/// tree's own nodes, no stranded nodes, no wire shared by two different
/// nets, all node ids and tracks in range. Used by tests, the benches,
/// and the engine's commit path.
pub fn audit(
    netlist: &ParNetlist,
    placement: &Placement,
    graph: &RouteGraph,
    result: &RouteResult,
) -> Result<(), String> {
    let nets = terminals(netlist, placement, graph);
    let violations = verify::routes::check_route_trees(graph, &nets, &result.trees);
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{Block, BlockKind, Net, ParNetlist};
    use crate::tplace::place;
    use fabric::arch::FabricArch;

    fn tiny() -> (ParNetlist, Placement, RouteGraph) {
        let blocks = vec![
            Block { name: "in0".into(), kind: BlockKind::InputPad },
            Block { name: "in1".into(), kind: BlockKind::InputPad },
            Block { name: "l0".into(), kind: BlockKind::Logic },
            Block { name: "l1".into(), kind: BlockKind::Logic },
            Block { name: "out".into(), kind: BlockKind::OutputPad },
        ];
        let nets = vec![
            Net { sources: vec![0], sinks: vec![(2, 0), (3, 1)] },
            Net { sources: vec![1], sinks: vec![(2, 1)] },
            Net { sources: vec![2], sinks: vec![(3, 0)] },
            Net { sources: vec![3], sinks: vec![(4, 0)] },
        ];
        let nl = ParNetlist { blocks, nets };
        let arch = FabricArch::paper_4lut(3);
        let p = place(&nl, arch, 5);
        let g = RouteGraph::build(arch, 6);
        (nl, p, g)
    }

    #[test]
    fn tiny_design_routes_and_audits() {
        let (nl, p, g) = tiny();
        let r = route(&nl, &p, &g, RouteOptions::default()).expect("routable");
        assert!(r.wirelength > 0);
        assert!(r.ripups >= nl.nets.len());
        audit(&nl, &p, &g, &r).expect("audit clean");
    }

    #[test]
    fn tunable_net_shares_wires() {
        // One tunable net with two sources; both reach the same sink.
        let blocks = vec![
            Block { name: "a".into(), kind: BlockKind::InputPad },
            Block { name: "b".into(), kind: BlockKind::InputPad },
            Block { name: "l".into(), kind: BlockKind::Logic },
            Block { name: "out".into(), kind: BlockKind::OutputPad },
        ];
        let nets = vec![
            Net { sources: vec![0, 1], sinks: vec![(2, 0)] },
            Net { sources: vec![2], sinks: vec![(3, 0)] },
        ];
        let nl = ParNetlist { blocks, nets };
        let arch = FabricArch::paper_4lut(3);
        let p = place(&nl, arch, 1);
        let g = RouteGraph::build(arch, 6);
        let r = route(&nl, &p, &g, RouteOptions::default()).expect("routable");
        audit(&nl, &p, &g, &r).expect("audit");
        assert!(r.tunable_wirelength > 0);
        assert!(r.tcon_switches > 0);
    }

    #[test]
    fn impossible_width_reports_unroutable() {
        // Saturate a tiny fabric with many crossing nets at width 2.
        let mut blocks = vec![];
        let mut nets = vec![];
        for i in 0..6u32 {
            blocks.push(Block { name: format!("i{i}"), kind: BlockKind::InputPad });
        }
        for i in 0..6u32 {
            blocks.push(Block { name: format!("l{i}"), kind: BlockKind::Logic });
            // every input drives several LUT pins
            nets.push(Net {
                sources: vec![i],
                sinks: vec![(6 + i, 0), (6 + ((i + 1) % 6), 1), (6 + ((i + 2) % 6), 2)],
            });
        }
        let nl = ParNetlist { blocks, nets };
        let arch = FabricArch::paper_4lut(3);
        let p = place(&nl, arch, 2);
        let g = RouteGraph::build(arch, 2);
        let opts = RouteOptions { max_iters: 8, ..Default::default() };
        // Width 2 may or may not fail; width 8 must succeed.
        let g8 = RouteGraph::build(arch, 8);
        assert!(route(&nl, &p, &g8, RouteOptions::default()).is_ok());
        let _ = route(&nl, &p, &g, opts); // must not panic either way
    }
}
