//! TROUTE: PathFinder-style negotiated-congestion routing with tunable
//! nets.
//!
//! Standard PathFinder: every net is repeatedly ripped up and rerouted
//! with costs that penalize present congestion (growing each iteration)
//! and accumulate history on persistently congested wires, until no wire
//! is shared by two different nets.
//!
//! The TROUTE twist: a **tunable net** has several candidate sources (the
//! TCON alternatives). All of them seed the same search, and everything
//! the net uses belongs to one occupancy bucket — alternatives legally
//! share wires because at most one of them is active for any parameter
//! value. This is what removes the paper's intra-/inter-connect from the
//! LUT budget at *zero* channel-width overhead.

use crate::netlist::ParNetlist;
use crate::tplace::Placement;
use fabric::rrg::RouteGraph;
use logic::fxhash::FxHashSet;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Router options.
#[derive(Debug, Clone, Copy)]
pub struct RouteOptions {
    /// Maximum PathFinder iterations before giving up.
    pub max_iters: usize,
    /// Initial present-congestion factor.
    pub first_pres_fac: f64,
    /// Multiplier on the present-congestion factor per iteration.
    pub pres_fac_mult: f64,
    /// History cost accumulation factor.
    pub acc_fac: f64,
    /// A* directedness (1.0 = admissible-ish, >1 trades quality for speed).
    pub astar_fac: f64,
}

impl Default for RouteOptions {
    fn default() -> Self {
        Self {
            max_iters: 30,
            first_pres_fac: 0.5,
            pres_fac_mult: 1.8,
            acc_fac: 1.0,
            astar_fac: 1.2,
        }
    }
}

/// Result of a successful routing run.
pub struct RouteResult {
    /// Per net: the RRG nodes its route uses.
    pub trees: Vec<Vec<u32>>,
    /// Total wirelength: distinct channel wires in use.
    pub wirelength: usize,
    /// Wires used by tunable nets (the physical footprint of the TCONs).
    pub tunable_wirelength: usize,
    /// Configured switch count on tunable nets — the "TCON" figure at the
    /// physical level (edges entering used wires of tunable nets).
    pub tcon_switches: usize,
    /// PathFinder iterations used.
    pub iterations: usize,
}

/// Routing failure: congestion never resolved.
#[derive(Debug, Clone, Copy)]
pub struct Unroutable {
    /// Wires still overused in the final iteration.
    pub overused: usize,
}

/// Routes a placed netlist on the given routing-resource graph.
pub fn route(
    netlist: &ParNetlist,
    placement: &Placement,
    graph: &RouteGraph,
    opts: RouteOptions,
) -> Result<RouteResult, Unroutable> {
    let n_nodes = graph.node_count();
    let n_nets = netlist.nets.len();

    // Net terminals in RRG space.
    let src_nodes: Vec<Vec<u32>> = netlist
        .nets
        .iter()
        .map(|n| {
            n.sources
                .iter()
                .map(|&b| graph.opin(placement.site_of[b as usize]))
                .collect()
        })
        .collect();
    let sink_nodes: Vec<Vec<u32>> = netlist
        .nets
        .iter()
        .map(|n| {
            n.sinks
                .iter()
                .map(|&(b, p)| graph.ipin(placement.site_of[b as usize], p as usize))
                .collect()
        })
        .collect();

    // Occupancy (nets per wire; pins are capacity-unlimited).
    let mut occ = vec![0u16; n_nodes];
    let mut hist = vec![0f32; n_nodes];
    let mut trees: Vec<Vec<u32>> = vec![Vec::new(); n_nets];
    let is_wire: Vec<bool> = (0..n_nodes as u32).map(|i| graph.kind(i).is_wire()).collect();

    let mut pres_fac = opts.first_pres_fac;
    // Scratch buffers reused across searches (perf-book: reuse workhorse
    // collections instead of reallocating).
    let mut cost_to = vec![f32::INFINITY; n_nodes];
    let mut prev = vec![u32::MAX; n_nodes];
    let mut touched: Vec<u32> = Vec::new();

    for iter in 0..opts.max_iters {
        for net in 0..n_nets {
            // After the first iteration only congested nets are rerouted.
            if iter > 0 {
                let congested = trees[net].iter().any(|&n| occ[n as usize] > 1);
                if !congested {
                    continue;
                }
            }
            // Rip up.
            for &n in &trees[net] {
                if is_wire[n as usize] {
                    occ[n as usize] -= 1;
                }
            }
            trees[net].clear();

            // Route sink by sink, reusing the growing tree.
            let mut tree: FxHashSet<u32> = FxHashSet::default();
            let mut ordered_sinks = sink_nodes[net].clone();
            // Deterministic order: far sinks first (by heuristic distance).
            let s0 = graph.location(src_nodes[net][0]);
            ordered_sinks.sort_by(|&a, &b| {
                let da = dist(graph.location(a), s0);
                let db = dist(graph.location(b), s0);
                db.total_cmp(&da).then(a.cmp(&b))
            });

            for &sink in &ordered_sinks {
                // A* from tree ∪ sources to sink.
                let tloc = graph.location(sink);
                let mut heap: BinaryHeap<(Reverse<u64>, u32)> = BinaryHeap::new();
                for &t in touched.iter() {
                    cost_to[t as usize] = f32::INFINITY;
                    prev[t as usize] = u32::MAX;
                }
                touched.clear();
                let push = |heap: &mut BinaryHeap<(Reverse<u64>, u32)>,
                                cost_to: &mut [f32],
                                prev: &mut [u32],
                                touched: &mut Vec<u32>,
                                node: u32,
                                c: f32,
                                from: u32| {
                    if c < cost_to[node as usize] {
                        if cost_to[node as usize] == f32::INFINITY {
                            touched.push(node);
                        }
                        cost_to[node as usize] = c;
                        prev[node as usize] = from;
                        let h = dist(graph.location(node), tloc) * opts.astar_fac;
                        heap.push((Reverse(((c as f64 + h) * 1024.0) as u64), node));
                    }
                };
                for &s in &src_nodes[net] {
                    push(&mut heap, &mut cost_to, &mut prev, &mut touched, s, 0.0, u32::MAX);
                }
                for &t in &tree {
                    push(&mut heap, &mut cost_to, &mut prev, &mut touched, t, 0.0, u32::MAX);
                }
                let mut found = false;
                while let Some((_, node)) = heap.pop() {
                    if node == sink {
                        found = true;
                        break;
                    }
                    let c_here = cost_to[node as usize];
                    for &next in graph.edges(node) {
                        let step = if is_wire[next as usize] {
                            let o = occ[next as usize] as f64;
                            let over = (o + 1.0 - 1.0).max(0.0); // occupancy if we take it
                            (1.0 + pres_fac * over + hist[next as usize] as f64) as f32
                        } else {
                            0.4
                        };
                        push(
                            &mut heap,
                            &mut cost_to,
                            &mut prev,
                            &mut touched,
                            next,
                            c_here + step,
                            node,
                        );
                    }
                }
                if !found {
                    return Err(Unroutable { overused: usize::MAX });
                }
                // Trace back, add to tree, bump occupancy.
                let mut cur = sink;
                while cur != u32::MAX {
                    if tree.insert(cur) && is_wire[cur as usize] {
                        occ[cur as usize] += 1;
                    }
                    cur = prev[cur as usize];
                }
            }
            trees[net] = tree.into_iter().collect();
            trees[net].sort_unstable();
        }

        // Congestion check.
        let mut overused = 0usize;
        for n in 0..n_nodes {
            if occ[n] > 1 {
                overused += 1;
                hist[n] += (opts.acc_fac * (occ[n] - 1) as f64) as f32;
            }
        }
        if overused == 0 {
            let mut wl = 0usize;
            let mut twl = 0usize;
            let mut tcon_switches = 0usize;
            for (i, tree) in trees.iter().enumerate() {
                let wires = tree.iter().filter(|&&n| is_wire[n as usize]).count();
                wl += wires;
                if netlist.nets[i].is_tunable() {
                    twl += wires;
                    // Every used node of a tunable net was entered through a
                    // configured programmable switch.
                    tcon_switches += tree.len().saturating_sub(netlist.nets[i].sources.len());
                }
            }
            return Ok(RouteResult {
                trees,
                wirelength: wl,
                tunable_wirelength: twl,
                tcon_switches,
                iterations: iter + 1,
            });
        }
        if iter + 1 == opts.max_iters {
            return Err(Unroutable { overused });
        }
        pres_fac *= opts.pres_fac_mult;
    }
    unreachable!("loop returns before exhausting iterations")
}

#[inline]
fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    (a.0 - b.0).abs() + (a.1 - b.1).abs()
}

/// Audits a routing result: every sink must be reachable from one of the
/// net's sources through the tree's nodes, and no wire may be used by two
/// different nets. Used by tests and by the benches before reporting.
pub fn audit(
    netlist: &ParNetlist,
    placement: &Placement,
    graph: &RouteGraph,
    result: &RouteResult,
) -> Result<(), String> {
    let mut owner: Vec<Option<u32>> = vec![None; graph.node_count()];
    for (i, tree) in result.trees.iter().enumerate() {
        let set: FxHashSet<u32> = tree.iter().copied().collect();
        // Connectivity: BFS within tree from sources.
        let mut reach: FxHashSet<u32> = FxHashSet::default();
        let mut queue: Vec<u32> = Vec::new();
        for &b in &netlist.nets[i].sources {
            let s = graph.opin(placement.site_of[b as usize]);
            if set.contains(&s) {
                queue.push(s);
                reach.insert(s);
            }
        }
        while let Some(n) = queue.pop() {
            for &e in graph.edges(n) {
                if set.contains(&e) && reach.insert(e) {
                    queue.push(e);
                }
            }
        }
        for &(b, p) in &netlist.nets[i].sinks {
            let sink = graph.ipin(placement.site_of[b as usize], p as usize);
            if !reach.contains(&sink) {
                return Err(format!("net {i}: sink {sink} not reached"));
            }
        }
        for &n in tree {
            if graph.kind(n).is_wire() {
                if let Some(o) = owner[n as usize] {
                    if o != i as u32 {
                        return Err(format!("wire {n} shared by nets {o} and {i}"));
                    }
                }
                owner[n as usize] = Some(i as u32);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{Block, BlockKind, Net, ParNetlist};
    use crate::tplace::place;
    use fabric::arch::FabricArch;

    fn tiny() -> (ParNetlist, Placement, RouteGraph) {
        let blocks = vec![
            Block { name: "in0".into(), kind: BlockKind::InputPad },
            Block { name: "in1".into(), kind: BlockKind::InputPad },
            Block { name: "l0".into(), kind: BlockKind::Logic },
            Block { name: "l1".into(), kind: BlockKind::Logic },
            Block { name: "out".into(), kind: BlockKind::OutputPad },
        ];
        let nets = vec![
            Net { sources: vec![0], sinks: vec![(2, 0), (3, 1)] },
            Net { sources: vec![1], sinks: vec![(2, 1)] },
            Net { sources: vec![2], sinks: vec![(3, 0)] },
            Net { sources: vec![3], sinks: vec![(4, 0)] },
        ];
        let nl = ParNetlist { blocks, nets };
        let arch = FabricArch::paper_4lut(3);
        let p = place(&nl, arch, 5);
        let g = RouteGraph::build(arch, 6);
        (nl, p, g)
    }

    #[test]
    fn tiny_design_routes_and_audits() {
        let (nl, p, g) = tiny();
        let r = route(&nl, &p, &g, RouteOptions::default()).expect("routable");
        assert!(r.wirelength > 0);
        audit(&nl, &p, &g, &r).expect("audit clean");
    }

    #[test]
    fn tunable_net_shares_wires() {
        // One tunable net with two sources; both reach the same sink.
        let blocks = vec![
            Block { name: "a".into(), kind: BlockKind::InputPad },
            Block { name: "b".into(), kind: BlockKind::InputPad },
            Block { name: "l".into(), kind: BlockKind::Logic },
            Block { name: "out".into(), kind: BlockKind::OutputPad },
        ];
        let nets = vec![
            Net { sources: vec![0, 1], sinks: vec![(2, 0)] },
            Net { sources: vec![2], sinks: vec![(3, 0)] },
        ];
        let nl = ParNetlist { blocks, nets };
        let arch = FabricArch::paper_4lut(3);
        let p = place(&nl, arch, 1);
        let g = RouteGraph::build(arch, 6);
        let r = route(&nl, &p, &g, RouteOptions::default()).expect("routable");
        audit(&nl, &p, &g, &r).expect("audit");
        assert!(r.tunable_wirelength > 0);
        assert!(r.tcon_switches > 0);
    }

    #[test]
    fn impossible_width_reports_unroutable() {
        // Saturate a tiny fabric with many crossing nets at width 2.
        let mut blocks = vec![];
        let mut nets = vec![];
        for i in 0..6u32 {
            blocks.push(Block { name: format!("i{i}"), kind: BlockKind::InputPad });
        }
        for i in 0..6u32 {
            blocks.push(Block { name: format!("l{i}"), kind: BlockKind::Logic });
            // every input drives several LUT pins
            nets.push(Net {
                sources: vec![i],
                sinks: vec![(6 + i, 0), (6 + ((i + 1) % 6), 1), (6 + ((i + 2) % 6), 2)],
            });
        }
        let nl = ParNetlist { blocks, nets };
        let arch = FabricArch::paper_4lut(3);
        let p = place(&nl, arch, 2);
        let g = RouteGraph::build(arch, 2);
        let opts = RouteOptions { max_iters: 8, ..Default::default() };
        // Width 2 may or may not fail; width 8 must succeed.
        let g8 = RouteGraph::build(arch, 8);
        assert!(route(&nl, &p, &g8, RouteOptions::default()).is_ok());
        let _ = route(&nl, &p, &g, opts); // must not panic either way
    }
}
