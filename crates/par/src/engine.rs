//! `ParEngine`: the incremental, parallel place-and-route facade.
//!
//! One object owns every knob of the PaR pipeline and exposes the three
//! granularities callers need:
//!
//! * [`ParEngine::run`] — netlist in, [`ParReport`] out (auto-sized
//!   fabric, multi-seed placement, warm-started width search);
//! * [`ParEngine::min_channel_width`] — the width search alone, with the
//!   per-probe effort log;
//! * [`ParEngine::route`] — one routing run on a prebuilt graph.
//!
//! Determinism contract: for a fixed netlist and options, every result is
//! **bit-identical regardless of `threads`**. Placement fans seeds across
//! scoped workers and keeps the lowest cost (ties broken by seed order);
//! routing packs dirty nets into waves of bbox-disjoint members whose
//! searches cannot observe each other, so the wave schedule — not the
//! thread count — decides the outcome.

use crate::cw::ParReport;
use crate::incr::{route_core, Knobs};
use crate::netlist::ParNetlist;
use crate::tplace::{place_multi_seed_on, Placement};
use crate::troute::{audit, RouteOptions, RouteResult, Unroutable};
use crate::warm::{self, WidthSearch};
use fabric::arch::FabricArch;
use fabric::rrg::RouteGraph;

/// Every knob of the engine.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// PathFinder parameters.
    pub route: RouteOptions,
    /// Placement seeds; all are annealed, the best placement wins.
    pub seeds: Vec<u64>,
    /// Worker threads for placement seeds and routing waves.
    /// `0` = one per available CPU. Never changes results.
    pub threads: usize,
    /// Reroute only dirty nets per iteration (off = full rip-up PathFinder).
    pub incremental: bool,
    /// Confine per-net A* to placement-derived bounding boxes with staged
    /// expansion on failure.
    pub bbox: bool,
    /// Seed each width probe from the previous successful width's routes.
    pub warm_start: bool,
    /// Cold linear width scan instead of doubling + binary search (the
    /// reference the equivalence tests compare against).
    pub linear_scan: bool,
    /// After the warm binary search concludes, re-probe the final `W−1`
    /// failure **cold** so the reported minimum carries a proof-grade
    /// certificate (warm verdicts are de-biased but still heuristic).
    /// Costs at most one extra failing probe, bounded by the stall
    /// detector like any other hopeless width.
    pub certify: bool,
    /// Width search floor.
    pub min_width: usize,
    /// Width search ceiling; failing here aborts.
    pub max_width: usize,
    /// After the width search, re-route cold at the minimum width with
    /// the wave-schedule auditor attached and attach its
    /// serial-equivalence report to the [`ParReport`]. Costs one extra
    /// cold routing run; never changes results. With `partitions ≥ 2` the
    /// run also records the partition schedule and attaches the
    /// partition-ownership report.
    pub audit_waves: bool,
    /// Column regions for spatial partition routing. `1` disables the
    /// partition path, `0` picks a fabric-sized count automatically
    /// (≈ one region per 12 tile columns, capped at 8). Results never
    /// depend on it.
    pub partitions: usize,
    /// Safety margin (tiles) around partition borders; nets whose boxes
    /// come this close to a border commit in order on the coordinator.
    pub halo: f32,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            route: RouteOptions::default(),
            seeds: vec![1],
            threads: 0,
            incremental: true,
            bbox: true,
            warm_start: true,
            linear_scan: false,
            certify: true,
            // The paper's designs need ~10 tracks; probing widths far below
            // that wastes PathFinder iterations on hopeless congestion.
            min_width: 6,
            max_width: 96,
            audit_waves: false,
            partitions: 0,
            halo: 1.0,
        }
    }
}

/// The place & route engine. See the module docs.
pub struct ParEngine {
    /// Configuration the engine was built with.
    pub opts: EngineOptions,
}

impl ParEngine {
    /// An engine with the given options.
    pub fn new(opts: EngineOptions) -> Self {
        Self { opts }
    }

    /// Resolved worker count (`threads == 0` → available parallelism).
    pub fn threads(&self) -> usize {
        if self.opts.threads > 0 {
            self.opts.threads
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }

    fn knobs(&self) -> Knobs {
        Knobs {
            threads: self.threads(),
            bbox: self.opts.bbox,
            incremental: self.opts.incremental,
            partitions: self.opts.partitions,
            halo: self.opts.halo,
        }
    }

    /// Multi-seed placement on at most [`ParEngine::threads`] workers.
    pub fn place(&self, netlist: &ParNetlist, arch: FabricArch) -> Placement {
        place_multi_seed_on(netlist, arch, &self.opts.seeds, self.threads())
    }

    /// One routing run on a prebuilt graph.
    pub fn route(
        &self,
        netlist: &ParNetlist,
        placement: &Placement,
        graph: &RouteGraph,
    ) -> Result<RouteResult, Unroutable> {
        route_core(netlist, placement, graph, self.opts.route, self.knobs(), None, None, None)
    }

    /// One routing run on a prebuilt graph with the wave-schedule auditor
    /// attached: every wave's actual read/write footprints are checked
    /// for pairwise serial equivalence. The waves are routed serially
    /// (footprints and trees are identical to the parallel execution —
    /// each member's search is pure in the pre-wave snapshot), so this
    /// observes the parallel schedule without perturbing it. The report
    /// covers the waves actually scheduled, whether or not routing
    /// converged.
    pub fn route_audited(
        &self,
        netlist: &ParNetlist,
        placement: &Placement,
        graph: &RouteGraph,
    ) -> (Result<RouteResult, Unroutable>, verify::VerifyReport) {
        let mut auditor = verify::WaveAuditor::new();
        let r = route_core(
            netlist,
            placement,
            graph,
            self.opts.route,
            self.knobs(),
            None,
            Some(&mut auditor),
            None,
        );
        (r, auditor.finish())
    }

    /// One routing run on the partition path with the schedule recorded,
    /// plus the partition-ownership report over the recorded plans
    /// (region tiling, worker exclusivity, commit rank order). The
    /// routing result is bit-identical to [`ParEngine::route`].
    pub fn route_partition_audited(
        &self,
        netlist: &ParNetlist,
        placement: &Placement,
        graph: &RouteGraph,
    ) -> (Result<RouteResult, Unroutable>, verify::VerifyReport) {
        let mut plans: Vec<verify::PartitionPlan> = Vec::new();
        let r = route_core(
            netlist,
            placement,
            graph,
            self.opts.route,
            self.knobs(),
            None,
            None,
            Some(&mut plans),
        );
        (r, verify::Verifier::new().verify_partition(&plans))
    }

    /// Minimum-channel-width search with the per-probe effort log.
    pub fn min_channel_width(
        &self,
        netlist: &ParNetlist,
        placement: &Placement,
        arch: FabricArch,
    ) -> Option<WidthSearch> {
        warm::search(netlist, placement, arch, &self.opts, self.knobs())
    }

    /// End-to-end: size a fabric, place, search the minimum width.
    pub fn run(&self, netlist: &ParNetlist) -> Result<ParReport, String> {
        let mut run_span = trace::span("par.run");
        run_span.arg("nets", netlist.nets.len());
        let arch = FabricArch::sized_for(netlist.logic_count(), netlist.io_count());
        let t0 = std::time::Instant::now();
        let placement = {
            let _sp = trace::span("par.place");
            self.place(netlist, arch)
        };
        let place_seconds = t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        let mut search_span = trace::span("par.width_search");
        let search = self
            .min_channel_width(netlist, &placement, arch)
            .ok_or_else(|| format!("unroutable up to width {}", self.opts.max_width))?;
        search_span.arg("min_width", search.min_width);
        search_span.arg("probes", search.probes.len());
        drop(search_span);
        let route_seconds = t1.elapsed().as_secs_f64();
        run_span.arg("min_width", search.min_width);
        // Commit-path audit, checked in release builds too: the report's
        // trees feed configuration generation and the Table I figures.
        let graph = RouteGraph::build(arch, search.min_width);
        audit(netlist, &placement, &graph, &search.result)
            .map_err(|e| format!("route audit failed at width {}: {e}", search.min_width))?;
        let (wave_audit, partition_audit) = if self.opts.audit_waves {
            let (cold, report) = self.route_audited(netlist, &placement, &graph);
            let resolved = if self.opts.partitions == 0 {
                crate::incr::auto_partitions(arch.size)
            } else {
                self.opts.partitions
            };
            let partition_audit = if resolved >= 2 {
                let (pr, preport) = self.route_partition_audited(netlist, &placement, &graph);
                // The partition path must reproduce the audited wave
                // schedule bit-exactly — a divergence is a soundness bug,
                // not a QoR regression, so it fails the run outright.
                if let (Ok(a), Ok(b)) = (&cold, &pr) {
                    if a.trees != b.trees {
                        return Err("partition routing diverged from the wave schedule".into());
                    }
                }
                Some(preport)
            } else {
                None
            };
            (Some(report), partition_audit)
        } else {
            (None, None)
        };
        Ok(ParReport {
            arch,
            placement,
            min_channel_width: search.min_width,
            result: search.result,
            probes: search.probes,
            certificate: search.certificate,
            place_seconds,
            route_seconds,
            wave_audit,
            partition_audit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::extract;
    use logic::aig::{Aig, InputKind};
    use mapping::{map_parameterized, MapOptions};
    use softfloat::gates;

    fn small_mul_aig() -> Aig {
        let mut g = Aig::new();
        let x = g.input_vec("x", 4, InputKind::Regular);
        let c = g.input_vec("c", 4, InputKind::Param);
        let p = gates::mul_array(&mut g, &x, &c);
        g.add_output_vec("p", &p);
        g
    }

    #[test]
    fn engine_runs_end_to_end_with_probe_log() {
        let d = map_parameterized(&small_mul_aig(), MapOptions::default());
        let nl = extract(&d);
        let rep = ParEngine::new(EngineOptions::default()).run(&nl).expect("routable");
        assert!(rep.result.wirelength > 0);
        assert!(!rep.probes.is_empty(), "width search must log probes");
        assert!(rep.probes.iter().any(|p| p.success));
        assert_eq!(
            rep.probes.iter().filter(|p| p.success).map(|p| p.width).min().unwrap(),
            rep.min_channel_width
        );
        // The winning probe may be warm-started (only broken/congested
        // nets reroute), so the only safe lower bound is "some work ran".
        assert!(rep.result.ripups > 0);
    }

    #[test]
    fn audited_route_matches_parallel_and_waves_are_race_free() {
        let d = map_parameterized(&small_mul_aig(), MapOptions::default());
        let nl = extract(&d);
        for threads in [1usize, 2, 4] {
            let engine = ParEngine::new(EngineOptions { threads, ..Default::default() });
            let arch = FabricArch::sized_for(nl.logic_count(), nl.io_count());
            let placement = engine.place(&nl, arch);
            let graph = RouteGraph::build(arch, 10);
            let plain = engine.route(&nl, &placement, &graph).expect("routable");
            let (audited, report) = engine.route_audited(&nl, &placement, &graph);
            let audited = audited.expect("routable under audit");
            assert_eq!(plain.trees, audited.trees, "auditing must not perturb routing");
            assert!(report.ok(), "wave schedule must be serial-equivalent: {}", report.summary());
            assert!(report.checked > 0, "audit must have observed waves");
        }
    }

    #[test]
    fn audit_waves_option_attaches_report() {
        let d = map_parameterized(&small_mul_aig(), MapOptions::default());
        let nl = extract(&d);
        let rep = ParEngine::new(EngineOptions { audit_waves: true, ..Default::default() })
            .run(&nl)
            .expect("routable");
        let audit = rep.wave_audit.expect("audit_waves must attach a report");
        assert_eq!(audit.pass, "wave-schedule");
        assert!(audit.ok(), "{}", audit.summary());
    }

    #[test]
    fn thread_counts_are_bit_identical() {
        let d = map_parameterized(&small_mul_aig(), MapOptions::default());
        let nl = extract(&d);
        let run = |threads: usize| {
            ParEngine::new(EngineOptions { threads, ..Default::default() })
                .run(&nl)
                .expect("routable")
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.min_channel_width, b.min_channel_width);
        assert_eq!(a.result.trees, b.result.trees, "routing must not depend on threads");
        assert_eq!(a.placement.site_of, b.placement.site_of);
    }
}
