//! Warm-started minimum-channel-width search.
//!
//! VPR-style methodology: the placement is width-independent, so the
//! search probes the router at candidate widths. The engine's search is a
//! doubling phase followed by binary search, and every probe after the
//! first success is **warm-started**: the routing trees of the nearest
//! successful (wider) graph are translated into the probe's graph, each
//! net's translated tree is re-validated for connectivity (connection-box
//! and switch-box patterns are width-dependent, so edges do not
//! necessarily survive translation), and only broken or congested nets
//! are rerouted. A cold linear scan is kept behind
//! `EngineOptions::linear_scan` as the reference; both must find the same
//! minimum (see the equivalence tests).

use crate::engine::EngineOptions;
use crate::incr::{route_core, Knobs};
use crate::netlist::ParNetlist;
use crate::tplace::Placement;
use crate::troute::{RouteResult, Unroutable};
use fabric::arch::FabricArch;
use fabric::rrg::RouteGraph;
use logic::fxhash::FxHashSet;

/// One router invocation inside the width search.
#[derive(Debug, Clone, Copy)]
pub struct WidthProbe {
    /// Channel width probed.
    pub width: usize,
    /// Did the router legalize at this width?
    pub success: bool,
    /// Wall time of the probe.
    pub seconds: f64,
    /// PathFinder iterations spent.
    pub iterations: usize,
    /// Net (re)route operations spent.
    pub ripups: usize,
    /// Nets whose routes were carried over from the warm-start seed.
    pub warm_nets: usize,
    /// True for the certification re-probe of the final `W−1` failure
    /// (always cold: `warm_nets == 0`).
    pub confirm: bool,
}

/// Why the reported minimum is trusted (see [`WidthSearch::certificate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WidthCertificate {
    /// Certification was disabled (`EngineOptions::certify == false`).
    /// A cold linear scan never reports this: every verdict below its
    /// minimum is already cold, so it self-certifies as
    /// [`WidthCertificate::ColdFailure`] or [`WidthCertificate::Floor`].
    Uncertified,
    /// `W` equals the search floor (`EngineOptions::min_width`): nothing
    /// below was in scope, so there is no `W−1` verdict to confirm.
    Floor,
    /// `W−1` lies below the sound placement-geometry lower bound — no
    /// router run can succeed there, by construction.
    LowerBound,
    /// A **cold** probe (no warm-start seed whose bias could fabricate a
    /// failure) failed at `W−1` — either during the search itself or as
    /// the certification re-probe.
    ColdFailure,
}

impl WidthCertificate {
    /// Short stable name (for tables and JSON records).
    pub fn name(&self) -> &'static str {
        match self {
            WidthCertificate::Uncertified => "uncertified",
            WidthCertificate::Floor => "floor",
            WidthCertificate::LowerBound => "lower-bound",
            WidthCertificate::ColdFailure => "cold-failure",
        }
    }

    /// True when the minimum carries any proof (not `Uncertified`).
    pub fn is_certified(&self) -> bool {
        !matches!(self, WidthCertificate::Uncertified)
    }
}

/// Outcome of the width search: the minimum width, the routing there, and
/// the per-probe effort log.
pub struct WidthSearch {
    /// Minimum routable channel width found.
    pub min_width: usize,
    /// Routing result at the minimum width.
    pub result: RouteResult,
    /// Every probe, in the order it ran.
    pub probes: Vec<WidthProbe>,
    /// The placement-derived lower bound the search started from.
    pub lower_bound: usize,
    /// Strongest overuse-sharpened claim the search made: the highest
    /// `w + ⌈worst-cut overuse / separator⌉` advance derived from any
    /// cold-equivalent *failed* probe (`0` when the rule never fired).
    /// Heuristic, not proof — the certify loop repairs any overshoot —
    /// but `tests/determinism.rs` property-checks it never exceeds the
    /// cold `linear_scan` minimum in practice.
    pub overuse_lo: usize,
    /// Proof-grade backing for "`min_width` is minimal": the warm binary
    /// search takes de-biased warm verdicts at face value, so the final
    /// `W−1` failure is re-probed **cold** after the search concludes
    /// (unless the floor or the sound lower bound already certifies it).
    /// If — against the de-bias design — the cold re-probe *succeeds*,
    /// the search adopts the narrower result and keeps certifying
    /// downward, so the reported minimum is always the certified one.
    pub certificate: WidthCertificate,
}

/// A sound lower bound on the minimum channel width, from placement
/// geometry alone.
///
/// For every cut between adjacent tile columns, the set of channel wires
/// any crossing path must touch (the cut's vertex separator in the RRG —
/// one vertical channel column plus one full horizontal channel per row)
/// holds `(2s+1)·width` wires, and every net whose terminal extent spans
/// the cut needs at least one of them. So
/// `width ≥ ⌈crossings / (2s+1)⌉` at every cut (rows symmetric). Starting
/// the width search here skips the hopeless probes that dominated the
/// pre-engine TROUTE wall time without ever changing the found minimum.
pub fn channel_width_lower_bound(
    netlist: &ParNetlist,
    placement: &Placement,
    arch: FabricArch,
) -> usize {
    let s = arch.size;
    if s < 2 {
        return 2;
    }
    let mut cross_v = vec![0usize; s - 1];
    let mut cross_h = vec![0usize; s - 1];
    for net in &netlist.nets {
        let mut min_x = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        let mut upd = |b: u32| {
            let (x, y) = placement.site_of[b as usize].location(s);
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        };
        for &b in &net.sources {
            upd(b);
        }
        for &(b, _) in &net.sinks {
            upd(b);
        }
        // Cut k sits at coordinate k + 1.5 (tile centers are 1..=s).
        for (k, c) in cross_v.iter_mut().enumerate() {
            let cut = k as f64 + 1.5;
            if min_x < cut && max_x > cut {
                *c += 1;
            }
        }
        for (k, c) in cross_h.iter_mut().enumerate() {
            let cut = k as f64 + 1.5;
            if min_y < cut && max_y > cut {
                *c += 1;
            }
        }
    }
    let sep = 2 * s + 1;
    cross_v
        .iter()
        .chain(cross_h.iter())
        .map(|&c| c.div_ceil(sep))
        .max()
        .unwrap_or(2)
        .max(2)
}

/// Congestion-map **estimate** of the channel width the design wants:
/// every net spreads one unit of wire demand uniformly over the channels
/// of its terminal bounding box (the classic probabilistic congestion
/// estimate), and the peak per-channel demand — padded 60 % for router
/// detours — picks the width the doubling phase starts from.
///
/// Unlike [`channel_width_lower_bound`] this is *not* sound, and it does
/// not need to be: the width search only uses it to choose its first
/// probe. Too low costs a doubling step; too high costs a few cheap
/// warm-started binary probes. What it buys is never grinding the router
/// through the hopelessly narrow cold widths that dominated the
/// pre-engine TROUTE wall time.
pub fn channel_width_estimate(
    netlist: &ParNetlist,
    placement: &Placement,
    arch: FabricArch,
) -> usize {
    let s = arch.size;
    // Demand per row-channel cell (horizontal wires) and column-channel
    // cell (vertical wires), indexed [channel][tile].
    let mut h = vec![0f32; (s + 1) * s];
    let mut v = vec![0f32; (s + 1) * s];
    for net in &netlist.nets {
        let mut min_x = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        let mut upd = |b: u32| {
            let (x, y) = placement.site_of[b as usize].location(s);
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        };
        for &b in &net.sources {
            upd(b);
        }
        for &(b, _) in &net.sinks {
            upd(b);
        }
        // Tile/channel index ranges covered by the bbox (clamped).
        let x0 = (min_x - 1.0).floor().clamp(0.0, (s - 1) as f64) as usize;
        let x1 = (max_x - 1.0).ceil().clamp(0.0, (s - 1) as f64) as usize;
        let y0 = (min_y - 1.0).floor().clamp(0.0, (s - 1) as f64) as usize;
        let y1 = (max_y - 1.0).ceil().clamp(0.0, (s - 1) as f64) as usize;
        let rows = (y1 - y0 + 2) as f32; // row-channels usable: y0..=y1+1
        let cols = (x1 - x0 + 2) as f32;
        // One unit of horizontal demand per tile column the net spans,
        // spread over the bbox's row-channels (and symmetrically for
        // vertical demand).
        for y in y0..=(y1 + 1).min(s) {
            for x in x0..=x1 {
                h[y * s + x] += 1.0 / rows;
            }
        }
        for x in x0..=(x1 + 1).min(s) {
            for y in y0..=y1 {
                v[x * s + y] += 1.0 / cols;
            }
        }
    }
    let peak = h
        .iter()
        .chain(v.iter())
        .fold(0f32, |m, &d| m.max(d));
    ((peak * 1.6).ceil() as usize).max(2)
}

#[allow(clippy::too_many_arguments)]
fn probe(
    netlist: &ParNetlist,
    placement: &Placement,
    graph: &RouteGraph,
    opts: &EngineOptions,
    knobs: Knobs,
    seed: Option<Vec<Vec<u32>>>,
    confirm: bool,
    probes: &mut Vec<WidthProbe>,
) -> Result<RouteResult, Unroutable> {
    let warm_nets = seed
        .as_ref()
        .map(|s| s.iter().filter(|t| !t.is_empty()).count())
        .unwrap_or(0);
    if crate::incr::verbose() {
        eprintln!(
            "  probe width {} ({} warm nets{}) ...",
            graph.width,
            warm_nets,
            if confirm { ", cold confirmation" } else { "" }
        );
    }
    let mut probe_span = trace::span("par.probe");
    probe_span.arg("width", graph.width);
    probe_span.arg("warm_nets", warm_nets);
    probe_span.arg("confirm", confirm);
    let t0 = std::time::Instant::now();
    let r = route_core(netlist, placement, graph, opts.route, knobs, seed, None, None);
    let seconds = t0.elapsed().as_secs_f64();
    let (success, iterations, ripups) = match &r {
        Ok(res) => (true, res.iterations, res.ripups),
        Err(e) => (false, e.iterations, e.ripups),
    };
    probe_span.arg("success", success);
    probe_span.arg("iterations", iterations);
    probe_span.arg("ripups", ripups);
    drop(probe_span);
    if crate::incr::verbose() {
        eprintln!(
            "  probe width {}: {} in {:.2}s ({} iters, {} ripups)",
            graph.width,
            if success { "ok" } else { "FAIL" },
            seconds,
            iterations,
            ripups
        );
    }
    probes.push(WidthProbe {
        width: graph.width,
        success,
        seconds,
        iterations,
        ripups,
        warm_nets,
        confirm,
    });
    r
}

/// Translates `trees` (routed on `old`) into `new`'s id space. A net whose
/// tree loses a node (track beyond the new width) or whose translated node
/// set is no longer connected under `new`'s edges comes back empty — the
/// router reroutes it from scratch.
fn translate_trees(
    netlist: &ParNetlist,
    placement: &Placement,
    old: &RouteGraph,
    new: &RouteGraph,
    trees: &[Vec<u32>],
) -> Vec<Vec<u32>> {
    // Translating between different fabrics would silently produce
    // garbage seeds; cheap enough to check in release builds.
    assert_eq!(old.arch, new.arch, "warm-start translation requires the same fabric");
    let mut reach: FxHashSet<u32> = FxHashSet::default();
    let mut queue: Vec<u32> = Vec::new();
    netlist
        .nets
        .iter()
        .zip(trees)
        .map(|(net, tree)| {
            let mut t = Vec::with_capacity(tree.len());
            for &n in tree {
                match new.translate_from(old, n) {
                    Some(m) => t.push(m),
                    None => return Vec::new(),
                }
            }
            t.sort_unstable();
            // Connectivity audit in the new graph: every sink must be
            // reachable from a used source through the translated set.
            let set: FxHashSet<u32> = t.iter().copied().collect();
            reach.clear();
            queue.clear();
            for &b in &net.sources {
                let s = new.opin(placement.site_of[b as usize]);
                if set.contains(&s) && reach.insert(s) {
                    queue.push(s);
                }
            }
            while let Some(n) = queue.pop() {
                for &e in new.edges(n) {
                    if set.contains(&e) && reach.insert(e) {
                        queue.push(e);
                    }
                }
            }
            let ok = net.sinks.iter().all(|&(b, p)| {
                reach.contains(&new.ipin(placement.site_of[b as usize], p as usize))
            });
            if ok {
                // Keep only the source-reachable subset. Switchbox adjacency
                // depends on the channel width, so a branch that was connected
                // in `old` can come apart in `new` even when every node
                // translates; such stranded nodes never accrue overuse, so the
                // router would carry them untouched into the final tree and
                // fail the route audit. The BFS above already computed the
                // reachable set, and it covers every sink.
                t.retain(|n| reach.contains(n));
                t
            } else {
                Vec::new()
            }
        })
        .collect()
}

/// Runs the width search configured by `opts` (binary + warm starts by
/// default, cold linear scan when `opts.linear_scan`).
pub(crate) fn search(
    netlist: &ParNetlist,
    placement: &Placement,
    arch: FabricArch,
    opts: &EngineOptions,
    knobs: Knobs,
) -> Option<WidthSearch> {
    let mut probes = Vec::new();

    if opts.linear_scan {
        // Cold reference scan: no bound, no warm starts. Every verdict
        // below the minimum is cold already, so the scan certifies
        // itself.
        for w in opts.min_width..=opts.max_width {
            let graph = RouteGraph::build(arch, w);
            if let Ok(r) = probe(netlist, placement, &graph, opts, knobs, None, false, &mut probes)
            {
                let certificate = if w > opts.min_width {
                    WidthCertificate::ColdFailure
                } else {
                    WidthCertificate::Floor
                };
                return Some(WidthSearch {
                    min_width: w,
                    result: r,
                    probes,
                    lower_bound: opts.min_width,
                    overuse_lo: 0,
                    certificate,
                });
            }
        }
        return None;
    }

    let lower_bound = channel_width_lower_bound(netlist, placement, arch);
    let estimate = channel_width_estimate(netlist, placement, arch);
    if crate::incr::verbose() {
        eprintln!("  width lower bound {lower_bound}, congestion estimate {estimate}");
    }

    // Overuse-sharpened `lo` advances. A *failed* cold-equivalent probe at
    // `w` reports its worst cut's residual overuse; spreading that excess
    // over the cut's `2s+1`-wire separator says widths below
    // `w + ⌈overuse/sep⌉` are hopeless too, so the search skips them
    // instead of grinding a near-cold probe at each. A *successful* probe
    // reports its worst cut's used-wire count; 90 % of `used/sep` (damped
    // — detours inflate usage) floors how low the binary phase bothers
    // descending. Neither rule is proof: the certify loop still probes the
    // final `W−1` cold and adopts anything narrower that succeeds, so a
    // too-aggressive advance costs extra certify probes, never a wrong
    // minimum. Both rules therefore only fire when the certify loop is
    // armed to repair them; with `certify` off the search keeps the
    // legacy conservative advances.
    let sharpen = opts.certify;
    let sep = 2 * arch.size + 1;
    let mut overuse_lo = 0usize;
    let fail_advance = |w: usize, e: &Unroutable, lo: &mut usize, overuse_lo: &mut usize| {
        let adv = if sharpen { e.worst_cut_overuse.div_ceil(sep) } else { 0 };
        if adv > 1 {
            *overuse_lo = (*overuse_lo).max(w + adv);
            if crate::incr::verbose() {
                eprintln!(
                    "  overuse advance: width {} fails with worst-cut overuse {} -> lo {}",
                    w,
                    e.worst_cut_overuse,
                    w + adv
                );
            }
        }
        *lo = (*lo).max(w + adv.max(1));
    };

    // Doubling phase: find a routable upper end. Probes below the sound
    // bound are pointless; the congestion estimate picks the start so the
    // hopeless cold widths are (usually) never ground through. The
    // minimum itself is still established by the binary phase, which
    // searches all the way down to `opts.min_width`.
    let mut lo = opts.min_width.max(lower_bound);
    let mut hi = lo.max(estimate.min(opts.max_width));
    let (mut best_w, mut best_r, mut best_g);
    loop {
        let graph = RouteGraph::build(arch, hi);
        match probe(netlist, placement, &graph, opts, knobs, None, false, &mut probes) {
            Ok(r) => {
                (best_w, best_r, best_g) = (hi, r, graph);
                break;
            }
            Err(e) => {
                fail_advance(hi, &e, &mut lo, &mut overuse_lo);
                if hi >= opts.max_width {
                    return None;
                }
                hi = (hi * 2).min(opts.max_width);
            }
        }
    }

    // Binary search in (lo, best_w); each probe seeds from the nearest
    // successful width's trees, and each verdict sharpens `lo` from its
    // residual cut pressure.
    loop {
        if sharpen {
            let floor_est = best_r.worst_cut_used * 9 / 10 / sep;
            lo = lo.max(floor_est.min(best_w));
        }
        if lo >= best_w {
            break;
        }
        let mid = (lo + best_w) / 2;
        let graph = RouteGraph::build(arch, mid);
        let seed = opts
            .warm_start
            .then(|| translate_trees(netlist, placement, &best_g, &graph, &best_r.trees));
        match probe(netlist, placement, &graph, opts, knobs, seed, false, &mut probes) {
            Ok(r) => {
                (best_w, best_r, best_g) = (mid, r, graph);
            }
            Err(e) => fail_advance(mid, &e, &mut lo, &mut overuse_lo),
        }
    }

    // Cold confirmation of the final W−1 failure: the binary phase may
    // have taken a *warm* probe's failure at face value (de-bias makes a
    // fabricated failure unlikely, not impossible). Re-probe cold unless
    // the floor, the sound lower bound, or an existing cold failure
    // already certifies the verdict. Should the cold probe succeed, adopt
    // the narrower result and keep certifying downward — the reported
    // minimum is always the certified one.
    let mut certificate = WidthCertificate::Uncertified;
    if opts.certify {
        loop {
            if best_w <= opts.min_width {
                certificate = WidthCertificate::Floor;
                break;
            }
            let fail_w = best_w - 1;
            if fail_w < lower_bound {
                certificate = WidthCertificate::LowerBound;
                break;
            }
            if probes.iter().any(|p| p.width == fail_w && !p.success && p.warm_nets == 0) {
                certificate = WidthCertificate::ColdFailure;
                break;
            }
            let graph = RouteGraph::build(arch, fail_w);
            match probe(netlist, placement, &graph, opts, knobs, None, true, &mut probes) {
                Err(_) => {
                    certificate = WidthCertificate::ColdFailure;
                    break;
                }
                Ok(r) => {
                    best_w = fail_w;
                    best_r = r;
                }
            }
        }
    }
    Some(WidthSearch {
        min_width: best_w,
        result: best_r,
        probes,
        lower_bound,
        overuse_lo,
        certificate,
    })
}
