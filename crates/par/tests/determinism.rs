//! Engine guarantees under test:
//!
//! 1. **Thread determinism** — the same netlist and options produce
//!    bit-identical placements and routing trees for any worker count.
//! 2. **Width-search equivalence** — the warm-started doubling + binary
//!    search reports the same minimum channel width as the cold linear
//!    reference scan.
//! 3. **Legality** — everything the engine returns passes the routing
//!    audit (connectivity + wire exclusivity).

use logic::aig::{Aig, InputKind};
use mapping::{map_conventional, map_parameterized, MapOptions};
use par::troute::audit;
use par::{extract, EngineOptions, ParEngine, ParNetlist};

fn mul_netlist(bits: usize, parameterized: bool) -> ParNetlist {
    let mut g = Aig::new();
    let x = g.input_vec("x", bits, InputKind::Regular);
    let c = g.input_vec("c", bits, InputKind::Param);
    let p = softfloat::gates::mul_carry_save(&mut g, &x, &c);
    g.add_output_vec("p", &p);
    let d = if parameterized {
        map_parameterized(&g, MapOptions::default())
    } else {
        map_conventional(&g, MapOptions::default())
    };
    extract(&d)
}

#[test]
fn routing_is_bit_identical_across_thread_counts() {
    for parameterized in [false, true] {
        let nl = mul_netlist(4, parameterized);
        let reports: Vec<_> = [1usize, 2, 8]
            .iter()
            .map(|&threads| {
                ParEngine::new(EngineOptions { threads, ..Default::default() })
                    .run(&nl)
                    .expect("routable")
            })
            .collect();
        for r in &reports[1..] {
            assert_eq!(r.placement.site_of, reports[0].placement.site_of);
            assert_eq!(r.min_channel_width, reports[0].min_channel_width);
            assert_eq!(
                r.result.trees, reports[0].result.trees,
                "routing trees must not depend on the thread count"
            );
            assert_eq!(r.result.wirelength, reports[0].result.wirelength);
        }
    }
}

#[test]
fn multi_seed_placement_is_thread_count_independent() {
    let nl = mul_netlist(4, true);
    let arch = fabric::FabricArch::sized_for(nl.logic_count(), nl.io_count());
    let seeds = [1u64, 2, 3, 4, 5];
    let a = par::place_multi_seed_on(&nl, arch, &seeds, 1);
    let b = par::place_multi_seed_on(&nl, arch, &seeds, 3);
    let c = par::place_multi_seed_on(&nl, arch, &seeds, 8);
    assert_eq!(a.site_of, b.site_of);
    assert_eq!(a.site_of, c.site_of);
}

#[test]
fn binary_warm_search_matches_linear_scan_minimum() {
    for (bits, parameterized) in [(4, false), (4, true), (5, true)] {
        let nl = mul_netlist(bits, parameterized);
        let arch = fabric::FabricArch::sized_for(nl.logic_count(), nl.io_count());
        let engine = ParEngine::new(EngineOptions::default());
        let placement = engine.place(&nl, arch);

        let fast = engine
            .min_channel_width(&nl, &placement, arch)
            .expect("binary+warm finds a width");
        let reference = ParEngine::new(EngineOptions {
            linear_scan: true,
            warm_start: false,
            ..Default::default()
        })
        .min_channel_width(&nl, &placement, arch)
        .expect("linear scan finds a width");

        assert_eq!(
            fast.min_width, reference.min_width,
            "binary+warm vs linear scan disagree (bits={bits}, par={parameterized})"
        );
        // The fast search must not probe more than the linear scan would
        // have needed in the worst case, and both must audit clean.
        assert!(!fast.probes.is_empty() && !reference.probes.is_empty());
    }
}

#[test]
fn engine_results_pass_the_audit() {
    for parameterized in [false, true] {
        let nl = mul_netlist(4, parameterized);
        let rep = ParEngine::new(EngineOptions::default()).run(&nl).expect("routable");
        let graph = fabric::RouteGraph::build(rep.arch, rep.min_channel_width);
        audit(&nl, &rep.placement, &graph, &rep.result).expect("audit clean");
        // Effort accounting is populated (the winning probe may be
        // warm-started, so ripups can legitimately be below the net
        // count).
        assert!(rep.result.iterations >= 1);
        assert!(rep.result.ripups > 0);
        assert!(rep.probes.iter().any(|p| p.success));
        assert!(rep.place_seconds >= 0.0 && rep.route_seconds > 0.0);
    }
}

/// The proof-grade contract (ROADMAP "cold confirmation" item): with
/// `certify` on, every reported minimum carries a certificate — the final
/// `W−1` verdict is a cold failure, the sound lower bound, or the search
/// floor — and certification never changes the minimum the heuristic
/// search would have reported (it can only *lower* it, if a warm probe
/// ever fabricated a failure; on these designs it must not).
#[test]
fn certified_minimum_matches_the_reported_minimum() {
    for (bits, parameterized) in [(4, false), (4, true), (5, true)] {
        let nl = mul_netlist(bits, parameterized);
        let arch = fabric::FabricArch::sized_for(nl.logic_count(), nl.io_count());
        let engine = ParEngine::new(EngineOptions::default());
        let placement = engine.place(&nl, arch);

        let certified = engine
            .min_channel_width(&nl, &placement, arch)
            .expect("certified search finds a width");
        assert!(
            certified.certificate.is_certified(),
            "default search must certify (bits={bits}, par={parameterized}), got {:?}",
            certified.certificate
        );
        // Any cold-failure certificate must be backed by an actual cold
        // failing probe at exactly W−1.
        if certified.certificate == par::WidthCertificate::ColdFailure {
            assert!(
                certified
                    .probes
                    .iter()
                    .any(|p| p.width == certified.min_width - 1
                        && !p.success
                        && p.warm_nets == 0),
                "cold-failure certificate without a cold probe at W-1"
            );
        }

        let uncertified = ParEngine::new(EngineOptions { certify: false, ..Default::default() })
            .min_channel_width(&nl, &placement, arch)
            .expect("uncertified search finds a width");
        assert_eq!(uncertified.certificate, par::WidthCertificate::Uncertified);
        assert_eq!(
            certified.min_width, uncertified.min_width,
            "certification must confirm, not change, the minimum \
             (bits={bits}, par={parameterized})"
        );

        // And both agree with the cold linear reference, which certifies
        // itself (every verdict below the minimum is already cold).
        let reference = ParEngine::new(EngineOptions {
            linear_scan: true,
            warm_start: false,
            ..Default::default()
        })
        .min_channel_width(&nl, &placement, arch)
        .expect("linear scan finds a width");
        assert!(reference.certificate.is_certified());
        assert_eq!(certified.min_width, reference.min_width);
    }
}

/// Tentpole guarantee of the partition path: for any partition count and
/// any thread count, placements, minima, and routing trees are pinned
/// bit-identical — partitions and threads only change *who executes* a
/// task in the canonical schedule, never the schedule itself.
#[test]
fn partition_and_thread_matrix_is_bit_identical() {
    // 65 nets: clears the partition worklist gate, so multi-partition
    // multi-thread combos genuinely take the partition executor.
    let nl = mul_netlist(5, false);
    let mut baseline = None;
    for partitions in [1usize, 2, 4] {
        for threads in [1usize, 2, 8] {
            let rep = ParEngine::new(EngineOptions { partitions, threads, ..Default::default() })
                .run(&nl)
                .expect("routable");
            let graph = fabric::RouteGraph::build(rep.arch, rep.min_channel_width);
            audit(&nl, &rep.placement, &graph, &rep.result).expect("audit clean");
            match &baseline {
                None => baseline = Some(rep),
                Some(b) => {
                    assert_eq!(b.placement.site_of, rep.placement.site_of);
                    assert_eq!(
                        b.min_channel_width, rep.min_channel_width,
                        "minimum width must not depend on partitions={partitions}/threads={threads}"
                    );
                    assert_eq!(
                        b.result.trees, rep.result.trees,
                        "routing trees must not depend on partitions={partitions}/threads={threads}"
                    );
                }
            }
        }
    }
}

/// The partition executor must actually run (not silently fall back to
/// waves) on a worklist large enough to clear its gate, and its schedule
/// must pass the partition-ownership verifier.
#[test]
fn partition_path_executes_and_audits_clean() {
    let nl = mul_netlist(5, false);
    let engine =
        ParEngine::new(EngineOptions { partitions: 2, threads: 4, ..Default::default() });
    let arch = fabric::FabricArch::sized_for(nl.logic_count(), nl.io_count());
    let placement = engine.place(&nl, arch);
    let width = par::channel_width_estimate(&nl, &placement, arch) + 4;
    let graph = fabric::RouteGraph::build(arch, width);

    // Serial reference from a partition-free engine, so the bit-identity
    // comparison below crosses the executor boundary.
    let plain = ParEngine::new(EngineOptions { partitions: 1, threads: 1, ..Default::default() })
        .route(&nl, &placement, &graph)
        .expect("routable");
    let (partitioned, report) = engine.route_partition_audited(&nl, &placement, &graph);
    let partitioned = partitioned.expect("routable on the partition path");
    assert_eq!(plain.trees, partitioned.trees, "partition path must be bit-identical");
    assert!(report.ok(), "partition schedule must verify: {}", report.summary());
    if nl.nets.len() >= 48 {
        assert!(report.checked > 0, "partition plans must have been recorded");
        assert!(
            partitioned.interior_routes + partitioned.boundary_routes > 0,
            "partition executor never ran despite {} nets",
            nl.nets.len()
        );
    }
}

// The overuse-sharpened `lo` advance is heuristic; this property pins it
// to reality: whenever the rule fires, the width it claims hopeless never
// exceeds the true minimum found by the cold `linear_scan` reference.
proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(5))]
    #[test]
    fn overuse_lower_bound_never_exceeds_linear_scan_minimum(
        bits in 3usize..5,
        parameterized in proptest::any::<bool>(),
        seed in 1u64..1000,
    ) {
        let nl = mul_netlist(bits, parameterized);
        let arch = fabric::FabricArch::sized_for(nl.logic_count(), nl.io_count());
        let engine = ParEngine::new(EngineOptions {
            seeds: vec![seed],
            min_width: 2,
            ..Default::default()
        });
        let placement = engine.place(&nl, arch);
        let sharpened = engine
            .min_channel_width(&nl, &placement, arch)
            .expect("sharpened search finds a width");
        let reference = ParEngine::new(EngineOptions {
            linear_scan: true,
            warm_start: false,
            min_width: 2,
            ..Default::default()
        })
        .min_channel_width(&nl, &placement, arch)
        .expect("linear scan finds a width");
        // Warm probes may legalize a width the cold scan gives up on, so
        // the tightest demonstrated-routable width is the min of both.
        let routable = sharpened.min_width.min(reference.min_width);
        proptest::prop_assert!(
            sharpened.overuse_lo <= routable,
            "overuse rule claimed widths below {} hopeless, but width {} routed",
            sharpened.overuse_lo,
            routable
        );
    }
}

/// Observability guarantee (`vcgra-trace`): arming the span recorder
/// only *observes* the router — placements, minima, and routing trees
/// stay bit-identical to the untraced run at every thread count. This
/// is the determinism guard the tracing instrumentation in
/// `engine`/`incr`/`warm` must never trip.
#[test]
fn tracing_does_not_change_routed_results() {
    let nl = mul_netlist(4, true);
    let baseline: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&threads| {
            ParEngine::new(EngineOptions { threads, ..Default::default() })
                .run(&nl)
                .expect("routable untraced")
        })
        .collect();

    trace::configure(trace::TraceConfig::On);
    let traced: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&threads| {
            ParEngine::new(EngineOptions { threads, ..Default::default() })
                .run(&nl)
                .expect("routable traced")
        })
        .collect();
    trace::configure(trace::TraceConfig::Off);
    let events = trace::take_events();
    assert!(
        events.iter().any(|e| e.name == "par.route_iter"),
        "recorder was armed, so router spans must have been captured"
    );

    for (t, (b, r)) in baseline.iter().zip(&traced).enumerate() {
        assert_eq!(b.placement.site_of, r.placement.site_of, "threads[{t}] placement");
        assert_eq!(b.min_channel_width, r.min_channel_width, "threads[{t}] minimum width");
        assert_eq!(
            b.result.trees, r.result.trees,
            "tracing must not change routing trees (thread index {t})"
        );
        assert_eq!(b.result.wirelength, r.result.wirelength);
    }
}

#[test]
fn warm_start_does_not_change_the_reported_minimum() {
    let nl = mul_netlist(5, true);
    let arch = fabric::FabricArch::sized_for(nl.logic_count(), nl.io_count());
    let engine = ParEngine::new(EngineOptions::default());
    let placement = engine.place(&nl, arch);
    let warm = engine.min_channel_width(&nl, &placement, arch).unwrap();
    let cold = ParEngine::new(EngineOptions { warm_start: false, ..Default::default() })
        .min_channel_width(&nl, &placement, arch)
        .unwrap();
    assert_eq!(warm.min_width, cold.min_width);
}
