//! Mutation suite: every pass must reject a *corrupted* known-good
//! artifact with the **right** [`Violation`] variant.
//!
//! Each test produces a real artifact through the actual toolchain
//! (overlay flow, par-engine, runtime), proves it clean, seeds exactly
//! one corruption, and asserts the matching rejection. A verifier that
//! waves corrupted state through — or rejects it for the wrong reason —
//! fails here.

use fabric::arch::FabricArch;
use fabric::rrg::RouteGraph;
use par::{EngineOptions, ParEngine};
use runtime::{kernels, Runtime, RuntimeConfig};
use softfloat::FpFormat;
use vcgra::app::AppGraph;
use vcgra::{PeMode, VcgraArch};
use verify::config::check_mapping;
use verify::routes::{check_route_trees, NetTerminals};
use verify::sched::{check_sched, SchedSnapshot};
use verify::timeline::{check_timeline, TimelineSnapshot};
use verify::waves::{check_wave, WaveFootprint};
use verify::Violation;

const F: FpFormat = FpFormat::PAPER;

/// Asserts that `$violations` holds at least one entry matching
/// `$pattern` — the *right* rejection, not just any rejection.
macro_rules! assert_violation {
    ($violations:expr, $pattern:pat) => {
        assert!(
            $violations.iter().any(|v| matches!(v, $pattern)),
            "expected {} in {:?}",
            stringify!($pattern),
            $violations
        )
    };
}

// --- configuration linter ---------------------------------------------

fn clean_mapping() -> (AppGraph, vcgra::flow::VcgraMapping) {
    let app = AppGraph::dot_product(F, &[1.0, 2.0, 3.0]);
    let rows = verify::sched::rows_needed(app.pe_demand(), 4);
    let mapping = vcgra::flow::map_app(&app, VcgraArch::new(rows, 4, 2), 1).expect("mappable");
    assert!(check_mapping(&app, &mapping).is_empty(), "artifact must start clean");
    (app, mapping)
}

#[test]
fn overlapping_placement_is_rejected() {
    let (app, mut m) = clean_mapping();
    m.place[1] = m.place[0];
    assert_violation!(check_mapping(&app, &m), Violation::PlacementOverlap { .. });
}

#[test]
fn dropped_route_is_rejected() {
    let (app, mut m) = clean_mapping();
    m.routes.remove(0);
    assert_violation!(check_mapping(&app, &m), Violation::RouteMissing { .. });
}

#[test]
fn broken_path_is_rejected() {
    let (app, mut m) = clean_mapping();
    let r = m.routes.iter_mut().find(|r| r.path.len() >= 2).expect("a multi-cell path");
    // Teleport an interior/terminal step somewhere non-adjacent.
    let last = r.path.len() - 1;
    r.path[last] = (m.arch.rows + 7, m.arch.cols + 7);
    let v = check_mapping(&app, &m);
    assert_violation!(v, Violation::PathBroken { .. });
}

#[test]
fn wrong_pe_mode_is_rejected() {
    let (app, mut m) = clean_mapping();
    let s = m
        .pe_settings
        .iter_mut()
        .flatten()
        .next()
        .expect("at least one configured PE");
    s.mode = if s.mode == PeMode::Pass { PeMode::Mac } else { PeMode::Pass };
    assert_violation!(check_mapping(&app, &m), Violation::ModeMismatch { .. });
}

// --- fabric route-tree linter -----------------------------------------

fn small_aig() -> logic::aig::Aig {
    use logic::aig::{Aig, InputKind};
    let mut g = Aig::new();
    let xs: Vec<_> = (0..6).map(|i| g.input(format!("x{i}"), InputKind::Regular)).collect();
    let mut acc = xs[0];
    for (i, &x) in xs.iter().enumerate().skip(1) {
        acc = if i % 2 == 0 { g.xor(acc, x) } else { g.and(acc, x) };
    }
    let alt0 = g.xor(xs[0], xs[5]);
    let alt1 = g.or(xs[2], xs[4]);
    let alt = g.and(alt0, alt1);
    g.add_output("f", acc);
    g.add_output("g", alt);
    g
}

fn clean_route() -> (RouteGraph, Vec<NetTerminals>, Vec<Vec<u32>>) {
    // A real mapped-and-routed artifact: a small netlist pushed through
    // the conventional flow and the par-engine.
    let design = mapping::map_conventional(&small_aig(), mapping::MapOptions::default());
    let nl = par::extract(&design);
    let arch = FabricArch::sized_for(nl.logic_count(), nl.io_count());
    let engine = ParEngine::new(EngineOptions::default());
    let placement = engine.place(&nl, arch);
    let mut width = par::channel_width_estimate(&nl, &placement, arch).max(4);
    let (graph, result) = loop {
        let graph = RouteGraph::build(arch, width);
        match engine.route(&nl, &placement, &graph) {
            Ok(r) => break (graph, r),
            Err(_) => width *= 2,
        }
    };
    let nets = par::troute::terminals(&nl, &placement, &graph);
    assert!(
        check_route_trees(&graph, &nets, &result.trees).is_empty(),
        "artifact must start clean"
    );
    (graph, nets, result.trees)
}

#[test]
fn stolen_wire_node_is_rejected() {
    let (graph, nets, mut trees) = clean_route();
    // Steal a wire node of net 0's tree into another net's tree.
    let stolen = *trees[0]
        .iter()
        .find(|&&n| graph.kind(n).is_wire())
        .expect("net 0 uses at least one wire");
    let thief = (1..trees.len())
        .find(|&i| !trees[i].contains(&stolen))
        .expect("some net does not own the node");
    trees[thief].push(stolen);
    let v = check_route_trees(&graph, &nets, &trees);
    assert_violation!(v, Violation::WireConflict { .. });
}

#[test]
fn emptied_tree_is_rejected() {
    let (graph, nets, mut trees) = clean_route();
    trees[0].clear();
    assert_violation!(check_route_trees(&graph, &nets, &trees), Violation::SinkUnreached { .. });
}

#[test]
fn out_of_range_node_is_rejected() {
    let (graph, nets, mut trees) = clean_route();
    trees[0].push(graph.node_count() as u32 + 41);
    assert_violation!(check_route_trees(&graph, &nets, &trees), Violation::NodeOutOfRange { .. });
}

// --- wave-schedule race detector --------------------------------------

#[test]
fn aliased_wave_write_is_rejected() {
    // Two disjoint members are clean; aliasing one write node must be a
    // write/write race.
    let a = WaveFootprint { net: 0, reads: vec![1, 2], writes: vec![2] };
    let mut b = WaveFootprint { net: 1, reads: vec![8, 9], writes: vec![9] };
    assert!(check_wave(0, 0, &[a.clone(), b.clone()]).is_empty());
    b.writes.push(2);
    let v = check_wave(0, 0, &[a, b]);
    assert_violation!(v, Violation::WaveRace { write_write: true, .. });
}

// --- scheduler-state checker ------------------------------------------

fn clean_snapshot() -> SchedSnapshot {
    let mut rt = Runtime::new(RuntimeConfig {
        grids: vec![VcgraArch::new(8, 4, 2)],
        ..RuntimeConfig::default()
    });
    rt.submit("a", kernels::fir_seeded(F, 3, 1).graph)
        .expect("submit")
        .expect_admitted("empty pool");
    rt.submit("b", kernels::fir_seeded(F, 5, 2).graph)
        .expect("submit")
        .expect_admitted("room left");
    let snap = rt.snapshot();
    assert!(check_sched(&snap).is_empty(), "artifact must start clean");
    assert!(snap.bands.len() >= 2 && snap.tenants.len() >= 2);
    snap
}

#[test]
fn overlapping_leases_are_rejected() {
    let mut snap = clean_snapshot();
    // Slide the second band up into the first.
    let mut bands: Vec<usize> = (0..snap.bands.len()).collect();
    bands.sort_by_key(|&i| snap.bands[i].row0);
    snap.bands[bands[1]].row0 = snap.bands[bands[0]].row0 + snap.bands[bands[0]].rows - 1;
    assert_violation!(check_sched(&snap), Violation::BandOverlap { .. });
}

#[test]
fn desynced_ledger_counter_is_rejected() {
    let mut snap = clean_snapshot();
    snap.ledger.queued += 1; // one phantom queue entry nothing accounts for
    assert_violation!(check_sched(&snap), Violation::QueueLedgerDrift { .. });
}

#[test]
fn aliased_cache_key_is_rejected() {
    let mut snap = clean_snapshot();
    // Two structurally different tenants suddenly share a fingerprint:
    // the hash-hit structural comparison must catch the collision.
    assert_ne!(snap.tenants[0].sig, snap.tenants[1].sig, "tenants differ structurally");
    snap.tenants[1].key_id = snap.tenants[0].key_id;
    assert_violation!(check_sched(&snap), Violation::CacheKeyCollision { .. });
}

#[test]
fn corrupted_cache_entry_is_rejected() {
    let mut snap = clean_snapshot();
    assert!(!snap.cache.is_empty(), "admissions populate the cache");
    snap.cache[0].mapping_region.0 += 1;
    assert_violation!(check_sched(&snap), Violation::CacheEntryMismatch { .. });
}

#[test]
fn row_leak_is_rejected() {
    let mut snap = clean_snapshot();
    snap.grids[0].free_rows += 1; // claims a row a band still holds
    assert_violation!(check_sched(&snap), Violation::RowConservation { .. });
}

// --- timeline checker --------------------------------------------------

fn clean_timeline() -> TimelineSnapshot {
    let mut rt = Runtime::new(RuntimeConfig {
        grids: vec![VcgraArch::new(8, 4, 2)],
        ..RuntimeConfig::default()
    });
    rt.submit("a", kernels::fir_seeded(F, 3, 1).graph)
        .expect("submit")
        .expect_admitted("empty pool");
    rt.submit("b", kernels::fir_seeded(F, 5, 2).graph)
        .expect("submit")
        .expect_admitted("room left");
    let snap = rt.timeline_snapshot();
    assert!(check_timeline(&snap).is_empty(), "artifact must start clean");
    let ports = snap.intervals.iter().filter(|iv| iv.uses_port).count();
    assert!(ports >= 2, "two admissions put two intervals on the port");
    snap
}

#[test]
fn port_double_booking_is_rejected() {
    let mut snap = clean_timeline();
    // Start the second port stream while the first is still on the
    // wire — the single-bitstream-at-a-time invariant breaks.
    let ports: Vec<usize> = (0..snap.intervals.len())
        .filter(|&i| snap.intervals[i].uses_port)
        .collect();
    snap.intervals[ports[1]].start_ns = snap.intervals[ports[0]].start_ns;
    assert_violation!(check_timeline(&snap), Violation::PortOverlap { .. });
}

#[test]
fn lane_double_booking_is_rejected() {
    let mut snap = clean_timeline();
    // A phantom uncharged phase occupying a lane during an existing
    // interval: only the lane-exclusivity invariant breaks (the port
    // and the charge sums are untouched).
    let mut ghost = snap.intervals[0];
    ghost.uses_port = false;
    ghost.charged = false;
    ghost.phase = "execute";
    snap.intervals.push(ghost);
    assert_violation!(check_timeline(&snap), Violation::LaneOverlap { .. });
}

#[test]
fn dropped_charge_is_rejected() {
    let mut snap = clean_timeline();
    // One charged phase silently stops counting: the summed lane
    // durations no longer reconcile with the ledger's port time.
    let i = snap.intervals.iter().position(|iv| iv.charged).expect("charged phase");
    snap.intervals[i].charged = false;
    assert_violation!(check_timeline(&snap), Violation::TimelineChargeDrift { .. });
}

#[test]
fn double_counted_charge_is_rejected() {
    let mut snap = clean_timeline();
    // The admission-time compaction charge also billed by a replay —
    // the double-count satellite bug this pass exists to catch.
    snap.ledger_port_ns += snap.intervals[0].dur_ns;
    assert_violation!(check_timeline(&snap), Violation::TimelineChargeDrift { .. });
}

#[test]
fn inflated_makespan_is_rejected() {
    let mut snap = clean_timeline();
    snap.makespan_ns += 1;
    assert_violation!(check_timeline(&snap), Violation::MakespanMismatch { .. });
}
