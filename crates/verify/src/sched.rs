//! Pass 3 — the scheduler-state checker.
//!
//! The runtime exports a plain-data [`SchedSnapshot`] (no references into
//! live scheduler state), and this pass proves the admission layer's
//! invariants over it:
//!
//! * **lease/band disjointness** — bands stay inside their grids, never
//!   overlap, never sit empty; every live tenant's lease lands on a band
//!   of matching shape, and a lease claiming sole tenancy heads its band;
//! * **row conservation** — per grid, free rows plus band rows equal the
//!   grid's rows (nothing leaks, nothing is double-counted);
//! * **queue/ledger reconciliation** — `queued` equals
//!   `queue_admitted + queue_dropped + queue_cancelled` plus the current
//!   queue depth, and no tenant is simultaneously live and queued;
//! * **region soundness** — every tenant's configuration was compiled for
//!   its *minimal* region (`rows_needed × cols`), places every graph
//!   node, and fits inside its lease; the resident map only names tenants
//!   actually on their bands;
//! * **cache-key soundness** — tenants' cache-key fingerprints are
//!   compared against an *independently derived* [`StructureSig`]: equal
//!   fingerprints must mean equal structure (no `ConfigKey` hash/eq
//!   collision silently serving tenant A tenant B's circuit) and equal
//!   structure must mean equal fingerprints (no lost sharing); cached
//!   entries' mappings must match the region their key names.

use crate::Violation;
use vcgra::app::{AppGraph, AppSource};

/// Independent structural signature of (region, graph) — a re-derivation
/// of what the runtime's `ConfigKey` encodes, canonical and comparable.
/// The sched pass compares *these* when two fingerprints agree, which is
/// the "full structural comparison on hash hit".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructureSig(Vec<u64>);

impl StructureSig {
    /// Derives the signature of a graph compiled onto a region.
    pub fn of(region_rows: usize, region_cols: usize, channel_capacity: usize, app: &AppGraph) -> Self {
        let mut v: Vec<u64> = vec![
            region_rows as u64,
            region_cols as u64,
            channel_capacity as u64,
            app.format.we as u64,
            app.format.wf as u64,
            app.num_inputs as u64,
            app.nodes.len() as u64,
        ];
        let src = |s: AppSource| -> u64 {
            match s {
                AppSource::External(i) => (i as u64) << 2,
                AppSource::Node(j) => ((j as u64) << 2) | 1,
                AppSource::Zero => 2,
            }
        };
        for n in &app.nodes {
            let op = match n.op {
                vcgra::PeMode::Mac => 0u64,
                vcgra::PeMode::Mul => 1,
                vcgra::PeMode::Add => 2,
                vcgra::PeMode::Pass => 3,
            };
            v.push(op | (u64::from(n.coeff.is_some()) << 8));
            v.push(src(n.a));
            v.push(src(n.b));
        }
        v.extend(app.outputs.iter().map(|&o| o as u64));
        StructureSig(v)
    }
}

/// One grid's geometry.
#[derive(Debug, Clone, Default)]
pub struct GridSnap {
    /// PE rows.
    pub rows: usize,
    /// PE columns.
    pub cols: usize,
    /// Free (unallocated) rows the pool reports.
    pub free_rows: usize,
}

/// One allocated band.
#[derive(Debug, Clone)]
pub struct BandSnap {
    /// Grid index.
    pub grid: usize,
    /// First row.
    pub row0: usize,
    /// Rows tall.
    pub rows: usize,
    /// Tenants, in slot order.
    pub tenants: Vec<u64>,
}

/// One live tenant.
#[derive(Debug, Clone)]
pub struct TenantSnap {
    /// Tenant id.
    pub id: u64,
    /// Lease: grid index.
    pub grid: usize,
    /// Lease: first row.
    pub row0: usize,
    /// Lease: rows tall.
    pub rows: usize,
    /// Lease: columns (full grid width).
    pub cols: usize,
    /// Lease claims the band is time-shared.
    pub shared: bool,
    /// The graph's PE demand.
    pub demand: usize,
    /// Region the configuration was compiled for.
    pub region: (usize, usize),
    /// Nodes the mapping places.
    pub placed_nodes: usize,
    /// Fingerprint of the runtime's `ConfigKey` (its hash).
    pub key_id: u64,
    /// Independently derived structural signature.
    pub sig: StructureSig,
}

/// One cached configuration entry.
#[derive(Debug, Clone)]
pub struct CacheEntrySnap {
    /// Fingerprint of the entry's key.
    pub key_id: u64,
    /// Region the key names.
    pub region: (usize, usize),
    /// Region the cached mapping was compiled for.
    pub mapping_region: (usize, usize),
    /// Nodes the key's structure has.
    pub key_nodes: usize,
    /// Nodes the cached mapping places.
    pub placed_nodes: usize,
}

/// Admission-ledger counters (the queue-flow subset the pass reconciles).
#[derive(Debug, Clone, Copy, Default)]
pub struct LedgerSnap {
    /// Submissions that went through the queue.
    pub queued: u64,
    /// Queued submissions later admitted.
    pub queue_admitted: u64,
    /// Queued submissions dropped on terminal failure.
    pub queue_dropped: u64,
    /// Queued submissions cancelled by release.
    pub queue_cancelled: u64,
}

/// Plain-data snapshot of the whole scheduler state.
#[derive(Debug, Clone, Default)]
pub struct SchedSnapshot {
    /// Grids, in pool order.
    pub grids: Vec<GridSnap>,
    /// Allocated bands.
    pub bands: Vec<BandSnap>,
    /// Live tenants.
    pub tenants: Vec<TenantSnap>,
    /// Queued tenant ids, head first.
    pub queue: Vec<u64>,
    /// Resident configurations: (grid, row0, tenant).
    pub resident: Vec<(usize, usize, u64)>,
    /// Ledger counters.
    pub ledger: LedgerSnap,
    /// Cached configuration entries.
    pub cache: Vec<CacheEntrySnap>,
}

/// Minimal region height for a PE demand on a grid `cols` wide — must
/// mirror the pool's `rows_needed` (bands are at least 2 rows so a region
/// is a legal sub-grid).
pub fn rows_needed(demand: usize, cols: usize) -> usize {
    demand.div_ceil(cols.max(1)).max(2)
}

/// Runs every scheduler-state check; returns all violations found.
pub fn check_sched(snap: &SchedSnapshot) -> Vec<Violation> {
    let mut out = Vec::new();

    // --- bands: bounds, non-overlap, non-empty, row conservation ---
    for (g, grid) in snap.grids.iter().enumerate() {
        let mut bands: Vec<&BandSnap> = snap.bands.iter().filter(|b| b.grid == g).collect();
        bands.sort_by_key(|b| b.row0);
        let mut allocated = 0;
        for (i, b) in bands.iter().enumerate() {
            allocated += b.rows;
            if b.row0 + b.rows > grid.rows {
                out.push(Violation::BandOutOfBounds {
                    grid: g,
                    row0: b.row0,
                    rows: b.rows,
                    grid_rows: grid.rows,
                });
            }
            if b.tenants.is_empty() {
                out.push(Violation::EmptyBand { grid: g, row0: b.row0 });
            }
            if let Some(prev) = i.checked_sub(1).map(|p| bands[p]) {
                if prev.row0 + prev.rows > b.row0 {
                    out.push(Violation::BandOverlap {
                        grid: g,
                        a: (prev.row0, prev.rows),
                        b: (b.row0, b.rows),
                    });
                }
            }
        }
        if grid.free_rows + allocated != grid.rows {
            out.push(Violation::RowConservation {
                grid: g,
                free: grid.free_rows,
                allocated,
                rows: grid.rows,
            });
        }
    }

    // --- leases against bands ---
    for t in &snap.tenants {
        let band = snap.bands.iter().find(|b| b.grid == t.grid && b.row0 == t.row0);
        match band {
            None => out.push(Violation::LeaseWithoutBand { tenant: t.id }),
            Some(b) => {
                let grid_cols = snap.grids.get(t.grid).map_or(0, |g| g.cols);
                if b.rows != t.rows || t.cols != grid_cols || !b.tenants.contains(&t.id) {
                    out.push(Violation::LeaseShapeMismatch { tenant: t.id });
                }
                // A non-shared lease promises undisturbed residency: its
                // tenant must head the band (later time-share admissions
                // may append, but never displace the head).
                if !t.shared && b.tenants.first() != Some(&t.id) {
                    out.push(Violation::SharedFlagWrong { tenant: t.id });
                }
            }
        }

        // --- region soundness ---
        let needed = rows_needed(t.demand, t.cols);
        if t.rows < needed {
            out.push(Violation::LeaseTooSmall { tenant: t.id, rows: t.rows, needed });
        }
        if t.region != (needed, t.cols) {
            out.push(Violation::RegionMismatch {
                tenant: t.id,
                expected: (needed, t.cols),
                got: t.region,
            });
        }
        if t.placed_nodes != t.demand {
            out.push(Violation::MappingNodeCount {
                tenant: t.id,
                expected: t.demand,
                got: t.placed_nodes,
            });
        }
    }

    // --- queue/ledger reconciliation ---
    let accounted = snap.ledger.queue_admitted
        + snap.ledger.queue_dropped
        + snap.ledger.queue_cancelled
        + snap.queue.len() as u64;
    if snap.ledger.queued != accounted {
        out.push(Violation::QueueLedgerDrift { queued: snap.ledger.queued, accounted });
    }
    for &q in &snap.queue {
        if snap.tenants.iter().any(|t| t.id == q) {
            out.push(Violation::QueuedAndLive { tenant: q });
        }
    }

    // --- resident map ---
    for &(grid, row0, tenant) in &snap.resident {
        let on_band = snap
            .bands
            .iter()
            .any(|b| b.grid == grid && b.row0 == row0 && b.tenants.contains(&tenant));
        if !on_band {
            out.push(Violation::ResidentInvalid { grid, row0, tenant });
        }
    }

    // --- cache-key soundness ---
    for (i, a) in snap.tenants.iter().enumerate() {
        for b in &snap.tenants[i + 1..] {
            let keys_eq = a.key_id == b.key_id;
            let sigs_eq = a.sig == b.sig;
            if keys_eq && !sigs_eq {
                out.push(Violation::CacheKeyCollision { a: a.id, b: b.id });
            }
            if !keys_eq && sigs_eq {
                out.push(Violation::CacheKeySplit { a: a.id, b: b.id });
            }
        }
    }
    for e in &snap.cache {
        if e.mapping_region != e.region || e.placed_nodes != e.key_nodes {
            out.push(Violation::CacheEntryMismatch { key_id: e.key_id });
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use softfloat::FpFormat;

    fn sig(n: usize) -> StructureSig {
        let app = AppGraph::dot_product(FpFormat::PAPER, &vec![1.0; n]);
        StructureSig::of(rows_needed(app.pe_demand(), 4), 4, 2, &app)
    }

    /// One grid of 6x4, one dedicated tenant on rows 0..2.
    fn clean() -> SchedSnapshot {
        let app = AppGraph::dot_product(FpFormat::PAPER, &[1.0, 2.0, 3.0]);
        let demand = app.pe_demand();
        SchedSnapshot {
            grids: vec![GridSnap { rows: 6, cols: 4, free_rows: 4 }],
            bands: vec![BandSnap { grid: 0, row0: 0, rows: 2, tenants: vec![1] }],
            tenants: vec![TenantSnap {
                id: 1,
                grid: 0,
                row0: 0,
                rows: 2,
                cols: 4,
                shared: false,
                demand,
                region: (rows_needed(demand, 4), 4),
                placed_nodes: demand,
                key_id: 0xabc,
                sig: StructureSig::of(rows_needed(demand, 4), 4, 2, &app),
            }],
            queue: vec![],
            resident: vec![(0, 0, 1)],
            ledger: LedgerSnap::default(),
            cache: vec![],
        }
    }

    #[test]
    fn clean_snapshot_verifies() {
        let v = check_sched(&clean());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn structure_sigs_separate_structures_not_coeffs() {
        assert_eq!(sig(3), sig(3));
        assert_ne!(sig(3), sig(4));
        let a = AppGraph::dot_product(FpFormat::PAPER, &[1.0, 2.0, 3.0]);
        let b = AppGraph::dot_product(FpFormat::PAPER, &[9.0, -1.0, 7.5]);
        assert_eq!(
            StructureSig::of(2, 4, 2, &a),
            StructureSig::of(2, 4, 2, &b),
            "coefficients must not affect the signature"
        );
    }

    #[test]
    fn row_leak_is_caught() {
        let mut s = clean();
        s.grids[0].free_rows = 5; // claims a row the band still holds
        let v = check_sched(&s);
        assert!(v.iter().any(|x| matches!(x, Violation::RowConservation { .. })), "{v:?}");
    }
}
