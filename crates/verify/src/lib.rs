//! Static invariant proving for VCGRA artifacts — **before they execute**.
//!
//! The runtime's whole safety story (PR 4's wave-parallel router, PR 5's
//! admission layer) rests on invariants that used to live in scattered
//! `debug_assert!`s and dynamic tests: route trees own their wires
//! exclusively, wave members never touch each other's state, leases never
//! overlap, cache keys never alias. This crate turns each of those claims
//! into a checkable *pass* over a plain-data artifact, behind one
//! [`Verifier`] facade that produces a machine-readable [`VerifyReport`]:
//!
//! * [`config`] — lints a routed [`vcgra::flow::VcgraMapping`] against its
//!   [`vcgra::app::AppGraph`]: placement sanity, contiguous simple route
//!   paths, channel-capacity conformance, PE settings/format agreement and
//!   configuration-frame addressing.
//! * [`routes`] — lints fabric-level route trees: per-net connectivity
//!   (a spanning-forest certificate from the sources that covers every
//!   tree node and reaches every sink — no stranded components, no
//!   disconnected cycles) and exclusive wire-node ownership across nets.
//! * [`waves`] — the wave-schedule race detector: given each wave member's
//!   *actual* touched-node footprint (every node whose congestion state
//!   the router evaluated, and every wire its rip/commit writes), proves
//!   pairwise read/write disjointness within every wave. This upgrades
//!   the par-engine's "bbox-disjoint ⇒ race-free" argument from an
//!   assumption into a checked theorem.
//! * [`sched`] — the scheduler-state checker: over a plain
//!   [`sched::SchedSnapshot`] of the runtime, proves band/lease
//!   disjointness, row conservation, queue/ledger reconciliation and
//!   cache-key soundness (full structural comparison on hash agreement,
//!   ruling out `ConfigKey` collisions).
//! * [`timeline`] — the time-axis checker: over a plain
//!   [`timeline::TimelineSnapshot`] of the runtime's modeled schedule,
//!   proves configuration-port exclusivity, per-band-lane exclusivity,
//!   and charge conservation (every ledger-charged duration appears
//!   exactly once on some lane; the reported makespan is the true
//!   interval-set maximum).
//! * [`equiv`] — the gate-level equivalence check between a source AIG and
//!   its mapped design (absorbed from `mapping::verify`).
//!
//! Every pass returns all violations it finds (it does not stop at the
//! first), each as a typed [`Violation`] so tests can assert *which*
//! invariant a corrupted artifact breaks.

#![forbid(unsafe_code)]
#![deny(clippy::dbg_macro, clippy::todo)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod config;
pub mod equiv;
pub mod partition;
pub mod routes;
pub mod sched;
pub mod timeline;
pub mod waves;

pub use partition::{PartitionPlan, PartitionTask};
pub use routes::NetTerminals;
pub use sched::SchedSnapshot;
pub use timeline::TimelineSnapshot;
pub use waves::{WaveAuditor, WaveFootprint};

use std::fmt;

/// One proven-false invariant, typed so the mutation suite can assert the
/// *right* rejection and drivers can emit machine-readable records.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    // --- configuration linter (overlay mapping) ---
    /// Placement vector length disagrees with the app graph.
    NodeCountMismatch {
        /// Nodes in the app graph.
        expected: usize,
        /// Entries in `mapping.place`.
        got: usize,
    },
    /// A node is placed outside the grid.
    PlacementOutOfBounds {
        /// App node index.
        node: usize,
        /// Its (row, col) cell.
        cell: (usize, usize),
    },
    /// Two nodes share one PE cell.
    PlacementOverlap {
        /// The contested cell.
        cell: (usize, usize),
        /// The two app nodes claiming it.
        nodes: (usize, usize),
    },
    /// A dataflow edge of the graph has no routed path.
    RouteMissing {
        /// Driving node.
        from: usize,
        /// Consuming node.
        to: usize,
    },
    /// A routed path exists for no dataflow edge of the graph.
    RouteUnknown {
        /// Route index in `mapping.routes`.
        edge: usize,
    },
    /// A route's path does not start/end at the placed endpoint cells.
    RouteEndpointMismatch {
        /// Route index.
        edge: usize,
        /// Cell the path should touch.
        want: (usize, usize),
        /// Cell it actually touches.
        got: (usize, usize),
    },
    /// Adjacent path cells are not grid-adjacent (or the path is empty).
    PathBroken {
        /// Route index.
        edge: usize,
        /// Offending step (index of the second cell of the pair).
        step: usize,
    },
    /// A path visits the same cell twice (it is not a simple path).
    PathRevisitsCell {
        /// Route index.
        edge: usize,
        /// The revisited cell.
        cell: (usize, usize),
    },
    /// A directed channel segment carries more routes than its capacity.
    ChannelOverCapacity {
        /// Segment's source cell.
        cell: (usize, usize),
        /// Direction slot (0 = E, 1 = W, 2 = S, 3 = N).
        dir: u8,
        /// Routes using the segment.
        used: usize,
        /// The architecture's channel capacity.
        capacity: usize,
    },
    /// A placed node's cell has no settings.
    SettingsMissing {
        /// App node index.
        node: usize,
        /// Its cell.
        cell: (usize, usize),
    },
    /// An unused cell carries settings.
    SettingsOnEmptyCell {
        /// The cell.
        cell: (usize, usize),
    },
    /// A PE's configured mode disagrees with its node's operation.
    ModeMismatch {
        /// App node index.
        node: usize,
    },
    /// A PE's configured coefficient disagrees with its node's.
    CoeffMismatch {
        /// App node index.
        node: usize,
    },
    /// A PE's coefficient format disagrees with the graph's datapath format.
    FormatMismatch {
        /// App node index.
        node: usize,
    },
    /// `settings_words()` does not cover every settings register.
    SettingsWordCount {
        /// Registers the architecture has.
        expected: usize,
        /// Words the mapping produced.
        got: usize,
    },
    /// A cell's configuration frame address is outside the frame space.
    FrameOutOfRange {
        /// The cell.
        cell: (usize, usize),
        /// Computed frame address.
        frame: usize,
        /// Number of frames the model has.
        frames: usize,
    },

    // --- fabric route-tree linter ---
    /// Net and tree counts disagree.
    TreeCountMismatch {
        /// Nets given.
        nets: usize,
        /// Trees given.
        trees: usize,
    },
    /// A tree references a node outside the route graph.
    NodeOutOfRange {
        /// Net index.
        net: usize,
        /// The node id.
        node: u32,
        /// Nodes in the graph.
        nodes: usize,
    },
    /// A wire node's track exceeds the channel width.
    TrackOutOfRange {
        /// Net index.
        net: usize,
        /// The node id.
        node: u32,
        /// Its track.
        track: usize,
        /// The graph's channel width.
        width: usize,
    },
    /// A sink pin is not reached from the net's sources through its tree.
    SinkUnreached {
        /// Net index.
        net: usize,
        /// The unreached sink node.
        sink: u32,
    },
    /// A tree node is unreachable from every source (a stranded component
    /// — where a disconnected cycle would hide).
    StrandedNode {
        /// Net index.
        net: usize,
        /// The stranded node.
        node: u32,
    },
    /// Two nets both claim one wire node.
    WireConflict {
        /// The contested wire node.
        node: u32,
        /// The two claiming nets.
        nets: (usize, usize),
    },

    // --- wave-schedule race detector ---
    /// Two members of one wave touch the same wire node.
    WaveRace {
        /// PathFinder iteration of the wave.
        iteration: usize,
        /// Wave index within the iteration.
        wave: usize,
        /// The two racing nets.
        nets: (u32, u32),
        /// The contested node.
        node: u32,
        /// True for a write/write conflict, false for read/write.
        write_write: bool,
    },

    // --- scheduler-state checker ---
    /// A band extends past its grid.
    BandOutOfBounds {
        /// Grid index.
        grid: usize,
        /// First row.
        row0: usize,
        /// Rows tall.
        rows: usize,
        /// Rows the grid has.
        grid_rows: usize,
    },
    /// Two bands of one grid overlap.
    BandOverlap {
        /// Grid index.
        grid: usize,
        /// First band as (row0, rows).
        a: (usize, usize),
        /// Second band as (row0, rows).
        b: (usize, usize),
    },
    /// A band holds no tenants.
    EmptyBand {
        /// Grid index.
        grid: usize,
        /// First row.
        row0: usize,
    },
    /// Free rows plus allocated band rows do not account for the grid.
    RowConservation {
        /// Grid index.
        grid: usize,
        /// Free rows reported.
        free: usize,
        /// Rows held by bands.
        allocated: usize,
        /// Rows the grid has.
        rows: usize,
    },
    /// A live tenant's lease points at no band.
    LeaseWithoutBand {
        /// The tenant.
        tenant: u64,
    },
    /// A lease's shape (rows/cols) disagrees with its band or grid.
    LeaseShapeMismatch {
        /// The tenant.
        tenant: u64,
    },
    /// A lease claims sole tenancy of a band it does not head.
    SharedFlagWrong {
        /// The tenant.
        tenant: u64,
    },
    /// A lease is smaller than the tenant's PE demand needs.
    LeaseTooSmall {
        /// The tenant.
        tenant: u64,
        /// Leased rows.
        rows: usize,
        /// Rows the demand needs.
        needed: usize,
    },
    /// A tenant's compiled region disagrees with its minimal region.
    RegionMismatch {
        /// The tenant.
        tenant: u64,
        /// Minimal region (rows, cols) for the demand.
        expected: (usize, usize),
        /// Region the mapping was compiled for.
        got: (usize, usize),
    },
    /// A tenant's mapping does not place every graph node.
    MappingNodeCount {
        /// The tenant.
        tenant: u64,
        /// Graph nodes.
        expected: usize,
        /// Placed nodes.
        got: usize,
    },
    /// The admission ledger does not reconcile with the queue.
    QueueLedgerDrift {
        /// `queued` counter.
        queued: u64,
        /// `queue_admitted + queue_dropped + queue_cancelled + depth`.
        accounted: u64,
    },
    /// A tenant is both live and waiting in the queue.
    QueuedAndLive {
        /// The tenant.
        tenant: u64,
    },
    /// The resident map points at a band that does not carry the tenant.
    ResidentInvalid {
        /// Grid index.
        grid: usize,
        /// Band's first row.
        row0: usize,
        /// The supposedly resident tenant.
        tenant: u64,
    },
    /// Two different structures share one cache key (a hash/eq collision).
    CacheKeyCollision {
        /// First tenant.
        a: u64,
        /// Second tenant.
        b: u64,
    },
    /// Two identical structures carry different cache keys (lost sharing).
    CacheKeySplit {
        /// First tenant.
        a: u64,
        /// Second tenant.
        b: u64,
    },
    /// A cache entry's mapping disagrees with the region its key names.
    CacheEntryMismatch {
        /// Fingerprint of the offending key.
        key_id: u64,
    },

    // --- partition schedule ---
    /// The partition plan's column regions do not tile the fabric span
    /// (gap, overlap, disorder, or a degenerate region).
    PartitionTilingBroken {
        /// PathFinder iteration of the offending plan.
        iteration: usize,
        /// Index of the first region of the broken pair.
        region: usize,
    },
    /// A region-interior task's effective box escapes the region its
    /// worker owns — two workers could touch the same occupancy entry.
    PartitionOwnershipLeak {
        /// PathFinder iteration of the offending plan.
        iteration: usize,
        /// The leaking net.
        net: u32,
        /// The region it claimed.
        region: usize,
    },
    /// Task ranks are not the exact sequence `0..n`, or a net is
    /// scheduled twice in one iteration.
    PartitionRankDisorder {
        /// PathFinder iteration of the offending plan.
        iteration: usize,
        /// The offending net.
        net: u32,
        /// The rank it carried.
        rank: usize,
    },

    // --- timeline checker ---
    /// Two intervals on the single configuration port overlap.
    PortOverlap {
        /// Lane of the earlier-starting port interval.
        a: (usize, usize),
        /// Lane of the later-starting port interval.
        b: (usize, usize),
        /// Modeled time (ns) at which the second starts inside the first.
        at_ns: u64,
    },
    /// Two intervals on one band lane overlap.
    LaneOverlap {
        /// The band lane, as (grid, row0).
        lane: (usize, usize),
        /// Modeled time (ns) of the collision.
        at_ns: u64,
    },
    /// Summed charged interval durations disagree with the ledger's
    /// total port time (a charge was dropped or double-counted).
    TimelineChargeDrift {
        /// Sum of charged interval durations (ns).
        timeline_ns: u64,
        /// The ledger's `total_port_time` (ns).
        ledger_ns: u64,
    },
    /// The reported makespan is not the last interval's end.
    MakespanMismatch {
        /// Makespan the snapshot reports (ns).
        reported_ns: u64,
        /// Maximum interval end recomputed from the axis (ns).
        computed_ns: u64,
    },

    // --- equivalence ---
    /// The mapped design is not equivalent to its source AIG.
    NotEquivalent {
        /// First mismatch, human-readable.
        detail: String,
    },
}

impl Violation {
    /// Short stable kebab-case code (for JSON records and CI greps).
    pub fn code(&self) -> &'static str {
        match self {
            Violation::NodeCountMismatch { .. } => "node-count-mismatch",
            Violation::PlacementOutOfBounds { .. } => "placement-out-of-bounds",
            Violation::PlacementOverlap { .. } => "placement-overlap",
            Violation::RouteMissing { .. } => "route-missing",
            Violation::RouteUnknown { .. } => "route-unknown",
            Violation::RouteEndpointMismatch { .. } => "route-endpoint-mismatch",
            Violation::PathBroken { .. } => "path-broken",
            Violation::PathRevisitsCell { .. } => "path-revisits-cell",
            Violation::ChannelOverCapacity { .. } => "channel-over-capacity",
            Violation::SettingsMissing { .. } => "settings-missing",
            Violation::SettingsOnEmptyCell { .. } => "settings-on-empty-cell",
            Violation::ModeMismatch { .. } => "mode-mismatch",
            Violation::CoeffMismatch { .. } => "coeff-mismatch",
            Violation::FormatMismatch { .. } => "format-mismatch",
            Violation::SettingsWordCount { .. } => "settings-word-count",
            Violation::FrameOutOfRange { .. } => "frame-out-of-range",
            Violation::TreeCountMismatch { .. } => "tree-count-mismatch",
            Violation::NodeOutOfRange { .. } => "node-out-of-range",
            Violation::TrackOutOfRange { .. } => "track-out-of-range",
            Violation::SinkUnreached { .. } => "sink-unreached",
            Violation::StrandedNode { .. } => "stranded-node",
            Violation::WireConflict { .. } => "wire-conflict",
            Violation::WaveRace { .. } => "wave-race",
            Violation::BandOutOfBounds { .. } => "band-out-of-bounds",
            Violation::BandOverlap { .. } => "band-overlap",
            Violation::EmptyBand { .. } => "empty-band",
            Violation::RowConservation { .. } => "row-conservation",
            Violation::LeaseWithoutBand { .. } => "lease-without-band",
            Violation::LeaseShapeMismatch { .. } => "lease-shape-mismatch",
            Violation::SharedFlagWrong { .. } => "shared-flag-wrong",
            Violation::LeaseTooSmall { .. } => "lease-too-small",
            Violation::RegionMismatch { .. } => "region-mismatch",
            Violation::MappingNodeCount { .. } => "mapping-node-count",
            Violation::QueueLedgerDrift { .. } => "queue-ledger-drift",
            Violation::QueuedAndLive { .. } => "queued-and-live",
            Violation::ResidentInvalid { .. } => "resident-invalid",
            Violation::CacheKeyCollision { .. } => "cache-key-collision",
            Violation::CacheKeySplit { .. } => "cache-key-split",
            Violation::CacheEntryMismatch { .. } => "cache-entry-mismatch",
            Violation::PartitionTilingBroken { .. } => "partition-tiling-broken",
            Violation::PartitionOwnershipLeak { .. } => "partition-ownership-leak",
            Violation::PartitionRankDisorder { .. } => "partition-rank-disorder",
            Violation::PortOverlap { .. } => "port-overlap",
            Violation::LaneOverlap { .. } => "lane-overlap",
            Violation::TimelineChargeDrift { .. } => "timeline-charge-drift",
            Violation::MakespanMismatch { .. } => "makespan-mismatch",
            Violation::NotEquivalent { .. } => "not-equivalent",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::NodeCountMismatch { expected, got } => {
                write!(f, "placement covers {got} nodes, graph has {expected}")
            }
            Violation::PlacementOutOfBounds { node, cell } => {
                write!(f, "node {node} placed outside the grid at {cell:?}")
            }
            Violation::PlacementOverlap { cell, nodes } => {
                write!(f, "nodes {} and {} both placed at {cell:?}", nodes.0, nodes.1)
            }
            Violation::RouteMissing { from, to } => {
                write!(f, "dataflow edge {from} -> {to} has no routed path")
            }
            Violation::RouteUnknown { edge } => {
                write!(f, "route {edge} matches no dataflow edge of the graph")
            }
            Violation::RouteEndpointMismatch { edge, want, got } => {
                write!(f, "route {edge} endpoint at {got:?}, placement says {want:?}")
            }
            Violation::PathBroken { edge, step } => {
                write!(f, "route {edge} breaks at step {step} (non-adjacent or empty)")
            }
            Violation::PathRevisitsCell { edge, cell } => {
                write!(f, "route {edge} revisits cell {cell:?}")
            }
            Violation::ChannelOverCapacity { cell, dir, used, capacity } => {
                write!(
                    f,
                    "channel segment at {cell:?} dir {dir} carries {used} routes, capacity {capacity}"
                )
            }
            Violation::SettingsMissing { node, cell } => {
                write!(f, "node {node} at {cell:?} has no PE settings")
            }
            Violation::SettingsOnEmptyCell { cell } => {
                write!(f, "unused cell {cell:?} carries PE settings")
            }
            Violation::ModeMismatch { node } => {
                write!(f, "node {node}: PE mode disagrees with the node's operation")
            }
            Violation::CoeffMismatch { node } => {
                write!(f, "node {node}: PE coefficient disagrees with the node's")
            }
            Violation::FormatMismatch { node } => {
                write!(f, "node {node}: PE coefficient format disagrees with the datapath")
            }
            Violation::SettingsWordCount { expected, got } => {
                write!(f, "settings words: {got}, architecture has {expected} registers")
            }
            Violation::FrameOutOfRange { cell, frame, frames } => {
                write!(f, "cell {cell:?} addresses frame {frame}, model has {frames}")
            }
            Violation::TreeCountMismatch { nets, trees } => {
                write!(f, "{trees} trees for {nets} nets")
            }
            Violation::NodeOutOfRange { net, node, nodes } => {
                write!(f, "net {net}: node {node} outside the graph ({nodes} nodes)")
            }
            Violation::TrackOutOfRange { net, node, track, width } => {
                write!(f, "net {net}: node {node} on track {track}, width {width}")
            }
            Violation::SinkUnreached { net, sink } => {
                write!(f, "net {net}: sink {sink} not reached")
            }
            Violation::StrandedNode { net, node } => {
                write!(f, "net {net}: node {node} unreachable from every source")
            }
            Violation::WireConflict { node, nets } => {
                write!(f, "wire {node} shared by nets {} and {}", nets.0, nets.1)
            }
            Violation::WaveRace { iteration, wave, nets, node, write_write } => {
                write!(
                    f,
                    "iteration {iteration} wave {wave}: nets {} and {} race on node {node} ({})",
                    nets.0,
                    nets.1,
                    if *write_write { "write/write" } else { "read/write" }
                )
            }
            Violation::BandOutOfBounds { grid, row0, rows, grid_rows } => {
                write!(f, "grid {grid}: band rows {row0}+{rows} exceed the grid's {grid_rows}")
            }
            Violation::BandOverlap { grid, a, b } => {
                write!(f, "grid {grid}: bands {a:?} and {b:?} overlap")
            }
            Violation::EmptyBand { grid, row0 } => {
                write!(f, "grid {grid}: band at row {row0} holds no tenants")
            }
            Violation::RowConservation { grid, free, allocated, rows } => {
                write!(f, "grid {grid}: {free} free + {allocated} allocated != {rows} rows")
            }
            Violation::LeaseWithoutBand { tenant } => {
                write!(f, "tenant {tenant}: lease points at no band")
            }
            Violation::LeaseShapeMismatch { tenant } => {
                write!(f, "tenant {tenant}: lease shape disagrees with its band/grid")
            }
            Violation::SharedFlagWrong { tenant } => {
                write!(f, "tenant {tenant}: non-shared lease on a band it does not head")
            }
            Violation::LeaseTooSmall { tenant, rows, needed } => {
                write!(f, "tenant {tenant}: {rows} leased rows, demand needs {needed}")
            }
            Violation::RegionMismatch { tenant, expected, got } => {
                write!(f, "tenant {tenant}: compiled for region {got:?}, minimal is {expected:?}")
            }
            Violation::MappingNodeCount { tenant, expected, got } => {
                write!(f, "tenant {tenant}: mapping places {got} nodes, graph has {expected}")
            }
            Violation::QueueLedgerDrift { queued, accounted } => {
                write!(f, "ledger drift: queued {queued}, accounted {accounted}")
            }
            Violation::QueuedAndLive { tenant } => {
                write!(f, "tenant {tenant} is both live and queued")
            }
            Violation::ResidentInvalid { grid, row0, tenant } => {
                write!(f, "resident map: tenant {tenant} not on band (grid {grid}, row {row0})")
            }
            Violation::CacheKeyCollision { a, b } => {
                write!(f, "tenants {a} and {b}: same cache key, different structure")
            }
            Violation::CacheKeySplit { a, b } => {
                write!(f, "tenants {a} and {b}: same structure, different cache keys")
            }
            Violation::CacheEntryMismatch { key_id } => {
                write!(f, "cache entry {key_id:#x}: mapping disagrees with its key's region")
            }
            Violation::PartitionTilingBroken { iteration, region } => {
                write!(f, "iteration {iteration}: regions {region}/{} do not tile", region + 1)
            }
            Violation::PartitionOwnershipLeak { iteration, net, region } => {
                write!(f, "iteration {iteration}: net {net} escapes its owned region {region}")
            }
            Violation::PartitionRankDisorder { iteration, net, rank } => {
                write!(f, "iteration {iteration}: net {net} breaks commit order at rank {rank}")
            }
            Violation::PortOverlap { a, b, at_ns } => {
                write!(
                    f,
                    "configuration port double-booked at {at_ns} ns by lanes {a:?} and {b:?}"
                )
            }
            Violation::LaneOverlap { lane, at_ns } => {
                write!(f, "band lane {lane:?} double-booked at {at_ns} ns")
            }
            Violation::TimelineChargeDrift { timeline_ns, ledger_ns } => {
                write!(
                    f,
                    "charged lane durations sum to {timeline_ns} ns, ledger port time is {ledger_ns} ns"
                )
            }
            Violation::MakespanMismatch { reported_ns, computed_ns } => {
                write!(f, "reported makespan {reported_ns} ns, intervals end at {computed_ns} ns")
            }
            Violation::NotEquivalent { detail } => {
                write!(f, "mapping not equivalent: {detail}")
            }
        }
    }
}

/// Machine-readable result of one pass.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Stable pass name (`config`, `routes`, `wave-schedule`, `sched`,
    /// `equiv`).
    pub pass: &'static str,
    /// Objects the pass examined (nets, waves, bands... — the pass's own
    /// unit, documented per pass).
    pub checked: usize,
    /// Every violation found (empty means the invariants are proven for
    /// this artifact).
    pub violations: Vec<Violation>,
    /// Wall time the pass took.
    pub seconds: f64,
}

impl VerifyReport {
    /// True when no invariant was violated.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        if self.ok() {
            format!("{}: {} checked, clean ({:.1} ms)", self.pass, self.checked, self.seconds * 1e3)
        } else {
            format!(
                "{}: {} checked, {} VIOLATIONS ({:.1} ms)",
                self.pass,
                self.checked,
                self.violations.len(),
                self.seconds * 1e3
            )
        }
    }

    /// Panics with every violation listed unless the report is clean.
    pub fn assert_ok(&self) {
        if !self.ok() {
            let mut msg = format!("{} violations in pass '{}':", self.violations.len(), self.pass);
            for v in &self.violations {
                msg.push_str(&format!("\n  [{}] {v}", v.code()));
            }
            panic!("{msg}");
        }
    }

    /// JSON object (hand-rolled like the rest of the bench records — the
    /// build has no serde).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"pass\": \"{}\", \"checked\": {}, \"seconds\": {:.6}, \"violations\": [",
            self.pass, self.checked, self.seconds
        );
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let detail = v.to_string().replace('\\', "\\\\").replace('"', "\\\"");
            s.push_str(&format!("{{\"code\": \"{}\", \"detail\": \"{detail}\"}}", v.code()));
        }
        s.push_str("]}");
        s
    }
}

/// The facade: one entry point per pass, each producing a
/// [`VerifyReport`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Verifier;

impl Verifier {
    /// Creates a verifier.
    pub fn new() -> Self {
        Verifier
    }

    /// Pass 1a — overlay configuration linter. `checked` counts app nodes
    /// plus routed edges.
    pub fn verify_config(
        &self,
        app: &vcgra::app::AppGraph,
        mapping: &vcgra::flow::VcgraMapping,
    ) -> VerifyReport {
        let t0 = std::time::Instant::now();
        let violations = config::check_mapping(app, mapping);
        VerifyReport {
            pass: "config",
            checked: app.nodes.len() + mapping.routes.len(),
            violations,
            seconds: t0.elapsed().as_secs_f64(),
        }
    }

    /// Pass 1b — fabric route-tree linter. `checked` counts nets.
    pub fn verify_routes(
        &self,
        graph: &fabric::rrg::RouteGraph,
        nets: &[routes::NetTerminals],
        trees: &[Vec<u32>],
    ) -> VerifyReport {
        let t0 = std::time::Instant::now();
        let violations = routes::check_route_trees(graph, nets, trees);
        VerifyReport {
            pass: "routes",
            checked: nets.len(),
            violations,
            seconds: t0.elapsed().as_secs_f64(),
        }
    }

    /// Pass 2 — wave-schedule race check over one wave's footprints (the
    /// incremental form used by the router lives in [`waves::WaveAuditor`]).
    pub fn verify_wave(&self, members: &[waves::WaveFootprint]) -> VerifyReport {
        let t0 = std::time::Instant::now();
        let violations = waves::check_wave(0, 0, members);
        VerifyReport {
            pass: "wave-schedule",
            checked: members.len(),
            violations,
            seconds: t0.elapsed().as_secs_f64(),
        }
    }

    /// Pass 2b — partition-schedule checker over the router's recorded
    /// plans (region tiling, worker ownership, commit rank order).
    /// `checked` counts scheduled tasks across all plans.
    pub fn verify_partition(&self, plans: &[partition::PartitionPlan]) -> VerifyReport {
        let t0 = std::time::Instant::now();
        let violations = partition::check_plans(plans);
        VerifyReport {
            pass: "partition",
            checked: plans.iter().map(|p| p.tasks.len()).sum(),
            violations,
            seconds: t0.elapsed().as_secs_f64(),
        }
    }

    /// Pass 3 — scheduler-state checker. `checked` counts bands plus
    /// tenants.
    pub fn verify_sched(&self, snap: &sched::SchedSnapshot) -> VerifyReport {
        let t0 = std::time::Instant::now();
        let violations = sched::check_sched(snap);
        VerifyReport {
            pass: "sched",
            checked: snap.bands.len() + snap.tenants.len(),
            violations,
            seconds: t0.elapsed().as_secs_f64(),
        }
    }

    /// Pass 3b — timeline checker over the runtime's modeled time axis
    /// (port exclusivity, lane exclusivity, charge conservation).
    /// `checked` counts scheduled intervals.
    pub fn verify_timeline(&self, snap: &timeline::TimelineSnapshot) -> VerifyReport {
        let t0 = std::time::Instant::now();
        let violations = timeline::check_timeline(snap);
        VerifyReport {
            pass: "timeline",
            checked: snap.intervals.len(),
            violations,
            seconds: t0.elapsed().as_secs_f64(),
        }
    }

    /// Equivalence pass — AIG vs mapped design over random parameter
    /// assignments. `checked` counts assignments.
    pub fn verify_equivalence(
        &self,
        aig: &logic::aig::Aig,
        design: &mapping::MappedDesign,
        param_draws: usize,
        seed: u64,
    ) -> VerifyReport {
        let t0 = std::time::Instant::now();
        let violations = match equiv::check_equivalent(aig, design, param_draws, seed) {
            Ok(()) => Vec::new(),
            Err(detail) => vec![Violation::NotEquivalent { detail }],
        };
        VerifyReport {
            pass: "equiv",
            checked: 2 + param_draws,
            violations,
            seconds: t0.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_summary_and_json() {
        let clean = VerifyReport { pass: "routes", checked: 3, violations: vec![], seconds: 0.001 };
        assert!(clean.ok());
        assert!(clean.summary().contains("clean"));
        clean.assert_ok();

        let bad = VerifyReport {
            pass: "routes",
            checked: 3,
            violations: vec![Violation::WireConflict { node: 7, nets: (0, 2) }],
            seconds: 0.001,
        };
        assert!(!bad.ok());
        let json = bad.to_json();
        assert!(json.contains("\"wire-conflict\""), "{json}");
        assert!(json.contains("\"pass\": \"routes\""), "{json}");
    }

    #[test]
    #[should_panic(expected = "wire-conflict")]
    fn assert_ok_lists_codes() {
        VerifyReport {
            pass: "routes",
            checked: 1,
            violations: vec![Violation::WireConflict { node: 7, nets: (0, 2) }],
            seconds: 0.0,
        }
        .assert_ok();
    }
}
