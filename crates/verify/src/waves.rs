//! Pass 2 — the wave-schedule race detector.
//!
//! The par-engine routes each PathFinder iteration's dirty nets in
//! *waves*: members of one wave are ripped up together, routed in
//! parallel against one immutable congestion snapshot, and committed in
//! net order. The engine packs waves by **bounding-box disjointness** and
//! argues that bbox-disjoint nets cannot interact. This pass checks that
//! argument on the *actual* footprints:
//!
//! * `writes(N)` — every wire node whose occupancy N's rip-up or commit
//!   changes (the union of its old and new trees' wires);
//! * `reads(N)` — every node whose congestion state N's search evaluated
//!   (each `step_cost` callsite, recorded by the router when auditing).
//!
//! **Theorem.** A wave is equivalent to routing its members one at a time
//! (rip, route, commit, next) iff for every ordered member pair `A ≠ B`:
//! `reads(A) ∩ writes(B) = ∅`. Under sequential processing, B's rip and
//! commit precede A only in one of the two orders; if A never evaluates a
//! node B writes, A's search sees identical costs either way, and
//! identical costs with a deterministic search mean an identical tree.
//! Write/write disjointness is also checked (a pair of commits claiming
//! one wire would silently create overuse the snapshot never saw).
//!
//! The check runs **incrementally** via [`WaveAuditor`] — one wave's
//! footprints at a time — so the full (6,26) PE audit holds one wave in
//! memory, not the whole route.

use crate::{Violation, VerifyReport};
use logic::fxhash::FxHashMap;

/// One wave member's touched-node footprint.
#[derive(Debug, Clone, Default)]
pub struct WaveFootprint {
    /// The net (index into the netlist).
    pub net: u32,
    /// Nodes whose congestion state the member's search evaluated.
    pub reads: Vec<u32>,
    /// Wire nodes the member's rip-up or commit writes.
    pub writes: Vec<u32>,
}

/// Checks one wave's members for pairwise read/write and write/write
/// disjointness. `iteration`/`wave` only label the violations.
pub fn check_wave(iteration: usize, wave: usize, members: &[WaveFootprint]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut writer: FxHashMap<u32, u32> = FxHashMap::default();
    for m in members {
        for &node in &m.writes {
            if let Some(&other) = writer.get(&node) {
                if other != m.net {
                    out.push(Violation::WaveRace {
                        iteration,
                        wave,
                        nets: (other, m.net),
                        node,
                        write_write: true,
                    });
                }
            } else {
                writer.insert(node, m.net);
            }
        }
    }
    for m in members {
        for &node in &m.reads {
            if let Some(&other) = writer.get(&node) {
                if other != m.net {
                    out.push(Violation::WaveRace {
                        iteration,
                        wave,
                        nets: (m.net, other),
                        node,
                        write_write: false,
                    });
                }
            }
        }
    }
    out
}

/// Incremental accumulator over a whole route: feed it every wave, read
/// the [`VerifyReport`] at the end.
#[derive(Debug)]
pub struct WaveAuditor {
    /// PathFinder iterations observed (highest iteration index + 1).
    pub iterations: usize,
    /// Waves observed.
    pub waves: usize,
    /// Wave members observed (= net route operations audited).
    pub members: usize,
    /// Footprint nodes examined.
    pub nodes_checked: usize,
    violations: Vec<Violation>,
    started: std::time::Instant,
}

impl Default for WaveAuditor {
    fn default() -> Self {
        Self::new()
    }
}

impl WaveAuditor {
    /// Creates an empty auditor (starts the pass clock).
    pub fn new() -> Self {
        WaveAuditor {
            iterations: 0,
            waves: 0,
            members: 0,
            nodes_checked: 0,
            violations: Vec::new(),
            started: std::time::Instant::now(),
        }
    }

    /// Checks one wave and folds its result into the running report.
    pub fn observe_wave(&mut self, iteration: usize, members: &[WaveFootprint]) {
        self.iterations = self.iterations.max(iteration + 1);
        let wave = self.waves;
        self.waves += 1;
        self.members += members.len();
        self.nodes_checked +=
            members.iter().map(|m| m.reads.len() + m.writes.len()).sum::<usize>();
        self.violations.extend(check_wave(iteration, wave, members));
    }

    /// Violations found so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Finishes the pass. `checked` counts waves.
    pub fn finish(self) -> VerifyReport {
        VerifyReport {
            pass: "wave-schedule",
            checked: self.waves,
            violations: self.violations,
            seconds: self.started.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(net: u32, reads: &[u32], writes: &[u32]) -> WaveFootprint {
        WaveFootprint { net, reads: reads.to_vec(), writes: writes.to_vec() }
    }

    #[test]
    fn disjoint_wave_is_clean() {
        let v = check_wave(0, 0, &[fp(0, &[1, 2, 3], &[2, 3]), fp(1, &[10, 11], &[11])]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn write_write_overlap_is_a_race() {
        let v = check_wave(2, 1, &[fp(0, &[], &[5]), fp(1, &[], &[5])]);
        assert_eq!(v.len(), 1);
        assert!(matches!(
            v[0],
            Violation::WaveRace { iteration: 2, wave: 1, node: 5, write_write: true, .. }
        ));
    }

    #[test]
    fn read_of_anothers_write_is_a_race() {
        let v = check_wave(0, 0, &[fp(0, &[7], &[1]), fp(1, &[2], &[7])]);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::WaveRace { node: 7, write_write: false, .. })));
    }

    #[test]
    fn own_reads_of_own_writes_are_fine() {
        let v = check_wave(0, 0, &[fp(3, &[1, 2], &[1, 2])]);
        assert!(v.is_empty());
    }

    #[test]
    fn auditor_accumulates() {
        let mut a = WaveAuditor::new();
        a.observe_wave(0, &[fp(0, &[1], &[1])]);
        a.observe_wave(0, &[fp(1, &[9], &[9]), fp(2, &[9], &[8])]);
        a.observe_wave(1, &[fp(0, &[4], &[4])]);
        assert_eq!(a.waves, 3);
        assert_eq!(a.members, 4);
        let rep = a.finish();
        assert_eq!(rep.checked, 3);
        assert_eq!(rep.violations.len(), 1, "{:?}", rep.violations);
    }
}
