//! Pass 2b — partition-schedule checker.
//!
//! The router's partition path claims three static invariants per
//! iteration, and this pass re-proves them from the recorded plan instead
//! of trusting the scheduler:
//!
//! 1. **Tiling** — the column regions are ordered, contiguous (each
//!    region starts where the previous one ends), and non-degenerate, so
//!    every x-coordinate belongs to exactly one region.
//! 2. **Ownership** — every region-interior task's effective box (reads,
//!    rip-up, and commit footprint) lies inside its claimed region, so
//!    two workers can never touch the same `NodeState` entry.
//! 3. **Order** — task ranks are exactly `0..n` in sequence and no net
//!    appears twice, so the ordered boundary commit reproduces the
//!    canonical serial schedule.

use crate::Violation;

/// One scheduled reroute inside a partition plan, in commit rank order.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionTask {
    /// The net being rerouted.
    pub net: u32,
    /// Position in the iteration's canonical (flattened wave) order.
    pub rank: usize,
    /// Owning column region for an interior task; `None` marks a
    /// boundary-crossing net committed in order on the coordinator.
    pub region: Option<usize>,
    /// Effective box x-extent (search box ∪ ripped tree).
    pub x0: f32,
    /// See `x0`.
    pub x1: f32,
}

/// One partitioned iteration's schedule, as recorded by the router.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionPlan {
    /// PathFinder iteration the plan belongs to.
    pub iteration: usize,
    /// Column regions as half-open x-intervals `[lo, hi)` (outer edges
    /// padded past the fabric span).
    pub regions: Vec<(f32, f32)>,
    /// Safety margin the classifier applied around region borders.
    pub halo: f32,
    /// Whether the iteration actually ran on the partition executor
    /// (small worklists fall back to waves; the invariants must hold
    /// either way).
    pub executed: bool,
    /// Tasks in commit rank order.
    pub tasks: Vec<PartitionTask>,
}

/// Checks every plan; see the module docs for the proven invariants.
pub fn check_plans(plans: &[PartitionPlan]) -> Vec<Violation> {
    let mut out = Vec::new();
    for plan in plans {
        // 1. Tiling.
        for (i, w) in plan.regions.windows(2).enumerate() {
            if w[0].1 != w[1].0 || w[0].0 >= w[0].1 {
                out.push(Violation::PartitionTilingBroken {
                    iteration: plan.iteration,
                    region: i,
                });
            }
        }
        if let Some(&(lo, hi)) = plan.regions.last() {
            if lo >= hi {
                out.push(Violation::PartitionTilingBroken {
                    iteration: plan.iteration,
                    region: plan.regions.len() - 1,
                });
            }
        }
        // 2 + 3. Ownership and order.
        let mut seen = std::collections::HashSet::new();
        for (i, t) in plan.tasks.iter().enumerate() {
            if t.rank != i || !seen.insert(t.net) {
                out.push(Violation::PartitionRankDisorder {
                    iteration: plan.iteration,
                    net: t.net,
                    rank: t.rank,
                });
            }
            if let Some(r) = t.region {
                let leak = match plan.regions.get(r) {
                    Some(&(lo, hi)) => t.x0 < lo || t.x1 > hi,
                    None => true,
                };
                if leak {
                    out.push(Violation::PartitionOwnershipLeak {
                        iteration: plan.iteration,
                        net: t.net,
                        region: r,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_plan() -> PartitionPlan {
        PartitionPlan {
            iteration: 0,
            regions: vec![(-1.0, 4.0), (4.0, 9.0)],
            halo: 1.0,
            executed: true,
            tasks: vec![
                PartitionTask { net: 7, rank: 0, region: Some(0), x0: 0.0, x1: 3.0 },
                PartitionTask { net: 2, rank: 1, region: None, x0: 2.0, x1: 6.0 },
                PartitionTask { net: 5, rank: 2, region: Some(1), x0: 5.0, x1: 8.0 },
            ],
        }
    }

    #[test]
    fn clean_plan_passes() {
        assert!(check_plans(&[clean_plan()]).is_empty());
    }

    #[test]
    fn gap_between_regions_is_rejected() {
        let mut p = clean_plan();
        p.regions[1].0 = 4.5;
        let v = check_plans(&[p]);
        assert!(v.iter().any(|v| matches!(v, Violation::PartitionTilingBroken { .. })), "{v:?}");
    }

    #[test]
    fn interior_task_escaping_its_region_is_rejected() {
        let mut p = clean_plan();
        p.tasks[0].x1 = 4.5; // leaks into region 1
        let v = check_plans(&[p]);
        assert!(
            v.iter().any(|v| matches!(v, Violation::PartitionOwnershipLeak { net: 7, .. })),
            "{v:?}"
        );
    }

    #[test]
    fn duplicate_net_and_broken_ranks_are_rejected() {
        let mut p = clean_plan();
        p.tasks[2].net = 7;
        let mut q = clean_plan();
        q.tasks[1].rank = 5;
        for plan in [p, q] {
            let v = check_plans(&[plan]);
            assert!(
                v.iter().any(|v| matches!(v, Violation::PartitionRankDisorder { .. })),
                "{v:?}"
            );
        }
    }
}
