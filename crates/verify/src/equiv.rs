//! Equivalence checking between a source AIG and its mapped design
//! (absorbed from `mapping::verify` — the mapping crate's tests and the
//! repo's examples now call in here).
//!
//! For a set of parameter assignments (always including all-zeros and
//! all-ones, plus random draws), the mapped design is specialized and
//! bit-parallel simulated against the AIG with the same parameters folded
//! to constants. This validates the *entire* parameterized flow: PTT
//! computation, TLUT extraction, TCON covers and the specialization logic.

use logic::aig::{Aig, InputKind};
use logic::fxhash::FxHashMap;
use logic::rng::SplitMix64;
use logic::sim::simulate_u64;
use mapping::MappedDesign;

/// Checks AIG-vs-mapped equivalence over `param_draws` random parameter
/// assignments (plus the two constant corner assignments), with 4 batches of
/// 64 random regular patterns each. Returns a human-readable error on the
/// first mismatch.
pub fn check_equivalent(
    aig: &Aig,
    design: &MappedDesign,
    param_draws: usize,
    seed: u64,
) -> Result<(), String> {
    let mut rng = SplitMix64::new(seed);
    let np = design.param_names.len();

    // Map param name -> AIG input index, for folding.
    let mut param_aig_idx: FxHashMap<&str, u32> = FxHashMap::default();
    for (idx, info) in aig.inputs().iter().enumerate() {
        if info.kind == InputKind::Param {
            param_aig_idx.insert(info.name.as_str(), idx as u32);
        }
    }

    let mut assignments: Vec<Vec<bool>> = vec![vec![false; np], vec![true; np]];
    for _ in 0..param_draws {
        assignments.push((0..np).map(|_| rng.coin()).collect());
    }

    for params in &assignments {
        // Fold parameters in the AIG (only those the design knows about).
        let mut fold: FxHashMap<u32, bool> = FxHashMap::default();
        for (v, name) in design.param_names.iter().enumerate() {
            let idx = *param_aig_idx
                .get(name.as_str())
                .ok_or_else(|| format!("parameter {name} missing in AIG"))?;
            fold.insert(idx, params[v]);
        }
        let spec_aig = aig.specialize(&fold);
        let spec_map = design.specialize(params);

        // Regular input order must agree (mapper preserves AIG order).
        let n_reg = design.input_names.len();
        if spec_aig.num_inputs() != n_reg {
            return Err(format!(
                "input count mismatch: AIG {} vs mapped {}",
                spec_aig.num_inputs(),
                n_reg
            ));
        }
        for round in 0..4 {
            let words: Vec<u64> = (0..n_reg).map(|_| rng.next_u64()).collect();
            let oa = simulate_u64(&spec_aig, &words);
            let om = spec_map.simulate(&words);
            for (i, ((name, _), (&wa, &wm))) in aig
                .outputs()
                .iter()
                .zip(oa.iter().zip(om.iter()))
                .enumerate()
            {
                if wa != wm {
                    return Err(format!(
                        "output {i} ({name}) differs for params {params:?} round {round}: \
                         aig={wa:#018x} mapped={wm:#018x}"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Panicking wrapper for tests.
pub fn assert_equivalent(aig: &Aig, design: &MappedDesign, param_draws: usize, seed: u64) {
    if let Err(e) = check_equivalent(aig, design, param_draws, seed) {
        panic!("mapping not equivalent: {e}");
    }
}
