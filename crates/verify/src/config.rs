//! Pass 1a — the overlay configuration linter.
//!
//! Takes a routed [`VcgraMapping`] together with the [`AppGraph`] it claims
//! to implement and statically proves, without executing anything:
//!
//! * **placement sanity** — every node placed, in bounds, one node per PE;
//! * **route integrity** — exactly the graph's dataflow edges are routed,
//!   every path is a contiguous *simple* path (adjacent cells, no revisits
//!   — per-path acyclicity) between the placed endpoints;
//! * **channel-width conformance** — no directed channel segment carries
//!   more paths than `arch.channel_capacity`;
//! * **settings agreement** — placed cells carry settings whose mode,
//!   coefficient and floating-point format match the node; unused cells
//!   carry none; `settings_words()` covers every settings register;
//! * **frame-address consistency** — every settings register and every
//!   datapath routing cell addresses a frame inside
//!   [`FrameModel::for_grid`]'s space, and the datapath (routing) frames
//!   stay out of the settings plane.

use crate::Violation;
use fabric::arch::Site;
use fabric::frames::FrameModel;
use std::collections::HashMap;
use vcgra::app::{AppGraph, AppSource};
use vcgra::flow::VcgraMapping;

/// Runs every configuration check; returns all violations found.
pub fn check_mapping(app: &AppGraph, mapping: &VcgraMapping) -> Vec<Violation> {
    let mut out = Vec::new();
    let arch = mapping.arch;
    let n = app.nodes.len();

    if mapping.place.len() != n {
        out.push(Violation::NodeCountMismatch { expected: n, got: mapping.place.len() });
        // Node indices are unreliable past this point.
        return out;
    }

    // --- placement ---
    let mut cell_of: HashMap<(usize, usize), usize> = HashMap::new();
    for (i, &cell) in mapping.place.iter().enumerate() {
        if cell.0 >= arch.rows || cell.1 >= arch.cols {
            out.push(Violation::PlacementOutOfBounds { node: i, cell });
            continue;
        }
        if let Some(&j) = cell_of.get(&cell) {
            out.push(Violation::PlacementOverlap { cell, nodes: (j, i) });
        } else {
            cell_of.insert(cell, i);
        }
    }

    // --- routes: cover exactly the graph's dataflow edges ---
    let mut want: HashMap<(usize, usize), isize> = HashMap::new();
    for (i, node) in app.nodes.iter().enumerate() {
        for s in [node.a, node.b] {
            if let AppSource::Node(j) = s {
                *want.entry((j, i)).or_insert(0) += 1;
            }
        }
    }
    for (e, r) in mapping.routes.iter().enumerate() {
        if r.from >= n || r.to >= n {
            out.push(Violation::RouteUnknown { edge: e });
            continue;
        }
        match want.get_mut(&(r.from, r.to)) {
            Some(c) if *c > 0 => *c -= 1,
            _ => out.push(Violation::RouteUnknown { edge: e }),
        }
    }
    for (&(from, to), &missing) in &want {
        for _ in 0..missing.max(0) {
            out.push(Violation::RouteMissing { from, to });
        }
    }

    // --- per-path integrity + channel usage ---
    let mut usage: HashMap<((usize, usize), u8), usize> = HashMap::new();
    for (e, r) in mapping.routes.iter().enumerate() {
        if r.from >= n || r.to >= n {
            continue; // already reported as RouteUnknown
        }
        if r.path.is_empty() {
            out.push(Violation::PathBroken { edge: e, step: 0 });
            continue;
        }
        let (first, last) = (r.path[0], *r.path.last().expect("non-empty path"));
        if first != mapping.place[r.from] {
            out.push(Violation::RouteEndpointMismatch {
                edge: e,
                want: mapping.place[r.from],
                got: first,
            });
        }
        if last != mapping.place[r.to] {
            out.push(Violation::RouteEndpointMismatch {
                edge: e,
                want: mapping.place[r.to],
                got: last,
            });
        }
        let mut seen = std::collections::HashSet::new();
        for (s, &cell) in r.path.iter().enumerate() {
            if cell.0 >= arch.rows || cell.1 >= arch.cols {
                out.push(Violation::PathBroken { edge: e, step: s });
            }
            if !seen.insert(cell) {
                out.push(Violation::PathRevisitsCell { edge: e, cell });
            }
        }
        for (s, w) in r.path.windows(2).enumerate() {
            let (a, b) = (w[0], w[1]);
            let dir = match (b.0 as i64 - a.0 as i64, b.1 as i64 - a.1 as i64) {
                (0, 1) => 0u8,
                (0, -1) => 1,
                (1, 0) => 2,
                (-1, 0) => 3,
                _ => {
                    out.push(Violation::PathBroken { edge: e, step: s + 1 });
                    continue;
                }
            };
            *usage.entry((a, dir)).or_insert(0) += 1;
        }
    }
    let mut over: Vec<_> = usage
        .iter()
        .filter(|(_, &used)| used > arch.channel_capacity)
        .map(|(&(cell, dir), &used)| Violation::ChannelOverCapacity {
            cell,
            dir,
            used,
            capacity: arch.channel_capacity,
        })
        .collect();
    over.sort_by_key(|v| match v {
        Violation::ChannelOverCapacity { cell, dir, .. } => (*cell, *dir),
        _ => unreachable!(),
    });
    out.extend(over);

    // --- settings agreement ---
    for (i, node) in app.nodes.iter().enumerate() {
        let cell = mapping.place[i];
        if cell.0 >= arch.rows || cell.1 >= arch.cols {
            continue; // already reported
        }
        let idx = cell.0 * arch.cols + cell.1;
        match mapping.pe_settings.get(idx).and_then(|s| s.as_ref()) {
            None => out.push(Violation::SettingsMissing { node: i, cell }),
            Some(s) => {
                if s.mode != node.op {
                    out.push(Violation::ModeMismatch { node: i });
                }
                if s.coeff.format.we != app.format.we || s.coeff.format.wf != app.format.wf {
                    out.push(Violation::FormatMismatch { node: i });
                }
                if let Some(c) = node.coeff {
                    if s.coeff.bits != c.bits {
                        out.push(Violation::CoeffMismatch { node: i });
                    }
                }
            }
        }
    }
    for (idx, s) in mapping.pe_settings.iter().enumerate() {
        let cell = (idx / arch.cols, idx % arch.cols);
        if s.is_some() && !cell_of.contains_key(&cell) {
            out.push(Violation::SettingsOnEmptyCell { cell });
        }
    }

    let words = mapping.settings_words();
    if words.len() != arch.settings_register_count() {
        out.push(Violation::SettingsWordCount {
            expected: arch.settings_register_count(),
            got: words.len(),
        });
    }

    // --- frame-address consistency ---
    let fm = FrameModel::for_grid(arch.rows, arch.cols);
    let frames = fm.frame_count() as usize;
    let settings_plane = fm.lut_frame(Site::Logic { x: arch.cols - 1, y: arch.rows - 1 }) as usize;
    for &cell in cell_of.keys() {
        let frame = fm.lut_frame(Site::Logic { x: cell.1, y: cell.0 }) as usize;
        if frame >= frames {
            out.push(Violation::FrameOutOfRange { cell, frame, frames });
        }
    }
    for r in &mapping.routes {
        for &cell in &r.path {
            if cell.0 >= arch.rows || cell.1 >= arch.cols {
                continue;
            }
            let frame = fm.routing_frame(cell.1, cell.0) as usize;
            // Datapath frames must address the routing plane: inside the
            // frame space and past every settings-register frame.
            if frame >= frames || frame <= settings_plane {
                out.push(Violation::FrameOutOfRange { cell, frame, frames });
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use softfloat::FpFormat;
    use vcgra::flow::map_app;
    use vcgra::VcgraArch;

    const F: FpFormat = FpFormat::PAPER;

    #[test]
    fn real_mappings_are_clean() {
        let arch = VcgraArch::paper_4x4();
        for (s, app) in [
            AppGraph::dot_product(F, &[1.0, 2.0, 3.0, 4.0, 5.0]),
            AppGraph::mac_chain(F, &[0.5, 0.25, 0.125]),
            AppGraph::scaling_cascade(F, &[1.0; 6]),
        ]
        .iter()
        .enumerate()
        {
            let m = map_app(app, arch, s as u64 + 1).expect("mappable");
            let v = check_mapping(app, &m);
            assert!(v.is_empty(), "seed {s}: {v:?}");
        }
    }

    #[test]
    fn endpoint_and_adjacency_corruptions_are_caught() {
        let app = AppGraph::mac_chain(F, &[0.5, 0.25, 0.125]);
        let m = map_app(&app, VcgraArch::paper_4x4(), 7).expect("mappable");

        let mut bad = m.clone();
        let from_cell = bad.place[bad.routes[0].from];
        bad.routes[0].path[0] = ((from_cell.0 + 1) % 4, from_cell.1);
        assert!(check_mapping(&app, &bad)
            .iter()
            .any(|v| matches!(v, Violation::RouteEndpointMismatch { .. })));

        let mut bad = m;
        let first = bad.routes[0].path[0];
        bad.routes[0].path.push(first); // revisit (and break adjacency/endpoint)
        assert!(check_mapping(&app, &bad)
            .iter()
            .any(|v| matches!(v, Violation::PathRevisitsCell { .. })));
    }
}
