//! Pass 3b — the **timeline checker**: proves the runtime's modeled time
//! axis is a well-formed schedule, not just a renamed sum.
//!
//! The runtime (PR 10) schedules every reconfiguration phase as an
//! interval on a per-band lane, with host→fabric phases additionally
//! serialized on the single configuration port, and derives a modeled
//! makespan from the axis. This pass re-proves the three claims that
//! make the makespan honest, over a plain-data [`TimelineSnapshot`]:
//!
//! 1. **Port exclusivity** — no two port intervals overlap: the
//!    HWICAP/MST-AXI interface streams one bitstream at a time
//!    ([`Violation::PortOverlap`]);
//! 2. **Lane exclusivity** — no two intervals on one band lane overlap:
//!    a band cannot compute while its own configuration is rewritten
//!    ([`Violation::LaneOverlap`]);
//! 3. **Charge conservation** — every duration the ledger charged
//!    appears exactly once on some lane: the summed charged interval
//!    durations equal the ledger's `total_port_time`
//!    ([`Violation::TimelineChargeDrift`]), and the reported makespan is
//!    exactly the last interval's end ([`Violation::MakespanMismatch`]).
//!
//! Like every pass, the checker trusts nothing about how the snapshot
//! was produced: it recomputes overlaps and sums from the raw intervals.

use crate::Violation;

/// One scheduled interval, exported as plain data (nanoseconds; the
/// phase's port/charge behavior is carried as flags so the checker does
/// not depend on the runtime crate's `Phase` enum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSnap {
    /// The band lane, as `(grid, row0)`.
    pub lane: (usize, usize),
    /// Stable phase name (`admission`, `swap`, `switch`, `replay`,
    /// `execute`).
    pub phase: &'static str,
    /// True when the phase streamed through the configuration port.
    pub uses_port: bool,
    /// True when the ledger charged the phase as modeled port time.
    pub charged: bool,
    /// The tenant served, when attributable.
    pub tenant: Option<u64>,
    /// Modeled start, nanoseconds from runtime construction.
    pub start_ns: u64,
    /// Modeled duration, nanoseconds (non-zero by construction).
    pub dur_ns: u64,
}

impl PhaseSnap {
    /// Modeled end, nanoseconds.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

/// Plain-data export of the runtime's time axis plus the two ledger
/// quantities the axis must reconcile with.
#[derive(Debug, Clone, Default)]
pub struct TimelineSnapshot {
    /// Every scheduled interval, in scheduling order.
    pub intervals: Vec<PhaseSnap>,
    /// The makespan the runtime reports, nanoseconds.
    pub makespan_ns: u64,
    /// The ledger's `total_port_time`, nanoseconds — what the charged
    /// intervals must sum to.
    pub ledger_port_ns: u64,
}

/// Checks one timeline snapshot. Returns every violation found.
pub fn check_timeline(snap: &TimelineSnapshot) -> Vec<Violation> {
    let mut violations = Vec::new();

    // Port exclusivity: sort the port intervals by start and require
    // each to begin no earlier than its predecessor's end.
    let mut port: Vec<&PhaseSnap> = snap.intervals.iter().filter(|iv| iv.uses_port).collect();
    port.sort_by_key(|iv| (iv.start_ns, iv.end_ns()));
    for pair in port.windows(2) {
        if pair[1].start_ns < pair[0].end_ns() {
            violations.push(Violation::PortOverlap {
                a: pair[0].lane,
                b: pair[1].lane,
                at_ns: pair[1].start_ns,
            });
        }
    }

    // Lane exclusivity: same sweep per lane, all phases included —
    // execute occupies the band exactly like a reconfiguration does.
    let mut by_lane: std::collections::BTreeMap<(usize, usize), Vec<&PhaseSnap>> =
        std::collections::BTreeMap::new();
    for iv in &snap.intervals {
        by_lane.entry(iv.lane).or_default().push(iv);
    }
    for (lane, mut ivs) in by_lane {
        ivs.sort_by_key(|iv| (iv.start_ns, iv.end_ns()));
        for pair in ivs.windows(2) {
            if pair[1].start_ns < pair[0].end_ns() {
                violations.push(Violation::LaneOverlap { lane, at_ns: pair[1].start_ns });
            }
        }
    }

    // Charge conservation: the charged intervals sum exactly to the
    // ledger's port time — nothing double-counted, nothing dropped.
    let timeline_ns: u64 = snap.intervals.iter().filter(|iv| iv.charged).map(|iv| iv.dur_ns).sum();
    if timeline_ns != snap.ledger_port_ns {
        violations.push(Violation::TimelineChargeDrift {
            timeline_ns,
            ledger_ns: snap.ledger_port_ns,
        });
    }

    // Makespan honesty: the reported number is the last interval's end.
    let computed_ns = snap.intervals.iter().map(PhaseSnap::end_ns).max().unwrap_or(0);
    if computed_ns != snap.makespan_ns {
        violations.push(Violation::MakespanMismatch {
            reported_ns: snap.makespan_ns,
            computed_ns,
        });
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(
        lane: (usize, usize),
        phase: &'static str,
        uses_port: bool,
        charged: bool,
        start_ns: u64,
        dur_ns: u64,
    ) -> PhaseSnap {
        PhaseSnap { lane, phase, uses_port, charged, tenant: Some(1), start_ns, dur_ns }
    }

    fn clean() -> TimelineSnapshot {
        TimelineSnapshot {
            intervals: vec![
                iv((0, 0), "admission", true, true, 0, 100),
                iv((0, 8), "admission", true, true, 100, 50),
                iv((0, 0), "execute", false, false, 100, 200),
                iv((0, 8), "switch", false, true, 150, 30),
            ],
            makespan_ns: 300,
            ledger_port_ns: 180,
        }
    }

    #[test]
    fn clean_snapshot_passes() {
        assert!(check_timeline(&clean()).is_empty());
    }

    #[test]
    fn overlapping_port_intervals_are_rejected() {
        let mut snap = clean();
        snap.intervals[1].start_ns = 60; // inside the first admission
        snap.intervals[1].dur_ns = 90; // end unchanged: lane/makespan clean
        let violations = check_timeline(&snap);
        assert!(
            violations.iter().any(|v| matches!(v, Violation::PortOverlap { at_ns: 60, .. })),
            "{violations:?}"
        );
    }

    #[test]
    fn overlapping_lane_intervals_are_rejected() {
        let mut snap = clean();
        // The execute starts while its own lane's admission still runs.
        snap.intervals[2].start_ns = 50;
        snap.intervals[2].dur_ns = 250;
        let violations = check_timeline(&snap);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::LaneOverlap { lane: (0, 0), at_ns: 50 })),
            "{violations:?}"
        );
    }

    #[test]
    fn charge_drift_is_rejected() {
        let mut snap = clean();
        snap.ledger_port_ns += 7;
        let violations = check_timeline(&snap);
        assert!(
            violations.iter().any(|v| matches!(
                v,
                Violation::TimelineChargeDrift { timeline_ns: 180, ledger_ns: 187 }
            )),
            "{violations:?}"
        );
    }

    #[test]
    fn makespan_drift_is_rejected() {
        let mut snap = clean();
        snap.makespan_ns = 299;
        let violations = check_timeline(&snap);
        assert!(
            violations.iter().any(|v| matches!(
                v,
                Violation::MakespanMismatch { reported_ns: 299, computed_ns: 300 }
            )),
            "{violations:?}"
        );
    }

    #[test]
    fn empty_timeline_is_clean() {
        assert!(check_timeline(&TimelineSnapshot::default()).is_empty());
    }
}
