//! Pass 1b — the fabric route-tree linter.
//!
//! A routed net on the island-style fabric is a set of RRG node ids (its
//! *tree*). The linter proves, per net and across nets:
//!
//! * **node validity** — every id names a graph node, every wire's track
//!   fits the channel width;
//! * **connectivity + acyclicity** — a BFS from the net's source pins
//!   through the tree-induced subgraph reaches every sink *and* every tree
//!   node. The BFS order is a spanning-forest certificate rooted at the
//!   sources: every node hangs off a source through tree edges, so no
//!   disconnected component — and in particular no disconnected cycle —
//!   can hide in the set;
//! * **exclusive wire ownership** — no wire node appears in two nets'
//!   trees (pins are legitimately shared between a block's nets and are
//!   exempt, exactly as the router's occupancy accounting exempts them).
//!
//! This is the always-on promotion of what used to be a `debug_assert!`'d
//! audit inside `par::troute` — the router now delegates here.

use crate::Violation;
use fabric::rrg::RouteGraph;
use logic::fxhash::{FxHashMap, FxHashSet};

/// A net's terminals in RRG node-id space: source opins and sink ipins.
#[derive(Debug, Clone, Default)]
pub struct NetTerminals {
    /// Source (output-pin) nodes; at least one must anchor the tree.
    pub sources: Vec<u32>,
    /// Sink (input-pin) nodes; every one must be reached.
    pub sinks: Vec<u32>,
}

/// Runs every route-tree check; returns all violations found.
pub fn check_route_trees(
    graph: &RouteGraph,
    nets: &[NetTerminals],
    trees: &[Vec<u32>],
) -> Vec<Violation> {
    let mut out = Vec::new();
    if nets.len() != trees.len() {
        out.push(Violation::TreeCountMismatch { nets: nets.len(), trees: trees.len() });
        return out;
    }

    let n_nodes = graph.node_count();
    let mut owner: FxHashMap<u32, usize> = FxHashMap::default();
    let mut set: FxHashSet<u32> = FxHashSet::default();
    let mut reach: FxHashSet<u32> = FxHashSet::default();
    let mut queue: Vec<u32> = Vec::new();

    for (i, (net, tree)) in nets.iter().zip(trees).enumerate() {
        set.clear();
        let mut valid = true;
        for &node in tree {
            if (node as usize) >= n_nodes {
                out.push(Violation::NodeOutOfRange { net: i, node, nodes: n_nodes });
                valid = false;
                continue;
            }
            if let Some(track) = graph.kind(node).track() {
                if track >= graph.width {
                    out.push(Violation::TrackOutOfRange {
                        net: i,
                        node,
                        track,
                        width: graph.width,
                    });
                    valid = false;
                }
            }
            set.insert(node);
        }
        if !valid {
            continue; // connectivity over invalid ids would be noise
        }

        // Exclusive wire ownership across nets.
        for &node in tree {
            if graph.kind(node).is_wire() {
                if let Some(&o) = owner.get(&node) {
                    out.push(Violation::WireConflict { node, nets: (o, i) });
                } else {
                    owner.insert(node, i);
                }
            }
        }

        // Spanning-forest certificate: BFS from the sources present in the
        // tree must cover every sink and every tree node.
        reach.clear();
        queue.clear();
        for &s in &net.sources {
            if set.contains(&s) && reach.insert(s) {
                queue.push(s);
            }
        }
        while let Some(node) = queue.pop() {
            for &e in graph.edges(node) {
                if set.contains(&e) && reach.insert(e) {
                    queue.push(e);
                }
            }
        }
        for &sink in &net.sinks {
            if !reach.contains(&sink) {
                out.push(Violation::SinkUnreached { net: i, sink });
            }
        }
        let mut stranded: Vec<u32> =
            tree.iter().copied().filter(|n| !reach.contains(n) && !net.sinks.contains(n)).collect();
        stranded.sort_unstable();
        for node in stranded {
            out.push(Violation::StrandedNode { net: i, node });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::arch::FabricArch;

    /// A hand-built two-net scenario on a tiny graph, using real trees
    /// found by walking edges (no router dependency: verify must not
    /// depend on par).
    fn tiny() -> (RouteGraph, Vec<NetTerminals>, Vec<Vec<u32>>) {
        let graph = RouteGraph::build(FabricArch::paper_4lut(3), 4);
        // Net 0: first logic block's opin to its own ipin via BFS.
        let src = graph.opin(fabric::arch::Site::Logic { x: 0, y: 0 });
        let dst = graph.ipin(fabric::arch::Site::Logic { x: 2, y: 2 }, 0);
        let tree = bfs_path(&graph, src, dst);
        let nets = vec![NetTerminals { sources: vec![src], sinks: vec![dst] }];
        (graph, nets, vec![tree])
    }

    fn bfs_path(graph: &RouteGraph, src: u32, dst: u32) -> Vec<u32> {
        let mut prev: FxHashMap<u32, u32> = FxHashMap::default();
        let mut queue = std::collections::VecDeque::from([src]);
        prev.insert(src, src);
        while let Some(n) = queue.pop_front() {
            if n == dst {
                break;
            }
            for &e in graph.edges(n) {
                prev.entry(e).or_insert_with(|| {
                    queue.push_back(e);
                    n
                });
            }
        }
        let mut path = vec![dst];
        let mut cur = dst;
        while cur != src {
            cur = prev[&cur];
            path.push(cur);
        }
        path.sort_unstable();
        path
    }

    #[test]
    fn real_tree_is_clean() {
        let (graph, nets, trees) = tiny();
        assert!(check_route_trees(&graph, &nets, &trees).is_empty());
    }

    #[test]
    fn broken_tree_loses_its_sink() {
        let (graph, nets, mut trees) = tiny();
        // Drop a wire node from the path: the sink comes unreached and/or
        // the far side strands.
        let wire_pos = trees[0]
            .iter()
            .position(|&n| graph.kind(n).is_wire())
            .expect("path crosses a channel");
        trees[0].remove(wire_pos);
        let v = check_route_trees(&graph, &nets, &trees);
        assert!(
            v.iter().any(|x| matches!(
                x,
                Violation::SinkUnreached { .. } | Violation::StrandedNode { .. }
            )),
            "{v:?}"
        );
    }

    #[test]
    fn out_of_range_node_is_caught() {
        let (graph, nets, mut trees) = tiny();
        let huge = graph.node_count() as u32 + 5;
        trees[0].push(huge);
        let v = check_route_trees(&graph, &nets, &trees);
        assert!(v.iter().any(|x| matches!(x, Violation::NodeOutOfRange { .. })), "{v:?}");
    }
}
